"""Shared fixtures: clean session/memory state and CSV builders."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.session import reset_root_session
from repro.frame import DataFrame
from repro.memory import memory_manager

try:  # derandomized profile for CI property-test runs
    from hypothesis import settings as _hypothesis_settings

    _hypothesis_settings.register_profile(
        "ci", derandomize=True, print_blob=True
    )
    _hypothesis_settings.load_profile(
        os.environ.get("HYPOTHESIS_PROFILE", "default")
    )
except ImportError:  # pragma: no cover - hypothesis is optional
    pass


def _clear_session_stack():
    """Drop any session a failed test left on this thread's stack --
    otherwise current_session() would ignore the fresh root below and
    every later test would run on the dead test's session."""
    from repro.core import session as session_module

    session_module._stack().clear()


@pytest.fixture(autouse=True)
def _clean_state():
    """Every test starts with a fresh root session and unbudgeted memory."""
    memory_manager.budget = None
    memory_manager.reset()
    _clear_session_stack()
    reset_root_session("pandas")
    yield
    memory_manager.budget = None
    _clear_session_stack()
    reset_root_session("pandas")


@pytest.fixture
def make_csv(tmp_path):
    """Write a dict-of-columns to a CSV file; returns the path."""

    def _make(columns: dict, name: str = "data.csv") -> str:
        path = os.path.join(tmp_path, name)
        DataFrame(columns).to_csv(path)
        return path

    return _make


@pytest.fixture
def taxi_csv(make_csv):
    """A small taxi-shaped table (the paper's running example)."""
    n = 200
    rng = np.random.default_rng(42)
    return make_csv(
        {
            "tpep_pickup_datetime": np.array(
                ["2024-03-%02d %02d:30:00" % (i % 28 + 1, i % 24) for i in range(n)],
                dtype=object,
            ),
            "passenger_count": rng.integers(1, 6, n),
            "fare_amount": np.round(rng.normal(15, 10, n), 2),
            "tip_amount": np.round(np.abs(rng.normal(2, 1, n)), 2),
            "vendor": np.array([f"v{i % 5}" for i in range(n)], dtype=object),
            "note": np.array([f"note-{i}" for i in range(n)], dtype=object),
        },
        "taxi.csv",
    )
