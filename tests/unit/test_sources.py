"""The source layer: DataSource protocol, registry, pushdown folding,
partition pruning, and scan byte estimates.

The correctness contract under test everywhere: folding a projection or
predicate into a scan, and pruning partitions against statistics, must
never change a collected result -- only how many bytes were read.
"""

import os

import numpy as np
import pytest

import repro
import repro.lazyfatpandas.pandas as lfp
from repro.core.session import Session
from repro.frame import DataFrame
from repro.io import (
    CsvSource,
    DEFAULT_SOURCES,
    DataSource,
    DatasetSource,
    JsonlSource,
    Partition,
    Predicate,
    SourceSpec,
    write_dataset,
    write_jsonl,
)
from repro.io.api import sibling_variant
from repro.metastore import MetaStore

STRATEGIES = ["serial", "threaded", "fused"]


def _frames_equal(a, b) -> bool:
    if list(a.columns) != list(b.columns):
        return False
    return all(
        np.array_equal(
            a.column(c).to_array(), b.column(c).to_array()
        )
        for c in a.columns
    )


@pytest.fixture
def hive_root(tmp_path):
    """A 4-partition hive dataset: year=2020..2023, 6 rows each, with
    ``v`` strictly increasing across partitions (payload pruning can
    separate them)."""
    frame = DataFrame({
        "year": np.repeat([2020, 2021, 2022, 2023], 6),
        "v": np.arange(24),
        "tag": np.array([f"t{i % 3}" for i in range(24)], dtype=object),
    })
    root = os.path.join(tmp_path, "events_hive")
    write_dataset(frame, root, partition_on="year")
    return root


@pytest.fixture
def metastore(tmp_path):
    return MetaStore(os.path.join(tmp_path, "metastore"))


# ---------------------------------------------------------------------------
# The three built-in sources.
# ---------------------------------------------------------------------------


class TestBuiltinSources:
    def test_csv_scan_projection_and_predicate(self, make_csv):
        path = make_csv({"a": np.arange(10), "b": np.arange(10) * 2,
                         "c": np.arange(10) * 3})
        source = CsvSource(path)
        assert source.schema() == ["a", "b", "c"]
        predicate = Predicate([{"column": "b", "op": ">", "value": 10}])
        frames = list(source.scan(columns=["a"], predicate=predicate))
        merged = frames[0]
        # predicate read `b`, output keeps only the projection
        assert list(merged.columns) == ["a"]
        assert merged.column("a").to_array().tolist() == [6, 7, 8, 9]

    def test_jsonl_roundtrip_preserves_types(self, tmp_path):
        frame = DataFrame({
            "i": np.arange(5),
            "f": np.linspace(0.0, 1.0, 5),
            "s": np.array(["x", "y", "z", "x", "y"], dtype=object),
        })
        path = os.path.join(tmp_path, "t.jsonl")
        write_jsonl(frame, path)
        source = JsonlSource(path)
        assert source.schema() == ["i", "f", "s"]
        out = next(source.scan())
        assert out.column("i").to_array().dtype.kind == "i"
        assert out.column("f").to_array().dtype.kind == "f"
        assert _frames_equal(out, frame)

    def test_dataset_appends_hive_keys(self, hive_root):
        source = DatasetSource(hive_root)
        # key columns come after the leaf columns, one partition per leaf
        assert source.schema() == ["v", "tag", "year"]
        parts = source.partitions()
        assert len(parts) == 4
        assert [p.key_values["year"] for p in parts] == [2020, 2021, 2022, 2023]
        out = source.read_partition(parts[2], columns=["v", "year"])
        assert out.column("year").to_array().tolist() == [2022] * 6
        assert out.column("v").to_array().tolist() == list(range(12, 18))

    def test_scan_partitions_subset_and_empty_frame(self, hive_root):
        source = DatasetSource(hive_root)
        frames = list(source.scan(partitions=[1, 3]))
        assert len(frames) == 2
        empty = source.empty_frame(["v", "year"])
        assert list(empty.columns) == ["v", "year"]
        assert len(empty) == 0
        # typed like a real read, not degraded to object columns
        assert empty.column("v").to_array().dtype.kind == "i"

    def test_backend_byte_range_read(self, make_csv):
        """PandasBackend.read_csv honors an explicit byte_range instead
        of silently reading the whole file."""
        from repro.backends.pandas_backend import PandasBackend
        from repro.frame.io_csv import scan_partitions

        path = make_csv({"a": np.arange(200)})
        first, second = scan_partitions(path, 2)
        piece = PandasBackend().read_csv(path, byte_range=second)
        values = piece.column("a").to_array()
        assert 0 < len(values) < 200
        assert values[-1] == 199 and values[0] > 0


# ---------------------------------------------------------------------------
# Registry round-trip with a custom source.
# ---------------------------------------------------------------------------


class _ArangeSource(DataSource):
    """In-test source: two partitions of consecutive integers."""

    format_name = "arange"
    supports_projection = True
    supports_predicate = False  # folding must respect this
    partitioned = True

    def schema(self):
        return ["n", "double"]

    def partitions(self):
        return [
            Partition(0, self.path, min_values={"n": 0}, max_values={"n": 4},
                      est_rows=5, est_bytes=80),
            Partition(1, self.path, min_values={"n": 5}, max_values={"n": 9},
                      est_rows=5, est_bytes=80),
        ]

    def read_partition(self, partition, columns=None, predicate=None):
        lo = partition.min_values["n"]
        hi = partition.max_values["n"] + 1
        n = np.arange(lo, hi)
        frame = DataFrame({"n": n, "double": n * 2})
        return self._finish(frame, columns, predicate)


@pytest.fixture
def arange_registered():
    spec = SourceSpec.from_source(_ArangeSource, description="test source")
    DEFAULT_SOURCES.register(spec)
    try:
        yield spec
    finally:
        DEFAULT_SOURCES.unregister("arange")


class TestRegistry:
    def test_custom_source_round_trip(self, arange_registered):
        with Session(backend="pandas"):
            lf = lfp.scan_source("arange", "memory://test")
            out = lf.collect()
        assert out.column("n").to_array().tolist() == list(range(10))
        assert out.column("double").to_array().tolist() == [
            2 * i for i in range(10)
        ]

    def test_spec_carries_capability_flags(self, arange_registered):
        spec = DEFAULT_SOURCES.spec("arange")
        assert spec.supports_projection
        assert not spec.supports_predicate
        assert spec.partitioned

    def test_projection_folds_but_predicate_stays(self, arange_registered):
        """The optimizer must consult the spec: projection folds into the
        scan, the filter stays a graph node (no supports_predicate)."""
        with Session(backend="pandas"):
            lf = lfp.scan_source("arange", "memory://test")
            out = lf[lf["n"] >= 7][["double"]]
            text = out.explain()
            collected = out.collect()
        optimized = text.split("== optimized plan ==")[1]
        assert "columns=['double', 'n']" in optimized
        assert "predicate" not in optimized
        assert "filter" in optimized
        assert collected.column("double").to_array().tolist() == [14, 16, 18]

    def test_pruning_uses_partition_stats(self, arange_registered):
        """Even without predicate *execution* support, the pruning pass
        can still drop partitions the (graph-resident) filter's folded
        conjuncts... it cannot -- no fold means no pruning predicate.
        The scan must instead report totals untouched."""
        with Session(backend="pandas") as session:
            lf = lfp.scan_source("arange", "memory://test")
            out = lf[lf["n"] >= 7]["double"].sum()
            assert float(out.collect()) == 14 + 16 + 18
            stats = session.last_execution_stats
        assert stats.partitions_read == stats.partitions_total == 2

    def test_duplicate_and_unknown_formats(self):
        spec = SourceSpec.from_source(_ArangeSource)
        DEFAULT_SOURCES.register(spec)
        try:
            with pytest.raises(ValueError, match="already registered"):
                DEFAULT_SOURCES.register(spec)
            DEFAULT_SOURCES.register(spec, replace=True)  # explicit ok
        finally:
            DEFAULT_SOURCES.unregister("arange")
        with pytest.raises(ValueError, match="unknown source format"):
            DEFAULT_SOURCES.spec("arange")
        assert DEFAULT_SOURCES.get("arange") is None

    def test_builtin_formats_present(self):
        for fmt in ("csv", "jsonl", "dataset"):
            assert fmt in DEFAULT_SOURCES


# ---------------------------------------------------------------------------
# Predicate semantics.
# ---------------------------------------------------------------------------


class TestPredicate:
    def test_serialization_round_trip(self):
        conjuncts = [
            {"column": "x", "op": ">=", "value": 3},
            {"column": "s", "op": "isin", "values": ["a", "b"]},
        ]
        predicate = Predicate.from_arg(conjuncts)
        assert predicate.to_arg() == conjuncts
        assert predicate.columns() == {"x", "s"}
        assert Predicate.from_arg(None) is None
        assert Predicate.from_arg([]) is None

    def test_filter_applies_all_conjuncts(self):
        frame = DataFrame({"x": np.arange(10),
                           "s": np.array(list("ababababab"), dtype=object)})
        predicate = Predicate([
            {"column": "x", "op": ">", "value": 2},
            {"column": "s", "op": "==", "value": "a"},
        ])
        out = predicate.filter(frame)
        assert out.column("x").to_array().tolist() == [4, 6, 8]

    @pytest.mark.parametrize("conj,expected", [
        ({"column": "x", "op": ">", "value": 9}, False),
        ({"column": "x", "op": ">=", "value": 9}, True),
        ({"column": "x", "op": "<", "value": 2}, False),
        ({"column": "x", "op": "==", "value": 5}, True),
        ({"column": "x", "op": "==", "value": 20}, False),
        ({"column": "x", "op": "!=", "value": 5}, True),
        ({"column": "x", "op": "between", "low": 10, "high": 12}, False),
        ({"column": "x", "op": "between", "low": 8, "high": 12}, True),
        ({"column": "x", "op": "isin", "values": [0, 1]}, False),
        ({"column": "x", "op": "isin", "values": [3, 99]}, True),
        # missing statistics: never prune
        ({"column": "unknown", "op": ">", "value": 1e9}, True),
    ])
    def test_range_pruning_decisions(self, conj, expected):
        part = Partition(0, "p", min_values={"x": 2}, max_values={"x": 9})
        assert Predicate([conj]).may_match(part) is expected

    def test_hive_key_is_exact(self):
        part = Partition(0, "p", key_values={"year": 2022})
        assert Predicate([{"column": "year", "op": "==", "value": 2022}]
                         ).may_match(part)
        assert not Predicate([{"column": "year", "op": "==", "value": 2021}]
                             ).may_match(part)
        assert not Predicate([{"column": "year", "op": "<", "value": 2022}]
                             ).may_match(part)

    def test_single_value_partition_not_equal(self):
        # lo == hi == value is the only provable != prune
        part = Partition(0, "p", min_values={"x": 5}, max_values={"x": 5})
        assert not Predicate([{"column": "x", "op": "!=", "value": 5}]
                             ).may_match(part)

    def test_or_term_prunes_only_when_every_branch_fails(self):
        part = Partition(0, "p", min_values={"x": 10}, max_values={"x": 20})
        both_miss = Predicate([{
            "op": "or",
            "terms": [[{"column": "x", "op": "<", "value": 5}],
                      [{"column": "x", "op": ">", "value": 50}]],
        }])
        assert not both_miss.may_match(part)
        one_hits = Predicate([{
            "op": "or",
            "terms": [[{"column": "x", "op": "<", "value": 5}],
                      [{"column": "x", "op": ">=", "value": 15}]],
        }])
        assert one_hits.may_match(part)

    def test_not_term_prunes_via_all_match_proof(self):
        # every row has x in [10, 20], so ~(x >= 5) provably matches none
        part = Partition(0, "p", min_values={"x": 10}, max_values={"x": 20},
                         null_counts={"x": 0})
        proven_full = Predicate([{
            "op": "not",
            "term": [{"column": "x", "op": ">=", "value": 5}],
        }])
        assert not proven_full.may_match(part)
        undecidable = Predicate([{
            "op": "not",
            "term": [{"column": "x", "op": ">=", "value": 15}],
        }])
        assert undecidable.may_match(part)

    def test_not_all_match_proof_needs_zero_nulls(self):
        # NA rows fail ``x >= 5``, so they *survive* its negation: with a
        # recorded nonzero null_count the NOT prune must not fire.
        part = Partition(0, "p", min_values={"x": 10}, max_values={"x": 20},
                         null_counts={"x": 3})
        predicate = Predicate([{
            "op": "not",
            "term": [{"column": "x", "op": ">=", "value": 5}],
        }])
        assert predicate.may_match(part)

    def test_null_aware_not_equal_prune(self):
        conj = [{"column": "x", "op": "!=", "value": 5}]
        # NaN != 5 is True, so a chunk of all-5s with recorded nulls
        # still has matching rows; only null_count == 0 proves the prune.
        no_nulls = Partition(0, "p", min_values={"x": 5}, max_values={"x": 5},
                             null_counts={"x": 0})
        assert not Predicate(conj).may_match(no_nulls)
        with_nulls = Partition(0, "p", min_values={"x": 5},
                               max_values={"x": 5}, null_counts={"x": 2})
        assert Predicate(conj).may_match(with_nulls)
        # sources that never recorded null counts keep the legacy prune
        legacy = Partition(0, "p", min_values={"x": 5}, max_values={"x": 5})
        assert not Predicate(conj).may_match(legacy)

    def test_nested_or_with_hive_keys(self):
        part = Partition(0, "p", key_values={"year": 2022},
                         min_values={"v": 0}, max_values={"v": 9})
        predicate = Predicate([{
            "op": "or",
            "terms": [
                [{"column": "year", "op": "==", "value": 2021},
                 {"column": "v", "op": "<", "value": 100}],
                [{"column": "v", "op": ">", "value": 50}],
            ],
        }])
        assert not predicate.may_match(part)

    def test_or_filter_matches_proof_semantics(self):
        frame = DataFrame({"x": np.arange(10)})
        predicate = Predicate([{
            "op": "or",
            "terms": [[{"column": "x", "op": "<", "value": 2}],
                      [{"column": "x", "op": ">=", "value": 8}]],
        }])
        out = predicate.filter(frame)
        assert out.column("x").to_array().tolist() == [0, 1, 8, 9]
        negated = Predicate([{
            "op": "not",
            "term": [{"column": "x", "op": "<", "value": 7}],
        }])
        assert negated.filter(frame).column("x").to_array().tolist() == [7, 8, 9]


# ---------------------------------------------------------------------------
# Optimizer folding: pushdown terminates inside the scan node.
# ---------------------------------------------------------------------------


class TestPushdownFolding:
    @pytest.mark.parametrize("backend", ["pandas", "dask"])
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_fold_equivalence(self, make_csv, backend, strategy):
        """Folded and unfolded plans must collect identical frames."""
        path = make_csv({"a": np.arange(40), "b": np.arange(40) % 7,
                         "pad": np.array([f"p{i}" for i in range(40)],
                                         dtype=object)})

        def pipeline():
            lf = lfp.scan_csv(path)
            return lf[(lf["a"] > 5) & (lf["b"] != 3)][["a", "b"]]

        with Session(backend=backend,
                     options={"executor.strategy": strategy}) as session:
            folded = pipeline().collect()
            with session.option_context(
                "optimizer.predicate_pushdown", False,
                "optimizer.projection_pushdown", False,
                "optimizer.partition_pruning", False,
            ):
                plain = pipeline().collect()
        assert _frames_equal(folded, plain)

    def test_fold_visible_in_plan(self, make_csv):
        path = make_csv({"a": np.arange(10), "b": np.arange(10)})
        with Session(backend="pandas"):
            lf = lfp.scan_csv(path)
            out = lf[lf["a"] > 3][["b"]]
            optimized = out.explain().split("== optimized plan ==")[1]
        assert "predicate=(a>3)" in optimized
        # columns is the OUTPUT projection; the source still reads `a`
        # physically to evaluate the folded mask, then drops it.
        assert "columns=['b']" in optimized
        assert "filter" not in optimized

    def test_or_mask_folds_into_scan(self, make_csv):
        """Disjunctions fold as nested ``or`` terms: the predicate moves
        into the scan and still produces the right answer."""
        path = make_csv({"a": np.arange(20)})
        with Session(backend="pandas"):
            lf = lfp.scan_csv(path)
            out = lf[(lf["a"] < 3) | (lf["a"] > 16)]
            optimized = out.explain().split("== optimized plan ==")[1]
            frame = out.collect()
        assert "filter" not in optimized
        assert "predicate" in optimized
        assert frame.column("a").to_array().tolist() == [0, 1, 2, 17, 18, 19]

    def test_negation_folds_into_scan(self, make_csv):
        path = make_csv({"a": np.arange(10)})
        with Session(backend="pandas"):
            lf = lfp.scan_csv(path)
            out = lf[~(lf["a"] < 7)]
            optimized = out.explain().split("== optimized plan ==")[1]
            frame = out.collect()
        assert "predicate" in optimized
        assert frame.column("a").to_array().tolist() == [7, 8, 9]

    def test_shared_scan_not_folded(self, make_csv):
        """A scan with a second (unfiltered) consumer must keep its
        filter in the graph -- folding would filter the other branch."""
        path = make_csv({"a": np.arange(12)})
        with Session(backend="pandas"):
            lf = lfp.scan_csv(path)
            total = lf["a"].sum()
            small = lf[lf["a"] < 3]["a"].sum()
            combined = total + small
            assert float(combined.collect()) == sum(range(12)) + 0 + 1 + 2

    def test_jsonl_scan_folds_too(self, tmp_path):
        frame = DataFrame({"x": np.arange(30), "y": np.arange(30) * 3})
        path = os.path.join(tmp_path, "t.jsonl")
        write_jsonl(frame, path)
        with Session(backend="pandas"):
            lf = lfp.scan_jsonl(path)
            out = lf[lf["x"] >= 25]
            optimized = out.explain().split("== optimized plan ==")[1]
            got = out.collect()
        assert "predicate=(x>=25)" in optimized
        assert got.column("y").to_array().tolist() == [75, 78, 81, 84, 87]


# ---------------------------------------------------------------------------
# Partition pruning.
# ---------------------------------------------------------------------------


class TestPartitionPruning:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_hive_key_pruning_equivalence(self, hive_root, strategy):
        """Pruned and unpruned scans collect identical frames on every
        strategy, and the pruned run reads fewer partitions."""
        def pipeline():
            lf = lfp.scan_dataset(hive_root)
            return lf[lf["year"] == 2022][["v", "year"]]

        with Session(backend="pandas",
                     options={"executor.strategy": strategy}) as session:
            pruned = pipeline().collect()
            stats = session.last_execution_stats
            assert stats.partitions_read == 1
            assert stats.partitions_total == 4
            with session.option_context("optimizer.partition_pruning", False):
                unpruned = pipeline().collect()
                full_stats = session.last_execution_stats
        assert _frames_equal(pruned, unpruned)
        assert full_stats.partitions_read == full_stats.partitions_total == 4
        assert pruned.column("v").to_array().tolist() == list(range(12, 18))

    def test_payload_pruning_needs_unsampled_stats(self, hive_root, metastore):
        """Payload-column (non-key) predicates prune only through exact
        per-leaf metastore stats; sampled stats must NOT prune."""
        source = DatasetSource(hive_root)
        for part in source.partitions():
            metastore.compute_and_store(part.path, sample_rows=None)

        with Session(backend="pandas") as session:
            session.metastore = metastore
            lf = lfp.scan_dataset(hive_root)
            out = lf[lf["v"] >= 18]  # only the year=2023 leaf can match
            got = out.collect()
            stats = session.last_execution_stats
        assert stats.partitions_read == 1
        assert stats.partitions_total == 4
        assert got.column("v").to_array().tolist() == list(range(18, 24))

    def test_dataset_leaves_split_into_byte_range_partitions(
        self, hive_root, metastore
    ):
        """Per-byte-range stats on hive leaves turn each leaf into
        several prunable pieces: a payload predicate then prunes at
        sub-file granularity, not just whole leaves."""
        from repro.frame.io_csv import scan_partitions

        source = DatasetSource(hive_root)
        for leaf in source.leaves():
            ranges = [tuple(r) for r in scan_partitions(leaf["path"], 2)]
            metastore.compute_and_store(
                leaf["path"], sample_rows=None, partition_ranges=ranges
            )

        with Session(backend="pandas") as session:
            session.metastore = metastore
            lf = lfp.scan_dataset(hive_root)
            pruned = lf[lf["v"] >= 15].collect()
            stats = session.last_execution_stats
        # 4 leaves x 2 ranges; v >= 15 spans the back half of year=2022
        # plus all of year=2023 -- 3 of 8 pieces, where whole-leaf
        # pruning could do no better than 2 of 4 leaves.
        assert stats.partitions_total == 8
        assert stats.partitions_read == 3
        assert pruned.column("v").to_array().tolist() == list(range(15, 24))
        # sub-file partitions still carry their hive keys
        assert pruned.column("year").to_array().tolist() == \
            [2022] * 3 + [2023] * 6

    def test_csv_byte_range_pruning_via_partition_stats(
        self, make_csv, metastore
    ):
        """Per-byte-range PartitionStats (the metastore satellite) let a
        plain CSV scan prune chunks of a sorted file."""
        path = make_csv({"k": np.arange(400), "w": np.arange(400) * 2})
        probe = CsvSource(path, partition_bytes=512)
        ranges = [p.byte_range for p in probe.partitions()]
        assert len(ranges) > 3  # the file actually split
        metastore.compute_and_store(
            path, sample_rows=None, partition_ranges=ranges
        )

        with Session(backend="pandas") as session:
            session.metastore = metastore
            lf = lfp.scan_csv(path, partition_bytes=512)
            out = lf[lf["k"] < 50]
            got = out.collect()
            stats = session.last_execution_stats
        assert stats.partitions_total == len(ranges)
        assert 0 < stats.partitions_read < stats.partitions_total
        assert got.column("k").to_array().tolist() == list(range(50))

    def test_stale_ranges_never_misprune(self, make_csv, metastore):
        """Partition stats recorded over DIFFERENT byte ranges than the
        live scan derives must be ignored, not misapplied."""
        path = make_csv({"k": np.arange(400), "w": np.arange(400)})
        metastore.compute_and_store(
            path, sample_rows=None,
            partition_ranges=[(0, 100), (100, 300)],  # not the scan's split
        )
        with Session(backend="pandas") as session:
            session.metastore = metastore
            lf = lfp.scan_csv(path, partition_bytes=512)
            got = lf[lf["k"] < 50].collect()
            stats = session.last_execution_stats
        assert stats.partitions_read == stats.partitions_total  # no pruning
        assert got.column("k").to_array().tolist() == list(range(50))

    def test_all_partitions_pruned_yields_empty_frame(self, hive_root):
        with Session(backend="pandas") as session:
            lf = lfp.scan_dataset(hive_root)
            out = lf[lf["year"] == 1999][["v", "year"]]
            got = out.collect()
            stats = session.last_execution_stats
        assert stats.partitions_read == 0
        assert stats.partitions_total == 4
        assert list(got.columns) == ["v", "year"]
        assert len(got) == 0

    @pytest.mark.parametrize("backend", ["pandas", "dask"])
    def test_all_pruned_scan_preserves_dtypes(self, hive_root, backend):
        """A fully pruned scan must yield the same (typed) empty frame
        the unpruned run would have filtered down to -- not object
        columns."""
        def pipeline():
            lf = lfp.scan_dataset(hive_root)
            return lf[lf["year"] == 1999][["v", "year"]]

        with Session(backend=backend) as session:
            pruned = pipeline().collect()
            with session.option_context(
                "optimizer.predicate_pushdown", False,
                "optimizer.partition_pruning", False,
            ):
                ablated = pipeline().collect()
        assert len(pruned) == len(ablated) == 0
        for column in ("v", "year"):
            assert (pruned.column(column).to_array().dtype
                    == ablated.column(column).to_array().dtype), column
        assert pruned.column("v").to_array().dtype.kind == "i"

    def test_pruned_dask_scan_under_memory_budget(self, tmp_path, metastore):
        """The Dask backend must not re-chunk a pruned scan: the kept
        partition indices were computed against the optimizer's
        chunking, and a memory budget used to shrink partition_bytes at
        execution time, making the indices select wrong byte ranges."""
        rows = 20_000
        frame = DataFrame({
            "k": np.arange(rows),
            "pad": np.array([f"row-{i:06d}-{'x' * 80}" for i in range(rows)],
                            dtype=object),
        })
        path = os.path.join(tmp_path, "big.jsonl")
        write_jsonl(frame, path)
        assert os.path.getsize(path) > (1 << 20)  # multiple 1MB chunks
        ranges = [p.byte_range for p in JsonlSource(path).partitions()]
        assert len(ranges) >= 2
        metastore.compute_and_store(
            path, sample_rows=None, fmt="jsonl", partition_ranges=ranges
        )
        cutoff = rows - 2000  # provably fails every range but the last
        with Session(backend="dask",
                     options={"memory.budget": 5 << 20}) as session:
            session.metastore = metastore
            lf = lfp.scan_jsonl(path)
            got = lf[lf["k"] >= cutoff][["k"]].collect()
            stats = session.last_execution_stats
        assert stats.partitions_read < stats.partitions_total
        assert got.column("k").to_array().tolist() == list(range(cutoff, rows))

    @pytest.mark.parametrize("backend", ["pandas", "dask"])
    def test_dataset_scan_backend_equivalence(self, hive_root, backend):
        with Session(backend=backend):
            lf = lfp.scan_dataset(hive_root)
            out = lf[lf["year"] >= 2022]["v"].sum()
            assert float(out.collect()) == float(sum(range(12, 24)))


# ---------------------------------------------------------------------------
# Scan byte estimates feeding ExecutionStats / admission.
# ---------------------------------------------------------------------------


class TestScanEstimates:
    def test_stats_record_estimated_bytes(self, hive_root):
        with Session(backend="pandas") as session:
            lf = lfp.scan_dataset(hive_root)
            lf[lf["year"] == 2022]["v"].sum().collect()
            stats = session.last_execution_stats
        scan_stats = [s for s in stats.nodes if s.op == "scan"]
        assert scan_stats and scan_stats[0].bytes_estimated is not None
        assert stats.bytes_estimated > 0
        payload = stats.to_dict()
        assert payload["bytes_estimated"] == stats.bytes_estimated
        assert payload["partitions_read"] == 1

    def test_estimate_shrinks_with_pruning(self, hive_root):
        source = DatasetSource(hive_root)
        full = source.estimated_bytes()
        one = source.estimated_bytes(partitions=[0])
        assert full is not None and one is not None
        assert one < full

    def test_threaded_admission_with_estimates_completes(self, hive_root):
        """A tight budget with sized admission still finishes (throttle,
        not deadlock) and produces the right answer."""
        with Session(backend="pandas",
                     options={"executor.strategy": "threaded",
                              "memory.budget": 1 << 30}) as session:
            lf = lfp.scan_dataset(hive_root)
            total = lf["v"].sum()
            assert float(total.collect()) == float(sum(range(24)))
            assert session.last_execution_stats.effective_strategy == "threaded"


# ---------------------------------------------------------------------------
# Metastore per-partition statistics.
# ---------------------------------------------------------------------------


class TestPartitionStatsPersistence:
    def test_round_trip_on_disk(self, make_csv, tmp_path):
        path = make_csv({"k": np.arange(100), "s": np.array(
            [f"s{i}" for i in range(100)], dtype=object)})
        ranges = [p.byte_range
                  for p in CsvSource(path, partition_bytes=256).partitions()]
        store_dir = os.path.join(tmp_path, "ms")
        meta = MetaStore(store_dir).compute_and_store(
            path, sample_rows=None, partition_ranges=ranges
        )
        assert len(meta.partitions) == len(ranges)
        assert sum(p.n_rows for p in meta.partitions) == 100
        # k is ordered: partition minima must be strictly increasing
        mins = [p.min_values["k"] for p in meta.partitions]
        assert mins == sorted(mins)

        reread = MetaStore(store_dir).get(path)  # fresh instance, from disk
        assert reread is not None
        assert [p.to_dict() for p in reread.partitions] == [
            p.to_dict() for p in meta.partitions
        ]

    def test_jsonl_metadata(self, tmp_path):
        frame = DataFrame({"x": np.arange(50)})
        path = os.path.join(tmp_path, "t.jsonl")
        write_jsonl(frame, path)
        ranges = [p.byte_range for p in JsonlSource(path).partitions()]
        meta = MetaStore(os.path.join(tmp_path, "ms")).compute_and_store(
            path, sample_rows=None, fmt="jsonl", partition_ranges=ranges
        )
        assert meta.n_rows == 50
        assert meta.columns["x"].min_value == 0
        assert meta.columns["x"].max_value == 49
        assert sum(p.n_rows for p in meta.partitions) == 50


# ---------------------------------------------------------------------------
# Top-level API surface.
# ---------------------------------------------------------------------------


class TestTopLevelApi:
    def test_repro_exports_scan_api(self):
        assert repro.scan_csv is lfp.scan_csv
        assert repro.from_pandas is lfp.from_pandas

    def test_from_pandas(self):
        frame = DataFrame({"a": np.arange(5), "b": np.arange(5) * 2})
        with Session(backend="pandas"):
            lf = lfp.from_pandas(frame)
            assert lf.columns == ["a", "b"]
            out = lf[lf["a"] > 2].collect()
        assert out.column("b").to_array().tolist() == [6, 8]

    def test_from_pandas_on_dask(self):
        frame = DataFrame({"a": np.arange(6)})
        with Session(backend="dask"):
            total = lfp.from_pandas(frame)["a"].sum()
            assert float(total.collect()) == 15.0

    def test_compat_read_csv_shim_warns(self, make_csv):
        from repro.core import compat

        path = make_csv({"a": np.arange(3)})
        with pytest.warns(DeprecationWarning, match="scan_csv"):
            lf = compat.read_csv(path)
        assert lf.collect().column("a").to_array().tolist() == [0, 1, 2]

    def test_scan_csv_index_col(self, make_csv):
        path = make_csv({"a": np.arange(4), "b": np.arange(4) * 5})
        with Session(backend="pandas"):
            out = lfp.scan_csv(path, index_col="a").collect()
        assert list(out.columns) == ["b"]

    def test_sibling_variant_resolution(self, tmp_path):
        csv_path = os.path.join(tmp_path, "d.csv")
        DataFrame({"a": np.arange(3), "k": np.array(list("xyz"),
                                                    dtype=object)}).to_csv(csv_path)
        assert sibling_variant(csv_path, "jsonl") is None  # not created yet
        write_jsonl(DataFrame({"a": np.arange(3)}),
                    os.path.join(tmp_path, "d.jsonl"))
        assert sibling_variant(csv_path, "jsonl").endswith("d.jsonl")
        write_dataset(
            DataFrame({"a": np.arange(3),
                       "k": np.array(list("xyz"), dtype=object)}),
            os.path.join(tmp_path, "d_hive"), partition_on="k",
        )
        assert sibling_variant(csv_path, "dataset").endswith("d_hive")
        assert sibling_variant("not_a_csv.parquet", "jsonl") is None

    def test_source_format_reroutes_read_csv(self, tmp_path):
        """workload.source_format makes pandas-verbatim read_csv scan the
        sibling dataset variant -- with pruning active."""
        frame = DataFrame({
            "g": np.repeat(np.array(["a", "b", "c"], dtype=object), 5),
            "x": np.arange(15),
        })
        csv_path = os.path.join(tmp_path, "t.csv")
        frame.to_csv(csv_path)
        write_dataset(frame, os.path.join(tmp_path, "t_hive"),
                      partition_on="g")
        with Session(backend="pandas") as session:
            session.set_option("workload.source_format", "dataset")
            lf = lfp.read_csv(csv_path)
            out = lf[lf["g"] == "b"]["x"].sum()
            assert float(out.collect()) == float(sum(range(5, 10)))
            stats = session.last_execution_stats
        assert stats.partitions_read == 1
        assert stats.partitions_total == 3

    def test_source_format_without_variant_falls_back(self, make_csv):
        path = make_csv({"a": np.arange(4)})
        with Session(backend="pandas") as session:
            session.set_option("workload.source_format", "jsonl")
            out = lfp.read_csv(path).collect()  # no sibling: plain CSV
        assert out.column("a").to_array().tolist() == [0, 1, 2, 3]
