"""Unit tests: window ops, reshaping, backend choice, and the CLI."""

import numpy as np
import pytest

from repro.frame import DataFrame, Series


class TestWindowOps:
    def test_shift_forward(self):
        s = Series([1.0, 2.0, 3.0]).shift(1)
        assert np.isnan(s.values[0])
        assert s.to_list()[1:] == [1.0, 2.0]

    def test_shift_backward(self):
        s = Series([1.0, 2.0, 3.0]).shift(-1)
        assert s.to_list()[:2] == [2.0, 3.0]
        assert np.isnan(s.values[2])

    def test_shift_object(self):
        s = Series(["a", "b"]).shift(1)
        assert s.to_list() == [None, "a"]

    def test_diff(self):
        s = Series([1.0, 4.0, 9.0]).diff()
        assert np.isnan(s.values[0])
        assert s.to_list()[1:] == [3.0, 5.0]

    def test_cumsum_cummax_cummin(self):
        s = Series([3, 1, 4])
        assert s.cumsum().to_list() == [3, 4, 8]
        assert s.cummax().to_list() == [3, 3, 4]
        assert s.cummin().to_list() == [3, 1, 1]

    def test_rank_average_ties(self):
        s = Series([10.0, 20.0, 20.0, 30.0]).rank()
        assert s.to_list() == [1.0, 2.5, 2.5, 4.0]

    def test_clip(self):
        s = Series([1, 5, 10]).clip(2, 8)
        assert s.to_list() == [2, 5, 8]

    def test_rolling_mean(self):
        s = Series([1.0, 2.0, 3.0, 4.0]).rolling(2).mean()
        assert np.isnan(s.values[0])
        assert s.to_list()[1:] == [1.5, 2.5, 3.5]

    def test_rolling_sum_window_larger_than_series(self):
        s = Series([1.0, 2.0]).rolling(5).sum()
        assert all(np.isnan(v) for v in s.values)

    def test_rolling_invalid_window(self):
        with pytest.raises(ValueError):
            Series([1.0]).rolling(0)


class TestReshape:
    def frame(self):
        return DataFrame(
            {"k": ["a", "a", "b"], "x": [1, 2, 3], "y": [4, 5, 6]}
        )

    def test_melt_shape(self):
        out = self.frame().melt(id_vars=["k"])
        assert out.columns == ["k", "variable", "value"]
        assert len(out) == 6

    def test_melt_values_align(self):
        out = self.frame().melt(id_vars=["k"], value_vars=["x"])
        assert out["value"].to_list() == [1, 2, 3]
        assert set(out["variable"].to_list()) == {"x"}

    def test_pivot_table_sum(self):
        frame = DataFrame(
            {"r": ["p", "p", "q"], "c": ["u", "v", "u"], "v": [1.0, 2.0, 3.0]}
        )
        out = frame.pivot_table("v", "r", "c", "sum")
        assert out.columns == ["r", "u", "v"]
        assert out["u"].to_list() == [1.0, 3.0]

    def test_pivot_table_missing_cells_nan(self):
        frame = DataFrame(
            {"r": ["p", "q"], "c": ["u", "v"], "v": [1.0, 2.0]}
        )
        out = frame.pivot_table("v", "r", "c", "mean")
        assert np.isnan(out["v"].values[0])  # (p, v) never observed


class TestBackendChoice:
    def _graph(self, path, usecols=None, with_sort=False):
        import repro.lazyfatpandas.pandas as lfp
        from repro.core.session import reset_root_session

        lfp.BACKEND_ENGINE = lfp.BackendEngines.PANDAS
        reset_root_session("pandas")
        df = lfp.read_csv(path, usecols=usecols)
        if with_sort:
            df = df.sort_values("num")
        out = df.groupby(["cat"])["num"].sum()
        return out.node

    @pytest.fixture
    def setup(self, make_csv, tmp_path):
        from repro.metastore import MetaStore

        path = make_csv(
            {
                "cat": ["a", "b"] * 200,
                "num": list(range(400)),
                "blob": [f"pad-{i}-xxxxxxxxxxxxxxxx" for i in range(400)],
            }
        )
        store = MetaStore(str(tmp_path / "ms"))
        store.compute_and_store(path, sample_rows=None)
        return path, store

    def test_roomy_budget_chooses_pandas(self, setup):
        from repro.core.backend_choice import choose_backend_for_roots, pick

        path, store = setup
        root = self._graph(path)
        estimates = choose_backend_for_roots([root], store, budget_bytes=10**9)
        assert pick(estimates) == "pandas"

    def test_tight_budget_chooses_dask(self, setup):
        from repro.core.backend_choice import choose_backend_for_roots, pick

        path, store = setup
        root = self._graph(path)
        estimates = choose_backend_for_roots([root], store, budget_bytes=1000)
        assert pick(estimates) == "dask"

    def test_usecols_shrinks_estimate_toward_pandas(self, setup):
        from repro.core.backend_choice import choose_backend_for_roots, pick

        path, store = setup
        wide = self._graph(path)
        narrow = self._graph(path, usecols=["cat", "num"])
        wide_est = choose_backend_for_roots([wide], store, budget_bytes=60_000)
        narrow_est = choose_backend_for_roots([narrow], store, budget_bytes=60_000)
        assert pick(narrow_est) == "pandas"
        assert pick(wide_est) != "pandas"

    def test_order_sensitivity_blocks_dask(self, setup):
        from repro.core.backend_choice import choose_backend_for_roots

        path, store = setup
        root = self._graph(path, with_sort=True)
        estimates = choose_backend_for_roots([root], store, budget_bytes=10**9)
        dask = next(e for e in estimates if e.backend == "dask")
        assert not dask.order_safe

    def test_no_metadata_defaults_to_dask(self, setup):
        from repro.core.backend_choice import choose_backend_for_roots, pick

        path, _store = setup
        root = self._graph(path)
        estimates = choose_backend_for_roots([root], None, budget_bytes=10**6)
        assert pick(estimates) == "dask"

    def test_auto_select_installs_backend(self, setup):
        from repro.core.backend_choice import auto_select
        from repro.core.session import current_session

        path, store = setup
        root = self._graph(path)
        session = current_session()
        session.metastore = store
        chosen = auto_select(session, [root])
        assert session.backend_name == chosen


class TestCli:
    def test_list(self, capsys):
        from repro.workloads.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "nyt" in out and "stu" in out

    def test_run_single_cell(self, capsys):
        from repro.workloads.cli import main

        code = main(
            ["run", "zip", "--mode", "pandas", "--size", "S",
             "--rows", "500", "--no-budget"]
        )
        assert code == 0
        assert "zip/pandas/S: ok" in capsys.readouterr().out

    def test_verify_single_program(self, capsys):
        from repro.workloads.cli import main

        code = main(["verify", "env", "--rows", "500"])
        assert code == 0
        assert "env: ok" in capsys.readouterr().out
