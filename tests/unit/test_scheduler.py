"""Unit tests for the pluggable scheduler subsystem.

Covers the executor registry, the ready-set taskgraph helpers on
diamond / multi-root / shared-subexpression shapes, strategy
equivalence (serial == threaded == fused), linear-chain fusion,
per-node execution statistics, memory-aware admission, and per-session
memory-budget isolation under concurrency.
"""

import threading

import numpy as np
import pytest

import repro.lazyfatpandas.pandas as lfp
from repro.backends import PandasBackend
from repro.core.session import Session
from repro.graph import (
    DEFAULT_EXECUTORS,
    Executor,
    ExecutorRegistry,
    Node,
    SchedulerSpec,
    consumers_by_id,
    dependency_counts,
    ready_nodes,
    topological_order,
)
from repro.graph.scheduler import (
    FusedScheduler,
    SerialScheduler,
    ThreadedScheduler,
    fuse_linear_chains,
)
from repro.memory import MemoryManager, SimulatedMemoryError, memory_manager

STRATEGIES = ["serial", "threaded", "fused", "process", "async"]


def _diamond():
    src = Node("from_data", args={"data": {"x": [1, 2, 3]}})
    left = Node("identity", inputs=[src])
    right = Node("identity", inputs=[src])
    join = Node("concat", inputs=[left, right])
    return src, left, right, join


def _frames_equal(a, b) -> bool:
    from repro.frame import DataFrame, Series

    if isinstance(a, Series) and isinstance(b, Series):
        return np.array_equal(a.column.to_array(), b.column.to_array())
    if isinstance(a, DataFrame) and isinstance(b, DataFrame):
        if list(a.columns) != list(b.columns):
            return False
        return all(
            np.array_equal(a.column(c).to_array(), b.column(c).to_array())
            for c in a.columns
        )
    return a == b


@pytest.fixture
def numbers_csv(make_csv):
    n = 120
    return make_csv(
        {
            "x": np.arange(n) - 17,
            "y": np.arange(n) % 5,
            "w": np.round(np.linspace(0.0, 9.5, n), 2),
            "tag": np.array([f"t{i % 3}" for i in range(n)], dtype=object),
        },
        "numbers.csv",
    )


class TestExecutorRegistry:
    def test_stock_strategies_registered(self):
        assert DEFAULT_EXECUTORS.names() == [
            "async", "fused", "process", "serial", "threaded",
        ]
        assert "threaded" in DEFAULT_EXECUTORS

    def test_unknown_strategy_lists_choices(self):
        with pytest.raises(ValueError, match="fused.*process.*serial"):
            DEFAULT_EXECUTORS.spec("quantum")

    def test_duplicate_registration_rejected(self):
        registry = ExecutorRegistry([SchedulerSpec("serial", SerialScheduler)])
        with pytest.raises(ValueError, match="already registered"):
            registry.register(SchedulerSpec("serial", SerialScheduler))
        registry.register(
            SchedulerSpec("serial", FusedScheduler), replace=True
        )
        assert registry.spec("serial").factory is FusedScheduler

    def test_session_custom_registry_is_pluggable(self):
        """A new strategy plugs in as a spec -- the scale-out seam."""
        class TracingScheduler(SerialScheduler):
            name = "tracing"

        registry = ExecutorRegistry([
            DEFAULT_EXECUTORS.spec("serial"),
            SchedulerSpec("tracing", TracingScheduler),
        ])
        session = Session(backend="pandas", executors=registry,
                          options={"executor.strategy": "tracing"})
        assert isinstance(session.scheduler(), TracingScheduler)

    def test_create_builds_fresh_instances(self):
        backend = PandasBackend()
        a = DEFAULT_EXECUTORS.create("serial", backend)
        b = DEFAULT_EXECUTORS.create("serial", backend)
        assert a is not b

    def test_unknown_strategy_errors_at_collect(self):
        with Session(backend="pandas",
                     options={"executor.strategy": "warp"}):
            frame = lfp.DataFrame({"x": [1, 2]})
            with pytest.raises(ValueError, match="unknown executor strategy"):
                frame.collect()


class TestReadySetHelpers:
    def test_diamond_dependency_counts(self):
        src, left, right, join = _diamond()
        order = topological_order([join])
        counts = dependency_counts(order)
        assert counts[src.id] == 0
        assert counts[left.id] == 1
        assert counts[right.id] == 1
        assert counts[join.id] == 2
        assert ready_nodes(order, counts) == [src]

    def test_multi_root_ready_set(self):
        src_a = Node("from_data", args={"data": {"x": [1]}})
        src_b = Node("from_data", args={"data": {"x": [2]}})
        col_a = Node("getitem_column", inputs=[src_a], args={"column": "x"})
        col_b = Node("getitem_column", inputs=[src_b], args={"column": "x"})
        order = topological_order([col_a, col_b])
        counts = dependency_counts(order)
        assert set(n.id for n in ready_nodes(order, counts)) == {
            src_a.id, src_b.id
        }
        # multi-root topological order still places deps first
        positions = {n.id: i for i, n in enumerate(order)}
        assert positions[src_a.id] < positions[col_a.id]
        assert positions[src_b.id] < positions[col_b.id]

    def test_shared_subexpression_counts(self):
        src = Node("from_data", args={"data": {"x": [1, 2]}})
        shared = Node("getitem_column", inputs=[src], args={"column": "x"})
        s1 = Node("series_agg", inputs=[shared], args={"func": "sum"})
        s2 = Node("series_agg", inputs=[shared], args={"func": "max"})
        order = topological_order([s1, s2])
        counts = dependency_counts(order)
        consumers = consumers_by_id(order)
        assert counts[shared.id] == 1
        assert {c.id for c in consumers[shared.id]} == {s1.id, s2.id}
        assert len(order) == 4  # shared node appears exactly once

    def test_cached_nodes_are_immediately_ready(self):
        from repro.frame import DataFrame

        src, left, right, join = _diamond()
        src.set_result(DataFrame({"x": [9]}))
        src.persist = True
        order = topological_order([join])
        counts = dependency_counts(order)
        assert counts[src.id] == 0

    def test_order_deps_count_as_dependencies(self):
        first = Node("print", args={"segments": []})
        second = Node("print", args={"segments": []}, order_deps=[first])
        order = topological_order([second])
        counts = dependency_counts(order)
        assert counts[second.id] == 1
        assert ready_nodes(order, counts) == [first]

    def test_binop_on_same_input_counts_one_dependency(self):
        src = Node("from_data", args={"data": {"x": [1.0]}})
        col = Node("getitem_column", inputs=[src], args={"column": "x"})
        twice = Node("binop", inputs=[col, col], args={"op": "+"})
        order = topological_order([twice])
        counts = dependency_counts(order)
        assert counts[twice.id] == 1  # distinct deps, not edge count


class TestStrategyEquivalence:
    """serial, threaded and fused must be observationally identical."""

    def _pipeline(self, path):
        df = lfp.read_csv(path)
        df = df[df.x > 0]
        df["z"] = df.x * 2 + df.y
        shared = df[df.z > 10]
        total = shared.z.sum()
        by_tag = shared.groupby(["y"])["z"].sum()
        return total, by_tag

    def test_identical_results_across_strategies(self, numbers_csv):
        results = {}
        for strategy in STRATEGIES:
            with Session(backend="pandas",
                         options={"executor.strategy": strategy}) as s:
                total, by_tag = self._pipeline(numbers_csv)
                results[strategy] = (total.collect(), by_tag.collect())
                assert s.last_execution_stats.effective_strategy == strategy
        base_total, base_series = results["serial"]
        for strategy in ("threaded", "fused", "process", "async"):
            total, series = results[strategy]
            assert total == base_total
            assert _frames_equal(series, base_series)

    def test_option_context_switches_strategy_per_collect(self, numbers_csv):
        with Session(backend="pandas") as session:
            df = lfp.read_csv(numbers_csv)
            expected = df.x.sum().collect()
            for strategy in ("threaded", "fused"):
                with lfp.option_context("executor.strategy", strategy):
                    assert df.x.sum().collect() == expected
                assert (
                    session.last_execution_stats.effective_strategy == strategy
                )

    def test_threaded_falls_back_to_serial_on_lazy_engine(self, numbers_csv):
        with Session(backend="dask",
                     options={"executor.strategy": "threaded"}) as s:
            df = lfp.read_csv(numbers_csv)
            df.x.sum().collect()
            stats = s.last_execution_stats
            assert stats.strategy == "threaded"
            assert stats.effective_strategy == "serial"

    def test_threaded_runs_parallel_on_eager_engine(self, numbers_csv):
        with Session(backend="pandas",
                     options={"executor.strategy": "threaded",
                              "executor.max_workers": 3}) as s:
            df = lfp.read_csv(numbers_csv)
            df.x.sum().collect()
            stats = s.last_execution_stats
            assert stats.effective_strategy == "threaded"
            assert all(
                stat.worker.startswith("lafp-worker") for stat in stats.nodes
            )

    def test_lazy_prints_stay_in_program_order(self, capsys, numbers_csv):
        with Session(backend="pandas",
                     options={"executor.strategy": "threaded",
                              "executor.max_workers": 4}):
            df = lfp.read_csv(numbers_csv)
            print("first:", int(df.x.max()))
            print("second:", int(df.y.max()))
            print("third:", int(df.x.min()))
        out = capsys.readouterr().out.strip().splitlines()
        assert [line.split(":")[0] for line in out] == [
            "first", "second", "third"
        ]

    def test_threaded_propagates_node_errors(self):
        with Session(backend="pandas",
                     options={"executor.strategy": "threaded"}):
            df = lfp.DataFrame({"x": [1, 2, 3]})
            bad = df.x.map(lambda v: 1 / 0)
            with pytest.raises(ZeroDivisionError):
                bad.collect()


class TestFusion:
    def _chain_nodes(self, depth):
        src = Node("from_data", args={"data": {"x": list(range(8))}})
        node = src
        for _ in range(depth):
            node = Node("identity", inputs=[node])
        agg = Node("frame_len", inputs=[node])
        return src, agg

    def test_linear_chain_fuses_into_one_task(self):
        src, agg = self._chain_nodes(6)
        order = topological_order([agg])
        tasks = fuse_linear_chains(order, {agg.id})
        assert len(tasks) == 1
        assert [n.id for n in tasks[0]] == [n.id for n in order]

    def test_diamond_branches_do_not_fuse_across_fan_points(self):
        src, left, right, join = _diamond()
        order = topological_order([join])
        tasks = fuse_linear_chains(order, {join.id})
        # src has two consumers, the join has two deps: nothing fuses.
        assert sorted(len(t) for t in tasks) == [1, 1, 1, 1]

    def test_fused_strategy_records_chains(self, make_csv):
        path = make_csv({"x": np.arange(50)}, "chain.csv")
        with Session(backend="pandas",
                     options={"executor.strategy": "fused"}) as s:
            df = lfp.read_csv(path)
            df = df[df.x > 1]
            df = df[df.x > 2]
            df = df[df.x > 3]
            df.x.sum().collect()
            stats = s.last_execution_stats
            assert stats.fused_chains >= 1
            assert stats.fused_nodes >= 2

    def test_fusion_never_skips_persisted_results(self, make_csv):
        path = make_csv({"x": np.arange(30)}, "persist.csv")
        with Session(backend="pandas",
                     options={"executor.strategy": "fused"}):
            df = lfp.read_csv(path)
            hot = df[df.x > 5]
            hot.persist()
            assert hot.x.sum().collect() == hot.x.sum().collect()


class TestExecutionStats:
    def test_per_node_stats_recorded(self, numbers_csv):
        with Session(backend="pandas") as s:
            df = lfp.read_csv(numbers_csv)
            df.x.sum().collect()
            stats = s.last_execution_stats
        assert stats.nodes_executed == len(stats.nodes) > 0
        ops = [stat.op for stat in stats.nodes]
        assert "read_csv" in ops
        for stat in stats.nodes:
            assert stat.wall_seconds >= 0.0
            assert stat.queue_wait_seconds >= 0.0
        assert stats.wall_seconds > 0.0

    def test_bytes_attributed_to_read(self, numbers_csv):
        with Session(backend="pandas") as s:
            df = lfp.read_csv(numbers_csv)
            df.x.sum().collect()
            stats = s.last_execution_stats
        read = next(st for st in stats.nodes if st.op == "read_csv")
        assert read.bytes_registered > 0

    def test_session_node_counter_accumulates(self, numbers_csv):
        with Session(backend="pandas") as s:
            df = lfp.read_csv(numbers_csv)
            df.x.sum().collect()
            first = s.stats["nodes_executed"]
            df.y.sum().collect()
            assert s.stats["nodes_executed"] > first

    def test_explain_stats_section(self, numbers_csv):
        with Session(backend="pandas",
                     options={"executor.strategy": "serial"}):
            df = lfp.read_csv(numbers_csv)
            text = df.explain(stats=True)
            assert "no execution recorded yet" in text
            df.x.sum().collect()
            text = df.explain(stats=True)
        assert "== last execution stats ==" in text
        assert "strategy=serial" in text
        assert "read_csv" in text

    def test_stats_to_dict_is_json_ready(self, numbers_csv):
        import json

        with Session(backend="pandas",
                     options={"executor.strategy": "serial"}) as s:
            lfp.read_csv(numbers_csv).x.sum().collect()
            payload = s.last_execution_stats.to_dict()
        text = json.dumps(payload)
        assert '"strategy": "serial"' in text
        assert payload["nodes"][0]["op"]

    def test_cache_hits_counted(self, numbers_csv):
        with Session(backend="pandas") as s:
            df = lfp.read_csv(numbers_csv)
            hot = df[df.x > 0]
            hot.persist()
            hot.x.sum().collect(live=[hot])
            assert s.last_execution_stats.cache_hits >= 1


class TestMemoryAwareAdmission:
    def test_throttle_requires_exhausted_headroom(self):
        manager = MemoryManager(budget=100)
        scheduler = ThreadedScheduler(PandasBackend(), memory=manager)
        assert not scheduler._throttled(1)
        manager.register(100)
        assert scheduler._throttled(1)

    def test_never_throttles_an_empty_pool(self):
        manager = MemoryManager(budget=10)
        manager.register(10)
        scheduler = ThreadedScheduler(PandasBackend(), memory=manager)
        assert not scheduler._throttled(0)

    def test_unbudgeted_manager_never_throttles(self):
        scheduler = ThreadedScheduler(PandasBackend(), memory=MemoryManager())
        assert not scheduler._throttled(3)

    def test_threaded_completes_under_tight_budget(self, make_csv):
        path = make_csv({"x": np.arange(400), "y": np.arange(400) % 3},
                        "tight.csv")
        with Session(backend="pandas",
                     options={"executor.strategy": "threaded",
                              "executor.max_workers": 4}) as s:
            with s.option_context("memory.budget", 1 << 20):
                df = lfp.read_csv(path)
                a = df.x.sum()
                b = df.y.sum()
                c = (df.x * 2).sum()
                assert a.collect() + b.collect() + c.collect() > 0


class TestPerSessionBudgets:
    def test_concurrent_sessions_budget_independently(self):
        """Acceptance: one session's allocations never count against the
        other's, and each budget binds only its own session."""
        from repro.memory import TrackedBuffer

        results = {}
        gate_a = threading.Event()
        gate_b = threading.Event()

        def tenant_a():
            with Session(backend="pandas",
                         options={"memory.budget": 1000}) as session:
                held = TrackedBuffer(900)
                gate_a.set()
                gate_b.wait(timeout=5)
                results["a_live"] = session.memory.live
                # headroom is computed against A's own 1000-byte budget,
                # ignoring B's 400 live bytes.
                results["a_headroom"] = session.memory.headroom()
                held.release()

        def tenant_b():
            gate_a.wait(timeout=5)
            with Session(backend="pandas",
                         options={"memory.budget": 500}) as session:
                held = TrackedBuffer(400)
                results["b_live"] = session.memory.live
                try:
                    TrackedBuffer(200)
                    results["b_oom"] = False
                except SimulatedMemoryError:
                    results["b_oom"] = True
                held.release()
                gate_b.set()

        threads = [threading.Thread(target=tenant_a),
                   threading.Thread(target=tenant_b)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert results == {
            "a_live": 900,
            "a_headroom": 100,
            "b_live": 400,
            "b_oom": True,
        }

    def test_root_session_adopts_process_manager(self):
        from repro.core.session import root_session

        assert root_session().memory is memory_manager

    def test_session_buffers_do_not_touch_root_manager(self):
        from repro.memory import TrackedBuffer

        before = memory_manager.live
        with Session(backend="pandas") as session:
            buffer = TrackedBuffer(777)
            assert session.memory.live == 777
            assert memory_manager.live == before
            buffer.release()

    def test_budget_option_writes_through_option_context(self):
        session = Session(backend="pandas")
        assert session.memory.budget is None
        with session.option_context("memory.budget", 2048):
            assert session.memory.budget == 2048
        # option_context budgets exactly its scope: the manager's prior
        # budget comes back once the override is gone
        assert session.memory.budget is None
        session.set_option("memory.budget", 4096)
        assert session.memory.budget == 4096

    def test_option_context_restores_directly_assigned_budget(self):
        session = Session(backend="pandas")
        session._memory.budget = 1 << 30  # harness-style direct assignment
        with session.option_context("memory.budget", 2048):
            assert session.memory.budget == 2048
        assert session.memory.budget == 1 << 30


class TestExecutorShim:
    def test_executor_is_the_serial_strategy(self):
        assert issubclass(Executor, SerialScheduler)

    def test_executor_records_stats(self):
        data = Node("from_data", args={"data": {"x": [1, 2, 3]}})
        col = Node("getitem_column", inputs=[data], args={"column": "x"})
        agg = Node("series_agg", inputs=[col], args={"func": "sum"})
        executor = Executor(PandasBackend())
        assert executor.execute([agg]) == [6]
        assert executor.last_stats.nodes_executed == 3
