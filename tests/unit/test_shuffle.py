"""Partition-wise shuffle execution: lowering, spill, broadcast.

The correctness contract under test everywhere: lowering a merge or
groupby into the hash-partition -> spill -> stream pipeline must be
invisible in the collected result -- bit-identical values, dtypes, and
row order versus the plain in-memory path, across backends and executor
strategies, whether or not budget pressure forced buckets to disk.

``optimizer.shuffle_threshold_bytes`` stands in for budget headroom so
the pass fires deterministically on small fixtures; the forced-spill
suite layers a real ``memory.budget`` on top so the spill machinery
itself is exercised.
"""

import gc
import os

import numpy as np
import pytest

import repro.lazyfatpandas.pandas as lfp
from repro.core.session import Session

STRATEGIES = ["serial", "threaded", "fused"]
BACKENDS = ["pandas", "modin"]

#: forces lowering on the small fixtures (their disk estimates are a
#: few KB) while leaving room for the tiny right side to broadcast
THRESHOLD = 2000

AGG_FUNCS = ["sum", "mean", "count", "min", "max", "nunique", "std"]


def _write(path, header, rows):
    with open(path, "w") as f:
        f.write(header + "\n")
        for row in rows:
            f.write(row + "\n")
    return str(path)


@pytest.fixture(scope="module")
def wide_csv(tmp_path_factory):
    """1200 rows, 40 duplicate-heavy int keys, an int payload, and a
    7-value string column (exercises the heap-store payload path)."""
    rng = np.random.RandomState(0)
    return _write(
        tmp_path_factory.mktemp("shuffle") / "wide.csv", "k,v,s",
        [f"{rng.randint(0, 40)},{i},s{i % 7}" for i in range(1200)],
    )


@pytest.fixture(scope="module")
def tiny_csv(tmp_path_factory):
    """A right side small enough to broadcast: 10 rows, half-matching."""
    return _write(
        tmp_path_factory.mktemp("shuffle") / "tiny.csv", "k,w",
        [f"{k},{k * 10}" for k in range(0, 20, 2)],
    )


@pytest.fixture(scope="module")
def spill_left_csv(tmp_path_factory):
    """4000 rows (~300KB in memory): big enough that a 150KB budget
    cannot hold both shuffle stores resident."""
    rng = np.random.RandomState(0)
    return _write(
        tmp_path_factory.mktemp("shuffle") / "left.csv", "k,v,s",
        [f"{rng.randint(0, 40)},{i},s{i % 7}" for i in range(4000)],
    )


@pytest.fixture(scope="module")
def rightbig_csv(tmp_path_factory):
    """Too big to broadcast, low join selectivity: 300 non-matching
    keys plus 8 matching ones, so the join output stays well under the
    forced-spill budget."""
    rows = [f"{1000 + i},{i}" for i in range(300)]
    rows += [f"{i},{i * 10}" for i in range(8)]
    return _write(
        tmp_path_factory.mktemp("shuffle") / "rightbig.csv", "k,w", rows
    )


def _equal(a, b) -> bool:
    """Bit-identical including dtypes, NaN-aware, order-sensitive."""
    if type(a).__name__ == "Series":
        if type(b).__name__ != "Series" or a.name != b.name:
            return False
        if not np.array_equal(a.index.to_array(), b.index.to_array()):
            return False
        return _columns_equal(a.column, b.column)
    if list(a.columns) != list(b.columns) or len(a) != len(b):
        return False
    return all(_columns_equal(a.column(c), b.column(c)) for c in a.columns)


def _columns_equal(ca, cb) -> bool:
    av, bv = ca.to_array(), cb.to_array()
    if ca.values.dtype != cb.values.dtype:
        return False
    if av.dtype.kind == "f":
        return bool(((av == bv) | ((av != av) & (bv != bv))).all())
    eq = av == bv
    if av.dtype == object:
        # None keys compare elementwise; missing slots must align
        eq = eq | np.array(
            [x is None and y is None for x, y in zip(av, bv)]
        )
    return bool(np.asarray(eq).all())


def _rows_sorted(frame):
    cols = [frame.column(c).to_array().tolist() for c in frame.columns]
    return sorted(zip(*cols), key=repr)


def _run(pipeline, backend="pandas", strategy="serial", options=None):
    opts = {"executor.strategy": strategy}
    opts.update(options or {})
    with Session(backend=backend, options=opts) as session:
        out = pipeline().collect()
        report = dict(session.last_optimize_report)
        stats = session.last_execution_stats.to_dict()
    return out, report, stats


# ---------------------------------------------------------------------------
# Equivalence: lowered plans produce bit-identical results.
# ---------------------------------------------------------------------------


class TestMergeEquivalence:
    @pytest.mark.parametrize("how", ["inner", "left", "right", "outer"])
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_merge_grid(self, wide_csv, rightbig_csv, how, backend, strategy):
        def pipeline():
            left = lfp.scan_csv(wide_csv, partition_bytes=2048)
            right = lfp.scan_csv(rightbig_csv, partition_bytes=512)
            return left.merge(right, on="k", how=how)

        base, report, _ = _run(pipeline)
        assert report["shuffle_lowered"] == 0
        out, report, stats = _run(
            pipeline, backend, strategy,
            {"optimizer.shuffle_threshold_bytes": 100},
        )
        assert report["shuffle_lowered"] == 1
        assert stats["shuffle_partitions"] > 0
        assert stats["broadcast_joins"] == 0
        assert _equal(base, out)

    def test_shuffle_disabled_leaves_plan_alone(self, wide_csv, rightbig_csv):
        def pipeline():
            left = lfp.scan_csv(wide_csv, partition_bytes=2048)
            right = lfp.scan_csv(rightbig_csv, partition_bytes=512)
            return left.merge(right, on="k")

        base, *_ = _run(pipeline)
        out, report, stats = _run(pipeline, options={
            "optimizer.shuffle": False,
            "optimizer.shuffle_threshold_bytes": 100,
        })
        assert report["shuffle_lowered"] == 0
        assert stats["shuffle_partitions"] == 0
        assert _equal(base, out)

    def test_lazy_backend_never_lowered(self, wide_csv, rightbig_csv):
        def pipeline():
            left = lfp.scan_csv(wide_csv, partition_bytes=2048)
            right = lfp.scan_csv(rightbig_csv, partition_bytes=512)
            return left.merge(right, on="k", how="inner")

        base, *_ = _run(pipeline)
        out, report, _ = _run(pipeline, backend="dask", options={
            "optimizer.shuffle_threshold_bytes": 100,
        })
        assert report["shuffle_lowered"] == 0
        # the lazy engine shuffles internally and owns its row order:
        # compare as row multisets
        assert _rows_sorted(base) == _rows_sorted(out)


class TestGroupbyEquivalence:
    @pytest.mark.parametrize("func", AGG_FUNCS)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_series_agg_strategies(self, wide_csv, func, strategy):
        def pipeline():
            df = lfp.scan_csv(wide_csv, partition_bytes=2048)
            return df.groupby("k")["v"].agg(func)

        base, report, _ = _run(pipeline)
        assert report["shuffle_lowered"] == 0
        out, report, stats = _run(pipeline, "pandas", strategy, {
            "optimizer.shuffle_threshold_bytes": THRESHOLD,
        })
        assert report["shuffle_lowered"] == 1
        if func in ("nunique", "std"):
            # holistic: must go through the bucketed shuffle
            assert stats["shuffle_partitions"] > 0
        else:
            # decomposable: pure partial aggregation, no shuffle store
            assert stats["shuffle_partitions"] == 0
        assert _equal(base, out)

    @pytest.mark.parametrize("func", AGG_FUNCS)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_series_agg_backends(self, wide_csv, func, backend):
        def pipeline():
            df = lfp.scan_csv(wide_csv, partition_bytes=2048)
            return df.groupby("k")["v"].agg(func)

        base, *_ = _run(pipeline)
        out, report, _ = _run(pipeline, backend, "serial", {
            "optimizer.shuffle_threshold_bytes": THRESHOLD,
        })
        assert report["shuffle_lowered"] == 1
        assert _equal(base, out)

    @pytest.mark.parametrize("as_index", [True, False])
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_agg_multi(self, wide_csv, as_index, strategy):
        def pipeline():
            df = lfp.scan_csv(wide_csv, partition_bytes=2048)
            grouped = df.groupby("k", as_index=as_index)
            return grouped.agg({"v": ["sum", "mean"], "s": "count"})

        base, *_ = _run(pipeline)
        out, report, _ = _run(pipeline, "pandas", strategy, {
            "optimizer.shuffle_threshold_bytes": THRESHOLD,
        })
        assert report["shuffle_lowered"] == 1
        assert _equal(base, out)


# ---------------------------------------------------------------------------
# Broadcast fast path.
# ---------------------------------------------------------------------------


class TestBroadcast:
    @pytest.mark.parametrize("how", ["inner", "left"])
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_small_right_broadcasts(self, wide_csv, tiny_csv, how, strategy):
        def pipeline():
            left = lfp.scan_csv(wide_csv, partition_bytes=2048)
            right = lfp.scan_csv(tiny_csv, partition_bytes=512)
            return left.merge(right, on="k", how=how)

        base, *_ = _run(pipeline)
        out, report, stats = _run(pipeline, "pandas", strategy, {
            "optimizer.shuffle_threshold_bytes": THRESHOLD,
        })
        assert report["shuffle_lowered"] == 1
        assert stats["broadcast_joins"] == 1
        assert stats["shuffle_partitions"] == 0
        assert stats["bytes_spilled"] == 0
        assert _equal(base, out)

    def test_right_join_cannot_broadcast(self, wide_csv, tiny_csv):
        """A right/outer join must see unmatched right rows, which the
        partition-at-a-time broadcast cannot produce -- full shuffle."""
        def pipeline():
            left = lfp.scan_csv(wide_csv, partition_bytes=2048)
            right = lfp.scan_csv(tiny_csv, partition_bytes=512)
            return left.merge(right, on="k", how="right")

        base, *_ = _run(pipeline)
        out, report, stats = _run(pipeline, options={
            "optimizer.shuffle_threshold_bytes": THRESHOLD,
        })
        assert report["shuffle_lowered"] == 1
        assert stats["broadcast_joins"] == 0
        assert stats["shuffle_partitions"] > 0
        assert _equal(base, out)


# ---------------------------------------------------------------------------
# Forced spill: real budget pressure pushes buckets to disk.
# ---------------------------------------------------------------------------


class TestForcedSpill:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_merge_spills_and_matches(self, tmp_path, spill_left_csv,
                                      rightbig_csv, backend, strategy):
        def pipeline():
            left = lfp.scan_csv(spill_left_csv, partition_bytes=2048)
            right = lfp.scan_csv(rightbig_csv, partition_bytes=512)
            return left.merge(right, on="k", how="inner")

        base, *_ = _run(pipeline)
        spill_dir = tmp_path / f"spill-{backend}-{strategy}"
        out, report, stats = _run(pipeline, backend, strategy, {
            "memory.budget": 150_000,
            "optimizer.shuffle_threshold_bytes": 100,
            "memory.spill_dir": str(spill_dir),
        })
        assert report["shuffle_lowered"] == 1
        assert stats["bytes_spilled"] > 0
        assert stats["shuffle_partitions"] > 0
        assert stats["broadcast_joins"] == 0
        assert _equal(base, out)
        # stores close with the session: no spill files may survive
        gc.collect()
        leftover = [
            os.path.join(root, name)
            for root, _dirs, names in os.walk(spill_dir)
            for name in names
        ]
        assert leftover == []

    def test_spilled_bytes_deterministic(self, spill_left_csv, rightbig_csv):
        """The (bytes released, node id) ready-queue tie-break makes the
        threaded spill volume reproducible run to run."""
        def pipeline():
            left = lfp.scan_csv(spill_left_csv, partition_bytes=2048)
            right = lfp.scan_csv(rightbig_csv, partition_bytes=512)
            return left.merge(right, on="k", how="inner")

        options = {
            "memory.budget": 150_000,
            "optimizer.shuffle_threshold_bytes": 100,
        }
        first, _, stats_a = _run(pipeline, strategy="threaded",
                                 options=options)
        second, _, stats_b = _run(pipeline, strategy="threaded",
                                  options=options)
        assert stats_a["bytes_spilled"] == stats_b["bytes_spilled"]
        assert stats_a["shuffle_partitions"] == stats_b["shuffle_partitions"]
        assert _equal(first, second)

    def test_groupby_holistic_under_budget(self, spill_left_csv):
        def pipeline():
            df = lfp.scan_csv(spill_left_csv, partition_bytes=2048)
            return df.groupby("k")["s"].agg("nunique")

        base, *_ = _run(pipeline)
        out, report, stats = _run(pipeline, options={
            "memory.budget": 150_000,
            "optimizer.shuffle_threshold_bytes": 100,
        })
        assert report["shuffle_lowered"] == 1
        assert stats["shuffle_partitions"] > 0
        assert _equal(base, out)

    def test_groupby_partial_under_budget(self, spill_left_csv):
        def pipeline():
            df = lfp.scan_csv(spill_left_csv, partition_bytes=2048)
            return df.groupby("k")["v"].mean()

        base, *_ = _run(pipeline)
        out, report, _ = _run(pipeline, options={
            "memory.budget": 150_000,
            "optimizer.shuffle_threshold_bytes": 100,
        })
        assert report["shuffle_lowered"] == 1
        assert _equal(base, out)


# ---------------------------------------------------------------------------
# Edge cases: duplicate keys, null keys, empty buckets.
# ---------------------------------------------------------------------------


class TestEdgeCases:
    def test_duplicate_keys_cross_product(self, tmp_path):
        left = _write(tmp_path / "dl.csv", "k,v",
                      [f"{i % 3},{i}" for i in range(30)])
        right = _write(tmp_path / "dr.csv", "k,w",
                       [f"{i % 3},{i * 10}" for i in range(12)])

        def pipeline():
            lf = lfp.scan_csv(left, partition_bytes=64)
            rf = lfp.scan_csv(right, partition_bytes=64)
            return lf.merge(rf, on="k", how="inner")

        base, *_ = _run(pipeline)
        assert len(base) == 120  # 3 keys x 10 x 4
        out, report, _ = _run(pipeline, options={
            "optimizer.shuffle_threshold_bytes": 10,
        })
        assert report["shuffle_lowered"] == 1
        assert _equal(base, out)

    @pytest.mark.parametrize("how", ["inner", "outer"])
    def test_null_float_keys(self, tmp_path, how):
        """Empty CSV fields parse to NaN; the shuffle must route every
        null to one bucket and reproduce in-memory null-join semantics."""
        left = _write(
            tmp_path / "nl.csv", "k,v",
            [f"{i % 4},{i}" if i % 5 else f",{i}" for i in range(40)],
        )
        right = _write(tmp_path / "nr.csv", "k,w",
                       ["0,100", ",200", "2,300", ",400"])

        def pipeline():
            lf = lfp.scan_csv(left, partition_bytes=64)
            rf = lfp.scan_csv(right, partition_bytes=32)
            return lf.merge(rf, on="k", how=how)

        base, *_ = _run(pipeline)
        out, report, _ = _run(pipeline, options={
            "optimizer.shuffle_threshold_bytes": 10,
        })
        assert report["shuffle_lowered"] == 1
        assert _equal(base, out)

    def test_null_object_keys(self, tmp_path):
        left = _write(
            tmp_path / "ol.csv", "k,v",
            [f"s{i % 3},{i}" if i % 4 else f",{i}" for i in range(40)],
        )
        right = _write(tmp_path / "or.csv", "k,w",
                       ["s0,100", ",200", "s2,300"])

        def pipeline():
            lf = lfp.scan_csv(left, partition_bytes=64)
            rf = lfp.scan_csv(right, partition_bytes=32)
            return lf.merge(rf, on="k", how="inner")

        base, *_ = _run(pipeline)
        out, report, _ = _run(pipeline, options={
            "optimizer.shuffle_threshold_bytes": 10,
        })
        assert report["shuffle_lowered"] == 1
        assert _equal(base, out)

    def test_null_keys_groupby(self, tmp_path):
        data = _write(
            tmp_path / "gn.csv", "k,v",
            [f"{i % 4},{i}" if i % 5 else f",{i}" for i in range(60)],
        )

        def pipeline():
            return lfp.scan_csv(
                data, partition_bytes=64
            ).groupby("k")["v"].agg("nunique")

        base, *_ = _run(pipeline)
        out, report, _ = _run(pipeline, options={
            "optimizer.shuffle_threshold_bytes": 10,
        })
        assert report["shuffle_lowered"] == 1
        assert _equal(base, out)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_empty_buckets(self, tmp_path, strategy):
        """More buckets than distinct keys: empty buckets must yield
        empty, correctly-typed pieces, not break the combine."""
        left = _write(tmp_path / "el.csv", "k,v",
                      [f"{i % 3},{i}" for i in range(24)])
        right = _write(tmp_path / "er.csv", "k,w",
                       [f"{k},{k * 10}" for k in range(3)])

        def pipeline():
            lf = lfp.scan_csv(left, partition_bytes=64)
            rf = lfp.scan_csv(right, partition_bytes=32)
            return lf.merge(rf, on="k", how="outer")

        base, *_ = _run(pipeline)
        out, report, stats = _run(pipeline, strategy=strategy, options={
            "optimizer.shuffle_threshold_bytes": 10,
            "optimizer.shuffle_partitions": 16,
        })
        assert report["shuffle_lowered"] == 1
        assert stats["shuffle_partitions"] == 32  # 16 per side
        assert _equal(base, out)

    def test_empty_buckets_groupby(self, tmp_path):
        data = _write(tmp_path / "eg.csv", "k,v",
                      [f"{i % 3},{i}" for i in range(24)])

        def pipeline():
            return lfp.scan_csv(
                data, partition_bytes=64
            ).groupby("k")["v"].agg("std")

        base, *_ = _run(pipeline)
        out, report, stats = _run(pipeline, options={
            "optimizer.shuffle_threshold_bytes": 10,
            "optimizer.shuffle_partitions": 16,
        })
        assert report["shuffle_lowered"] == 1
        assert stats["shuffle_partitions"] == 16
        assert _equal(base, out)


# ---------------------------------------------------------------------------
# Stats plumbing.
# ---------------------------------------------------------------------------


class TestStats:
    def test_counters_in_to_dict_and_render(self, wide_csv, rightbig_csv):
        def pipeline():
            left = lfp.scan_csv(wide_csv, partition_bytes=2048)
            right = lfp.scan_csv(rightbig_csv, partition_bytes=512)
            return left.merge(right, on="k", how="inner")

        with Session(backend="pandas", options={
            "memory.budget": 150_000,
            "optimizer.shuffle_threshold_bytes": 100,
        }) as session:
            pipeline().collect()
            stats = session.last_execution_stats
        d = stats.to_dict()
        for key in ("bytes_spilled", "shuffle_partitions", "broadcast_joins"):
            assert key in d
        rendered = stats.render()
        assert f"shuffle buckets: {d['shuffle_partitions']}" in rendered
        assert f"spilled {d['bytes_spilled']}B" in rendered

    def test_broadcast_counter_in_render(self, wide_csv, tiny_csv):
        def pipeline():
            left = lfp.scan_csv(wide_csv, partition_bytes=2048)
            right = lfp.scan_csv(tiny_csv, partition_bytes=512)
            return left.merge(right, on="k", how="inner")

        with Session(backend="pandas", options={
            "optimizer.shuffle_threshold_bytes": THRESHOLD,
        }) as session:
            pipeline().collect()
            stats = session.last_execution_stats
        assert "broadcast joins: 1" in stats.render()

    def test_report_key_always_present(self, wide_csv):
        with Session(backend="pandas") as session:
            lfp.scan_csv(wide_csv).collect()
            assert session.last_optimize_report["shuffle_lowered"] == 0
