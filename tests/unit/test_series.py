"""Unit tests for Series: operators, methods, accessors, aggregations."""

import numpy as np
import pytest

from repro.frame import Series


def ser(values, **kwargs):
    return Series(values, **kwargs)


class TestArithmetic:
    def test_add_scalar(self):
        assert ser([1, 2]).__add__(10).to_list() == [11, 12]

    def test_radd(self):
        assert (10 + ser([1, 2])).to_list() == [11, 12]

    def test_sub_series(self):
        assert (ser([5, 7]) - ser([1, 2])).to_list() == [4, 5]

    def test_mul_div(self):
        assert (ser([2, 4]) * 3).to_list() == [6, 12]
        assert (ser([4.0, 9.0]) / 2).to_list() == [2.0, 4.5]

    def test_floordiv_mod(self):
        assert (ser([7, 9]) // 2).to_list() == [3, 4]
        assert (ser([7, 9]) % 2).to_list() == [1, 1]

    def test_neg_abs_round(self):
        assert (-ser([1, -2])).to_list() == [-1, 2]
        assert ser([-1.5, 2.5]).abs().to_list() == [1.5, 2.5]
        assert ser([1.26, 2.34]).round(1).to_list() == [1.3, 2.3]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ser([1, 2]) + ser([1, 2, 3])


class TestComparisons:
    def test_gt_makes_bool_mask(self):
        mask = ser([1, 5, 3]) > 2
        assert mask.to_list() == [False, True, True]

    def test_eq_string(self):
        mask = ser(["a", "b"]) == "a"
        assert mask.to_list() == [True, False]

    def test_datetime_compare_with_string(self):
        s = ser(np.array(["2024-01-01", "2024-06-01"], dtype="datetime64[ns]"))
        assert (s > "2024-03-01").to_list() == [False, True]

    def test_and_or_invert(self):
        a = ser([True, True, False])
        b = ser([True, False, False])
        assert (a & b).to_list() == [True, False, False]
        assert (a | b).to_list() == [True, True, False]
        assert (~b).to_list() == [False, True, True]


class TestSelection:
    def test_boolean_mask(self):
        s = ser([1, 2, 3, 4])
        assert s[s > 2].to_list() == [3, 4]

    def test_mask_keeps_index_labels(self):
        s = ser([1, 2, 3, 4])
        out = s[s > 2]
        assert list(out.index.to_array()) == [2, 3]

    def test_slice(self):
        assert ser([1, 2, 3])[0:2].to_list() == [1, 2]

    def test_iloc(self):
        s = ser([10, 20, 30])
        assert s.iloc[1] == 20
        assert s.iloc[[0, 2]].to_list() == [10, 30]


class TestMethods:
    def test_isin(self):
        assert ser([1, 2, 3]).isin([1, 3]).to_list() == [True, False, True]

    def test_between_variants(self):
        s = ser([1, 2, 3, 4])
        assert s.between(2, 3).to_list() == [False, True, True, False]
        assert s.between(2, 3, inclusive="neither").to_list() == [False] * 4
        assert s.between(2, 3, inclusive="left").to_list() == [False, True, False, False]
        assert s.between(2, 3, inclusive="right").to_list() == [False, False, True, False]

    def test_fillna_dropna(self):
        s = ser([1.0, np.nan, 3.0])
        assert s.fillna(0).to_list() == [1.0, 0.0, 3.0]
        assert s.dropna().to_list() == [1.0, 3.0]

    def test_isna_notna(self):
        s = ser([1.0, np.nan])
        assert s.isna().to_list() == [False, True]
        assert s.notna().to_list() == [True, False]

    def test_map_function(self):
        assert ser([1, 2]).map(lambda v: v * 10).to_list() == [10, 20]

    def test_map_dict(self):
        assert ser(["a", "b"]).map({"a": 1}).to_list() == [1, None]

    def test_astype(self):
        assert ser([1, 2]).astype("float64").to_list() == [1.0, 2.0]
        assert ser([1, 2]).astype(str).to_list() == ["1", "2"]

    def test_sort_values(self):
        assert ser([3, 1, 2]).sort_values().to_list() == [1, 2, 3]
        assert ser([3, 1, 2]).sort_values(ascending=False).to_list() == [3, 2, 1]

    def test_head_nlargest_nsmallest(self):
        s = ser([5, 1, 4, 2])
        assert s.head(2).to_list() == [5, 1]
        assert s.nlargest(2).to_list() == [5, 4]
        assert s.nsmallest(2).to_list() == [1, 2]

    def test_value_counts(self):
        counts = ser(["a", "b", "a", "a"]).value_counts()
        assert list(counts.index.to_array()) == ["a", "b"]
        assert counts.to_list() == [3, 1]

    def test_rename_and_to_frame(self):
        s = ser([1], name="x").rename("y")
        assert s.name == "y"
        frame = s.to_frame()
        assert frame.columns == ["y"]

    def test_reset_index(self):
        s = ser([1, 2], name="v")
        frame = s.reset_index()
        assert frame.columns == ["index", "v"]


class TestAggregations:
    def test_sum_mean(self):
        s = ser([1.0, 2.0, np.nan, 3.0])
        assert s.sum() == 6.0
        assert s.mean() == 2.0

    def test_min_max(self):
        assert ser([3, 1, 2]).min() == 1
        assert ser([3, 1, 2]).max() == 3

    def test_count_skips_na(self):
        assert ser([1.0, np.nan, 2.0]).count() == 2

    def test_std_var_median_quantile(self):
        s = ser([1.0, 2.0, 3.0, 4.0])
        assert s.std() == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
        assert s.var() == pytest.approx(np.var([1, 2, 3, 4], ddof=1))
        assert s.median() == 2.5
        assert s.quantile(0.25) == pytest.approx(1.75)

    def test_empty_aggregates(self):
        s = ser(np.array([], dtype=np.float64))
        assert s.sum() == 0
        assert np.isnan(s.mean())
        assert s.min() is None

    def test_nunique_unique(self):
        s = ser(["a", "b", "a"])
        assert s.nunique() == 2
        assert list(s.unique()) == ["a", "b"]

    def test_idxmax_idxmin(self):
        s = ser([5, 9, 1])
        assert s.idxmax() == 1
        assert s.idxmin() == 2

    def test_categorical_aggregation_rejected(self):
        s = ser(["a", "b"]).astype("category")
        with pytest.raises(TypeError):
            s.sum()


class TestDisplay:
    def test_repr_contains_name_and_dtype(self):
        text = repr(ser([1, 2, 3], name="x"))
        assert "Name: x" in text
        assert "int64" in text

    def test_repr_truncates_long_series(self):
        text = repr(ser(list(range(100))))
        assert "more" in text
