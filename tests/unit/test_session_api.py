"""Tests for the explicit Session/Engine API and the option layer.

Covers the tentpole redesign: thread-local session stacks, nestable
``option_context``, per-session engines (two threads on different
backends at once), ``collect()`` / ``persist()``, and the deprecation
shims for the retired process-global API.
"""

import threading

import numpy as np
import pytest

import repro.lazyfatpandas.pandas as lfp
from repro.backends.engine import DEFAULT_REGISTRY, EngineRegistry, EngineSpec
from repro.core.config import OptionError
from repro.core.session import (
    Session,
    current_session,
    reset_root_session,
    root_session,
)


@pytest.fixture
def numbers_csv(make_csv):
    n = 60
    return make_csv(
        {
            "x": np.arange(n) - 10,          # negatives filtered out below
            "y": np.arange(n) % 7,
            "tag": np.array([f"t{i % 3}" for i in range(n)], dtype=object),
        },
        "numbers.csv",
    )


class TestSessionStack:
    def test_root_session_is_default(self):
        assert current_session() is root_session()

    def test_with_block_pushes_and_pops(self):
        before = current_session()
        with Session(backend="pandas") as inner:
            assert current_session() is inner
            with Session(backend="modin") as innermost:
                assert current_session() is innermost
            assert current_session() is inner
        assert current_session() is before

    def test_stack_unwinds_on_exception(self):
        before = current_session()
        with pytest.raises(RuntimeError):
            with Session(backend="pandas"):
                raise RuntimeError("boom")
        assert current_session() is before

    def test_out_of_order_deactivate_pops_through(self):
        """Deactivating an outer session pops orphans above it (with a
        warning) so the stack never wedges on a dead scope."""
        before = current_session()
        outer = Session(backend="pandas").activate()
        Session(backend="modin").activate()  # orphan, never deactivated
        with pytest.warns(RuntimeWarning, match="out of order"):
            outer.deactivate()
        assert current_session() is before
        with pytest.raises(RuntimeError):
            outer.deactivate()  # no longer on the stack

    def test_exit_cleans_up_orphan_activations(self):
        """A scope that leaks a bare activate() (taskgraph_tour style)
        must not wedge the enclosing with-block's exit."""
        before = current_session()
        with pytest.warns(RuntimeWarning, match="out of order"):
            with Session(backend="pandas"):
                Session(backend="modin").activate()  # never deactivated
        assert current_session() is before

    def test_facade_binds_to_active_session(self, numbers_csv):
        with Session(backend="pandas") as session:
            frame = lfp.read_csv(numbers_csv)
            assert frame.session is session
        # collect() works after the block: binding happened at build time
        assert len(frame.collect()) == 60

    def test_concat_and_to_datetime_bind_to_input_session(self, numbers_csv):
        """Module-level combinators follow their inputs' session, not
        whatever is current at call time."""
        with Session(backend="pandas") as session:
            frame = lfp.read_csv(numbers_csv)
        combined = lfp.concat([frame, frame])
        assert combined.session is session
        converted = lfp.to_datetime(frame["tag"])
        assert converted.session is session

    def test_reset_root_session_does_not_touch_active_stack(self):
        with Session(backend="pandas") as session:
            reset_root_session("modin")
            assert current_session() is session
        assert root_session().backend_name == "modin"

    def test_reset_root_session_honours_options_backend(self):
        session = reset_root_session(options={"backend.engine": "pandas"})
        assert session.backend_name == "pandas"

    def test_session_exit_flushes_pending_prints(self, capsys):
        from repro.lazyfatpandas.func import print as lazy_print

        with Session(backend="pandas"):
            frame = lfp.DataFrame({"x": [1, 2, 3]})
            lazy_print("total:", frame.x.sum())
            assert capsys.readouterr().out == ""
        assert capsys.readouterr().out.strip() == "total: 6"

    def test_session_exit_skips_flush_on_exception(self, capsys):
        from repro.lazyfatpandas.func import print as lazy_print

        with pytest.raises(RuntimeError):
            with Session(backend="pandas"):
                frame = lfp.DataFrame({"x": [1]})
                lazy_print("never", frame.x.sum())
                raise RuntimeError("boom")
        assert capsys.readouterr().out == ""

    def test_exit_flush_sees_enclosing_option_context(self, numbers_csv):
        """Regression (runner ordering): overrides applied via an
        option_context that encloses the session must still govern the
        lazy prints drained at session exit."""
        from repro.lazyfatpandas.func import print as lazy_print

        session = Session(backend="pandas")
        with session.option_context("optimizer.projection_pushdown", False):
            with session:
                frame = lfp.read_csv(numbers_csv)
                lazy_print(frame[["y"]].head(1))
        assert session.last_optimize_report["projection"] == 0

    def test_marker_string_resolves_across_sessions(self, capsys):
        """Regression: an f-string built inside a session block must
        print correctly after the block exits.  The print queues on the
        *current* session (so pd.flush() reaches it -- output is never
        stranded on the exited session); the marker resolves through
        the cross-session node map."""
        from repro.lazyfatpandas.func import print as lazy_print

        with Session(backend="pandas") as inner:
            frame = lfp.DataFrame({"x": [2, 4]})
            message = f"avg: {frame.x.mean()}"
        assert inner is not None  # owning session must stay alive
        lazy_print(message)
        assert capsys.readouterr().out == ""
        lfp.flush()  # drains the *current* (root) session
        assert capsys.readouterr().out.strip() == "avg: 3.0"
        assert not inner.pending_prints  # nothing stranded inside

    def test_print_mixes_lazy_arg_with_foreign_marker(self, capsys):
        """Regression: a print mixing a lazy value from one session with
        a marker string built in another must resolve both."""
        from repro.lazyfatpandas.func import print as lazy_print

        with Session(backend="pandas") as first:
            marker = f"{lfp.DataFrame({'a': [1, 2]}).a.sum()}"
        assert first is not None  # the owning session must stay alive
        with Session(backend="pandas"):
            other = lfp.DataFrame({"b": [5]}).b.sum()
            lazy_print("mix:", other, marker)
            lfp.flush()
        assert capsys.readouterr().out.strip() == "mix: 5 3"

    def test_explain_preserves_last_optimize_report(self, numbers_csv):
        with Session(backend="pandas") as session:
            frame = lfp.read_csv(numbers_csv)
            frame[["y"]].collect()
            report = session.last_optimize_report
            lfp.DataFrame({"z": [1]}).explain()
            assert session.last_optimize_report is report

    def test_alias_backend_engine_assignment_reaches_reset(self):
        """Regression: assigning BACKEND_ENGINE on the paper-verbatim
        alias module must be visible to pd.reset()'s default."""
        import lazyfatpandas.pandas as alias

        alias.BACKEND_ENGINE = alias.BackendEngines.PANDAS
        try:
            alias.reset()
            assert root_session().backend_name == "pandas"
        finally:
            alias.BACKEND_ENGINE = alias.BackendEngines.DASK

    def test_backend_engine_mirrors_both_directions(self):
        """Regression: the canonical and alias modules must never
        disagree about BACKEND_ENGINE, whichever one was assigned."""
        import lazyfatpandas.pandas as alias

        try:
            lfp.BACKEND_ENGINE = lfp.BackendEngines.PANDAS
            assert alias.BACKEND_ENGINE is lfp.BackendEngines.PANDAS
            alias.BACKEND_ENGINE = alias.BackendEngines.MODIN
            assert lfp.BACKEND_ENGINE is lfp.BackendEngines.MODIN
        finally:
            lfp.BACKEND_ENGINE = lfp.BackendEngines.DASK
            assert alias.BACKEND_ENGINE is lfp.BackendEngines.DASK


class TestOptions:
    def test_defaults(self):
        session = Session()
        assert session.get_option("backend.engine") == "dask"
        assert session.get_option("optimizer.predicate_pushdown") is True
        assert session.get_option("executor.cache") is True

    def test_constructor_overrides(self):
        session = Session(
            backend="pandas", options={"optimizer.metadata": False}
        )
        assert session.backend_name == "pandas"
        assert session.get_option("optimizer.metadata") is False

    def test_unknown_key_rejected(self):
        session = Session()
        with pytest.raises(OptionError):
            session.set_option("optimizer.typo", True)
        with pytest.raises(OptionError):
            session.get_option("no.such.key")

    def test_validated_values(self):
        session = Session()
        with pytest.raises(OptionError):
            session.set_option("executor.cache", "yes")

    def test_legacy_flag_names_accepted(self):
        session = Session()
        session.set_option("caching", False)
        assert session.get_option("executor.cache") is False

    def test_flags_view_round_trip(self):
        session = Session()
        session.flags.predicate_pushdown = False
        assert session.get_option("optimizer.predicate_pushdown") is False
        assert session.flags.predicate_pushdown is False
        with pytest.raises(AttributeError):
            session.flags.not_a_flag = True

    def test_option_context_nests_and_restores(self):
        session = Session()
        with session.option_context("optimizer.metadata", False):
            assert session.get_option("optimizer.metadata") is False
            with session.option_context(
                "optimizer.metadata", True, "executor.cache", False
            ):
                assert session.get_option("optimizer.metadata") is True
                assert session.get_option("executor.cache") is False
            assert session.get_option("optimizer.metadata") is False
            assert session.get_option("executor.cache") is True
        assert session.get_option("optimizer.metadata") is True

    def test_option_context_restores_on_exception(self):
        session = Session()
        with pytest.raises(ValueError):
            with session.option_context("executor.cache", False):
                raise ValueError("boom")
        assert session.get_option("executor.cache") is True

    def test_option_context_accepts_mapping_and_kwargs(self):
        session = Session()
        with session.option_context({"executor.cache": False}):
            assert session.get_option("executor.cache") is False
        with session.option_context(caching=False):
            assert session.get_option("executor.cache") is False
        assert session.get_option("executor.cache") is True

    def test_module_level_proxy_follows_current_session(self):
        with Session(backend="pandas"):
            lfp.options.optimizer.predicate_pushdown = False
            assert (
                current_session().get_option("optimizer.predicate_pushdown")
                is False
            )
        # the outer (root) session was never touched
        assert lfp.options.optimizer.predicate_pushdown is True
        assert lfp.options.backend.engine == "pandas"  # conftest root

    def test_facade_set_option_tolerates_pandas_display_keys(self):
        lfp.set_option("display.max_rows", 10)  # must not raise
        with pytest.raises(OptionError):
            lfp.set_option("optimizer.not_a_rule", True)

    def test_facade_set_option_validates_legacy_flag_values(self):
        """Regression: a bad value for a legacy flag name must raise,
        not be swallowed as a foreign pandas option."""
        with pytest.raises(OptionError):
            lfp.set_option("caching", "not-a-bool")
        lfp.set_option("caching", False)
        assert current_session().get_option("executor.cache") is False

    def test_facade_set_option_rejects_typoed_roots(self):
        """Regression: a typo'd LaFP namespace must raise, not no-op."""
        with pytest.raises(OptionError):
            lfp.set_option("optimzer.predicate_pushdown", False)
        assert (
            current_session().get_option("optimizer.predicate_pushdown")
            is True
        )

    def test_options_proxy_tolerates_pandas_display_namespace(self):
        """The ``pd.options.display.max_rows = 500`` idiom of unmodified
        pandas scripts must be a harmless no-op, matching set_option."""
        lfp.options.display.max_rows = 500  # must not raise
        _ = lfp.options.display.max_rows
        with pytest.raises(AttributeError):
            lfp.options.optimzer  # typo'd root still errors

    def test_facade_set_option_accepts_mapping_and_kwargs(self):
        """set_option shares option_context's accepted call shapes."""
        lfp.set_option({"executor.cache": False})
        assert current_session().get_option("executor.cache") is False
        lfp.set_option(caching=True)
        assert current_session().get_option("executor.cache") is True

    def test_pandas_shorthand_and_paired_compat_calls(self):
        """pandas' bare shorthand keys and the get/set/context trio must
        all tolerate foreign options consistently."""
        lfp.set_option("max_columns", None)  # pandas shorthand: no-op
        assert lfp.get_option("display.max_rows") is None
        with lfp.option_context("display.max_rows", 5):
            pass  # dropped, not an error
        # LaFP keys still work through the same paths
        assert lfp.get_option("caching") is True
        with lfp.option_context("caching", False):
            assert lfp.get_option("executor.cache") is False

    def test_reset_accepts_string_backend_engine(self):
        """Regression: pd.reset() after a plain-string BACKEND_ENGINE
        assignment must not crash on the missing .value attribute."""
        lfp.BACKEND_ENGINE = "pandas"
        try:
            lfp.reset()
            assert root_session().backend_name == "pandas"
        finally:
            lfp.BACKEND_ENGINE = lfp.BackendEngines.DASK

    def test_reset_preserves_set_backend_choice(self):
        """Regression: reset() must keep a backend chosen through the
        new API (set_backend/set_option), not fall back to the stale
        BACKEND_ENGINE module global."""
        try:
            lfp.set_backend("modin")
            assert lfp.BACKEND_ENGINE is lfp.BackendEngines.MODIN
            lfp.reset()
            assert root_session().backend_name == "modin"
        finally:
            lfp.set_backend("dask")

    def test_reset_sees_scoped_backend_engine_assignment(self):
        """Regression: a BACKEND_ENGINE assignment made while a scoped
        session was current must still drive reset()'s default."""
        try:
            with Session(backend="dask"):
                lfp.BACKEND_ENGINE = lfp.BackendEngines.PANDAS
            lfp.reset()
            assert root_session().backend_name == "pandas"
        finally:
            lfp.set_backend("dask")

    def test_session_exit_flushes_on_system_exit(self, capsys):
        """A program calling sys.exit() still gets its deferred output
        (the runner treats SystemExit as normal completion)."""
        from repro.lazyfatpandas.func import print as lazy_print

        with pytest.raises(SystemExit):
            with Session(backend="pandas"):
                frame = lfp.DataFrame({"x": [4, 5]})
                lazy_print("exiting:", frame.x.sum())
                raise SystemExit(0)
        assert capsys.readouterr().out.strip() == "exiting: 9"

    def test_foreign_options_read_as_none(self):
        assert lfp.options.display.max_rows is None
        assert lfp.options.mode.chained_assignment is None

    def test_pandas_future_namespace_tolerated(self):
        """Common modern-pandas line must not raise."""
        with pytest.warns(UserWarning, match="pandas-compat"):
            lfp.set_option("future.no_silent_downcasting", True)
        lfp.options.future.no_silent_downcasting = True  # proxy too

    def test_facade_option_context(self, numbers_csv):
        with Session(backend="pandas"):
            frame = lfp.read_csv(numbers_csv)
            with lfp.option_context("optimizer.projection_pushdown", False):
                frame[["y"]].collect()
                report = current_session().last_optimize_report
        assert report["projection"] == 0


class TestEngines:
    def test_backend_option_resolves_engine(self):
        session = Session(backend="pandas")
        assert session.engine.name == "pandas"
        assert session.backend.name == "pandas"

    def test_no_staleness_after_option_change(self):
        """Regression: options set after construction (or after the first
        backend access) must be honoured -- the old cached get_backend
        path could hand out a stale instance."""
        session = Session(backend="pandas")
        _ = session.backend  # prime the cache
        session.set_option("backend.engine", "modin")
        assert session.backend.name == "modin"
        session.set_backend("pandas")
        assert session.backend.name == "pandas"

    def test_engine_instances_are_per_session(self):
        a = Session(backend="dask")
        b = Session(backend="dask")
        assert a.backend is not b.backend
        # switching away and back keeps the same instance (state survives)
        a.set_backend("pandas")
        _ = a.backend
        a.set_backend("dask")
        assert a.engine is a._engines["dask"]

    def test_unknown_engine_raises_value_error(self):
        session = Session()
        session.set_backend("spark")
        with pytest.raises(ValueError):
            _ = session.backend

    def test_capability_descriptors(self):
        dask = DEFAULT_REGISTRY.spec("dask")
        assert dask.is_lazy and dask.partitioned and dask.out_of_core
        pandas = DEFAULT_REGISTRY.spec("pandas")
        assert not pandas.is_lazy and not pandas.partitioned

    def test_custom_registry_injection(self, numbers_csv):
        from repro.backends.pandas_backend import PandasBackend

        registry = EngineRegistry([
            EngineSpec("toy", PandasBackend, description="pandas in a hat"),
        ])
        with Session(backend="toy", registry=registry):
            total = lfp.read_csv(numbers_csv).y.sum().collect()
        assert total == sum(i % 7 for i in range(60))

    def test_duplicate_registration_rejected(self):
        from repro.backends.pandas_backend import PandasBackend

        registry = EngineRegistry([EngineSpec("toy", PandasBackend)])
        with pytest.raises(ValueError):
            registry.register(EngineSpec("toy", PandasBackend))
        registry.register(EngineSpec("toy", PandasBackend), replace=True)


class TestConcurrentSessions:
    def test_two_threads_two_backends(self, numbers_csv):
        """Two threads, each with its own session on a different backend
        and different optimizer options, collect concurrently with
        correct, isolated results."""
        barrier = threading.Barrier(2)
        results, errors = {}, []

        def work(name, backend, cache):
            try:
                with Session(
                    backend=backend, options={"executor.cache": cache}
                ) as session:
                    frame = lfp.read_csv(numbers_csv)
                    positive = frame[frame.x > 0]
                    barrier.wait(timeout=10)
                    for _ in range(5):
                        value = positive.y.sum().collect()
                        results.setdefault(name, []).append(int(value))
                    results[f"{name}-backend"] = session.backend.name
                    results[f"{name}-cache"] = session.get_option(
                        "executor.cache"
                    )
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append((name, exc))

        threads = [
            threading.Thread(target=work, args=("a", "pandas", True)),
            threading.Thread(target=work, args=("b", "dask", False)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        expected = sum(i % 7 for i in range(60) if i - 10 > 0)
        assert results["a"] == [expected] * 5
        assert results["b"] == [expected] * 5
        assert results["a-backend"] == "pandas"
        assert results["b-backend"] == "dask"
        assert results["a-cache"] is True
        assert results["b-cache"] is False

    def test_thread_without_session_falls_back_to_root(self):
        seen = {}

        def work():
            seen["session"] = current_session()

        thread = threading.Thread(target=work)
        thread.start()
        thread.join(timeout=10)
        assert seen["session"] is root_session()


class TestCollectPersistExplain:
    def test_collect_equals_compute(self, numbers_csv):
        with Session(backend="pandas"):
            frame = lfp.read_csv(numbers_csv)
            assert (
                frame.y.sum().collect() == frame.y.sum().compute()
            )

    def test_persist_pins_and_reuses(self, numbers_csv):
        from repro.backends.pandas_backend import PandasBackend

        calls = []
        original = PandasBackend.read_csv

        def counting(self, **kwargs):
            calls.append(1)
            return original(self, **kwargs)

        PandasBackend.read_csv = counting
        try:
            with Session(backend="pandas"):
                frame = lfp.read_csv(numbers_csv)
                positive = frame[frame.x > 0].persist()
                assert positive.node.persist
                assert positive.node.result is not None
                # keep `positive` live so the pin survives this collect
                positive.y.sum().collect(live=[positive])
                # last use: the pin is reused, then released (section 3.5)
                positive.y.mean().collect()
            # one read: every collect reused the pinned filter result
            assert sum(calls) == 1
        finally:
            PandasBackend.read_csv = original

    def test_persist_returns_self_for_chaining(self, numbers_csv):
        with Session(backend="pandas"):
            frame = lfp.read_csv(numbers_csv)
            positive = frame[frame.x > 0]
            assert positive.persist() is positive


class TestDeprecationShims:
    def test_get_session_warns_and_returns_current(self):
        from repro.core.session import get_session

        with pytest.warns(DeprecationWarning, match="get_session"):
            session = get_session()
        assert session is current_session()

    def test_reset_session_warns_and_resets_root(self):
        from repro.core.session import reset_session

        with pytest.warns(DeprecationWarning, match="reset_session"):
            session = reset_session("pandas")
        assert session is root_session()
        assert session.backend_name == "pandas"

    def test_shims_importable_from_repro_core(self):
        from repro.core import get_session, reset_session  # noqa: F401

    def test_no_get_session_call_sites_left_in_src(self):
        """Acceptance: only the compat shim module may call/define the
        old entry points."""
        import pathlib
        import repro

        src_root = pathlib.Path(repro.__file__).resolve().parent.parent
        offenders = []
        for path in src_root.rglob("*.py"):
            if path.name == "compat.py":
                continue
            if "get_session()" in path.read_text():
                offenders.append(str(path))
        assert offenders == []

    def test_backend_engine_assignment_still_selects_backend(
        self, numbers_csv
    ):
        with Session(backend="pandas"):
            lfp.BACKEND_ENGINE = lfp.BackendEngines.MODIN
            assert current_session().backend_name == "modin"
            total = lfp.read_csv(numbers_csv).y.sum().collect()
            assert total == sum(i % 7 for i in range(60))
        lfp.BACKEND_ENGINE = lfp.BackendEngines.DASK
