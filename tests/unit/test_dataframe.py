"""Unit tests for DataFrame: construction, selection, transforms."""

import numpy as np
import pytest

from repro.frame import DataFrame, Series


def df_basic():
    return DataFrame(
        {
            "a": [1, 2, 3, 4],
            "b": [1.5, 2.5, np.nan, 4.5],
            "c": ["x", "y", "x", None],
        }
    )


class TestConstruction:
    def test_from_dict(self):
        frame = df_basic()
        assert frame.shape == (4, 3)
        assert frame.columns == ["a", "b", "c"]

    def test_from_records(self):
        frame = DataFrame([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert frame.shape == (2, 2)

    def test_empty(self):
        frame = DataFrame({})
        assert frame.empty
        assert len(frame) == 0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            DataFrame({"a": [1, 2], "b": [1]})

    def test_column_subset_selection_via_columns_kw(self):
        frame = DataFrame({"a": [1], "b": [2]}, columns=["b"])
        assert frame.columns == ["b"]

    def test_dtypes(self):
        dtypes = df_basic().dtypes
        assert dtypes["a"] == np.dtype("int64")
        assert dtypes["b"] == np.dtype("float64")
        assert dtypes["c"] == np.dtype(object)


class TestSelection:
    def test_getitem_column(self):
        s = df_basic()["a"]
        assert isinstance(s, Series)
        assert s.to_list() == [1, 2, 3, 4]

    def test_getitem_missing_raises(self):
        with pytest.raises(KeyError):
            df_basic()["zzz"]

    def test_getitem_list(self):
        out = df_basic()[["b", "a"]]
        assert out.columns == ["b", "a"]

    def test_getitem_mask(self):
        frame = df_basic()
        out = frame[frame["a"] > 2]
        assert len(out) == 2
        assert out["a"].to_list() == [3, 4]

    def test_mask_length_mismatch_rejected(self):
        frame = df_basic()
        with pytest.raises(ValueError):
            frame[np.array([True])]

    def test_getattr_column(self):
        assert df_basic().a.to_list() == [1, 2, 3, 4]

    def test_getattr_missing(self):
        with pytest.raises(AttributeError):
            df_basic().zzz

    def test_slice_rows(self):
        assert len(df_basic()[1:3]) == 2

    def test_head_tail(self):
        assert len(df_basic().head(2)) == 2
        assert df_basic().tail(1)["a"].to_list() == [4]

    def test_iloc_row(self):
        row = df_basic().iloc[0]
        assert row["a"] == 1

    def test_iloc_negative(self):
        assert df_basic().iloc[-1]["a"] == 4

    def test_loc_mask_and_columns(self):
        frame = df_basic()
        out = frame.loc[frame.a > 2, "a"]
        assert out.to_list() == [3, 4]

    def test_contains(self):
        assert "a" in df_basic()
        assert "zzz" not in df_basic()


class TestMutation:
    def test_setitem_scalar(self):
        frame = df_basic()
        frame["k"] = 7
        assert frame["k"].to_list() == [7] * 4

    def test_setitem_series(self):
        frame = df_basic()
        frame["double"] = frame["a"] * 2
        assert frame["double"].to_list() == [2, 4, 6, 8]

    def test_setitem_length_mismatch_rejected(self):
        frame = df_basic()
        with pytest.raises(ValueError):
            frame["bad"] = [1, 2]

    def test_with_column_copies(self):
        frame = df_basic()
        out = frame.with_column("n", 0)
        assert "n" in out.columns
        assert "n" not in frame.columns


class TestTransforms:
    def test_drop_columns(self):
        out = df_basic().drop(columns=["b"])
        assert out.columns == ["a", "c"]

    def test_drop_axis1(self):
        out = df_basic().drop("b", axis=1)
        assert "b" not in out.columns

    def test_rename(self):
        out = df_basic().rename(columns={"a": "alpha"})
        assert out.columns == ["alpha", "b", "c"]

    def test_assign(self):
        out = df_basic().assign(total=lambda d: d["a"] + 1)
        assert out["total"].to_list() == [2, 3, 4, 5]

    def test_astype_dict(self):
        out = df_basic().astype({"a": "float64"})
        assert out.dtypes["a"] == np.dtype("float64")

    def test_select_dtypes(self):
        nums = df_basic().select_dtypes("number")
        assert nums.columns == ["a", "b"]
        objs = df_basic().select_dtypes("object")
        assert objs.columns == ["c"]

    def test_dropna_all_columns(self):
        out = df_basic().dropna()
        assert len(out) == 2

    def test_dropna_subset(self):
        out = df_basic().dropna(subset=["b"])
        assert len(out) == 3

    def test_fillna_scalar(self):
        out = df_basic().fillna(0)
        assert out["b"].to_list() == [1.5, 2.5, 0.0, 4.5]

    def test_fillna_dict(self):
        out = df_basic().fillna({"c": "zz"})
        assert out["c"].to_list() == ["x", "y", "x", "zz"]

    def test_copy_is_independent(self):
        frame = df_basic()
        clone = frame.copy()
        clone["a"] = 0
        assert frame["a"].to_list() == [1, 2, 3, 4]

    def test_reset_index(self):
        frame = df_basic()[df_basic()["a"] > 2]
        out = frame.reset_index()
        assert "index" in out.columns

    def test_set_index(self):
        out = df_basic().set_index("c")
        assert out.columns == ["a", "b"]
        assert out.index.name == "c"

    def test_sample_deterministic(self):
        a = df_basic().sample(2, seed=1)["a"].to_list()
        b = df_basic().sample(2, seed=1)["a"].to_list()
        assert a == b


class TestRowwise:
    def test_apply_axis1(self):
        out = df_basic().apply(lambda row: row["a"] * 10, axis=1)
        assert out.to_list() == [10, 20, 30, 40]

    def test_apply_axis0_rejected(self):
        with pytest.raises(ValueError):
            df_basic().apply(lambda c: c, axis=0)

    def test_itertuples(self):
        rows = list(df_basic()[["a"]].itertuples())
        assert rows == [(1,), (2,), (3,), (4,)]


class TestSummaries:
    def test_describe_shape(self):
        desc = df_basic().describe()
        assert desc.columns == ["a", "b"]
        assert len(desc) == 5

    def test_info_mentions_columns(self):
        text = df_basic().info()
        assert "a:" in text and "rows" in text

    def test_sum_mean_count(self):
        frame = df_basic()
        sums = dict(zip(frame.sum().index.to_array(), frame.sum().values))
        assert sums["a"] == 10
        counts = dict(zip(frame.count().index.to_array(), frame.count().values))
        assert counts["c"] == 3

    def test_memory_usage_positive(self):
        usage = df_basic().memory_usage()
        assert all(v > 0 for v in usage.values)

    def test_nbytes(self):
        assert df_basic().nbytes > 0

    def test_repr_footer(self):
        assert "[4 rows x 3 columns]" in repr(df_basic())
