"""Unit tests for the source rewrites and the JIT analyze() driver."""

import os
import runpy
import sys

import pytest

from repro.analysis.jit import optimize_source
from repro.analysis.rewrite import RewriteFlags, optimize_program

HEADER = "import repro.lazyfatpandas.pandas as pd\n"

FIG3 = (
    HEADER
    + "pd.analyze()\n"
    + "df = pd.read_csv('{path}', parse_dates=['tpep_pickup_datetime'])\n"
    + "df = df[df.fare_amount > 0]\n"
    + "df['day'] = df.tpep_pickup_datetime.dt.dayofweek\n"
    + "df = df.groupby(['day'])['passenger_count'].sum()\n"
    + "print(df)\n"
)


class TestColumnSelectionRewrite:
    def test_figure3_gets_usecols(self):
        out = optimize_source(FIG3.format(path="data.csv"))
        assert "usecols=" in out
        assert "'fare_amount'" in out
        assert "'passenger_count'" in out
        assert "'tpep_pickup_datetime'" in out
        # unused columns are not listed
        assert out.count("usecols=[") == 1

    def test_wildcard_prevents_usecols(self):
        src = HEADER + "df = pd.read_csv('d.csv')\nprint(df)\n"
        assert "usecols" not in optimize_source(src)

    def test_existing_usecols_untouched(self):
        src = (
            HEADER
            + "df = pd.read_csv('d.csv', usecols=['a', 'b'])\n"
            + "print(df['a'].sum())\n"
        )
        out = optimize_source(src)
        assert out.count("usecols") == 1

    def test_parse_dates_columns_folded_into_usecols(self):
        out = optimize_source(FIG3.format(path="d.csv"))
        start = out.index("usecols=[")
        segment = out[start:out.index("]", start)]
        assert "tpep_pickup_datetime" in segment

    def test_flag_disables_rewrite(self):
        flags = RewriteFlags(column_selection=False)
        out, report = optimize_program(FIG3.format(path="d.csv"), flags)
        assert "usecols" not in out
        assert report.usecols_added == 0


class TestShellRewrite:
    def test_analyze_call_removed(self):
        out = optimize_source(FIG3.format(path="d.csv"))
        assert "pd.analyze()" not in out

    def test_lazy_print_imported(self):
        out = optimize_source(FIG3.format(path="d.csv"))
        assert "from repro.lazyfatpandas.func import print" in out

    def test_flush_appended(self):
        out = optimize_source(FIG3.format(path="d.csv"))
        assert out.rstrip().endswith("pd.flush()")

    def test_plain_pandas_import_redirected(self):
        src = "import pandas as pd\ndf = pd.read_csv('d.csv')\nprint(df)\n"
        out = optimize_source(src)
        assert "repro.lazyfatpandas.pandas" in out

    def test_program_without_pandas_unchanged(self):
        src = "x = 1\nprint(x)\n"
        assert optimize_source(src) == src


class TestForcedComputeRewrite:
    SRC = (
        HEADER
        + "import repro.workloads.plotlib as plt\n"
        + "pd.analyze()\n"
        + "df = pd.read_csv('d.csv')\n"
        + "agg = df.groupby(['k'])['v'].sum()\n"
        + "plt.plot(agg)\n"
        + "m = df['v'].mean()\n"
        + "print(f'mean: {m}')\n"
    )

    def test_compute_inserted_with_live_df(self):
        out = optimize_source(self.SRC)
        assert "agg.compute(live_df=[df])" in out

    def test_non_lazy_args_untouched(self):
        src = (
            HEADER
            + "import repro.workloads.plotlib as plt\n"
            + "df = pd.read_csv('d.csv')\n"
            + "plt.savefig('out.png')\n"
            + "print(df['v'].sum())\n"
        )
        out = optimize_source(src)
        assert "'out.png'.compute" not in out
        assert "savefig('out.png')" in out

    def test_flag_disables(self):
        flags = RewriteFlags(forced_compute=False)
        out, report = optimize_program(self.SRC, flags)
        assert ".compute(" not in out
        assert report.computes_inserted == 0


class TestMetadataHintRewrite:
    def test_mutated_cols_annotated(self):
        src = (
            HEADER
            + "df = pd.read_csv('d.csv')\n"
            + "df['derived'] = df.a * 2\n"
            + "print(df['derived'].sum())\n"
        )
        out = optimize_source(src)
        assert "mutated_cols=['derived']" in out

    def test_no_mutations_empty_list(self):
        src = HEADER + "df = pd.read_csv('d.csv')\nprint(df['a'].sum())\n"
        out = optimize_source(src)
        assert "mutated_cols=[]" in out


class TestControlFlowPreserved:
    def test_rewrite_keeps_branches_and_loops(self):
        src = (
            HEADER
            + "import os\n"
            + "df = pd.read_csv('d.csv')\n"
            + "total = 0\n"
            + "for i in range(3):\n"
            + "    if i % 2 == 0:\n"
            + "        total += i\n"
            + "print(df['v'].sum() + total)\n"
        )
        out = optimize_source(src)
        assert "for i in range(3):" in out
        assert "if i % 2 == 0:" in out


class TestJit:
    def _write_program(self, tmp_path, taxi_csv):
        program = FIG3.format(path=taxi_csv)
        path = os.path.join(tmp_path, "prog.py")
        with open(path, "w") as f:
            f.write(program)
        return path

    def test_jit_executes_optimized_and_exits(self, tmp_path, taxi_csv, capsys):
        path = self._write_program(tmp_path, taxi_csv)
        import repro.lazyfatpandas.pandas as lfp

        lfp.BACKEND_ENGINE = lfp.BackendEngines.PANDAS
        with pytest.raises(SystemExit) as exc:
            runpy.run_path(path, run_name="__main__")
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "passenger_count" in out
        lfp.BACKEND_ENGINE = lfp.BackendEngines.DASK

    def test_jit_measures_overhead(self, tmp_path, taxi_csv):
        from repro.analysis import jit

        path = self._write_program(tmp_path, taxi_csv)
        import repro.lazyfatpandas.pandas as lfp

        lfp.BACKEND_ENGINE = lfp.BackendEngines.PANDAS
        with pytest.raises(SystemExit):
            runpy.run_path(path, run_name="__main__")
        assert 0 < jit.last_analysis_seconds < 5
        lfp.BACKEND_ENGINE = lfp.BackendEngines.DASK

    def test_optimized_program_does_not_reanalyze(self):
        # the guard flag makes analyze() a no-op inside optimized code
        from repro.analysis.jit import jit_analyze

        frame_globals = sys._getframe().f_globals
        frame_globals["__LAFP_OPTIMIZED__"] = True
        try:
            assert jit_analyze(depth=1) is None
        finally:
            del frame_globals["__LAFP_OPTIMIZED__"]

    def test_missing_source_warns_and_continues(self):
        import warnings
        from repro.analysis.jit import jit_analyze

        def call_without_file():
            namespace = {"__name__": "adhoc"}
            code = compile(
                "from repro.analysis.jit import jit_analyze\n"
                "result = jit_analyze(depth=1)\n",
                "<string>",
                "exec",
            )
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                exec(code, namespace)  # noqa: S102
            return namespace["result"], caught

        result, caught = call_without_file()
        assert result is None
        assert any("source not found" in str(w.message) for w in caught)
