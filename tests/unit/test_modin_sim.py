"""Unit tests for the Modin simulator: eager partitioned execution."""

import numpy as np
import pytest

from repro.backends import ModinBackend
from repro.backends.modin_sim.frame import ModinFrame, ModinSeries, modin_read_csv
from repro.frame import DataFrame, read_csv
from repro.memory import memory_manager


@pytest.fixture
def shop_csv(make_csv):
    n = 400
    rng = np.random.default_rng(11)
    return make_csv(
        {
            "store": np.array([f"s{i % 6}" for i in range(n)], dtype=object),
            "sku": np.array([f"sku-{i}" for i in range(n)], dtype=object),
            "units": rng.integers(1, 9, n),
            "price": np.round(rng.random(n) * 30, 2),
        },
        "shop.csv",
    )


def load(path, **kw):
    return modin_read_csv(path, partition_bytes=2_000, **kw)


class TestReads:
    def test_partitioned_eager(self, shop_csv):
        frame = load(shop_csv)
        assert isinstance(frame, ModinFrame)
        assert frame.npartitions > 1
        assert len(frame) == 400

    def test_low_cardinality_strings_dictionary_encoded(self, shop_csv):
        frame = load(shop_csv)
        part = frame.partitions[0]
        assert part.column("store").is_category      # 6 distinct values
        assert not part.column("sku").is_category    # unique per row

    def test_usecols(self, shop_csv):
        frame = load(shop_csv, usecols=["units"])
        assert frame.columns == ["units"]

    def test_to_pandas_roundtrip(self, shop_csv):
        whole = load(shop_csv).to_pandas()
        eager = read_csv(shop_csv)
        assert len(whole) == len(eager)
        assert sorted(whole["units"].to_list()) == sorted(eager["units"].to_list())


class TestOperators:
    def test_filter(self, shop_csv):
        frame = load(shop_csv)
        out = frame[frame["units"] > 5]
        eager = read_csv(shop_csv)
        assert len(out) == len(eager[eager["units"] > 5])

    def test_setitem(self, shop_csv):
        frame = load(shop_csv)
        frame["total"] = frame["units"] * frame["price"]
        got = frame.to_pandas()
        assert np.allclose(
            got["total"].values, got["units"].values * got["price"].values
        )

    def test_getattr_column(self, shop_csv):
        frame = load(shop_csv)
        assert isinstance(frame.units, ModinSeries)

    def test_head(self, shop_csv):
        assert len(load(shop_csv).head(7)) == 7

    def test_sort_values_global(self, shop_csv):
        out = load(shop_csv).sort_values("price").to_pandas()
        values = out["price"].values
        assert (values[:-1] <= values[1:]).all()

    def test_drop_duplicates(self, shop_csv):
        out = load(shop_csv).drop_duplicates(subset=["store"])
        assert len(out) == 6

    def test_nlargest(self, shop_csv):
        out = load(shop_csv).nlargest(3, "price").to_pandas()
        eager = read_csv(shop_csv).nlargest(3, "price")
        assert sorted(out["price"].to_list()) == sorted(eager["price"].to_list())

    def test_merge_broadcast(self, shop_csv):
        frame = load(shop_csv)
        dim = DataFrame({"store": [f"s{i}" for i in range(6)], "city": [f"c{i}" for i in range(6)]})
        out = frame.merge(dim, on="store")
        assert len(out) == 400

    def test_apply(self, shop_csv):
        out = load(shop_csv).apply(lambda row: row["units"] + 1, axis=1)
        assert len(out) == 400

    def test_str_dt_accessors(self, make_csv):
        path = make_csv(
            {"name": ["Alice", "Bob"] * 20, "t": ["2024-01-01 05:00:00"] * 40},
            "acc.csv",
        )
        frame = modin_read_csv(path, partition_bytes=300, parse_dates=["t"])
        assert frame["name"].str.lower().to_pandas().values[0] == "alice"
        assert frame["t"].dt.hour.to_pandas().values[0] == 5


class TestGroupBy:
    def test_partial_combine_matches_eager(self, shop_csv):
        out = load(shop_csv).groupby("store")["price"].sum()
        eager = read_csv(shop_csv).groupby("store")["price"].sum()
        assert np.allclose(np.sort(out.values), np.sort(eager.values))

    def test_mean(self, shop_csv):
        out = load(shop_csv).groupby("store")["price"].mean()
        eager = read_csv(shop_csv).groupby("store")["price"].mean()
        assert np.allclose(np.sort(out.values), np.sort(eager.values))

    def test_size(self, shop_csv):
        out = load(shop_csv).groupby("store").size()
        assert out.values.sum() == 400

    def test_agg_dict(self, shop_csv):
        out = load(shop_csv).groupby("store").agg({"units": "sum", "price": "max"})
        assert set(out.columns) == {"units", "price"}

    def test_reductions(self, shop_csv):
        frame = load(shop_csv)
        eager = read_csv(shop_csv)
        assert frame["price"].sum() == pytest.approx(eager["price"].sum())
        assert frame["price"].mean() == pytest.approx(eager["price"].mean())
        assert frame["units"].min() == eager["units"].min()
        assert frame["units"].max() == eager["units"].max()
        assert frame["sku"].nunique() == 400


class TestMemoryBehaviour:
    def test_no_spill_means_oom_under_budget(self, make_csv):
        n = 2000
        path = make_csv(
            {"s": np.array([f"unique-{i:09d}-zzzzzz" for i in range(n)], dtype=object)},
            "big.csv",
        )
        frame_bytes = read_csv(path).nbytes
        memory_manager.reset()
        memory_manager.budget = int(frame_bytes * 0.5)
        try:
            with pytest.raises(MemoryError):
                modin_read_csv(path, partition_bytes=2_000)
        finally:
            memory_manager.budget = None

    def test_backend_wrapper(self, shop_csv):
        backend = ModinBackend()
        frame = backend.read_csv(path=shop_csv)
        assert isinstance(frame, ModinFrame)
        assert isinstance(backend.materialize(frame), DataFrame)
