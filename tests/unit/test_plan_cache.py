"""Plan fingerprinting and the cross-session result cache (PR 9).

Three layers under test: the deterministic content fingerprint
(``repro.cache.fingerprint``), the process-global two-tier LRU blob
store (``repro.cache.result_cache``), and the ``optimizer.reuse``
substitution pass that rewires fingerprint-hit subplans into
``from_cached`` leaves.  The correctness edges the cache must never
get wrong -- source mutation invalidation, semantic-option keying,
eviction reclaiming every byte and file, concurrent insert/evict on
one key -- each get a direct test.
"""

import os
import subprocess
import sys
import threading

import numpy as np
import pytest

import repro.lazyfatpandas.pandas as lfp
from repro.cache.fingerprint import (
    Unfingerprintable,
    fingerprint_node,
    source_signature,
)
from repro.cache.result_cache import (
    ResultCache,
    deserialize_value,
    result_cache,
    serialize_value,
)
from repro.core.session import Session
from repro.frame import DataFrame, Series
from repro.graph.scheduler import SerialScheduler
from repro.memory.manager import MemoryManager

#: reuse enabled with the cost floor disarmed, so even tiny test plans
#: are cache-worthy.
REUSE = {"optimizer.reuse": True, "cache.min_cost": 0.0}


@pytest.fixture(autouse=True)
def _fresh_cache():
    """The result cache is process-global; isolate every test."""
    result_cache().clear()
    yield
    result_cache().clear()


def _golden_plan():
    df = lfp.DataFrame({
        "a": np.array([1, 2, 3], dtype=np.int64),
        "b": np.array([0.5, 1.5, -2.0], dtype=np.float64),
    })
    return (df["a"] * 2 + df["b"]).sum()


#: sha256 hex digest of ``_golden_plan()`` -- pinned so an encoding
#: change (which silently orphans every previously cached entry) is a
#: deliberate, reviewed event, not an accident.  If you changed the
#: fingerprint encoding on purpose, bump ``_VERSION`` in
#: ``repro/cache/fingerprint.py`` and re-pin this digest.
GOLDEN_DIGEST = (
    "32c77fe13dcbbeccff49ce2af6cd3fadb6b0157dcafb4e5ef480de1206404754"
)

_GOLDEN_SNIPPET = """
import numpy as np
import repro.lazyfatpandas.pandas as lfp
from repro.core.session import Session
from repro.cache.fingerprint import fingerprint_node

with Session(backend="pandas"):
    df = lfp.DataFrame({
        "a": np.array([1, 2, 3], dtype=np.int64),
        "b": np.array([0.5, 1.5, -2.0], dtype=np.float64),
    })
    print(fingerprint_node((df["a"] * 2 + df["b"]).sum().node))
"""


class TestFingerprint:
    def test_same_plan_same_digest_across_sessions(self):
        with Session(backend="pandas"):
            a = fingerprint_node(_golden_plan().node)
        with Session(backend="pandas"):
            b = fingerprint_node(_golden_plan().node)
        assert a == b

    def test_golden_digest_pinned(self):
        with Session(backend="pandas"):
            assert fingerprint_node(_golden_plan().node) == GOLDEN_DIGEST

    def test_cross_process_equality(self):
        """The digest must be identical in a fresh interpreter -- the
        whole point of a cross-session cache key."""
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            "src" + os.pathsep + env.get("PYTHONPATH", "")
        ).rstrip(os.pathsep)
        out = subprocess.run(
            [sys.executable, "-c", _GOLDEN_SNIPPET],
            capture_output=True, text=True, env=env, check=True,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__)
            ))),
        )
        assert out.stdout.strip() == GOLDEN_DIGEST

    def test_arg_change_changes_digest(self):
        with Session(backend="pandas"):
            df = lfp.DataFrame({"a": np.array([1, 2, 3])})
            assert (
                fingerprint_node((df["a"] * 2).node)
                != fingerprint_node((df["a"] * 3).node)
            )

    def test_payload_change_changes_digest(self):
        with Session(backend="pandas"):
            one = lfp.DataFrame({"a": np.array([1, 2, 3])})
            two = lfp.DataFrame({"a": np.array([1, 2, 4])})
            assert (
                fingerprint_node(one["a"].sum().node)
                != fingerprint_node(two["a"].sum().node)
            )

    def test_source_mtime_changes_digest(self, make_csv):
        path = make_csv({"x": [1, 2, 3]})
        with Session(backend="pandas"):
            before = fingerprint_node(lfp.read_csv(path).x.sum().node)
        st = os.stat(path)
        os.utime(path, ns=(st.st_atime_ns, st.st_mtime_ns + 1_000_000))
        with Session(backend="pandas"):
            after = fingerprint_node(lfp.read_csv(path).x.sum().node)
        assert before != after

    def test_same_size_rewrite_changes_digest(self, make_csv):
        """An in-place rewrite that keeps the byte size identical must
        still flip the fingerprint (mtime_ns is part of the stat sig)."""
        path = make_csv({"x": [1, 2, 3]})
        with Session(backend="pandas"):
            before = fingerprint_node(lfp.read_csv(path).x.sum().node)
        with open(path, "rb") as fh:
            payload = fh.read()
        with open(path, "wb") as fh:
            fh.write(payload.replace(b"3", b"7", 1))
        st = os.stat(path)
        # same byte count; force a distinct mtime in case the rewrite
        # landed within the filesystem's timestamp granularity
        os.utime(path, ns=(st.st_atime_ns, st.st_mtime_ns + 1_000_000))
        with Session(backend="pandas"):
            after = fingerprint_node(lfp.read_csv(path).x.sum().node)
        assert before != after

    def test_volatile_args_excluded(self, make_csv):
        """The column-prune / pruning passes stamp advisory args
        (``read_only_cols`` on read_csv, ``est_bytes`` on scan) onto
        nodes; those must not shift the digest."""
        path = make_csv({"x": [1, 2, 3]})
        with Session(backend="pandas") as session:
            node = lfp.read_csv(path).x.sum().node
            base = fingerprint_node(node)
            source = node
            while source.inputs:
                source = source.inputs[0]
            assert source.op == "read_csv"
            source.args["read_only_cols"] = ("x",)
            try:
                session._fingerprint_cache.clear()
                assert fingerprint_node(node) == base
            finally:
                source.args.pop("read_only_cols", None)

    def test_udf_plans_are_unfingerprintable(self):
        with Session(backend="pandas"):
            df = lfp.DataFrame({"a": np.array([1, 2, 3])})
            plan = df["a"].map(lambda v: v + 1).sum()
            with pytest.raises(Unfingerprintable):
                fingerprint_node(plan.node)

    def test_missing_source_gets_tombstone(self, tmp_path):
        missing = os.path.join(tmp_path, "nope.csv")
        sig = source_signature(missing)
        assert sig == ((os.path.abspath(missing), -1, -1),)


class TestResultCache:
    def _blob(self, tag: str, size: int = 1000):
        frame = DataFrame({tag: np.arange(size)})
        return serialize_value(frame)

    def _key(self, name: str):
        return (name, "pandas", ())

    def test_roundtrip_bit_identity(self):
        frame = DataFrame({
            "i": np.array([3, 1, 2], dtype=np.int64),
            "f": np.array([0.25, np.nan, -1.5]),
            "s": np.array(["a", None, "c"], dtype=object),
        })
        blob, kind = serialize_value(frame)
        assert kind == "frame"
        back = deserialize_value(blob)
        assert list(back.columns) == list(frame.columns)
        for col in frame.columns:
            a, b = frame.column(col).to_array(), back.column(col).to_array()
            assert a.dtype == b.dtype
            if a.dtype.kind == "f":
                assert (((a == b) | ((a != a) & (b != b)))).all()
            else:
                assert all(x == y or (x is None and y is None)
                           for x, y in zip(a, b))

    def test_serialize_kinds(self):
        assert serialize_value(DataFrame({"a": [1]}))[1] == "frame"
        assert serialize_value(Series([1], name="s"))[1] == "series"
        assert serialize_value(np.float64(1.5))[1] == "scalar"
        assert serialize_value(None)[1] == "scalar"
        with pytest.raises(TypeError):
            serialize_value(object())

    def test_memory_budget_never_overshoots(self):
        cache = ResultCache()
        blob, kind = self._blob("x")
        budget = len(blob) * 2 + 10
        for i in range(8):
            cache.put(self._key(f"k{i}"), blob, kind, budget=budget)
        assert cache.memory.peak <= budget
        assert cache.memory.live <= budget
        info = cache.info()
        assert info["entries"] == 8
        assert info["demotions"] >= 6  # the cold ones went to disk
        cache.clear()

    def test_lru_demotes_coldest_first(self):
        cache = ResultCache()
        blob, kind = self._blob("x")
        budget = len(blob) * 2 + 10
        cache.put(self._key("a"), blob, kind, budget=budget)
        cache.put(self._key("b"), blob, kind, budget=budget)
        cache.get(self._key("a"), budget=budget)  # refresh a
        cache.put(self._key("c"), blob, kind, budget=budget)
        in_memory = {
            e.key[0] for e in cache._entries.values() if e.in_memory
        }
        assert "b" not in in_memory  # b was coldest
        assert "a" in in_memory and "c" in in_memory
        cache.clear()

    def test_disk_promotion_restores_memory_tier(self):
        cache = ResultCache()
        blob, kind = self._blob("x")
        budget = len(blob) + 10
        cache.put(self._key("a"), blob, kind, budget=budget)
        cache.put(self._key("b"), blob, kind, budget=budget)  # demotes a
        entry_a = cache._entries[self._key("a")]
        assert not entry_a.in_memory and entry_a.path is not None
        hit = cache.get(self._key("a"), budget=budget)  # promotes a
        assert hit is not None and hit[0] == blob
        assert entry_a.in_memory and entry_a.path is None
        cache.clear()

    def test_eviction_deletes_files_immediately(self):
        """Satellite (f): a cached-then-evicted result's spill file is
        gone at eviction time, not at interpreter/session close."""
        cache = ResultCache()
        blob, kind = self._blob("x")
        budget = len(blob) + 10
        spill_budget = len(blob) * 2 + 10
        paths = []
        evicted = 0
        for i in range(6):
            evicted += cache.put(
                self._key(f"k{i}"), blob, kind,
                budget=budget, spill_budget=spill_budget,
            )
            paths.extend(
                e.path for e in cache._entries.values() if e.path
            )
        assert evicted > 0
        live_paths = {e.path for e in cache._entries.values() if e.path}
        for path in paths:
            if path not in live_paths:
                assert not os.path.exists(path), (
                    "evicted entry file leaked until close"
                )
        info = cache.info()
        assert info["disk_bytes"] <= spill_budget
        cache.clear()

    def test_eviction_releases_bytes_without_double_release(self):
        cache = ResultCache()
        blob, kind = self._blob("x")
        budget = len(blob) * 2 + 10
        for i in range(10):
            cache.put(self._key(f"k{i}"), blob, kind, budget=budget)
        cache.clear()
        assert cache.memory.live == 0
        assert cache.memory.double_release_count == 0

    def test_oversized_blob_rejected(self):
        cache = ResultCache()
        blob, kind = self._blob("x")
        assert cache.put(
            self._key("big"), blob, kind,
            budget=10, spill_budget=len(blob) - 1,
        ) == 0
        assert len(cache) == 0
        assert cache.info()["rejected"] == 1
        cache.clear()

    def test_concurrent_insert_evict_race_on_one_key(self):
        """Sessions race put/get/clear on a shared key; the cache must
        stay consistent: no exception, no double release, no leaked
        file, no budget overshoot."""
        cache = ResultCache()
        blob, kind = self._blob("x")
        budget = len(blob) * 2 + 10
        spill_budget = len(blob) * 3 + 10
        errors = []

        def hammer(worker: int) -> None:
            try:
                for i in range(60):
                    key = self._key(f"k{i % 4}")
                    cache.put(blob=blob, kind=kind, key=key,
                              budget=budget, spill_budget=spill_budget)
                    hit = cache.get(key, budget=budget)
                    if hit is not None:
                        assert hit[0] == blob
                    if i % 17 == worker:
                        cache.clear()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert cache.memory.peak <= budget
        assert cache.memory.double_release_count == 0
        cache.clear()
        assert cache.memory.live == 0


def _collect_sum(path):
    frame = lfp.read_csv(path)
    return (frame.x * 2 + frame.y).sum().collect()


class TestSubstitution:
    def test_warm_session_serves_from_cache(self, make_csv):
        path = make_csv({"x": [1, 2, 3], "y": [4, 5, 6]})
        with Session(backend="pandas", options=REUSE) as s1:
            cold = _collect_sum(path)
            cold_stats = s1.last_execution_stats
        assert cold_stats.cache_inserted >= 1
        assert cold_stats.cache_misses >= 1
        with Session(backend="pandas", options=REUSE) as s2:
            warm = _collect_sum(path)
            warm_stats = s2.last_execution_stats
        assert warm == cold
        assert warm_stats.cache_hits >= 1
        assert warm_stats.cache_bytes_reused > 0
        # the whole plan collapsed to one from_cached leaf
        assert warm_stats.nodes_executed == 1

    def test_reuse_off_never_touches_cache(self, make_csv):
        path = make_csv({"x": [1, 2, 3], "y": [4, 5, 6]})
        with Session(backend="pandas", options=REUSE):
            _collect_sum(path)
        inserted = result_cache().info()["insertions"]
        with Session(backend="pandas") as s:
            _collect_sum(path)
            stats = s.last_execution_stats
        assert stats.cache_misses == 0
        assert stats.cache_bytes_reused == 0
        assert result_cache().info()["insertions"] == inserted

    def test_counters_in_stats_dict_and_render(self, make_csv):
        path = make_csv({"x": [1, 2, 3], "y": [4, 5, 6]})
        with Session(backend="pandas", options=REUSE):
            _collect_sum(path)
        with Session(backend="pandas", options=REUSE) as s:
            _collect_sum(path)
            stats = s.last_execution_stats
        as_dict = stats.to_dict()
        for field in ("cache_hits", "cache_misses", "cache_bytes_reused",
                      "cache_evictions", "cache_inserted"):
            assert field in as_dict
        assert as_dict["cache_hits"] >= 1
        assert "result cache:" in stats.render()

    def test_explain_stats_shows_cache_line(self, make_csv):
        path = make_csv({"x": [1, 2, 3], "y": [4, 5, 6]})
        with Session(backend="pandas", options=REUSE):
            _collect_sum(path)
        with Session(backend="pandas", options=REUSE):
            frame = lfp.read_csv(path)
            expr = (frame.x * 2 + frame.y).sum()
            expr.collect()
            text = expr.explain(stats=True)
        assert "result cache:" in text

    def test_explain_elides_blob_bytes(self, make_csv):
        """from_cached args carry the raw pickle; explain() must never
        render it."""
        path = make_csv({"x": [1, 2, 3], "y": [4, 5, 6]})
        with Session(backend="pandas", options=REUSE):
            _collect_sum(path)
        with Session(backend="pandas", options=REUSE) as session:
            frame = lfp.read_csv(path)
            expr = (frame.x * 2 + frame.y).sum()
            from repro.core.optimizer.cache import (
                substitute_cached_subplans,
            )
            state = substitute_cached_subplans([expr.node], session)
            assert state.hits >= 1
            text = expr.explain(optimized=False)
        assert "from_cached" in text
        assert "blob=" not in text

    def test_backend_is_part_of_the_key(self, make_csv):
        path = make_csv({"x": [1, 2, 3], "y": [4, 5, 6]})
        with Session(backend="pandas", options=REUSE):
            _collect_sum(path)
        with Session(backend="dask", options=REUSE) as s:
            _collect_sum(path)
            stats = s.last_execution_stats
        assert stats.cache_hits == 0  # pandas entries never serve dask

    def test_cost_floor_filters_cheap_results(self, make_csv):
        path = make_csv({"x": [1, 2, 3], "y": [4, 5, 6]})
        expensive = {"optimizer.reuse": True, "cache.min_cost": 1e9}
        with Session(backend="pandas", options=expensive) as s:
            _collect_sum(path)
            stats = s.last_execution_stats
        assert stats.cache_inserted == 0
        assert len(result_cache()) == 0


class TestInvalidation:
    def test_source_rewrite_invalidates(self, make_csv):
        path = make_csv({"x": [1, 2, 3], "y": [4, 5, 6]})
        with Session(backend="pandas", options=REUSE):
            first = _collect_sum(path)
        DataFrame({"x": [7, 8, 9], "y": [4, 5, 6]}).to_csv(path)
        st = os.stat(path)
        os.utime(path, ns=(st.st_atime_ns, st.st_mtime_ns + 1_000_000))
        with Session(backend="pandas", options=REUSE) as s:
            second = _collect_sum(path)
            stats = s.last_execution_stats
        assert second != first  # fresh data, fresh result
        assert stats.cache_hits == 0

    def test_semantic_option_flip_is_a_miss(self, make_csv):
        path = make_csv({"x": [1, 2, 3], "y": [4, 5, 6]})
        with Session(backend="pandas", options=REUSE) as s:
            _collect_sum(path)
            with lfp.option_context("workload.source_format", "jsonl"):
                _collect_sum(path)
                flipped = s.last_execution_stats
        assert flipped.cache_hits == 0
        assert flipped.cache_misses >= 1

    def test_non_semantic_option_flip_still_hits(self, make_csv):
        path = make_csv({"x": [1, 2, 3], "y": [4, 5, 6]})
        with Session(backend="pandas", options=REUSE) as s:
            _collect_sum(path)
            with lfp.option_context("executor.static_order", False):
                _collect_sum(path)
                flipped = s.last_execution_stats
        assert flipped.cache_hits >= 1


class TestAutoWorkers:
    def _scheduler(self, budget):
        from repro.backends.pandas_backend import PandasBackend

        scheduler = SerialScheduler(
            PandasBackend(), memory=MemoryManager(budget=budget)
        )
        scheduler.auto_workers = True
        return scheduler

    def test_unbudgeted_resolves_to_cpu_cap(self):
        resolved = self._scheduler(None)._resolve_auto_workers(10_000)
        assert resolved == max(1, min(8, os.cpu_count() or 4))

    def test_budget_bounds_workers(self):
        cap = max(1, min(8, os.cpu_count() or 4))
        scheduler = self._scheduler(30_000)
        # budget sustains 3 concurrent working sets (clamped to the cap)
        assert scheduler._resolve_auto_workers(10_000) == min(cap, 3)
        # one working set alone exceeds the budget: never go below 1
        assert scheduler._resolve_auto_workers(40_000) == 1

    def test_auto_option_threads_through_session(self, make_csv):
        path = make_csv({"x": list(range(50)), "y": list(range(50))})
        with Session(backend="pandas", options={
            "executor.strategy": "threaded",
            "executor.max_workers": "auto",
        }) as s:
            _collect_sum(path)
            stats = s.last_execution_stats
        cap = max(1, min(8, os.cpu_count() or 4))
        assert 1 <= stats.max_workers <= cap

    def test_auto_rejected_values(self):
        from repro.core.config import OptionError

        with pytest.raises(OptionError):
            Session(backend="pandas",
                    options={"executor.max_workers": "many"})


class TestProcessStrategyCache:
    """Reuse under the process strategy (the CI spawn leg runs this
    file with LAFP_PROCESS_START_METHOD=spawn, so both start methods
    stay covered)."""

    def test_process_strategy_warm_hit(self, make_csv):
        path = make_csv({"x": list(range(30)), "y": list(range(30))})
        opts = dict(REUSE)
        opts.update({
            "executor.strategy": "process",
            "executor.max_workers": 2,
        })
        with Session(backend="pandas", options=opts) as s1:
            cold = _collect_sum(path)
            assert s1.last_execution_stats.cache_inserted >= 1
            s1.close()
        with Session(backend="pandas", options=opts) as s2:
            warm = _collect_sum(path)
            stats = s2.last_execution_stats
            s2.close()
        assert warm == cold
        assert stats.cache_hits >= 1
