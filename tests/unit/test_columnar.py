"""The ``.lfc`` columnar container: write/read round-trips, footer
statistics, chunk-skipping scans, byte accounting, and the scheduler's
prefetch integration.

The contract under test: a columnar scan must collect exactly what the
equivalent CSV scan collects, while reading only the byte ranges of the
columns and chunks the plan actually needs.
"""

import os

import numpy as np
import pytest

import repro.lazyfatpandas.pandas as lfp
from repro.core.session import Session
from repro.frame import DataFrame
from repro.io import (
    ColumnarSource,
    Predicate,
    memory_store,
    read_columnar_footer,
    session_io_counters,
    write_columnar,
)
from repro.io.api import sibling_variant
from repro.io.prefetch import range_cache


@pytest.fixture(autouse=True)
def _clean_io_state():
    memory_store().reset()
    range_cache().clear()
    yield
    memory_store().reset()
    range_cache().clear()


def _mixed_frame(n: int = 120) -> DataFrame:
    rng = np.random.default_rng(7)
    floats = np.round(rng.normal(10, 5, n), 3)
    floats[::17] = np.nan
    strings = np.array(
        [None if i % 19 == 0 else f"tag{i % 5}" for i in range(n)],
        dtype=object,
    )
    stamps = np.array(
        [f"2024-{(i % 12) + 1:02d}-{(i % 27) + 1:02d} 08:00:00"
         for i in range(n)],
        dtype=object,
    ).astype("datetime64[ns]")
    return DataFrame({
        "i": np.arange(n, dtype=np.int64),
        "f": floats,
        "b": (np.arange(n) % 2 == 0),
        "s": strings,
        "t": stamps,
        "mixed": np.array(
            [i if i % 2 else f"x{i}" for i in range(n)], dtype=object
        ),
    })


def _frames_equal(a, b) -> bool:
    if list(a.columns) != list(b.columns):
        return False
    for c in a.columns:
        left, right = a.column(c).to_array(), b.column(c).to_array()
        if left.dtype.kind == "f":
            if not np.allclose(left, right, equal_nan=True):
                return False
        elif not np.array_equal(left, right):
            return False
    return True


class TestRoundTrip:
    @pytest.mark.parametrize("codec", [None, "gzip"])
    def test_all_dtypes_round_trip(self, tmp_path, codec):
        frame = _mixed_frame()
        path = os.path.join(tmp_path, "t.lfc")
        write_columnar(frame, path, row_group_rows=32, codec=codec)
        source = ColumnarSource(path)
        got = [source.read_partition(p) for p in source.partitions()]
        rebuilt_cols = {
            c: np.concatenate([g.column(c).to_array() for g in got])
            for c in frame.columns
        }
        for name in frame.columns:
            want = frame.column(name).to_array()
            have = rebuilt_cols[name]
            if want.dtype.kind == "f":
                assert np.allclose(want, have, equal_nan=True), name
            else:
                assert np.array_equal(want, have), name

    def test_remote_round_trip(self):
        frame = _mixed_frame(50)
        write_columnar(frame, "memory://lake/t.lfc", row_group_rows=20)
        source = ColumnarSource("memory://lake/t.lfc")
        assert source.schema() == list(frame.columns)
        total = sum(len(f) for f in source.scan())
        assert total == 50

    def test_footer_statistics_are_exact(self, tmp_path):
        frame = _mixed_frame(64)
        path = os.path.join(tmp_path, "t.lfc")
        write_columnar(frame, path, row_group_rows=64)
        footer = read_columnar_footer(path)
        assert footer["n_rows"] == 64
        (group,) = footer["row_groups"]
        ints = group["chunks"]["i"]
        assert (ints["min"], ints["max"]) == (0, 63)
        floats = group["chunks"]["f"]
        assert floats["null_count"] == int(
            np.isnan(frame.column("f").to_array()).sum()
        )
        strings = group["chunks"]["s"]
        assert strings["encoding"] == "dict"
        assert strings["null_count"] > 0
        assert set(strings["dict"]) == {f"tag{i}" for i in range(5)}

    def test_dtypes_come_from_footer(self, tmp_path):
        frame = _mixed_frame(16)
        path = os.path.join(tmp_path, "t.lfc")
        write_columnar(frame, path)
        dtypes = ColumnarSource(path).dtypes()
        assert dtypes["i"] == "int64"
        assert dtypes["b"] == "bool"
        assert dtypes["t"] == "datetime64[ns]"
        assert dtypes["s"] == "object"

    def test_bad_magic_rejected(self, tmp_path):
        path = os.path.join(tmp_path, "not.lfc")
        with open(path, "wb") as f:
            f.write(b"definitely not a columnar file at all........")
        with pytest.raises(ValueError, match="bad magic"):
            read_columnar_footer(path)

    def test_footer_cache_invalidates_on_rewrite(self):
        url = "memory://lake/v.lfc"
        write_columnar(DataFrame({"a": np.arange(10)}), url)
        assert read_columnar_footer(url)["n_rows"] == 10
        write_columnar(DataFrame({"a": np.arange(25)}), url)
        assert read_columnar_footer(url)["n_rows"] == 25

    def test_footer_cache_costs_zero_reads_when_unchanged(self, tmp_path):
        url = "memory://lake/c.lfc"
        write_columnar(DataFrame({"a": np.arange(10)}), url)
        read_columnar_footer(url)
        before = memory_store().range_reads
        read_columnar_footer(url)
        assert memory_store().range_reads == before


class TestChunkSkipping:
    def _sorted_file(self, rows=400, groups=4) -> str:
        url = "memory://lake/sorted.lfc"
        write_columnar(
            DataFrame({
                "k": np.arange(rows, dtype=np.int64),
                "v": np.arange(rows, dtype=np.float64) * 2.0,
                "s": np.array([f"s{i % 7}" for i in range(rows)],
                              dtype=object),
            }),
            url, row_group_rows=rows // groups,
        )
        return url

    def test_proven_empty_chunk_reads_zero_ranges(self):
        url = self._sorted_file()
        source = ColumnarSource(url)
        parts = source.partitions()
        predicate = Predicate([{"column": "k", "op": ">=", "value": 300}])
        before = memory_store().range_reads
        empty = source.read_partition(parts[0], columns=["k"],
                                      predicate=predicate)
        assert len(empty) == 0
        assert memory_store().range_reads == before  # zero fetches
        assert empty.column("k").to_array().dtype.kind == "i"

    def test_row_group_stats_drive_may_match(self):
        source = ColumnarSource(self._sorted_file())
        parts = source.partitions()
        predicate = Predicate([{"column": "k", "op": "between",
                                "low": 150, "high": 160}])
        kept = [p.index for p in parts if predicate.may_match(p)]
        assert kept == [1]  # rows 100..199 only

    def test_scan_reads_only_projected_columns(self):
        url = self._sorted_file()
        footer = read_columnar_footer(ColumnarSource(url).path)
        total_bytes = memory_store().stat(url).size
        with Session(backend="pandas") as session:
            lf = lfp.scan_columnar(url)
            out = lf[lf["k"] >= 300][["k"]].collect()
            run_bytes = session.last_execution_stats.to_dict()["bytes_read"]
        assert out.column("k").to_array().tolist() == list(range(300, 400))
        # one int64 chunk of one row group out of a 3-column 4-group file
        assert run_bytes <= total_bytes * 0.25
        assert footer["n_rows"] == 400

    def test_prefetch_ranges_exclude_pruned_groups(self):
        source = ColumnarSource(self._sorted_file())
        predicate = Predicate([{"column": "k", "op": "<", "value": 100}])
        ranges = source.prefetch_ranges(columns=["k", "v"],
                                        predicate=predicate)
        footer = source.footer()
        group0 = footer["row_groups"][0]["chunks"]
        expected = {
            (group0[c]["offset"], group0[c]["offset"] + group0[c]["length"])
            for c in ("k", "v")
        }
        assert {(s, e) for _, s, e in ranges} == expected


class TestScanEquivalence:
    @pytest.mark.parametrize("strategy", ["serial", "threaded", "fused"])
    def test_columnar_matches_csv(self, tmp_path, strategy):
        frame = _mixed_frame(90)
        csv_path = os.path.join(tmp_path, "t.csv")
        frame[["i", "f", "s"]].to_csv(csv_path)
        lfc_path = os.path.join(tmp_path, "t.lfc")
        write_columnar(frame[["i", "f", "s"]], lfc_path, row_group_rows=30)

        def pipeline(scan):
            return scan[scan["i"] > 40][["i", "s"]]

        with Session(backend="pandas",
                     options={"executor.strategy": strategy}):
            via_csv = pipeline(lfp.scan_csv(csv_path)).collect()
            via_lfc = pipeline(lfp.scan_columnar(lfc_path)).collect()
        assert _frames_equal(via_csv, via_lfc)

    def test_parse_dates_matches_csv(self, tmp_path):
        n = 40
        frame = DataFrame({
            "ts": np.array(
                [f"2024-06-{(i % 27) + 1:02d} 12:00:00" for i in range(n)],
                dtype=object,
            ),
            "v": np.arange(n),
        })
        csv_path = os.path.join(tmp_path, "t.csv")
        frame.to_csv(csv_path)
        lfc_path = os.path.join(tmp_path, "t.lfc")
        from repro.frame.io_csv import read_csv

        write_columnar(read_csv(csv_path), lfc_path)
        with Session(backend="pandas"):
            via_csv = lfp.scan_csv(csv_path, parse_dates=["ts"]).collect()
            via_lfc = lfp.scan_columnar(lfc_path, parse_dates=["ts"]).collect()
        assert _frames_equal(via_csv, via_lfc)
        assert via_lfc.column("ts").to_array().dtype.kind == "M"

    def test_all_groups_pruned_yields_typed_empty(self, tmp_path):
        path = os.path.join(tmp_path, "t.lfc")
        write_columnar(DataFrame({
            "a": np.arange(50, dtype=np.int64),
            "f": np.arange(50, dtype=np.float64),
        }), path, row_group_rows=25)
        with Session(backend="pandas") as session:
            lf = lfp.scan_columnar(path)
            got = lf[lf["a"] > 10_000][["a", "f"]].collect()
            stats = session.last_execution_stats
        assert len(got) == 0
        assert got.column("a").to_array().dtype.kind == "i"
        assert got.column("f").to_array().dtype.kind == "f"
        assert stats.partitions_read == 0
        assert stats.partitions_total == 2


class TestSchedulerPrefetch:
    def test_threaded_run_records_prefetch_hits(self):
        url = "memory://lake/p.lfc"
        write_columnar(DataFrame({
            "a": np.arange(600, dtype=np.int64),
            "s": np.array([f"v{i % 3}" for i in range(600)], dtype=object),
        }), url, row_group_rows=150)
        with Session(backend="pandas",
                     options={"executor.strategy": "threaded"}) as session:
            lf = lfp.scan_columnar(url)
            out = lf[["a"]].collect()
            stats = session.last_execution_stats.to_dict()
        assert len(out) == 600
        assert stats["ranges_prefetched"] == 4   # one `a` chunk per group
        assert stats["prefetch_hits"] == 4
        assert range_cache().pending_count() == 0

    def test_serial_run_does_not_prefetch(self):
        url = "memory://lake/p2.lfc"
        write_columnar(DataFrame({"a": np.arange(100)}), url,
                       row_group_rows=50)
        with Session(backend="pandas",
                     options={"executor.strategy": "serial"}) as session:
            lfp.scan_columnar(url)[["a"]].collect()
            stats = session.last_execution_stats.to_dict()
        assert stats["ranges_prefetched"] == 0
        assert stats["bytes_read"] > 0

    def test_prefetch_disabled_by_option(self):
        url = "memory://lake/p3.lfc"
        write_columnar(DataFrame({"a": np.arange(100)}), url,
                       row_group_rows=50)
        with Session(backend="pandas",
                     options={"executor.strategy": "threaded",
                              "io.prefetch": False}) as session:
            lfp.scan_columnar(url)[["a"]].collect()
            stats = session.last_execution_stats.to_dict()
        assert stats["ranges_prefetched"] == 0


class TestVariantsAndFingerprints:
    def test_sibling_variant_finds_lfc(self, tmp_path):
        csv_path = os.path.join(tmp_path, "d.csv")
        frame = DataFrame({"a": np.arange(10)})
        frame.to_csv(csv_path)
        assert sibling_variant(csv_path, "columnar") is None
        lfc = os.path.splitext(csv_path)[0] + ".lfc"
        write_columnar(frame, lfc)
        assert sibling_variant(csv_path, "columnar") == lfc

    def test_remote_mutation_flips_fingerprint(self):
        from repro.cache.fingerprint import fingerprint_node

        url = "memory://lake/fp.lfc"
        write_columnar(DataFrame({"a": np.arange(10)}), url)
        with Session(backend="pandas"):
            first = fingerprint_node(lfp.scan_columnar(url)._node)
        write_columnar(DataFrame({"a": np.arange(10)}), url)  # new version
        with Session(backend="pandas"):
            second = fingerprint_node(lfp.scan_columnar(url)._node)
        assert first != second

    def test_schema_inference_uses_footer_dtypes(self, tmp_path):
        path = os.path.join(tmp_path, "s.lfc")
        write_columnar(DataFrame({
            "n": np.arange(6, dtype=np.int64),
            "label": np.array(list("abcdef"), dtype=object),
        }), path)
        with Session(backend="pandas"):
            lf = lfp.scan_columnar(path)
            explained = lf[["n"]].explain()
        assert "scan" in explained  # plan built with schema resolved
        assert lf.columns == ["n", "label"]
