"""Unit tests for the simulated memory substrate."""

import gc
import threading

import pytest

from repro.memory import (
    MemoryManager,
    SimulatedMemoryError,
    TrackedBuffer,
    memory_budget,
    memory_manager,
)


class TestMemoryManager:
    def test_register_increases_live(self):
        manager = MemoryManager()
        manager.register(100)
        assert manager.live == 100

    def test_release_decreases_live(self):
        manager = MemoryManager()
        manager.register(100)
        manager.release(40)
        assert manager.live == 60

    def test_peak_tracks_high_water(self):
        manager = MemoryManager()
        manager.register(100)
        manager.release(100)
        manager.register(30)
        assert manager.peak == 100
        assert manager.live == 30

    def test_reset_peak_starts_from_current(self):
        manager = MemoryManager()
        manager.register(100)
        manager.release(80)
        manager.reset_peak()
        assert manager.peak == 20

    def test_budget_enforced(self):
        manager = MemoryManager(budget=100)
        manager.register(60)
        with pytest.raises(SimulatedMemoryError):
            manager.register(50)

    def test_budget_exactly_full_is_allowed(self):
        manager = MemoryManager(budget=100)
        manager.register(100)
        assert manager.live == 100

    def test_oom_counts(self):
        manager = MemoryManager(budget=10)
        with pytest.raises(SimulatedMemoryError):
            manager.register(11)
        assert manager.oom_count == 1

    def test_oom_is_memory_error(self):
        manager = MemoryManager(budget=10)
        with pytest.raises(MemoryError):
            manager.register(11)

    def test_oom_carries_diagnostics(self):
        manager = MemoryManager(budget=10)
        manager.register(4)
        with pytest.raises(SimulatedMemoryError) as exc:
            manager.register(20)
        assert exc.value.requested == 20
        assert exc.value.live == 4
        assert exc.value.budget == 10

    def test_headroom(self):
        manager = MemoryManager(budget=100)
        manager.register(30)
        assert manager.headroom() == 70

    def test_headroom_unbudgeted(self):
        assert MemoryManager().headroom() is None

    def test_negative_register_rejected(self):
        with pytest.raises(ValueError):
            MemoryManager().register(-1)

    def test_over_release_clamps_to_zero(self):
        manager = MemoryManager()
        manager.register(10)
        manager.release(50)
        assert manager.live == 0

    def test_reset_clears_everything(self):
        manager = MemoryManager()
        manager.register(10)
        manager.reset()
        assert manager.live == 0
        assert manager.peak == 0

    def test_thread_safety_of_register_release(self):
        manager = MemoryManager()

        def worker():
            for _ in range(1000):
                manager.register(8)
                manager.release(8)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert manager.live == 0


class TestTrackedBuffer:
    def test_buffer_registers_on_creation(self):
        before = memory_manager.live
        buffer = TrackedBuffer(512)
        assert memory_manager.live == before + 512
        buffer.release()

    def test_buffer_releases_on_gc(self):
        before = memory_manager.live
        buffer = TrackedBuffer(256)
        del buffer
        gc.collect()
        assert memory_manager.live == before

    def test_explicit_release_is_idempotent(self):
        before = memory_manager.live
        buffer = TrackedBuffer(128)
        buffer.release()
        buffer.release()
        assert memory_manager.live == before


class TestMemoryBudgetContext:
    def test_budget_installed_and_restored(self):
        assert memory_manager.budget is None
        with memory_budget(1 << 20):
            assert memory_manager.budget == 1 << 20
        assert memory_manager.budget is None

    def test_budget_restored_on_error(self):
        with pytest.raises(RuntimeError):
            with memory_budget(1 << 20):
                raise RuntimeError("boom")
        assert memory_manager.budget is None
