"""Unit tests for the simulated memory substrate."""

import gc
import threading

import pytest

from repro.memory import (
    MemoryManager,
    SimulatedMemoryError,
    TrackedBuffer,
    memory_budget,
    memory_manager,
)


class TestMemoryManager:
    def test_register_increases_live(self):
        manager = MemoryManager()
        manager.register(100)
        assert manager.live == 100

    def test_release_decreases_live(self):
        manager = MemoryManager()
        manager.register(100)
        manager.release(40)
        assert manager.live == 60

    def test_peak_tracks_high_water(self):
        manager = MemoryManager()
        manager.register(100)
        manager.release(100)
        manager.register(30)
        assert manager.peak == 100
        assert manager.live == 30

    def test_reset_peak_starts_from_current(self):
        manager = MemoryManager()
        manager.register(100)
        manager.release(80)
        manager.reset_peak()
        assert manager.peak == 20

    def test_budget_enforced(self):
        manager = MemoryManager(budget=100)
        manager.register(60)
        with pytest.raises(SimulatedMemoryError):
            manager.register(50)

    def test_budget_exactly_full_is_allowed(self):
        manager = MemoryManager(budget=100)
        manager.register(100)
        assert manager.live == 100

    def test_oom_counts(self):
        manager = MemoryManager(budget=10)
        with pytest.raises(SimulatedMemoryError):
            manager.register(11)
        assert manager.oom_count == 1

    def test_oom_is_memory_error(self):
        manager = MemoryManager(budget=10)
        with pytest.raises(MemoryError):
            manager.register(11)

    def test_oom_carries_diagnostics(self):
        manager = MemoryManager(budget=10)
        manager.register(4)
        with pytest.raises(SimulatedMemoryError) as exc:
            manager.register(20)
        assert exc.value.requested == 20
        assert exc.value.live == 4
        assert exc.value.budget == 10

    def test_headroom(self):
        manager = MemoryManager(budget=100)
        manager.register(30)
        assert manager.headroom() == 70

    def test_headroom_unbudgeted(self):
        assert MemoryManager().headroom() is None

    def test_negative_register_rejected(self):
        with pytest.raises(ValueError):
            MemoryManager().register(-1)

    def test_over_release_clamps_to_zero(self):
        manager = MemoryManager()
        manager.register(10)
        with pytest.warns(RuntimeWarning, match="double-release"):
            manager.release(50)
        assert manager.live == 0

    def test_double_release_counted_and_warned(self):
        """The clamp must not hide the caller bug: each underflow bumps
        the counter and warns (the satellite fix for silent clamping)."""
        manager = MemoryManager()
        manager.register(10)
        manager.release(10)
        assert manager.double_release_count == 0
        with pytest.warns(RuntimeWarning, match="double-release"):
            manager.release(10)
        assert manager.double_release_count == 1
        with pytest.warns(RuntimeWarning, match="occurrence #2"):
            manager.release(5)
        assert manager.double_release_count == 2
        assert manager.live == 0

    def test_release_after_reset_is_not_a_double_release(self):
        """Finalizers of buffers that straddle a reset() are stale, not
        buggy: their releases are dropped by epoch, never warned."""
        import warnings as _warnings

        manager = MemoryManager()
        buffer = TrackedBuffer(256, manager)
        manager.reset()
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            buffer.release()
        assert manager.live == 0
        assert manager.double_release_count == 0

    def test_lifetime_totals_are_monotonic(self):
        manager = MemoryManager()
        manager.register(100)
        manager.release(40)
        manager.register(10)
        assert manager.total_registered == 110
        assert manager.total_released == 40

    def test_reset_clears_everything(self):
        manager = MemoryManager()
        manager.register(10)
        manager.reset()
        assert manager.live == 0
        assert manager.peak == 0
        assert manager.total_registered == 0

    def test_thread_safety_of_register_release(self):
        manager = MemoryManager()

        def worker():
            for _ in range(1000):
                manager.register(8)
                manager.release(8)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert manager.live == 0


class TestTrackedBuffer:
    def test_buffer_registers_on_creation(self):
        before = memory_manager.live
        buffer = TrackedBuffer(512)
        assert memory_manager.live == before + 512
        buffer.release()

    def test_buffer_releases_on_gc(self):
        before = memory_manager.live
        buffer = TrackedBuffer(256)
        del buffer
        gc.collect()
        assert memory_manager.live == before

    def test_explicit_release_is_idempotent(self):
        before = memory_manager.live
        buffer = TrackedBuffer(128)
        buffer.release()
        buffer.release()
        assert memory_manager.live == before


class TestMemoryBudgetContext:
    def test_budget_installed_and_restored(self):
        assert memory_manager.budget is None
        with memory_budget(1 << 20):
            assert memory_manager.budget == 1 << 20
        assert memory_manager.budget is None

    def test_budget_restored_on_error(self):
        with pytest.raises(RuntimeError):
            with memory_budget(1 << 20):
                raise RuntimeError("boom")
        assert memory_manager.budget is None

    def test_budget_context_overrides_option_driven_budget(self):
        """memory_budget() must win over a session's memory.budget
        option for its scope -- the option's write-through used to
        clobber a directly-assigned budget on the next allocation."""
        from repro.core.session import Session

        with Session(backend="pandas",
                     options={"memory.budget": 1_000_000}) as session:
            with memory_budget(100) as manager:
                assert manager is session.memory
                with pytest.raises(SimulatedMemoryError):
                    TrackedBuffer(500)
            assert session.memory.budget == 1_000_000
            buffer = TrackedBuffer(500)  # option budget is back; fits
            buffer.release()

    def test_budget_context_binds_to_current_session(self):
        from repro.core.session import Session

        with Session(backend="pandas") as session:
            with memory_budget(64) as manager:
                assert manager is session.memory
                assert memory_manager.budget is None
            assert session.memory.budget is None
