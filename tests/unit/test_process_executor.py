"""Process and async executor strategies, and the static ordering pass.

The process strategy ships fused-chain tasks across the pickle seam,
so the suite covers the contract ends: what ships (and what falls back
inline), result-size charge-back to the parent session's manager,
worker-death fault tolerance (retry, then a clean ExecutionError with
budget and spill files reclaimed), and pool lifecycle on the session.
The pickle round-trip class is the regression net for the seam itself:
every op's args must keep pickling or the strategy silently degrades
to inline-only.  The async strategy's awaitable entry point and the
memory-aware static ordering pass get direct unit coverage.
"""

import asyncio
import functools
import gc
import os
import pickle
import signal

import numpy as np
import pytest

import repro.lazyfatpandas.pandas as lfp
from repro.core.session import Session
from repro.graph import Node
from repro.graph.scheduler import (
    DEFAULT_EXECUTORS,
    AsyncScheduler,
    ExecutionError,
    ProcessScheduler,
)
from repro.graph.scheduler.order import (
    priority_topological_order,
    simulate_peak_bytes,
    static_priorities,
)
from repro.graph.scheduler.process import _run_task, create_worker_pool
from repro.io.predicate import Predicate
from repro.io.source import Partition


# ---------------------------------------------------------------------------
# Worker-side helpers: module-level so they pickle by reference (the
# fork-started workers share this module with the parent).
# ---------------------------------------------------------------------------


def _double(value):
    return value * 2


def _kill_worker_once(value, marker):
    """SIGKILL the worker the first time any element is mapped; the
    marker file makes the retry (in a fresh worker) succeed."""
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("died")
        os.kill(os.getpid(), signal.SIGKILL)
    return value + 1


def _kill_worker_always(value):
    os.kill(os.getpid(), signal.SIGKILL)
    return value  # pragma: no cover - never reached


@pytest.fixture
def numbers_csv(make_csv):
    n = 150
    return make_csv(
        {
            "x": np.arange(n) - 20,
            "y": np.arange(n) % 4,
            "s": np.array([f"w{i % 6}" for i in range(n)], dtype=object),
        },
        "numbers.csv",
    )


def _process_session(**options):
    opts = {"executor.strategy": "process", "executor.max_workers": 2}
    opts.update(options)
    return Session(backend="pandas", options=opts)


# ---------------------------------------------------------------------------
# Shipping and fallback.
# ---------------------------------------------------------------------------


class TestProcessShipping:
    def test_ships_fused_chain_and_matches_serial(self, numbers_csv):
        def pipeline():
            df = lfp.read_csv(numbers_csv)
            df = df[df.x > 0]
            df["z"] = df.x * 3 + df.y
            return df.z.sum()

        with Session(backend="pandas"):
            expected = pipeline().collect()
        with _process_session() as session:
            assert pipeline().collect() == expected
            stats = session.last_execution_stats
            assert stats.effective_strategy == "process"
            assert stats.process_tasks >= 1
            assert any(
                stat.worker == "process-pool" for stat in stats.nodes
            )

    def test_named_function_map_ships(self, numbers_csv):
        with Session(backend="pandas"):
            expected = lfp.read_csv(numbers_csv).x.map(_double).sum().collect()
        with _process_session() as session:
            got = lfp.read_csv(numbers_csv).x.map(_double).sum().collect()
            assert got == expected
            assert session.last_execution_stats.process_tasks >= 1

    def test_lambda_map_falls_back_inline(self, numbers_csv):
        """Unpicklable args never break a plan: the chain runs inline."""
        with _process_session() as session:
            got = (
                lfp.read_csv(numbers_csv).x
                .map(lambda v: v * 2).sum().collect()
            )
            stats = session.last_execution_stats
        with Session(backend="pandas"):
            expected = (
                lfp.read_csv(numbers_csv).x
                .map(lambda v: v * 2).sum().collect()
            )
        assert got == expected
        assert stats.process_fallbacks >= 1

    def test_result_bytes_charged_to_parent_session(self, numbers_csv):
        """The charge-back half of the shipping contract: buffers of a
        worker-produced frame register with the parent's manager."""
        with _process_session() as session:
            frame = lfp.read_csv(numbers_csv)
            out = frame[frame.x > 0].collect()
            assert len(out) > 0
            assert session.last_execution_stats.process_tasks >= 1
            assert session.memory.live > 0
            shipped = [
                stat for stat in session.last_execution_stats.nodes
                if stat.worker == "process-pool" and stat.bytes_registered
            ]
            assert shipped, "no shipped node recorded registered bytes"

    def test_modin_backend_ships_through_pool(self, numbers_csv):
        """The fork hooks rebuild modin's thread pool in workers."""
        with Session(backend="modin",
                     options={"executor.strategy": "process",
                              "executor.max_workers": 2}) as session:
            got = lfp.read_csv(numbers_csv).x.sum().collect()
            stats = session.last_execution_stats
        with Session(backend="pandas"):
            expected = lfp.read_csv(numbers_csv).x.sum().collect()
        assert got == expected
        assert stats.effective_strategy == "process"
        assert stats.process_tasks >= 1

    def test_lazy_engine_falls_back_to_serial(self, numbers_csv):
        with Session(backend="dask",
                     options={"executor.strategy": "process"}) as session:
            lfp.read_csv(numbers_csv).x.sum().collect()
            stats = session.last_execution_stats
            assert stats.strategy == "process"
            assert stats.effective_strategy == "serial"

    def test_print_side_effect_runs_on_parent_stdout(
        self, numbers_csv, capsys
    ):
        with _process_session():
            frame = lfp.read_csv(numbers_csv)
            print(frame.x.sum())
            lfp.flush()
        assert capsys.readouterr().out.strip() != ""


# ---------------------------------------------------------------------------
# Fault tolerance: dying workers.
# ---------------------------------------------------------------------------


class TestProcessFaults:
    def test_worker_death_retries_and_succeeds(self, numbers_csv, tmp_path):
        marker = str(tmp_path / "died-once")
        kill_once = functools.partial(_kill_worker_once, marker=marker)
        with _process_session() as session:
            got = lfp.read_csv(numbers_csv).x.map(kill_once).sum().collect()
            stats = session.last_execution_stats
        assert os.path.exists(marker)
        assert stats.process_retries >= 1
        with Session(backend="pandas"):
            expected = (
                lfp.read_csv(numbers_csv).x.map(lambda v: v + 1)
                .sum().collect()
            )
        assert got == expected

    def test_persistent_worker_death_raises_clean_error(self, numbers_csv):
        with _process_session() as session:
            with pytest.raises(ExecutionError, match="worker died"):
                lfp.read_csv(numbers_csv).x.map(
                    _kill_worker_always
                ).sum().collect()
            # budget reclaimed: every result of the failed run dropped
            gc.collect()
            assert session.memory.live == 0
            # the broken pool was discarded, not cached
            assert session._process_pool is None
            # the session recovers: the next collect builds a fresh pool
            assert lfp.read_csv(numbers_csv).x.map(_double).sum().collect() \
                == lfp.read_csv(numbers_csv).x.sum().collect() * 2

    def test_worker_death_leaves_no_spill_files(
        self, make_csv, tmp_path
    ):
        """ExecutionError cleanup drops shuffle stores too, so their
        finalizers delete every spill file."""
        n = 4000
        rng = np.random.RandomState(0)
        left = make_csv(
            {"k": rng.randint(0, 40, n), "v": np.arange(n)}, "left.csv"
        )
        right = make_csv(
            {"k": np.arange(8), "w": np.arange(8) * 10}, "right.csv"
        )
        spill_dir = tmp_path / "spill"
        with _process_session(**{
            "memory.budget": 150_000,
            "optimizer.shuffle_threshold_bytes": 100,
            "memory.spill_dir": str(spill_dir),
        }) as session:
            with pytest.raises(ExecutionError):
                merged = lfp.scan_csv(left, partition_bytes=2048).merge(
                    lfp.scan_csv(right, partition_bytes=512), on="k"
                )
                merged["v"].map(_kill_worker_always).sum().collect()
            gc.collect()
            assert session.memory.live == 0
        gc.collect()
        leftover = [
            os.path.join(root, name)
            for root, _dirs, names in os.walk(spill_dir)
            for name in names
        ]
        assert leftover == []

    def test_plan_errors_keep_their_type(self, numbers_csv):
        """A worker-raised *plan* error is not an infrastructure
        failure: it propagates with its original type, like serial."""
        with _process_session():
            frame = lfp.read_csv(numbers_csv)
            with pytest.raises(KeyError):
                frame["missing"].sum().collect()


# ---------------------------------------------------------------------------
# Pool lifecycle on the session.
# ---------------------------------------------------------------------------


class TestPoolLifecycle:
    def test_pool_cached_across_collects_and_closed(self, numbers_csv):
        with _process_session() as session:
            lfp.read_csv(numbers_csv).x.sum().collect()
            pool = session._process_pool
            assert pool is not None
            lfp.read_csv(numbers_csv).y.sum().collect()
            assert session._process_pool is pool
            session.close()
            assert session._process_pool is None
            with pytest.raises(RuntimeError):
                pool.submit(_double, 1)
            # close() is idempotent and the session stays usable
            session.close()
            assert lfp.read_csv(numbers_csv).x.sum().collect() is not None

    def test_pool_rebuilt_when_workers_change(self, numbers_csv):
        with _process_session() as session:
            lfp.read_csv(numbers_csv).x.sum().collect()
            pool = session.process_pool()
            with lfp.option_context("executor.max_workers", 3):
                assert session.process_pool() is not pool

    def test_sessionless_scheduler_uses_private_pool(self):
        from repro.backends import PandasBackend

        scheduler = ProcessScheduler(PandasBackend(), max_workers=2)
        src = Node("from_data", args={"data": {"x": [1, 2, 3, 4]}})
        column = Node("getitem_column", inputs=[src], args={"column": "x"})
        total = Node("series_agg", inputs=[column], args={"func": "sum"})
        (result,) = scheduler.execute([total])
        assert result == 10
        assert scheduler._private_pool is None  # shut down after the run

    def test_worker_pool_runs_raw_task(self):
        """The worker entry point itself: steps replay against the
        worker's backend and the final result pickles back."""
        pool = create_worker_pool(1, None, "pandas")
        try:
            steps = [
                ("from_data", {"data": {"x": [2, 3]}}, []),
                ("getitem_column", {"column": "x"}, [("step", 0)]),
                ("series_agg", {"func": "sum"}, [("step", 1)]),
            ]
            payload = pickle.dumps((steps, []))
            blob = pool.submit(_run_task, payload).result(timeout=60)
            assert pickle.loads(blob) == 5
        finally:
            pool.shutdown()


# ---------------------------------------------------------------------------
# The pickle seam: every registered op's args must round-trip.
# ---------------------------------------------------------------------------


class TestPickleSeam:
    def _walk(self, node, seen, out):
        if node.id in seen:
            return
        seen.add(node.id)
        out.append(node)
        for dep in node.all_deps():
            self._walk(dep, seen, out)

    def test_plan_args_round_trip(self, numbers_csv):
        """Representative plans covering the shippable op surface:
        pickling a node's (op, args) must reconstruct equal args."""
        with Session(backend="pandas"):
            df = lfp.scan_csv(numbers_csv, partition_bytes=512)
            df = df[(df.x > 0) & (df.y != 2)]
            df["z"] = df.x * 2 + df.y
            plans = [
                df.z.sum(),
                df.sort_values("z").head(5),
                df.groupby(["y"])["z"].mean(),
                df.merge(lfp.scan_csv(numbers_csv), on="y"),
                df[["x", "z"]].describe(),
                df.x.map(_double).astype("float64"),
            ]
            nodes, seen = [], set()
            for plan in plans:
                self._walk(plan._node, seen, nodes)
        assert len(nodes) > 15
        for node in nodes:
            blob = pickle.dumps((node.op, node.args),
                                protocol=pickle.HIGHEST_PROTOCOL)
            op, args = pickle.loads(blob)
            assert op == node.op
            assert set(args) == set(node.args)

    def test_partition_round_trips(self):
        part = Partition(
            index=3, path="/data/part-3.csv", byte_range=(1024, 4096),
            key_values={"region": "eu"}, est_rows=100, est_bytes=2048,
            min_values={"x": -5.0}, max_values={"x": 99.0},
        )
        clone = pickle.loads(pickle.dumps(part))
        assert clone == part

    def test_predicate_conjuncts_round_trip(self):
        pred = Predicate([
            {"column": "x", "op": ">", "value": 3},
            {"column": "s", "op": "isin", "value": ["a", "b"]},
            {"column": "y", "op": "between", "value": [0, 10]},
        ])
        clone = pickle.loads(pickle.dumps(pred.to_arg()))
        assert clone == pred.to_arg()


# ---------------------------------------------------------------------------
# The async strategy.
# ---------------------------------------------------------------------------


class TestAsyncExecutor:
    def test_collect_runs_on_event_loop(self, numbers_csv):
        with Session(backend="pandas",
                     options={"executor.strategy": "async",
                              "executor.max_workers": 3}) as session:
            got = lfp.read_csv(numbers_csv).x.sum().collect()
            stats = session.last_execution_stats
            assert stats.effective_strategy == "async"
        with Session(backend="pandas"):
            assert got == lfp.read_csv(numbers_csv).x.sum().collect()

    def test_execute_async_multiplexes_concurrent_collects(self):
        """One scheduler instance serves many awaited executions --
        the serving-layer seam."""
        with Session(backend="pandas",
                     options={"executor.strategy": "async"}) as session:
            scheduler = session.scheduler()
            assert isinstance(scheduler, AsyncScheduler)
            frames = [
                lfp.DataFrame({"x": list(range(10 * (i + 1)))})
                for i in range(4)
            ]
            roots = [(f.x * 2).sum()._node for f in frames]

            async def serve():
                return await asyncio.gather(
                    *(scheduler.execute_async([root]) for root in roots)
                )

            results = asyncio.run(serve())
        totals = [r[0] for r in results]
        expected = [
            2 * sum(range(10 * (i + 1))) for i in range(4)
        ]
        assert totals == expected

    def test_async_node_errors_propagate(self):
        with Session(backend="pandas",
                     options={"executor.strategy": "async"}):
            frame = lfp.DataFrame({"x": [1, 2]})
            with pytest.raises(KeyError):
                frame["missing"].sum().collect()


# ---------------------------------------------------------------------------
# Memory-aware static ordering.
# ---------------------------------------------------------------------------


class TestStaticOrder:
    def _reduction_dag(self, branches=4):
        """N independent source -> aggregate branches into one concat.
        Running all the big sources before any aggregate (level order)
        keeps every source live at once; finishing each branch first
        (what the static order picks) holds one source plus the small
        aggregates.  Estimates: source 100 bytes, aggregate 10."""
        from repro.graph.taskgraph import topological_order

        estimates = {}
        sources, aggs = [], []
        for index in range(branches):
            src = Node("from_data",
                       args={"data": {f"c{index}": list(range(8))}})
            agg = Node("identity", inputs=[src])
            sources.append(src)
            aggs.append(agg)
        join = Node("concat", inputs=aggs)
        order = topological_order([join])
        for src in sources:
            estimates[src.id] = 100
        for agg in aggs:
            estimates[agg.id] = 10
        estimates[join.id] = 10
        return order, estimates, join, sources, aggs

    def test_priorities_cover_graph_and_respect_deps(self):
        order, estimates, join, _, _ = self._reduction_dag()
        priorities = static_priorities(order, estimates)
        assert set(priorities) == {node.id for node in order}
        ordered = priority_topological_order(order, priorities)
        seen = set()
        for node in ordered:
            assert all(dep.id in seen for dep in node.all_deps())
            seen.add(node.id)
        assert {n.id for n in ordered} == {n.id for n in order}

    def test_static_order_reduces_simulated_peak(self):
        order, estimates, join, sources, aggs = self._reduction_dag()
        root_ids = {join.id}
        # pessimal but valid baseline: level order (all sources, then
        # all aggregates) -- every 100-byte source is live at once
        level_order = sources + aggs + [join]
        baseline = simulate_peak_bytes(level_order, estimates, root_ids)
        priorities = static_priorities(order, estimates)
        ordered = priority_topological_order(order, priorities)
        optimized = simulate_peak_bytes(ordered, estimates, root_ids)
        assert baseline >= 400  # 4 sources resident together
        assert optimized <= 150  # one source + accumulated aggregates

    def test_missing_estimates_degrade_to_depth_first(self):
        order, _, join, _, _ = self._reduction_dag()
        priorities = static_priorities(order, {})
        ordered = priority_topological_order(order, priorities)
        # depth-first still finishes one branch before the other:
        # the branch positions must not interleave
        branch_of = {}
        for node in ordered[:-1]:
            dep = node.inputs[0].id if node.inputs else node.id
            branch_of[node.id] = branch_of.get(dep, node.id)
        positions = {}
        for index, node in enumerate(ordered[:-1]):
            positions.setdefault(branch_of[node.id], []).append(index)
        spans = sorted(
            (min(ps), max(ps)) for ps in positions.values()
        )
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert end < start

    def test_stats_record_estimated_peak(self, numbers_csv):
        with Session(backend="pandas") as session:
            lfp.read_csv(numbers_csv).x.sum().collect()
            stats = session.last_execution_stats
            assert stats.static_order is True
            assert stats.estimated_peak_bytes is not None
            assert stats.estimated_peak_bytes > 0
            assert "estimated peak live bytes" in stats.render()

    def test_static_order_option_toggles(self, numbers_csv):
        with Session(backend="pandas",
                     options={"executor.static_order": False}) as session:
            lfp.read_csv(numbers_csv).x.sum().collect()
            assert session.last_execution_stats.static_order is False

    def test_all_strategies_accept_static_order(self, numbers_csv):
        expected = None
        for strategy in DEFAULT_EXECUTORS.names():
            with Session(backend="pandas",
                         options={"executor.strategy": strategy}):
                got = lfp.read_csv(numbers_csv).x.sum().collect()
            if expected is None:
                expected = got
            assert got == expected
