"""Golden tests for ``LazyFrame.explain()`` on the quickstart pipeline.

The rendered plan is deterministic (topological renumbering, basename
paths), so optimizer regressions show up as a plain text diff against
the snapshots below: predicate pushdown moves the filter below the
setitem, and projection pushdown narrows the read to the used columns.
Scan nodes additionally render their negotiated contract -- folded-in
projection columns, the pushed predicate, and ``partitions=read/total``
once the pruning pass counted them.
"""

import os

import numpy as np
import pytest

import repro.lazyfatpandas.pandas as lfp
from repro.core.session import Session
from repro.frame import DataFrame
from repro.io import write_dataset


@pytest.fixture
def trips_csv(make_csv):
    n = 50
    return make_csv(
        {
            "pickup_time": np.array(
                ["2024-06-%02d 09:00:00" % (i % 28 + 1) for i in range(n)],
                dtype=object,
            ),
            "passengers": np.arange(n) % 5 + 1,
            "fare": np.round(np.linspace(-5, 40, n), 2),
            "note_a": np.array([f"a{i}" for i in range(n)], dtype=object),
        },
        "trips.csv",
    )


def quickstart_pipeline(path):
    """The paper's Figure 3 shape: derive a column, then filter."""
    df = lfp.read_csv(path, parse_dates=["pickup_time"])
    df["hour"] = df.pickup_time.dt.hour
    df = df[df.fare > 0]
    return df.groupby(["hour"])["passengers"].sum()


RAW_PLAN = """\
N1 read_csv(path=trips.csv, parse_dates=['pickup_time'])
N2 getitem_column(column='pickup_time') <- [N1]
N3 dt_field(field='hour') <- [N2]
N4 setitem(column='hour') <- [N1,N3]
N5 getitem_column(column='fare') <- [N4]
N6 binop(op='>', reflected=False, right=0) <- [N5]
N7 filter <- [N4,N6]
N8 groupby_agg(keys=['hour'], column='passengers', func='sum') <- [N7]"""

# With pushdown on: the filter drops below the setitem (N4 filter reads
# N1 directly), an identity fills the filter's old slot, and the read is
# narrowed to the three used columns.
OPTIMIZED_PLAN_PUSHDOWN_ON = """\
N1 read_csv(path=trips.csv, parse_dates=['pickup_time'], usecols=['fare', 'passengers', 'pickup_time'])
N2 getitem_column(column='fare') <- [N1]
N3 binop(op='>', reflected=False, right=0) <- [N2]
N4 filter <- [N1,N3]
N5 getitem_column(column='pickup_time') <- [N4]
N6 dt_field(field='hour') <- [N5]
N7 setitem(column='hour') <- [N4,N6]
N8 identity <- [N7]
N9 groupby_agg(keys=['hour'], column='passengers', func='sum') <- [N8]"""


def _sections(text):
    """Split explain() output into (raw, optimized) plan bodies."""
    raw, optimized = text.split("== optimized plan ==")
    raw = raw.replace("== raw plan ==", "").strip()
    return raw, optimized.strip()


class TestExplainGolden:
    def test_plan_with_pushdown_on(self, trips_csv):
        with Session(backend="pandas"):
            out = quickstart_pipeline(trips_csv)
            raw, optimized = _sections(out.explain())
        assert raw == RAW_PLAN
        assert optimized == OPTIMIZED_PLAN_PUSHDOWN_ON

    def test_plan_with_pushdown_off(self, trips_csv):
        with Session(backend="pandas") as session:
            out = quickstart_pipeline(trips_csv)
            with session.option_context(
                "optimizer.predicate_pushdown", False,
                "optimizer.projection_pushdown", False,
            ):
                raw, optimized = _sections(out.explain())
        assert raw == RAW_PLAN
        # no filter motion, no usecols narrowing: plan is unchanged
        assert optimized == RAW_PLAN

    def test_explain_has_no_side_effects(self, trips_csv):
        """explain() must not change what a later collect computes."""
        with Session(backend="pandas"):
            out = quickstart_pipeline(trips_csv)
            before = out.explain()
            value = out.collect().values.sum()
            after = out.explain()
        assert before == after
        assert value == 134

    def test_explain_restores_persist_marks(self, trips_csv):
        """On a lazy backend the optimizer pins shared nodes; explain()
        must roll those marks back."""
        with Session(backend="dask"):
            df = lfp.read_csv(trips_csv)
            filtered = df[df.fare > 0]
            # two consumers of `filtered` => persist_shared_nodes fires
            total = filtered.passengers.sum() + filtered.fare.sum()
            total.explain()
            assert not filtered.node.persist

    def test_raw_only(self, trips_csv):
        with Session(backend="pandas"):
            out = quickstart_pipeline(trips_csv)
            text = out.explain(optimized=False)
        assert "== raw plan ==" in text
        assert "== optimized plan ==" not in text


# ---------------------------------------------------------------------------
# Scan nodes: the folded-in contract must be visible in the plan.
# ---------------------------------------------------------------------------


@pytest.fixture
def sales_dataset(tmp_path):
    """3-partition hive dataset with a deterministic basename."""
    frame = DataFrame({
        "region": np.array(
            ["east"] * 4 + ["west"] * 4 + ["north"] * 4, dtype=object
        ),
        "amount": np.arange(12) * 10,
        "qty": np.arange(12) % 3,
    })
    root = os.path.join(tmp_path, "sales_hive")
    write_dataset(frame, root, partition_on="region")
    return root


def scan_pipeline(root):
    df = lfp.scan_dataset(root)
    return df[df.region == "east"][["amount"]]


SCAN_RAW_PLAN = """\
N1 scan(format='dataset', path=sales_hive)
N2 getitem_column(column='region') <- [N1]
N3 binop(op='==', reflected=False, right='east') <- [N2]
N4 filter <- [N1,N3]
N5 getitem_columns(columns=['amount']) <- [N4]"""

# The filter folds into the scan (the source filters while reading), the
# projection narrows the scan's output columns, and hive-key pruning
# keeps 1 of the 3 region partitions.
SCAN_OPTIMIZED_PLAN = """\
N1 scan(format='dataset', path=sales_hive, columns=['amount'], predicate=(region=='east'), partitions=1/3)
N2 identity <- [N1]
N3 getitem_columns(columns=['amount']) <- [N2]"""

# Ablated: the fold and the pruning are off; the filter stays a graph
# node and the scan still reports how many partitions exist.
SCAN_ABLATED_PLAN = """\
N1 scan(format='dataset', path=sales_hive, partitions=3/3)
N2 getitem_column(column='region') <- [N1]
N3 binop(op='==', reflected=False, right='east') <- [N2]
N4 filter <- [N1,N3]
N5 getitem_columns(columns=['amount']) <- [N4]"""


class TestScanGolden:
    def test_scan_plan_with_folding_on(self, sales_dataset):
        with Session(backend="pandas"):
            out = scan_pipeline(sales_dataset)
            raw, optimized = _sections(out.explain())
        assert raw == SCAN_RAW_PLAN
        assert optimized == SCAN_OPTIMIZED_PLAN

    def test_scan_plan_with_folding_off(self, sales_dataset):
        with Session(backend="pandas") as session:
            out = scan_pipeline(sales_dataset)
            with session.option_context(
                "optimizer.predicate_pushdown", False,
                "optimizer.projection_pushdown", False,
                "optimizer.partition_pruning", False,
            ):
                raw, optimized = _sections(out.explain())
        assert raw == SCAN_RAW_PLAN
        assert optimized == SCAN_ABLATED_PLAN

    def test_stats_section_reports_partitions(self, sales_dataset):
        with Session(backend="pandas"):
            out = scan_pipeline(sales_dataset)
            collected = out.collect()
            text = out.explain(stats=True)
        assert "scan partitions read: 1/3" in text
        assert collected.column("amount").to_array().tolist() == [0, 10, 20, 30]

    def test_scan_explain_has_no_side_effects(self, sales_dataset):
        with Session(backend="pandas"):
            out = scan_pipeline(sales_dataset)
            before = out.explain()
            value = out.collect().column("amount").to_array().sum()
            after = out.explain()
        assert before == after
        assert value == 60
