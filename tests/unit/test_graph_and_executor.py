"""Unit tests for the LaFP task graph and refcounting executor."""

import pytest

from repro.backends import PandasBackend
from repro.frame import DataFrame
from repro.graph import Executor, Node, collect_subgraph, to_dot, topological_order
from repro.graph.taskgraph import consumer_counts


def read_node(path):
    return Node("read_csv", args={"path": path})


class TestNode:
    def test_unregistered_op_rejected(self):
        with pytest.raises(KeyError):
            Node("not_a_real_op")

    def test_ids_are_unique(self):
        a = Node("identity", inputs=[])
        b = Node("identity", inputs=[])
        assert a.id != b.id

    def test_replace_input(self):
        src = Node("from_data", args={"data": {}})
        other = Node("from_data", args={"data": {}})
        child = Node("identity", inputs=[src])
        child.replace_input(src, other)
        assert child.inputs == [other]

    def test_mod_and_used_attrs(self):
        src = Node("from_data", args={"data": {}})
        col = Node("getitem_column", inputs=[src], args={"column": "x"})
        assert col.used_attrs() == {"x"}
        setit = Node("setitem", inputs=[src], args={"column": "y", "value": 1})
        assert setit.mod_attrs() == {"y"}

    def test_clear_result_respects_persist(self):
        node = Node("identity", inputs=[])
        node.set_result(42)
        node.persist = True
        node.clear_result()
        assert node.result == 42
        node.persist = False
        node.clear_result()
        assert node.result is None


class TestGraphAlgorithms:
    def chain(self, n):
        nodes = [Node("from_data", args={"data": {"x": [1]}})]
        for _ in range(n):
            nodes.append(Node("identity", inputs=[nodes[-1]]))
        return nodes

    def test_collect_subgraph(self):
        nodes = self.chain(3)
        sub = collect_subgraph([nodes[-1]])
        assert {n.id for n in sub} == {n.id for n in nodes}

    def test_topological_order_dependencies_first(self):
        nodes = self.chain(5)
        order = topological_order([nodes[-1]])
        positions = {n.id: i for i, n in enumerate(order)}
        for parent, child in zip(nodes, nodes[1:]):
            assert positions[parent.id] < positions[child.id]

    def test_diamond_topology(self):
        src = Node("from_data", args={"data": {"x": [1]}})
        left = Node("identity", inputs=[src])
        right = Node("identity", inputs=[src])
        join = Node("concat", inputs=[left, right])
        order = topological_order([join])
        assert order[0] is src
        assert order[-1] is join
        assert len(order) == 4

    def test_deep_chain_no_recursion_error(self):
        nodes = self.chain(5000)
        assert len(topological_order([nodes[-1]])) == 5001

    def test_cycle_detected(self):
        a = Node("identity", inputs=[])
        b = Node("identity", inputs=[a])
        a.inputs = [b]
        with pytest.raises(ValueError, match="cycle"):
            topological_order([b])

    def test_consumer_counts(self):
        src = Node("from_data", args={"data": {}})
        c1 = Node("identity", inputs=[src])
        c2 = Node("identity", inputs=[src])
        counts = consumer_counts([src, c1, c2])
        assert counts[src.id] == 2

    def test_order_deps_in_subgraph(self):
        first = Node("print", args={"segments": []})
        second = Node("print", args={"segments": []}, order_deps=[first])
        sub = collect_subgraph([second])
        assert {n.id for n in sub} == {first.id, second.id}

    def test_to_dot_renders_nodes_and_edges(self):
        nodes = self.chain(2)
        dot = to_dot([nodes[-1]])
        assert "digraph" in dot
        assert dot.count("->") == 2


class TestExecutor:
    def test_simple_chain_executes(self):
        data = Node("from_data", args={"data": {"x": [1, 2, 3]}})
        col = Node("getitem_column", inputs=[data], args={"column": "x"})
        agg = Node("series_agg", inputs=[col], args={"func": "sum"})
        result = Executor(PandasBackend()).execute([agg])
        assert result == [6]

    def test_intermediate_results_cleared(self):
        data = Node("from_data", args={"data": {"x": [1, 2]}})
        col = Node("getitem_column", inputs=[data], args={"column": "x"})
        agg = Node("series_agg", inputs=[col], args={"func": "sum"})
        Executor(PandasBackend()).execute([agg])
        assert data.result is None  # released after its consumers ran
        assert col.result is None
        assert agg.result == 3

    def test_persisted_results_survive(self):
        data = Node("from_data", args={"data": {"x": [1, 2]}})
        data.persist = True
        col = Node("getitem_column", inputs=[data], args={"column": "x"})
        agg = Node("series_agg", inputs=[col], args={"func": "sum"})
        Executor(PandasBackend()).execute([agg])
        assert isinstance(data.result, DataFrame)

    def test_cached_results_reused(self):
        data = Node("from_data", args={"data": {"x": [5]}})
        data.set_result(DataFrame({"x": [99]}))
        data.persist = True
        col = Node("getitem_column", inputs=[data], args={"column": "x"})
        agg = Node("series_agg", inputs=[col], args={"func": "sum"})
        result = Executor(PandasBackend()).execute([agg])
        assert result == [99]  # came from cache, not args

    def test_shared_input_executes_once(self):
        calls = []

        class CountingBackend(PandasBackend):
            def apply(self, node, inputs):
                calls.append(node.op)
                return super().apply(node, inputs)

        data = Node("from_data", args={"data": {"x": [1]}})
        c1 = Node("getitem_column", inputs=[data], args={"column": "x"})
        c2 = Node("getitem_column", inputs=[data], args={"column": "x"})
        s1 = Node("series_agg", inputs=[c1], args={"func": "sum"})
        s2 = Node("series_agg", inputs=[c2], args={"func": "sum"})
        Executor(CountingBackend()).execute([s1, s2])
        assert calls.count("from_data") == 1

    def test_multiple_roots_all_returned(self):
        data = Node("from_data", args={"data": {"x": [1, 2]}})
        col = Node("getitem_column", inputs=[data], args={"column": "x"})
        s = Node("series_agg", inputs=[col], args={"func": "sum"})
        m = Node("series_agg", inputs=[col], args={"func": "max"})
        out = Executor(PandasBackend()).execute([s, m])
        assert out == [3, 2]
