"""Unit tests for the dataflow analyses: LVA, LAA, LDA, read-only."""

from repro.analysis.scirpy import lower_source
from repro.analysis.dataflow import (
    Kind,
    infer_kinds,
    live_attributes,
    live_dataframes,
    live_variables,
    mutated_columns,
)
from repro.analysis.dataflow.frames import WILDCARD, module_aliases


def analyze(source):
    cfg, tree = lower_source(source)
    pandas_alias, external = module_aliases(tree)
    kinds = infer_kinds(cfg, pandas_alias)
    return cfg, tree, pandas_alias, external, kinds


def read_csv_out_live(source, var="df"):
    """LAA Out facts at the read_csv assignment of ``var``."""
    cfg, tree, alias, _, kinds = analyze(source)
    laa = live_attributes(cfg, kinds, alias)
    import ast

    for stmt in cfg.statements():
        node = stmt.node
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == var
            and isinstance(node.value, ast.Call)
            and "read_csv" in ast.unparse(node.value)
        ):
            return {c for (v, c) in laa.stmt_out[stmt.id] if v == var}
    raise AssertionError("read_csv assignment not found")


HEADER = "import repro.lazyfatpandas.pandas as pd\n"


class TestModuleAliases:
    def test_pandas_alias_detected(self):
        _, tree, alias, external, _ = analyze(HEADER + "x = 1\n")
        assert alias == "pd"
        assert external == {}

    def test_plain_pandas_detected(self):
        _, tree, alias, _, _ = analyze("import pandas as pd\nx = 1\n")
        assert alias == "pd"

    def test_external_modules_detected(self):
        src = HEADER + "import repro.workloads.plotlib as plt\nimport os\n"
        _, _, _, external, _ = analyze(src)
        assert "plt" in external
        assert "os" in external

    def test_lazy_safe_not_external(self):
        src = HEADER + "from repro.lazyfatpandas.func import print\n"
        _, _, _, external, _ = analyze(src)
        assert external == {}


class TestKindInference:
    def test_read_csv_is_frame(self):
        _, _, _, _, kinds = analyze(HEADER + "df = pd.read_csv('x.csv')\n")
        assert kinds["df"] == Kind.FRAME

    def test_column_is_series(self):
        src = HEADER + "df = pd.read_csv('x.csv')\ns = df['a']\nt = df.b\n"
        _, _, _, _, kinds = analyze(src)
        assert kinds["s"] == Kind.SERIES
        assert kinds["t"] == Kind.SERIES

    def test_filter_is_frame(self):
        src = HEADER + "df = pd.read_csv('x.csv')\ng = df[df.a > 0]\n"
        _, _, _, _, kinds = analyze(src)
        assert kinds["g"] == Kind.FRAME

    def test_aggregate_is_scalar(self):
        src = HEADER + "df = pd.read_csv('x.csv')\nm = df.a.mean()\n"
        _, _, _, _, kinds = analyze(src)
        assert kinds["m"] == Kind.SCALAR

    def test_groupby_chain_is_series(self):
        src = (
            HEADER
            + "df = pd.read_csv('x.csv')\n"
            + "g = df.groupby(['k'])['v'].sum()\n"
        )
        _, _, _, _, kinds = analyze(src)
        assert kinds["g"] == Kind.SERIES

    def test_derived_frame_through_loop(self):
        src = (
            HEADER
            + "df = pd.read_csv('x.csv')\n"
            + "for i in range(3):\n"
            + "    df = df[df.a > i]\n"
        )
        _, _, _, _, kinds = analyze(src)
        assert kinds["df"] == Kind.FRAME


class TestLiveVariables:
    def test_used_variable_live_before_use(self):
        cfg, *_ = analyze("a = 1\nb = a + 1\n")
        lva = live_variables(cfg)
        stmts = list(cfg.statements())
        assert "a" in lva.stmt_out[stmts[0].id]

    def test_dead_variable_not_live(self):
        cfg, *_ = analyze("a = 1\nb = 2\nprint(b)\n")
        lva = live_variables(cfg)
        stmts = list(cfg.statements())
        assert "a" not in lva.stmt_out[stmts[0].id]

    def test_loop_keeps_variable_live(self):
        cfg, *_ = analyze("t = 0\nfor i in range(3):\n    t = t + i\nprint(t)\n")
        lva = live_variables(cfg)
        stmts = list(cfg.statements())
        assert "t" in lva.stmt_out[stmts[0].id]


class TestLiveAttributeAnalysis:
    def test_figure3_live_columns(self):
        """The paper's running example: exactly 3 of the columns live."""
        src = (
            HEADER
            + "df = pd.read_csv('data.csv', parse_dates=['tpep_pickup_datetime'])\n"
            + "df = df[df.fare_amount > 0]\n"
            + "df['day'] = df.tpep_pickup_datetime.dt.dayofweek\n"
            + "df = df.groupby(['day'])['passenger_count'].sum()\n"
            + "print(df)\n"
        )
        live = read_csv_out_live(src)
        assert live == {"fare_amount", "tpep_pickup_datetime", "passenger_count"}

    def test_print_whole_frame_is_wildcard(self):
        src = HEADER + "df = pd.read_csv('d.csv')\nprint(df)\n"
        assert WILDCARD in read_csv_out_live(src)

    def test_print_head_ignored(self):
        src = (
            HEADER
            + "df = pd.read_csv('d.csv')\n"
            + "print(df.head())\n"
            + "x = df['a'].sum()\nprint(x)\n"
        )
        assert read_csv_out_live(src) == {"a"}

    def test_describe_info_ignored(self):
        src = (
            HEADER
            + "df = pd.read_csv('d.csv')\n"
            + "df.info()\n"
            + "print(df.describe())\n"
            + "x = df['a'].sum()\nprint(x)\n"
        )
        assert read_csv_out_live(src) == {"a"}

    def test_derived_frame_transfers_liveness(self):
        src = (
            HEADER
            + "df = pd.read_csv('d.csv')\n"
            + "small = df[df.flag > 0]\n"
            + "print(small['value'].sum())\n"
        )
        assert read_csv_out_live(src) == {"flag", "value"}

    def test_assigned_column_is_killed(self):
        src = (
            HEADER
            + "df = pd.read_csv('d.csv')\n"
            + "df['derived'] = df.base * 2\n"
            + "print(df['derived'].sum())\n"
        )
        live = read_csv_out_live(src)
        assert "base" in live
        assert "derived" not in live

    def test_drop_removes_requirement(self):
        src = (
            HEADER
            + "df = pd.read_csv('d.csv')\n"
            + "small = df.drop(columns=['junk'])\n"
            + "print(small)\n"
        )
        # print(small) makes all of small live, which excludes junk... but
        # conservatively maps back through drop as wildcard-free only for
        # known columns; the wildcard from print(small) keeps this
        # conservative.
        live = read_csv_out_live(src)
        assert WILDCARD in live or "junk" not in live

    def test_aggregation_kills_other_columns(self):
        src = (
            HEADER
            + "df = pd.read_csv('d.csv')\n"
            + "g = df.groupby(['k'])['v'].sum()\nprint(g)\n"
        )
        assert read_csv_out_live(src) == {"k", "v"}

    def test_unknown_method_is_conservative(self):
        src = (
            HEADER
            + "df = pd.read_csv('d.csv')\n"
            + "out = df.pivot_table()\nprint(out)\n"
        )
        assert WILDCARD in read_csv_out_live(src)

    def test_frame_passed_to_function_is_wildcard(self):
        src = (
            HEADER
            + "def f(x):\n    return x\n"
            + "df = pd.read_csv('d.csv')\n"
            + "out = f(df)\nprint(out)\n"
        )
        assert WILDCARD in read_csv_out_live(src)

    def test_branch_merges_uses(self):
        src = (
            HEADER
            + "import os\n"
            + "df = pd.read_csv('d.csv')\n"
            + "if os.environ.get('X'):\n"
            + "    print(df['a'].sum())\n"
            + "else:\n"
            + "    print(df['b'].sum())\n"
        )
        assert read_csv_out_live(src) == {"a", "b"}

    def test_sort_values_key_is_live(self):
        src = (
            HEADER
            + "df = pd.read_csv('d.csv')\n"
            + "s = df.sort_values('key')\n"
            + "print(s['value'].sum())\n"
        )
        assert read_csv_out_live(src) == {"key", "value"}


class TestLDAAndReadOnly:
    def test_live_dataframes_at_boundary(self):
        src = (
            HEADER
            + "import repro.workloads.plotlib as plt\n"
            + "df = pd.read_csv('d.csv')\n"
            + "agg = df.groupby(['k'])['v'].sum()\n"
            + "plt.plot(agg)\n"
            + "m = df['v'].mean()\n"
            + "print(m)\n"
        )
        cfg, tree, alias, _, kinds = analyze(src)
        lda = live_dataframes(cfg, kinds)
        import ast

        plot_stmt = next(
            s for s in cfg.statements()
            if s.node is not None and "plt.plot" in ast.unparse(s.node)
        )
        assert "df" in lda.stmt_out[plot_stmt.id]

    def test_dead_frame_not_live(self):
        src = (
            HEADER
            + "df = pd.read_csv('d.csv')\n"
            + "x = df['v'].sum()\n"
            + "print(x)\n"
        )
        cfg, tree, alias, _, kinds = analyze(src)
        lda = live_dataframes(cfg, kinds)
        import ast

        print_stmt = next(
            s for s in cfg.statements()
            if s.node is not None and ast.unparse(s.node).startswith("print")
        )
        assert "df" not in lda.stmt_out[print_stmt.id]

    def test_mutated_columns_direct(self):
        src = (
            HEADER
            + "df = pd.read_csv('d.csv')\n"
            + "df['new'] = df.a + 1\n"
        )
        cfg, tree, alias, _, kinds = analyze(src)
        assert mutated_columns(cfg, kinds)["df"] == {"new"}

    def test_mutation_through_alias_taints_source(self):
        src = (
            HEADER
            + "df = pd.read_csv('d.csv')\n"
            + "df2 = df[df.a > 0]\n"
            + "df2['patched'] = 1\n"
        )
        cfg, tree, alias, _, kinds = analyze(src)
        mutated = mutated_columns(cfg, kinds)
        assert "patched" in mutated["df"]

    def test_no_mutations(self):
        src = HEADER + "df = pd.read_csv('d.csv')\nprint(df)\n"
        cfg, tree, alias, _, kinds = analyze(src)
        assert mutated_columns(cfg, kinds)["df"] == set()
