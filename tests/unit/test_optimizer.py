"""Unit tests for the runtime optimizer rules (section 3)."""

import numpy as np
import pytest

import repro.lazyfatpandas.pandas as lfp
from repro.core.optimizer import (
    apply_metadata_hints,
    eliminate_common_subexpressions,
    persist_shared_nodes,
    push_down_predicates,
    push_down_projections,
)
from repro.core.optimizer.predicate_pushdown import structurally_equal
from repro.core.session import current_session, reset_root_session
from repro.graph import Node, collect_subgraph
from repro.metastore import MetaStore


@pytest.fixture(autouse=True)
def _pandas_backend():
    lfp.BACKEND_ENGINE = lfp.BackendEngines.PANDAS
    reset_root_session("pandas")
    yield
    lfp.BACKEND_ENGINE = lfp.BackendEngines.DASK


def _ops_below(root, op):
    return [n for n in collect_subgraph([root]) if n.op == op]


class TestPredicatePushdown:
    def test_filter_moves_below_setitem(self, taxi_csv):
        df = lfp.read_csv(taxi_csv, parse_dates=["tpep_pickup_datetime"])
        df["day"] = df.tpep_pickup_datetime.dt.dayofweek
        filtered = df[df.fare_amount > 0]
        root = filtered.node
        swaps = push_down_predicates([root])
        assert swaps >= 1
        # after pushdown the setitem consumes a filter, not the raw read
        setitems = _ops_below(root, "setitem")
        assert any(s.inputs[0].op == "filter" for s in setitems)

    def test_pushdown_result_is_correct(self, taxi_csv):
        from repro.frame import read_csv

        df = lfp.read_csv(taxi_csv, parse_dates=["tpep_pickup_datetime"])
        df["day"] = df.tpep_pickup_datetime.dt.dayofweek
        filtered = df[df.fare_amount > 0]
        result = filtered.groupby(["day"])["passenger_count"].sum().compute()

        eager = read_csv(taxi_csv, parse_dates=["tpep_pickup_datetime"])
        eager["day"] = eager.tpep_pickup_datetime.dt.dayofweek
        expected = (
            eager[eager.fare_amount > 0]
            .groupby(["day"])["passenger_count"]
            .sum()
        )
        assert np.array_equal(
            np.sort(result.values), np.sort(expected.values)
        )

    def test_not_pushed_below_groupby(self, taxi_csv):
        df = lfp.read_csv(taxi_csv)
        agg = df.groupby(["vendor"], as_index=False).agg({"fare_amount": "sum"})
        filtered = agg[agg.fare_amount > 100.0]
        swaps = push_down_predicates([filtered.node])
        assert swaps == 0

    def test_not_pushed_below_merge(self):
        left = lfp.DataFrame({"k": [1, 2], "v": [1.0, 2.0]})
        right = lfp.DataFrame({"k": [1], "w": [5.0]})
        joined = left.merge(right, on="k")
        filtered = joined[joined.w > 0]
        assert push_down_predicates([filtered.node]) == 0

    def test_not_pushed_when_setitem_modifies_used_column(self, taxi_csv):
        df = lfp.read_csv(taxi_csv)
        df["fare_amount"] = df.fare_amount * 2  # modifies the filter column
        filtered = df[df.fare_amount > 0]
        setitem_node = df.node
        push_down_predicates([filtered.node])
        # the setitem must still consume the read directly
        assert setitem_node.inputs[0].op == "read_csv"

    def test_not_pushed_when_intermediate_has_other_consumer(self, taxi_csv):
        df = lfp.read_csv(taxi_csv)
        df["k"] = df.passenger_count + 1
        other_use = df.k.sum()  # second consumer of the setitem
        filtered = df[df.fare_amount > 0]
        push_down_predicates([filtered.node, other_use.node])
        assert df.node.inputs[0].op == "read_csv"

    def test_same_filter_multi_parent_merged(self, taxi_csv):
        df = lfp.read_csv(taxi_csv)
        df["k"] = df.passenger_count + 1
        a = df[df.fare_amount > 0]
        b = df[df.fare_amount > 0]
        merged = push_down_predicates([a.node, b.node])
        assert merged >= 1
        assert df.node.inputs[0].op == "filter"

    def test_conjunction_pushed_for_different_filters(self, taxi_csv):
        df = lfp.read_csv(taxi_csv)
        df["k"] = df.passenger_count + 1
        a = df[df.fare_amount > 0]
        b = df[df.tip_amount > 1]
        push_down_predicates([a.node, b.node])
        pushed = df.node.inputs[0]
        assert pushed.op == "filter"
        assert pushed.inputs[1].args.get("op") == "&"

    def test_structural_equality(self, taxi_csv):
        df = lfp.read_csv(taxi_csv)
        m1 = (df.fare_amount > 0).node
        m2 = (df.fare_amount > 0).node
        m3 = (df.fare_amount > 1).node
        assert structurally_equal(m1, m2)
        assert not structurally_equal(m1, m3)


class TestCSE:
    def test_identical_chains_merge(self, taxi_csv):
        df = lfp.read_csv(taxi_csv)
        a = df[df.fare_amount > 0].passenger_count.sum()
        b = df[df.fare_amount > 0].passenger_count.sum()
        merged = eliminate_common_subexpressions([a.node, b.node])
        assert merged >= 2

    def test_different_predicates_not_merged(self, taxi_csv):
        df = lfp.read_csv(taxi_csv)
        a = df[df.fare_amount > 0].node
        b = df[df.fare_amount > 1].node
        eliminate_common_subexpressions([a, b])
        assert a is not b
        assert a.inputs[1] is not b.inputs[1]

    def test_udf_nodes_never_merge(self):
        df = lfp.DataFrame({"x": [1]})
        a = df.x.map(lambda v: v).node
        b = df.x.map(lambda v: v).node
        eliminate_common_subexpressions([a, b])
        # the identical getitem below may merge; the UDF maps must not
        maps = [n for n in collect_subgraph([a, b]) if n.op == "series_map"]
        assert len(maps) == 2

    def test_prints_never_merge(self):
        p1 = Node("print", args={"segments": []})
        p2 = Node("print", args={"segments": []})
        assert eliminate_common_subexpressions([p1, p2]) == 0

    def test_persist_shared_nodes_marks_multi_consumer_frames(self, taxi_csv):
        df = lfp.read_csv(taxi_csv)
        filtered = df[df.fare_amount > 0]
        a = filtered.passenger_count.sum()
        b = filtered.tip_amount.sum()
        marked = persist_shared_nodes([a.node, b.node])
        assert filtered.node in marked

    def test_persist_shared_ignores_single_consumer(self, taxi_csv):
        df = lfp.read_csv(taxi_csv)
        filtered = df[df.fare_amount > 0]
        a = filtered.passenger_count.sum()
        marked = persist_shared_nodes([a.node])
        assert filtered.node not in marked


class TestProjectionPushdown:
    def test_usecols_inferred_for_aggregation(self, taxi_csv):
        df = lfp.read_csv(taxi_csv)
        total = df.groupby(["vendor"])["fare_amount"].sum()
        narrowed = push_down_projections([total.node])
        assert narrowed == 1
        read = _ops_below(total.node, "read_csv")[0]
        assert set(read.args["usecols"]) == {"vendor", "fare_amount"}

    def test_setitem_column_not_required_from_source(self, taxi_csv):
        df = lfp.read_csv(taxi_csv)
        df["extra"] = df.fare_amount * 2
        out = df.groupby(["vendor"])["extra"].sum()
        push_down_projections([out.node])
        read = _ops_below(out.node, "read_csv")[0]
        assert "extra" not in read.args["usecols"]
        assert "fare_amount" in read.args["usecols"]

    def test_whole_frame_root_blocks_projection(self, taxi_csv):
        df = lfp.read_csv(taxi_csv)
        filtered = df[df.fare_amount > 0]
        assert push_down_projections([filtered.node]) == 0
        assert filtered.node.inputs[0].args.get("usecols") is None

    def test_head_print_heuristic_allows_projection(self, taxi_csv):
        from repro.lazyfatpandas.func import print as lazy_print

        df = lfp.read_csv(taxi_csv)
        lazy_print(df.head())
        total = df.groupby(["vendor"])["fare_amount"].sum()
        session = current_session()
        roots = list(session.pending_prints) + [total.node]
        narrowed = push_down_projections(roots)
        assert narrowed == 1
        session.pending_prints.clear()

    def test_print_whole_frame_blocks_projection(self, taxi_csv):
        from repro.lazyfatpandas.func import print as lazy_print

        df = lfp.read_csv(taxi_csv)
        lazy_print(df)
        total = df.groupby(["vendor"])["fare_amount"].sum()
        session = current_session()
        roots = list(session.pending_prints) + [total.node]
        assert push_down_projections(roots) == 0
        session.pending_prints.clear()

    def test_existing_usecols_untouched(self, taxi_csv):
        df = lfp.read_csv(taxi_csv, usecols=["vendor", "fare_amount", "tip_amount"])
        total = df.groupby(["vendor"])["fare_amount"].sum()
        push_down_projections([total.node])
        read = _ops_below(total.node, "read_csv")[0]
        assert set(read.args["usecols"]) == {"vendor", "fare_amount", "tip_amount"}

    def test_rename_maps_requirements_back(self, taxi_csv):
        df = lfp.read_csv(taxi_csv)
        renamed = df.rename(columns={"fare_amount": "fare"})
        out = renamed.groupby(["vendor"])["fare"].sum()
        push_down_projections([out.node])
        read = _ops_below(out.node, "read_csv")[0]
        assert "fare_amount" in read.args["usecols"]


class TestMetadataOptimization:
    def test_dtype_hints_injected(self, make_csv, tmp_path):
        path = make_csv({"cat": ["a", "b"] * 100, "num": list(range(200))})
        store = MetaStore(str(tmp_path / "ms"))
        store.compute_and_store(path, sample_rows=None)
        session = current_session()
        session.metastore = store

        df = lfp.read_csv(path)
        total_series = df.groupby(["cat"])["num"].sum()
        from repro.core.optimizer import apply_metadata_hints

        updated = apply_metadata_hints([total_series.node], store)
        assert updated == 1
        read_args = df.node.args
        assert read_args["dtype"]["num"] == "int64"
        assert read_args["dtype"]["cat"] == "category"
        assert total_series.compute().values.sum() == sum(range(200))

    def test_mutated_column_not_category(self, make_csv, tmp_path):
        path = make_csv({"cat": ["a", "b"] * 100, "num": list(range(200))})
        store = MetaStore(str(tmp_path / "ms"))
        store.compute_and_store(path, sample_rows=None)
        current_session().metastore = store

        df = lfp.read_csv(path)
        df["cat"] = df.cat.str.upper()  # mutation: category unsafe
        out = df.groupby(["cat"])["num"].sum()
        from repro.core.optimizer import apply_metadata_hints

        apply_metadata_hints([out.node], store)
        dtype = df.node.inputs[0].args.get("dtype") or {}
        assert dtype.get("cat") != "category"
        assert dtype.get("num") == "int64"

    def test_static_mutated_cols_respected(self, make_csv, tmp_path):
        path = make_csv({"cat": ["a", "b"] * 100, "num": list(range(200))})
        store = MetaStore(str(tmp_path / "ms"))
        store.compute_and_store(path, sample_rows=None)
        current_session().metastore = store

        df = lfp.read_csv(path, mutated_cols=["cat"])
        out = df.groupby(["cat"])["num"].sum()
        from repro.core.optimizer import apply_metadata_hints

        apply_metadata_hints([out.node], store)
        dtype = df.node.args.get("dtype") or {}
        assert dtype.get("cat") != "category"

    def test_no_metastore_is_noop(self, taxi_csv):
        from repro.core.optimizer import apply_metadata_hints

        df = lfp.read_csv(taxi_csv)
        out = df.fare_amount.sum()
        assert apply_metadata_hints([out.node], None) == 0
        assert "dtype" not in df.node.args


class TestFlagToggles:
    def test_flags_disable_rules(self, taxi_csv):
        session = current_session()
        session.flags.predicate_pushdown = False
        session.flags.projection_pushdown = False
        session.flags.common_subexpression = False
        df = lfp.read_csv(taxi_csv)
        df["day"] = df.passenger_count + 1
        filtered = df[df.fare_amount > 0]
        filtered.day.sum().compute()
        report = session.last_optimize_report
        assert report["pushdown"] == 0
        assert report["projection"] == 0
        assert report["cse"] == 0
