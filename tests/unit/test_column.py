"""Unit tests for Column: storage, dtypes, category encoding, accounting."""

import gc
import pickle

import numpy as np
from repro.frame.column import NA_CODE, Column
from repro.frame.dtypes import CategoricalDtype, normalize_dtype
from repro.memory import memory_manager


class TestConstruction:
    def test_int_inference(self):
        col = Column.from_values([1, 2, 3])
        assert col.values.dtype == np.int64

    def test_float_inference(self):
        col = Column.from_values([1.5, 2.5])
        assert col.values.dtype == np.float64

    def test_string_becomes_object(self):
        col = Column.from_values(["a", "b"])
        assert col.values.dtype == object

    def test_unicode_array_coerced_to_object(self):
        col = Column.from_values(np.array(["x", "y"]))
        assert col.values.dtype == object

    def test_explicit_dtype(self):
        col = Column.from_values([1, 2], dtype="float64")
        assert col.values.dtype == np.float64

    def test_from_values_passthrough_column(self):
        col = Column.from_values([1, 2])
        assert Column.from_values(col) is col

    def test_datetime_normalized_to_ns(self):
        arr = np.array(["2024-01-01"], dtype="datetime64[D]")
        col = Column.from_values(arr)
        assert col.values.dtype == np.dtype("datetime64[ns]")


class TestCategory:
    def test_encode_decode_roundtrip(self):
        values = np.array(["b", "a", "b", None], dtype=object)
        col = Column.from_strings_as_category(values)
        assert col.is_category
        decoded = col.to_array()
        assert list(decoded) == ["b", "a", "b", None]

    def test_na_uses_na_code(self):
        col = Column.from_strings_as_category(
            np.array(["x", None], dtype=object)
        )
        assert col.values[1] == NA_CODE

    def test_categories_are_unique_sorted(self):
        col = Column.from_strings_as_category(
            np.array(["c", "a", "c", "b"], dtype=object)
        )
        assert list(col.categories) == ["a", "b", "c"]

    def test_astype_category(self):
        col = Column.from_values(["x", "y", "x"]).astype("category")
        assert col.is_category
        assert col.nunique() == 2

    def test_astype_back_to_object(self):
        col = Column.from_values(["x", "y"]).astype("category").astype("object")
        assert not col.is_category
        assert list(col.values) == ["x", "y"]

    def test_dtype_reports_categorical(self):
        col = Column.from_values(["x"], dtype="category")
        assert isinstance(col.dtype, CategoricalDtype)
        assert col.dtype == "category"

    def test_filter_preserves_encoding(self):
        col = Column.from_values(["a", "b", "a"], dtype="category")
        out = col.filter(np.array([True, False, True]))
        assert out.is_category
        assert list(out.to_array()) == ["a", "a"]

    def test_concat_categorical_stays_encoded(self):
        a = Column.from_values(["x", "y"], dtype="category")
        b = Column.from_values(["y", "z"], dtype="category")
        merged = Column.concat([a, b])
        assert merged.is_category
        assert list(merged.to_array()) == ["x", "y", "y", "z"]

    def test_concat_mixed_decodes(self):
        a = Column.from_values(["x"], dtype="category")
        b = Column.from_values(["y"])
        merged = Column.concat([a, b])
        assert not merged.is_category
        assert list(merged.values) == ["x", "y"]


class TestSelection:
    def test_take(self):
        col = Column.from_values([10, 20, 30])
        assert list(col.take(np.array([2, 0])).values) == [30, 10]

    def test_filter(self):
        col = Column.from_values([1, 2, 3, 4])
        out = col.filter(np.array([True, False, True, False]))
        assert list(out.values) == [1, 3]

    def test_slice(self):
        col = Column.from_values([1, 2, 3, 4])
        assert list(col.slice(1, 3).values) == [2, 3]


class TestMissing:
    def test_isna_float(self):
        col = Column.from_values([1.0, np.nan])
        assert list(col.isna()) == [False, True]

    def test_isna_object(self):
        col = Column.from_values(np.array(["a", None], dtype=object))
        assert list(col.isna()) == [False, True]

    def test_isna_int_never(self):
        col = Column.from_values([1, 2])
        assert not col.isna().any()

    def test_isna_datetime(self):
        col = Column.from_values(
            np.array(["2024-01-01", "NaT"], dtype="datetime64[ns]")
        )
        assert list(col.isna()) == [False, True]

    def test_isna_category(self):
        col = Column.from_strings_as_category(
            np.array(["a", None], dtype=object)
        )
        assert list(col.isna()) == [False, True]

    def test_fillna_float(self):
        col = Column.from_values([1.0, np.nan]).fillna(0.0)
        assert list(col.values) == [1.0, 0.0]

    def test_fillna_noop_without_na(self):
        col = Column.from_values([1.0, 2.0])
        assert col.fillna(9.9) is col

    def test_fillna_category(self):
        col = Column.from_values(
            np.array(["a", None], dtype=object), dtype="category"
        ).fillna("z")
        assert list(col.to_array()) == ["a", "z"]


class TestStats:
    def test_unique_numeric(self):
        col = Column.from_values([3, 1, 3, 2])
        assert list(col.unique_values()) == [1, 2, 3]

    def test_unique_object_skips_none(self):
        col = Column.from_values(np.array(["b", None, "a"], dtype=object))
        assert list(col.unique_values()) == ["a", "b"]

    def test_nunique(self):
        assert Column.from_values([1, 1, 2]).nunique() == 2


class TestMemoryAccounting:
    def test_numeric_column_charges_raw_bytes(self):
        before = memory_manager.live
        col = Column.from_values(np.arange(100, dtype=np.int64))
        assert memory_manager.live - before == 800
        del col

    def test_object_column_charges_pointers_and_payload(self):
        before = memory_manager.live
        col = Column.from_values(np.array(["abcd"] * 10, dtype=object))
        # 10 pointers (80 B) plus payload (10 * (49 + 4)).
        assert memory_manager.live - before == 80 + 10 * 53
        del col

    def test_derived_column_shares_payload(self):
        col = Column.from_values(np.array(["abcd"] * 100, dtype=object))
        before = memory_manager.live
        derived = col.filter(np.ones(100, dtype=bool))
        # only fresh pointers are charged, not the string payload
        assert memory_manager.live - before == 800
        del derived

    def test_payload_released_when_last_sharer_dies(self):
        gc.collect()  # flush unrelated garbage so deltas are exact
        col = Column.from_values(np.array(["abcd"] * 10, dtype=object))
        derived = col.take(np.arange(10))
        pointers = 80       # 10 rows x 8 B
        payload = 10 * 53   # 10 x (49 overhead + 4 chars)
        baseline = memory_manager.live
        del col
        gc.collect()
        # only the source's pointer buffer frees; the payload survives
        # via the derived column
        assert memory_manager.live == baseline - pointers
        del derived
        gc.collect()
        assert memory_manager.live == baseline - 2 * pointers - payload

    def test_pickle_roundtrip_reregisters(self):
        col = Column.from_values([1, 2, 3])
        data = pickle.dumps(col)
        before = memory_manager.live
        loaded = pickle.loads(data)
        assert memory_manager.live == before + 24
        assert list(loaded.values) == [1, 2, 3]

    def test_pickle_categorical(self):
        col = Column.from_values(["a", "b", "a"], dtype="category")
        loaded = pickle.loads(pickle.dumps(col))
        assert loaded.is_category
        assert list(loaded.to_array()) == ["a", "b", "a"]


class TestDtypeHelpers:
    def test_normalize_aliases(self):
        assert normalize_dtype("int") == np.dtype("int64")
        assert normalize_dtype(float) == np.dtype("float64")
        assert normalize_dtype("str") == np.dtype(object)
        assert normalize_dtype("datetime64") == np.dtype("datetime64[ns]")

    def test_normalize_category(self):
        assert isinstance(normalize_dtype("category"), CategoricalDtype)

    def test_categorical_dtype_equality(self):
        assert CategoricalDtype() == "category"
        assert CategoricalDtype(["a"]) == CategoricalDtype(["a"])
        assert CategoricalDtype(["a"]) != CategoricalDtype(["b"])
