"""Static plan analyzer: schema inference, lint rules, surfacing.

Three layers under test:

- **coverage**: every operator registered in ``OPS`` must have a schema
  transfer function (a new op without one fails the sweep loudly), and
  the tightened ``used_attrs`` declarations are pinned so they cannot
  silently regress to over-claiming ``ALL_COLUMNS``,
- **rules**: one positive and one clean-negative case per built-in rule
  (LFP001..LFP006), plus registry mechanics,
- **surfacing**: ``validate()`` and strict ``collect()`` raise *before*
  any execution machinery runs, warn-mode emits
  :class:`PlanDiagnosticsWarning`, and ``explain(diagnostics=True)``
  renders the deterministic golden report.
"""

import os
import warnings

import numpy as np
import pytest

import repro.lazyfatpandas.pandas as lfp
from repro.analysis.plan import (
    DEFAULT_ANALYZERS,
    AnalyzerRegistry,
    PlanValidationError,
    RuleSpec,
    Severity,
    analyze_plan,
    infer_schemas_for_roots,
    render_diagnostics,
)
from repro.analysis.plan.diagnostics import PlanDiagnosticsWarning
from repro.analysis.plan.lint import LintSession, _LintValue
from repro.analysis.plan.schema import SCHEMA_RULES
from repro.core.session import Session
from repro.frame import DataFrame
from repro.graph.node import ALL_COLUMNS, OPS, Node
from repro.io import write_dataset


@pytest.fixture
def trips_csv(make_csv):
    n = 20
    return make_csv(
        {
            "pickup_time": np.array(
                ["2024-06-%02d 09:00:00" % (i % 28 + 1) for i in range(n)],
                dtype=object,
            ),
            "passengers": np.arange(n) % 5 + 1,
            "fare": np.round(np.linspace(1, 40, n), 2),
        },
        "trips.csv",
    )


@pytest.fixture
def sales_dataset(tmp_path):
    root = os.path.join(tmp_path, "sales_hive")
    write_dataset(
        DataFrame({
            "region": np.array(["east"] * 4 + ["west"] * 4, dtype=object),
            "amount": np.arange(8) * 10,
        }),
        root,
        partition_on="region",
    )
    return root


# ---------------------------------------------------------------------------
# Coverage: ops x schema rules, and the used_attrs contract.
# ---------------------------------------------------------------------------


class TestCoverage:
    @pytest.mark.parametrize("op", sorted(OPS))
    def test_every_op_has_a_schema_rule(self, op):
        """A newly registered operator without schema semantics must
        fail here, not degrade silently to unknown."""
        assert op in SCHEMA_RULES, (
            f"operator {op!r} has no schema transfer function; add one "
            f"in repro.analysis.plan.schema (NodeSchema.unknown() is an "
            f"acceptable explicit choice)"
        )

    def test_no_stale_schema_rules(self):
        stale = set(SCHEMA_RULES) - set(OPS)
        assert not stale, f"schema rules for unregistered ops: {stale}"

    def test_used_attrs_tightened(self, trips_csv):
        """Pin the PR's used_attrs narrowing: ops that reference no
        columns by name must claim none, and honest over-claimers must
        say ALL_COLUMNS explicitly."""
        with Session(backend="pandas"):
            df = lfp.read_csv(trips_csv)
            merged = df.merge(df, on="fare")
            assert merged.node.used_attrs() == {"fare"}
            natural = df.merge(df)
            assert natural.node.used_attrs() == {ALL_COLUMNS}
            vc = df["passengers"].value_counts()
            assert vc.node.used_attrs() == set()
            cat = lfp.concat([df, df])
            assert cat.node.used_attrs() == set()
            desc = df.describe()
            assert desc.node.used_attrs() == {ALL_COLUMNS}

    def test_every_op_declares_attr_contract(self):
        for name, spec in OPS.items():
            assert spec.mod_attrs is not None, name
            assert spec.used_attrs is not None, name


# ---------------------------------------------------------------------------
# Schema inference.
# ---------------------------------------------------------------------------


class TestSchemaInference:
    def test_quickstart_pipeline(self, trips_csv):
        with Session(backend="pandas") as session:
            df = lfp.read_csv(trips_csv, parse_dates=["pickup_time"])
            df["hour"] = df.pickup_time.dt.hour
            df = df[df.fare > 0]
            out = df.groupby(["hour"])["passengers"].sum()
            schemas = infer_schemas_for_roots([out.node], session)

            source = schemas[df.node.inputs[0].inputs[0].id]  # read_csv
            assert source.columns == ("pickup_time", "passengers", "fare")
            assert source.dtype_of("pickup_time") == "datetime64[ns]"

            frame = schemas[df.node.id]  # post-filter frame
            assert frame.columns == (
                "pickup_time", "passengers", "fare", "hour",
            )
            assert frame.dtype_of("hour") == "int64"

            result = schemas[out.node.id]
            assert result.kind == "series"
            assert result.series_name == "passengers"
            assert result.index == ("hour",)

    def test_merge_suffixing(self, make_csv):
        left = make_csv({"k": np.arange(4), "v": np.arange(4)}, "l.csv")
        right = make_csv({"k": np.arange(4), "v": np.arange(4) * 1.0,
                          "w": np.arange(4)}, "r.csv")
        with Session(backend="pandas") as session:
            merged = lfp.read_csv(left).merge(lfp.read_csv(right), on="k")
            schema = infer_schemas_for_roots(
                [merged.node], session
            )[merged.node.id]
            assert schema.columns == ("k", "v_x", "v_y", "w")

    def test_unknown_degrades_not_guesses(self, trips_csv):
        with Session(backend="pandas") as session:
            df = lfp.read_csv(trips_csv).apply(lambda f: f)
            schema = infer_schemas_for_roots(
                [df.node], session
            )[df.node.id]
            assert not schema.known
            # an unknown schema never claims a column is absent
            assert schema.has_column("anything")


# ---------------------------------------------------------------------------
# Rules: one positive + one clean-negative each.
# ---------------------------------------------------------------------------


def _codes(diagnostics):
    return [d.code for d in diagnostics]


class TestRules:
    def test_lfp001_unknown_column(self, trips_csv):
        with Session(backend="pandas") as session:
            df = lfp.read_csv(trips_csv)
            bad = df[["fare", "tip"]]
            diags = analyze_plan([bad.node], session=session)
        assert _codes(diags) == ["LFP001"]
        assert "'tip'" in diags[0].message
        assert diags[0].severity is Severity.ERROR

    def test_lfp002_filter_on_dropped(self, trips_csv):
        with Session(backend="pandas") as session:
            df = lfp.read_csv(trips_csv)
            mask = df.fare > 0
            filtered = df.drop(columns=["fare"])[mask]
            diags = analyze_plan([filtered.node], session=session)
        assert _codes(diags) == ["LFP002"]
        assert "removed" in diags[0].message

    def test_lfp003_merge_key_mismatch(self, make_csv):
        left = make_csv({"k": np.arange(4), "v": np.arange(4)}, "l.csv")
        right = make_csv(
            {"k": np.array(["a", "b", "c", "d"], dtype=object),
             "w": np.arange(4)},
            "r.csv",
        )
        with Session(backend="pandas") as session:
            merged = lfp.read_csv(left, dtype={"k": "int64"}).merge(
                lfp.read_csv(right, dtype={"k": "object"}), on="k"
            )
            diags = analyze_plan([merged.node], session=session)
        assert _codes(diags) == ["LFP003"]
        assert "numeric" in diags[0].message and "string" in diags[0].message

    def test_lfp003_silent_when_dtypes_unknown(self, make_csv):
        # bare CSV headers carry no dtypes: the rule must stay silent
        # rather than guess.
        left = make_csv({"k": np.arange(4)}, "l.csv")
        right = make_csv(
            {"k": np.array(["a", "b", "c", "d"], dtype=object)}, "r.csv"
        )
        with Session(backend="pandas") as session:
            merged = lfp.read_csv(left).merge(lfp.read_csv(right), on="k")
            assert analyze_plan([merged.node], session=session) == []

    def test_lfp004_scalar_as_frame(self, trips_csv):
        with Session(backend="pandas") as session:
            total = lfp.read_csv(trips_csv)["fare"].sum()
            # graph-construction bug, built deliberately: head of a scalar
            broken = Node("head", [total.node], {"n": 5})
            diags = analyze_plan([broken], session=session)
        assert _codes(diags) == ["LFP004"]
        assert "scalar" in diags[0].message

    def test_lfp005_dead_subgraph_session_scope_only(self, trips_csv):
        with Session(backend="pandas") as session:
            df = lfp.read_csv(trips_csv)
            used = df[df.fare > 0][["fare"]]
            dead = df[df.passengers > 2]  # built, never consumed
            # plan scope: a single plan is about to be consumed -- silent
            assert analyze_plan([dead.node], session=session) == []
            diags = analyze_plan(
                [used.node, dead.node],
                session=session,
                scope="session",
                computed_ids={used.node.id},
            )
        lfp005 = [d for d in diags if d.code == "LFP005"]
        assert len(lfp005) == 1
        assert lfp005[0].op == "filter"
        assert lfp005[0].severity is Severity.WARNING

    def test_lfp006_pushdown_blocked_hint(self, sales_dataset):
        with Session(backend="pandas") as session:
            df = lfp.scan_dataset(sales_dataset)
            hinted = df.dropna()[["amount"]]
            diags = analyze_plan([hinted.node], session=session)
        assert _codes(diags) == ["LFP006"]
        assert diags[0].op == "dropna"
        assert diags[0].severity is Severity.HINT

    def test_lfp006_silent_on_foldable_plan(self, sales_dataset):
        with Session(backend="pandas") as session:
            df = lfp.scan_dataset(sales_dataset)
            clean = df[df.amount > 10][["amount"]]
            assert analyze_plan([clean.node], session=session) == []

    def test_clean_quickstart_has_no_diagnostics(self, trips_csv):
        with Session(backend="pandas") as session:
            df = lfp.read_csv(trips_csv, parse_dates=["pickup_time"])
            df["hour"] = df.pickup_time.dt.hour
            out = df[df.fare > 0].groupby(["hour"])["passengers"].sum()
            assert analyze_plan([out.node], session=session) == []


# ---------------------------------------------------------------------------
# Registry mechanics.
# ---------------------------------------------------------------------------


class TestAnalyzerRegistry:
    def test_builtin_codes(self):
        assert DEFAULT_ANALYZERS.codes() == [
            "LFP001", "LFP002", "LFP003", "LFP004", "LFP005", "LFP006",
        ]

    def test_duplicate_registration_rejected(self):
        spec = DEFAULT_ANALYZERS.spec("LFP001")
        with pytest.raises(ValueError, match="already registered"):
            DEFAULT_ANALYZERS.register(spec)

    def test_unknown_code_lists_choices(self):
        with pytest.raises(ValueError, match="LFP001"):
            DEFAULT_ANALYZERS.spec("LFP999")

    def test_custom_rule_in_private_registry(self, trips_csv):
        def no_head(spec, ctx):
            for node in ctx.order:
                if node.op == "head":
                    yield ctx.diagnostic(spec, node, "head is banned here")

        registry = AnalyzerRegistry([RuleSpec(
            code="XYZ001", rule="no-head", severity=Severity.WARNING,
            check=no_head,
        )])
        with Session(backend="pandas") as session:
            df = lfp.read_csv(trips_csv).head(3)
            diags = analyze_plan(
                [df.node], session=session, registry=registry
            )
        assert _codes(diags) == ["XYZ001"]
        # the default registry is untouched
        assert "XYZ001" not in DEFAULT_ANALYZERS

    def test_session_scope_filter(self):
        plan_rules = {s.code for s in DEFAULT_ANALYZERS.rules(scope="plan")}
        session_rules = {
            s.code for s in DEFAULT_ANALYZERS.rules(scope="session")
        }
        assert "LFP005" not in plan_rules
        assert "LFP005" in session_rules


# ---------------------------------------------------------------------------
# Surfacing: validate / collect gate / explain / lint session.
# ---------------------------------------------------------------------------

GOLDEN_REPORT = """\
LFP001 error [unknown-column] unknown column 'tip'; N1 has columns \
['pickup_time', 'passengers', 'fare']
    at N2 getitem_columns(columns=['fare', 'tip']) <- [N1]
1 diagnostic(s): 1 error(s), 0 warning(s), 0 hint(s)"""


class TestSurfacing:
    def test_validate_raises_with_diagnostics(self, trips_csv):
        with Session(backend="pandas"):
            bad = lfp.read_csv(trips_csv)[["fare", "tip"]]
            with pytest.raises(PlanValidationError) as exc:
                bad.validate()
        assert _codes(exc.value.errors) == ["LFP001"]
        assert "unknown column 'tip'" in str(exc.value)

    def test_validate_clean_returns_diagnostics(self, trips_csv):
        with Session(backend="pandas"):
            df = lfp.read_csv(trips_csv)[["fare"]]
            assert df.validate() == []

    def test_strict_collect_raises_before_execution(self, trips_csv):
        """The gate must fire before the optimizer or scheduler touch
        the plan -- provably: the scheduler is never even constructed."""
        with Session(backend="pandas") as session:
            bad = lfp.read_csv(trips_csv)[["fare", "tip"]]

            def exploding_scheduler(*args, **kwargs):
                raise AssertionError("execution machinery was invoked")

            session.scheduler = exploding_scheduler
            with session.option_context("analysis.level", "strict"):
                with pytest.raises(PlanValidationError):
                    bad.collect()

    def test_warn_collect_warns_then_fails_downstream(self, trips_csv):
        with Session(backend="pandas"):
            bad = lfp.read_csv(trips_csv)[["fare", "tip"]]
            with warnings.catch_warnings(record=True) as rec:
                warnings.simplefilter("always")
                with pytest.raises(Exception):
                    bad.collect()  # pandas itself raises at execution
        assert any(
            issubclass(w.category, PlanDiagnosticsWarning) for w in rec
        )

    def test_off_level_skips_analysis(self, trips_csv):
        with Session(backend="pandas") as session:
            bad = lfp.read_csv(trips_csv)[["fare", "tip"]]
            with session.option_context("analysis.level", "off"):
                with warnings.catch_warnings(record=True) as rec:
                    warnings.simplefilter("always")
                    with pytest.raises(Exception):
                        bad.collect()
        assert not any(
            issubclass(w.category, PlanDiagnosticsWarning) for w in rec
        )

    def test_golden_report(self, trips_csv):
        with Session(backend="pandas") as session:
            bad = lfp.read_csv(trips_csv)[["fare", "tip"]]
            report = render_diagnostics(
                analyze_plan([bad.node], session=session)
            )
        assert report == GOLDEN_REPORT

    def test_explain_diagnostics_section(self, trips_csv):
        with Session(backend="pandas"):
            bad = lfp.read_csv(trips_csv)[["fare", "tip"]]
            text = bad.explain(diagnostics=True, optimized=False)
        assert "== diagnostics ==" in text
        assert text.split("== diagnostics ==\n")[1].strip() == GOLDEN_REPORT

    def test_explain_clean_diagnostics(self, trips_csv):
        with Session(backend="pandas"):
            df = lfp.read_csv(trips_csv)[["fare"]]
            text = df.explain(diagnostics=True, optimized=False)
        assert "(no diagnostics)" in text

    def test_render_empty(self):
        assert render_diagnostics([]) == "(no diagnostics)"


class TestAnalysisGateCache:
    """The gate memoizes on (roots, graph version): re-collecting an
    unchanged plan must not re-run analysis; building any new node
    invalidates."""

    @pytest.fixture
    def counted_analyze(self, monkeypatch):
        import repro.analysis.plan as plan_pkg

        calls = []
        real = plan_pkg.analyze_plan

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(plan_pkg, "analyze_plan", counting)
        return calls

    def test_repeat_collect_analyzes_once(self, trips_csv, counted_analyze):
        with Session(backend="pandas"):
            total = lfp.read_csv(trips_csv)["fare"].sum()
            first = total.collect()
            second = total.collect()
        assert first == second
        assert len(counted_analyze) == 1

    def test_new_node_invalidates_cache(self, trips_csv, counted_analyze):
        with Session(backend="pandas"):
            df = lfp.read_csv(trips_csv)
            total = df["fare"].sum()
            total.collect()
            df["fare2"] = df.fare * 2  # any new node: plan may differ
            total.collect()
        assert len(counted_analyze) == 2


class TestLintSession:
    def test_nothing_executes(self, trips_csv):
        with LintSession(backend="pandas") as session:
            df = lfp.read_csv(trips_csv)
            total = df["fare"].sum().collect()
            assert isinstance(total, _LintValue)
            # stub survives arithmetic and formatting
            assert f"{total + 1:.2f}" == "<lint>"
            assert not total
            diags = session.finish()
        assert diags == []

    def test_finish_reports_dead_subgraph(self, trips_csv):
        with LintSession(backend="pandas") as session:
            df = lfp.read_csv(trips_csv)
            df[df.fare > 0][["fare"]].collect()
            df[df.passengers > 2]  # dead: built, never collected
            diags = session.finish()
        assert "LFP005" in _codes(diags)
