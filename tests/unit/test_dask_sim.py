"""Unit tests for the Dask simulator: lazy partitioned execution."""

import numpy as np
import pytest

from repro.backends import BackendUnsupported, DaskBackend
from repro.backends.dask_sim.frame import DaskFrame
from repro.frame import DataFrame, read_csv
from repro.memory import memory_manager


@pytest.fixture
def backend():
    b = DaskBackend(partition_bytes=2_000)
    yield b
    b.store.clear()


@pytest.fixture
def wide_csv(make_csv):
    n = 500
    rng = np.random.default_rng(3)
    return make_csv(
        {
            "k": rng.integers(0, 20, n),
            "v": np.round(rng.random(n) * 100, 3),
            "g": np.array([f"g{i % 7}" for i in range(n)], dtype=object),
            "pad": np.array([f"pad-{i:05d}" for i in range(n)], dtype=object),
        },
        "wide.csv",
    )


class TestLazyReads:
    def test_read_is_partitioned_and_lazy(self, backend, wide_csv):
        frame = backend.read_csv(path=wide_csv)
        assert isinstance(frame, DaskFrame)
        assert frame.npartitions > 1
        assert frame.expr.kind == "read_csv"

    def test_compute_assembles_all_rows(self, backend, wide_csv):
        frame = backend.read_csv(path=wide_csv)
        assert len(frame.compute()) == 500

    def test_len_counts_without_full_concat(self, backend, wide_csv):
        assert len(backend.read_csv(path=wide_csv)) == 500

    def test_usecols_pushed_into_partitions(self, backend, wide_csv):
        frame = backend.read_csv(path=wide_csv, usecols=["k", "v"])
        out = frame.compute()
        assert out.columns == ["k", "v"]

    def test_index_col_emulated_with_set_index(self, backend, wide_csv):
        frame = backend.read_csv(path=wide_csv, index_col="pad")
        assert "pad" not in frame.columns

    def test_head_reads_leading_partitions_only(self, backend, wide_csv):
        frame = backend.read_csv(path=wide_csv)
        head = frame.head(5)
        assert isinstance(head, DataFrame)
        assert len(head) == 5


class TestBlockwise:
    def test_filter_matches_eager(self, backend, wide_csv):
        lazy = backend.read_csv(path=wide_csv)
        out = lazy[lazy["v"] > 50.0].compute()
        eager = read_csv(wide_csv)
        expected = eager[eager["v"] > 50.0]
        assert len(out) == len(expected)
        assert sorted(out["v"].to_list()) == sorted(expected["v"].to_list())

    def test_with_column(self, backend, wide_csv):
        lazy = backend.read_csv(path=wide_csv)
        lazy = lazy.with_column("double", lazy["v"] * 2)
        out = lazy.compute()
        assert np.allclose(out["double"].values, out["v"].values * 2)

    def test_setitem_mutates_wrapper(self, backend, wide_csv):
        lazy = backend.read_csv(path=wide_csv)
        lazy["flag"] = lazy["v"] > 10
        assert "flag" in lazy.columns

    def test_str_accessor(self, backend, wide_csv):
        lazy = backend.read_csv(path=wide_csv)
        out = lazy["g"].str.upper().compute()
        assert out.values[0].startswith("G")

    def test_series_methods(self, backend, wide_csv):
        lazy = backend.read_csv(path=wide_csv)
        assert lazy["k"].isin([1, 2]).compute().values.dtype == bool
        assert lazy["v"].between(10, 20).compute().values.dtype == bool
        assert (~(lazy["v"] > 50)).compute().values.dtype == bool

    def test_dropna_fillna(self, backend, make_csv):
        path = make_csv({"a": [1.0, np.nan, 3.0] * 30}, "na.csv")
        b = DaskBackend(partition_bytes=200)
        lazy = b.read_csv(path=path)
        assert len(lazy.dropna().compute()) == 60
        filled = lazy.fillna(0.0).compute()
        assert not np.isnan(filled["a"].values).any()
        b.store.clear()


class TestAggregations:
    def test_groupby_sum_matches_eager(self, backend, wide_csv):
        lazy = backend.read_csv(path=wide_csv)
        out = lazy.groupby("g")["v"].sum()
        eager = read_csv(wide_csv).groupby("g")["v"].sum()
        got = dict(zip(out.index.to_array(), np.round(out.values, 6)))
        want = dict(zip(eager.index.to_array(), np.round(eager.values, 6)))
        assert got == want

    def test_groupby_mean_decomposes(self, backend, wide_csv):
        lazy = backend.read_csv(path=wide_csv)
        out = lazy.groupby("g")["v"].mean()
        eager = read_csv(wide_csv).groupby("g")["v"].mean()
        assert np.allclose(np.sort(out.values), np.sort(eager.values))

    def test_groupby_size(self, backend, wide_csv):
        out = backend.read_csv(path=wide_csv).groupby("g").size()
        assert out.values.sum() == 500

    def test_groupby_agg_dict(self, backend, wide_csv):
        out = backend.read_csv(path=wide_csv).groupby("g").agg(
            {"v": "max", "k": "min"}
        )
        assert set(out.columns) == {"v", "k"}

    def test_scalar_reductions(self, backend, wide_csv):
        lazy = backend.read_csv(path=wide_csv)
        eager = read_csv(wide_csv)
        assert float(lazy["v"].sum().compute()) == pytest.approx(eager["v"].sum())
        assert float(lazy["v"].mean().compute()) == pytest.approx(eager["v"].mean())
        assert float(lazy["v"].min().compute()) == pytest.approx(eager["v"].min())
        assert float(lazy["v"].max().compute()) == pytest.approx(eager["v"].max())
        assert int(lazy["v"].count().compute()) == 500

    def test_nunique_and_unique(self, backend, wide_csv):
        lazy = backend.read_csv(path=wide_csv)
        assert lazy["g"].nunique() == 7
        assert len(lazy["g"].unique()) == 7

    def test_value_counts(self, backend, wide_csv):
        counts = backend.read_csv(path=wide_csv)["g"].value_counts()
        assert counts.values.sum() == 500

    def test_drop_duplicates_tree(self, backend, wide_csv):
        out = backend.read_csv(path=wide_csv).drop_duplicates(subset=["g"])
        assert len(out.compute()) == 7

    def test_nlargest_tree(self, backend, wide_csv):
        out = backend.read_csv(path=wide_csv).nlargest(3, "v").compute()
        eager = read_csv(wide_csv).nlargest(3, "v")
        assert sorted(out["v"].to_list()) == sorted(eager["v"].to_list())


class TestMerges:
    def test_broadcast_merge(self, backend, wide_csv):
        lazy = backend.read_csv(path=wide_csv)
        dim = DataFrame({"k": list(range(20)), "label": [f"L{i}" for i in range(20)]})
        out = lazy.merge(dim, on="k").compute()
        assert len(out) == 500
        assert "label" in out.columns

    def test_shuffle_merge_matches_eager(self, backend, make_csv):
        n = 300
        rng = np.random.default_rng(5)
        left_path = make_csv(
            {"k": rng.integers(0, 50, n), "v": np.arange(n)}, "left.csv"
        )
        right_path = make_csv(
            {
                "k": np.tile(np.arange(50), 10),
                "w": np.arange(500) * 10,
                "pad": np.array([f"r-{i:06d}" for i in range(500)], dtype=object),
            },
            "right.csv",
        )
        b = DaskBackend(partition_bytes=500)
        left = b.read_csv(path=left_path)
        right = b.read_csv(path=right_path)
        assert left.npartitions > 1 and right.npartitions > 1
        out = left.merge(right, on="k").compute()
        expected = read_csv(left_path).merge(read_csv(right_path), on="k")
        assert len(out) > 0
        assert len(out) == len(expected)
        assert sorted(out["w"].to_list()) == sorted(expected["w"].to_list())
        b.store.clear()

    def test_merge_tracks_columns(self, backend, wide_csv):
        lazy = backend.read_csv(path=wide_csv)
        dim = DataFrame({"k": [1], "label": ["x"]})
        out = lazy.merge(dim, on="k")
        assert "label" in out.columns


class TestUnsupportedOps:
    def test_sort_values_raises(self, backend, wide_csv):
        with pytest.raises(BackendUnsupported):
            backend.read_csv(path=wide_csv).sort_values("v")

    def test_describe_raises(self, backend, wide_csv):
        with pytest.raises(BackendUnsupported):
            backend.read_csv(path=wide_csv).describe()

    def test_iloc_raises(self, backend, wide_csv):
        with pytest.raises(BackendUnsupported):
            backend.read_csv(path=wide_csv).iloc

    def test_apply_without_meta_raises(self, backend, wide_csv):
        with pytest.raises(BackendUnsupported):
            backend.read_csv(path=wide_csv).apply(lambda r: r, axis=1)

    def test_apply_with_meta_works(self, backend, wide_csv):
        lazy = backend.read_csv(path=wide_csv)
        out = lazy.apply(lambda row: row["k"] * 2, axis=1, meta="int64")
        assert len(out.compute()) == 500


class TestPersistAndSpill:
    def test_persist_materializes(self, backend, wide_csv):
        lazy = backend.read_csv(path=wide_csv)
        pinned = lazy.persist()
        assert pinned.expr.kind == "materialized"
        assert len(pinned.compute()) == 500

    def test_spill_under_pressure_still_correct(self, make_csv):
        n = 2000
        path = make_csv(
            {
                "k": np.arange(n) % 10,
                "s": np.array([f"text-{i:07d}-xxxxxxxx" for i in range(n)], dtype=object),
            },
            "big.csv",
        )
        eager_total = read_csv(path).groupby("k")["k"].count()
        frame_bytes = read_csv(path).nbytes
        memory_manager.reset()
        memory_manager.budget = int(frame_bytes * 0.6)  # cannot hold it all
        try:
            b = DaskBackend(partition_bytes=2_000)
            lazy = b.read_csv(path=path)
            pinned = lazy.persist()  # must spill to fit
            out = pinned.groupby("k")["k"].count()
            assert b.store.spill_count > 0
            assert dict(zip(out.index.to_array(), out.values)) == dict(
                zip(eager_total.index.to_array(), eager_total.values)
            )
            b.store.clear()
        finally:
            memory_manager.budget = None

    def test_oom_when_materializing_too_much(self, make_csv):
        n = 3000
        path = make_csv(
            {"s": np.array([f"blob-{i:09d}-yyyyyyyyyyy" for i in range(n)], dtype=object)},
            "huge.csv",
        )
        frame_bytes = read_csv(path).nbytes
        memory_manager.reset()
        memory_manager.budget = int(frame_bytes * 0.5)
        try:
            b = DaskBackend(partition_bytes=2_000)
            lazy = b.read_csv(path=path)
            with pytest.raises(MemoryError):
                lazy.compute()  # full materialization cannot fit
            b.store.clear()
        finally:
            memory_manager.budget = None
