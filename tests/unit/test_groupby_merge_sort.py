"""Unit tests for groupby, merge, sorting, dedup, and concat."""

import numpy as np
import pytest

from repro.frame import DataFrame, concat, merge


def sales():
    return DataFrame(
        {
            "region": ["e", "w", "e", "w", "e"],
            "product": ["a", "a", "b", "b", "a"],
            "units": [1, 2, 3, 4, 5],
            "price": [10.0, 20.0, 30.0, np.nan, 50.0],
        }
    )


class TestGroupBy:
    def test_single_key_sum(self):
        out = sales().groupby("region")["units"].sum()
        assert dict(zip(out.index.to_array(), out.values)) == {"e": 9, "w": 6}

    def test_mean_skips_na(self):
        out = sales().groupby("region")["price"].mean()
        got = dict(zip(out.index.to_array(), out.values))
        assert got["e"] == pytest.approx(30.0)
        assert got["w"] == pytest.approx(20.0)

    def test_count_skips_na(self):
        out = sales().groupby("region")["price"].count()
        assert dict(zip(out.index.to_array(), out.values)) == {"e": 3, "w": 1}

    def test_min_max(self):
        gb = sales().groupby("region")["units"]
        assert dict(zip(gb.min().index.to_array(), gb.min().values)) == {"e": 1, "w": 2}
        assert dict(zip(gb.max().index.to_array(), gb.max().values)) == {"e": 5, "w": 4}

    def test_size_counts_rows(self):
        out = sales().groupby("region").size()
        assert dict(zip(out.index.to_array(), out.values)) == {"e": 3, "w": 2}

    def test_multi_key(self):
        out = sales().groupby(["region", "product"])["units"].sum()
        assert len(out) == 4

    def test_na_keys_dropped(self):
        frame = DataFrame({"k": ["a", None, "a"], "v": [1, 2, 3]})
        out = frame.groupby("k")["v"].sum()
        assert len(out) == 1
        assert out.values[0] == 4

    def test_agg_dict(self):
        out = sales().groupby("region").agg({"units": "sum", "price": "count"})
        assert out.columns == ["units", "price"]

    def test_agg_multi_func(self):
        out = sales().groupby("region").agg({"units": ["sum", "mean"]})
        assert out.columns == ["units_sum", "units_mean"]

    def test_as_index_false_keeps_key_columns(self):
        out = sales().groupby("region", as_index=False).agg({"units": "max"})
        assert "region" in out.columns

    def test_std(self):
        out = sales().groupby("product")["units"].std()
        expected = np.std([1, 2, 5], ddof=1)
        got = dict(zip(out.index.to_array(), out.values))
        assert got["a"] == pytest.approx(expected)

    def test_nunique(self):
        out = sales().groupby("region")["product"].nunique()
        assert dict(zip(out.index.to_array(), out.values)) == {"e": 2, "w": 2}

    def test_first(self):
        out = sales().groupby("region")["product"].first()
        assert dict(zip(out.index.to_array(), out.values)) == {"e": "a", "w": "a"}

    def test_non_numeric_sum_rejected(self):
        with pytest.raises(TypeError):
            sales().groupby("region")["product"].sum()

    def test_missing_key_rejected(self):
        with pytest.raises(KeyError):
            sales().groupby("zzz")

    def test_datetime_min(self):
        frame = DataFrame(
            {
                "k": ["a", "a", "b"],
                "t": np.array(
                    ["2024-01-02", "2024-01-01", "2024-02-01"],
                    dtype="datetime64[ns]",
                ),
            }
        )
        out = frame.groupby("k").agg({"t": "min"})
        assert out["t"].values[0] == np.datetime64("2024-01-01")

    def test_frame_groupby_multi_columns(self):
        out = sales().groupby("region")[["units", "price"]].sum()
        assert out.columns == ["units", "price"]


class TestMerge:
    def left(self):
        return DataFrame({"k": [1, 2, 3], "l": ["a", "b", "c"]})

    def right(self):
        return DataFrame({"k": [2, 3, 4], "r": ["x", "y", "z"]})

    def test_inner(self):
        out = merge(self.left(), self.right(), on="k")
        assert out["k"].to_list() == [2, 3]
        assert out["r"].to_list() == ["x", "y"]

    def test_left(self):
        out = merge(self.left(), self.right(), on="k", how="left")
        assert len(out) == 3
        assert out["r"].to_list() == [None, "x", "y"]

    def test_right(self):
        out = merge(self.left(), self.right(), on="k", how="right")
        assert sorted(out["k"].to_list()) == [2, 3, 4]

    def test_outer(self):
        out = merge(self.left(), self.right(), on="k", how="outer")
        assert sorted(out["k"].to_list()) == [1, 2, 3, 4]

    def test_one_to_many(self):
        right = DataFrame({"k": [2, 2], "r": ["x1", "x2"]})
        out = merge(self.left(), right, on="k")
        assert len(out) == 2

    def test_left_on_right_on(self):
        right = DataFrame({"key2": [2], "r": ["x"]})
        out = merge(self.left(), right, left_on="k", right_on="key2")
        assert out["l"].to_list() == ["b"]

    def test_multi_key(self):
        left = DataFrame({"a": [1, 1], "b": ["x", "y"], "v": [10, 20]})
        right = DataFrame({"a": [1], "b": ["y"], "w": [99]})
        out = merge(left, right, on=["a", "b"])
        assert out["v"].to_list() == [20]

    def test_overlapping_columns_suffixed(self):
        left = DataFrame({"k": [1], "v": [10]})
        right = DataFrame({"k": [1], "v": [20]})
        out = merge(left, right, on="k")
        assert set(out.columns) == {"k", "v_x", "v_y"}

    def test_int_na_promotes_to_float(self):
        right = DataFrame({"k": [2], "num": [7]})
        out = merge(self.left(), right, on="k", how="left")
        assert np.isnan(out["num"].values[0])

    def test_unsupported_how_rejected(self):
        with pytest.raises(ValueError):
            merge(self.left(), self.right(), on="k", how="cross")

    def test_no_common_columns_rejected(self):
        with pytest.raises(ValueError):
            merge(DataFrame({"a": [1]}), DataFrame({"b": [1]}))

    def test_natural_join_on_common_columns(self):
        out = merge(self.left(), self.right())
        assert out["k"].to_list() == [2, 3]


class TestSorting:
    def test_sort_single_asc(self):
        frame = DataFrame({"a": [3, 1, 2]})
        assert frame.sort_values("a")["a"].to_list() == [1, 2, 3]

    def test_sort_desc(self):
        frame = DataFrame({"a": [3, 1, 2]})
        assert frame.sort_values("a", ascending=False)["a"].to_list() == [3, 2, 1]

    def test_sort_string_column(self):
        frame = DataFrame({"a": ["b", "a", "c"]})
        assert frame.sort_values("a")["a"].to_list() == ["a", "b", "c"]

    def test_sort_multi_key_mixed_order(self):
        frame = DataFrame({"g": ["x", "y", "x", "y"], "v": [1, 2, 3, 4]})
        out = frame.sort_values(["g", "v"], ascending=[True, False])
        assert out["g"].to_list() == ["x", "x", "y", "y"]
        assert out["v"].to_list() == [3, 1, 4, 2]

    def test_sort_is_stable(self):
        frame = DataFrame({"k": [1, 1, 1], "tag": ["first", "second", "third"]})
        out = frame.sort_values("k")
        assert out["tag"].to_list() == ["first", "second", "third"]

    def test_nlargest_nsmallest(self):
        frame = DataFrame({"a": [5, 1, 9, 3]})
        assert frame.nlargest(2, "a")["a"].to_list() == [9, 5]
        assert frame.nsmallest(2, "a")["a"].to_list() == [1, 3]

    def test_sort_index(self):
        frame = DataFrame({"a": [1, 2, 3]})
        shuffled = frame.take(np.array([2, 0, 1]))
        assert shuffled.sort_index()["a"].to_list() == [1, 2, 3]


class TestDedup:
    def test_drop_duplicates_all_columns(self):
        frame = DataFrame({"a": [1, 1, 2], "b": ["x", "x", "y"]})
        assert len(frame.drop_duplicates()) == 2

    def test_drop_duplicates_subset_keeps_first(self):
        frame = DataFrame({"a": [1, 1, 2], "b": ["p", "q", "r"]})
        out = frame.drop_duplicates(subset=["a"])
        assert out["b"].to_list() == ["p", "r"]

    def test_duplicated_flags(self):
        frame = DataFrame({"a": [1, 1, 2]})
        assert frame.duplicated(subset=["a"]).to_list() == [False, True, False]


class TestConcat:
    def test_frames(self):
        a = DataFrame({"x": [1]})
        b = DataFrame({"x": [2]})
        assert concat([a, b])["x"].to_list() == [1, 2]

    def test_missing_columns_filled_with_na(self):
        a = DataFrame({"x": [1], "y": ["p"]})
        b = DataFrame({"x": [2]})
        out = concat([a, b])
        assert out["y"].to_list() == ["p", None]

    def test_int_float_promotion(self):
        a = DataFrame({"x": [1]})
        b = DataFrame({"x": [2.5]})
        assert concat([a, b])["x"].values.dtype == np.float64

    def test_series(self):
        from repro.frame import Series

        out = concat([Series([1]), Series([2])])
        assert out.to_list() == [1, 2]

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            concat([])

    def test_none_entries_skipped(self):
        out = concat([DataFrame({"x": [1]}), None])
        assert len(out) == 1

    def test_consuming_concat_empties_inputs(self):
        from repro.frame.concat import concat_consuming

        a = DataFrame({"x": [1, 2]})
        b = DataFrame({"x": [3]})
        out = concat_consuming([a, b])
        assert out["x"].to_list() == [1, 2, 3]
        assert a.columns == [] or "x" not in a.columns
