"""The byte-range filesystem layer: URL dispatch, the in-memory object
store, codecs, retry-with-backoff, I/O counters, and the prefetch cache.

Remote behaviour (latency, transient failures) is exercised hermetically
through :class:`InMemoryObjectStore`'s injectable knobs -- no network.
"""

import os
import threading

import numpy as np
import pytest

from repro.core.session import Session
from repro.frame import DataFrame
from repro.graph.scheduler.base import ExecutionError
from repro.io.fs import (
    InMemoryObjectStore,
    IOCounters,
    LocalFilesystem,
    TransientIOError,
    codec_names,
    compress_chunk,
    decompress_chunk,
    is_remote_url,
    local_path,
    memory_store,
    read_range_with_retry,
    register_codec,
    resolve_filesystem,
    session_io_counters,
    url_scheme,
)
from repro.io.prefetch import fetch_range, range_cache


@pytest.fixture(autouse=True)
def _clean_io_state():
    memory_store().reset()
    range_cache().clear()
    yield
    memory_store().reset()
    range_cache().clear()


class TestUrlDispatch:
    def test_scheme_parsing(self):
        assert url_scheme("memory://bucket/x") == "memory"
        assert url_scheme("file:///tmp/x") == "file"
        assert url_scheme("/plain/path.csv") is None
        assert url_scheme("relative/path.csv") is None
        # a "://" inside a path component is not a scheme
        assert url_scheme("dir/odd://name") is None

    def test_resolution(self, tmp_path):
        assert isinstance(resolve_filesystem(str(tmp_path)), LocalFilesystem)
        assert isinstance(resolve_filesystem("file:///x"), LocalFilesystem)
        assert resolve_filesystem("memory://b/k") is memory_store()
        with pytest.raises(ValueError, match="no filesystem registered"):
            resolve_filesystem("s3://bucket/key")

    def test_remote_classification(self):
        assert is_remote_url("memory://b/k")
        assert not is_remote_url("file:///x")
        assert not is_remote_url("/plain/path")

    def test_local_path_strips_scheme(self):
        assert local_path("file:///tmp/x") == "/tmp/x"
        assert local_path("/tmp/x") == "/tmp/x"


class TestLocalFilesystem:
    def test_stat_read_range_roundtrip(self, tmp_path):
        path = os.path.join(tmp_path, "blob.bin")
        payload = bytes(range(256)) * 4
        fs = LocalFilesystem()
        with fs.open_output(path) as out:
            out.write(payload)
        st = fs.stat(path)
        assert st.size == len(payload)
        assert fs.read_range(path, 10, 20) == payload[10:20]
        assert fs.read_range(path, len(payload) - 4, 10**6) == payload[-4:]
        assert fs.exists(path)
        assert not fs.exists(os.path.join(tmp_path, "missing"))

    def test_open_output_creates_parents(self, tmp_path):
        path = os.path.join(tmp_path, "a", "b", "c.bin")
        with LocalFilesystem().open_output(path) as out:
            out.write(b"x")
        assert os.path.getsize(path) == 1


class TestInMemoryObjectStore:
    def test_put_stat_read_list(self):
        store = memory_store()
        with store.open_output("memory://b/one.bin") as out:
            out.write(b"hello ")
            out.write(b"world")
        assert store.read_range("memory://b/one.bin", 0, 5) == b"hello"
        assert store.stat("memory://b/one.bin").size == 11
        with store.open_output("memory://b/two.bin") as out:
            out.write(b"x")
        assert store.list("memory://b") == [
            "memory://b/one.bin", "memory://b/two.bin",
        ]

    def test_versioning_bumps_stat_signature(self):
        store = memory_store()
        with store.open_output("memory://b/k") as out:
            out.write(b"v1")
        first = store.stat("memory://b/k").mtime_ns
        with store.open_output("memory://b/k") as out:
            out.write(b"v2")
        assert store.stat("memory://b/k").mtime_ns > first

    def test_missing_object_raises(self):
        with pytest.raises(FileNotFoundError):
            memory_store().stat("memory://nowhere/k")

    def test_partial_write_publishes_nothing(self):
        store = memory_store()
        out = store.open_output("memory://b/atomic")
        out.write(b"partial")
        # not closed: the object must not be visible yet
        assert not store.exists("memory://b/atomic")
        out.close()
        assert store.exists("memory://b/atomic")


class TestCodecs:
    def test_gzip_roundtrip(self):
        data = b"abc" * 1000
        packed = compress_chunk(data, "gzip")
        assert len(packed) < len(data)
        assert decompress_chunk(packed, "gzip") == data
        assert compress_chunk(data, None) == data
        assert "gzip" in codec_names() and "none" in codec_names()

    def test_custom_codec_registration(self):
        register_codec("rot13x", lambda d: d[::-1], lambda d: d[::-1])
        assert decompress_chunk(compress_chunk(b"abcd", "rot13x"),
                                "rot13x") == b"abcd"


class TestRetry:
    def test_transient_failures_absorbed_within_budget(self):
        store = memory_store()
        with store.open_output("memory://b/k") as out:
            out.write(b"0123456789")
        store.fail_every = 2  # every other read fails
        counters = IOCounters()
        for _ in range(2):  # the second read hits the injected failure
            data = read_range_with_retry(store, "memory://b/k", 0, 10,
                                         retries=2, backoff=0.0,
                                         counters=counters)
            assert data == b"0123456789"
        snap = counters.snapshot()
        assert snap["bytes_read"] == 20
        assert snap["io_retries"] >= 1

    def test_exhaustion_raises_execution_error(self):
        store = memory_store()
        with store.open_output("memory://b/k") as out:
            out.write(b"0123456789")
        store.fail_every = 1  # every read fails
        counters = IOCounters()
        with pytest.raises(ExecutionError, match="after 3 attempts"):
            read_range_with_retry(store, "memory://b/k", 0, 10,
                                  retries=2, backoff=0.0, counters=counters)
        snap = counters.snapshot()
        assert snap["io_retries"] == 2  # retries, not attempts
        assert snap["bytes_read"] == 0

    def test_policy_comes_from_session_options(self):
        store = memory_store()
        with store.open_output("memory://b/k") as out:
            out.write(b"abc")
        store.fail_every = 1
        with Session(backend="pandas",
                     options={"io.retries": 0, "io.retry_backoff": 0.0}):
            with pytest.raises(ExecutionError, match="after 1 attempts"):
                read_range_with_retry(store, "memory://b/k", 0, 3)


class TestIOCounters:
    def test_counters_are_per_session(self):
        with Session(backend="pandas") as s1:
            session_io_counters().add(bytes_read=5)
            assert session_io_counters(s1).snapshot()["bytes_read"] == 5
        with Session(backend="pandas") as s2:
            assert session_io_counters(s2).snapshot()["bytes_read"] == 0

    def test_thread_safety(self):
        counters = IOCounters()

        def bump():
            for _ in range(1000):
                counters.add(bytes_read=1, prefetch_hits=1)

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = counters.snapshot()
        assert snap["bytes_read"] == snap["prefetch_hits"] == 4000


class TestPrefetchCache:
    def _put(self, key: str, payload: bytes) -> str:
        url = f"memory://b/{key}"
        with memory_store().open_output(url) as out:
            out.write(payload)
        return url

    def test_submit_then_consume_counts_hit(self):
        url = self._put("k", b"0123456789")
        counters = IOCounters()
        cache = range_cache()
        cache.submit(url, 2, 8, counters=counters, retries=0, backoff=0.0)
        data = fetch_range(url, 2, 8, counters=counters)
        assert data == b"234567"
        snap = counters.snapshot()
        assert snap["ranges_prefetched"] == 1
        assert snap["prefetch_hits"] == 1
        assert snap["bytes_read"] == 6  # fetched once, by the worker

    def test_consume_is_once(self):
        url = self._put("k", b"0123456789")
        counters = IOCounters()
        cache = range_cache()
        cache.submit(url, 0, 4, counters=counters, retries=0, backoff=0.0)
        fetch_range(url, 0, 4, counters=counters)
        before = memory_store().range_reads
        fetch_range(url, 0, 4, counters=counters)  # second read is direct
        assert memory_store().range_reads == before + 1
        assert counters.snapshot()["prefetch_hits"] == 1

    def test_purge_url_leaves_nothing_pending(self):
        url = self._put("k", b"x" * 100)
        counters = IOCounters()
        cache = range_cache()
        for i in range(5):
            cache.submit(url, i * 10, i * 10 + 10, counters=counters,
                         retries=0, backoff=0.0)
        cache.purge_url(url)
        assert cache.pending_count() == 0

    def test_budget_eviction_keeps_cache_bounded(self):
        counters = IOCounters()
        cache = range_cache()
        urls = [self._put(f"k{i}", bytes(64)) for i in range(8)]
        for url in urls:
            cache.submit(url, 0, 64, counters=counters, retries=0,
                         backoff=0.0, budget=128)
        # drain workers deterministically: consuming forces completion
        held = sum(
            1 for url in urls if fetch_range(url, 0, 64, counters=counters)
        )
        assert held == 8  # every consume still yields correct bytes
        assert cache.pending_count() == 0

    def test_prefetch_error_surfaces_at_consume(self):
        url = self._put("k", b"0123456789")
        memory_store().fail_every = 1
        counters = IOCounters()
        cache = range_cache()
        cache.submit(url, 0, 10, counters=counters, retries=0, backoff=0.0)
        with pytest.raises(ExecutionError):
            cache.consume(url, 0, 10)


class TestFaultInjectionThroughScheduler:
    """Satellite: transient remote failures under real plan execution."""

    def _columnar_url(self, rows: int = 400) -> str:
        from repro.io import write_columnar

        frame = DataFrame({
            "a": np.arange(rows, dtype=np.int64),
            "s": np.array([f"g{i % 4}" for i in range(rows)], dtype=object),
        })
        url = "memory://bench/flaky.lfc"
        write_columnar(frame, url, row_group_rows=100)
        return url

    @pytest.mark.parametrize("strategy", ["serial", "threaded"])
    def test_flaky_store_succeeds_within_retry_budget(self, strategy):
        import repro.lazyfatpandas.pandas as lfp

        url = self._columnar_url()
        memory_store().fail_every = 2  # every other read fails
        with Session(backend="pandas",
                     options={"executor.strategy": strategy,
                              "io.retries": 8,
                              "io.retry_backoff": 0.0}) as session:
            lf = lfp.scan_columnar(url)
            out = lf[lf["a"] >= 390][["a"]].collect()
            retried = session_io_counters(session).snapshot()["io_retries"]
        assert out.column("a").to_array().tolist() == list(range(390, 400))
        assert retried >= 1
        assert range_cache().pending_count() == 0

    def test_failures_beyond_budget_surface_cleanly(self):
        import repro.lazyfatpandas.pandas as lfp

        url = self._columnar_url()
        memory_store().fail_every = 1  # nothing ever succeeds
        with Session(backend="pandas",
                     options={"io.retries": 1,
                              "io.retry_backoff": 0.0}) as session:
            live_before = session.memory.live
            lf = lfp.scan_columnar(url)
            with pytest.raises(Exception) as excinfo:
                lf[["a"]].collect()
            # the transient failure surfaces as a clean execution error,
            # not a raw TransientIOError from deep inside a worker
            assert "failed after" in str(excinfo.value)
            assert session.memory.live == live_before  # no leaked buffers
        assert range_cache().pending_count() == 0

    def test_threaded_failure_leaves_no_pending_prefetches(self):
        import repro.lazyfatpandas.pandas as lfp

        url = self._columnar_url()
        with Session(backend="pandas",
                     options={"executor.strategy": "threaded",
                              "io.retry_backoff": 0.0}) as session:
            lf = lfp.scan_columnar(url)
            lf[["s"]].collect()  # warm run, prefetch issued and consumed
            live_before = session.memory.live
            memory_store().fail_every = 1
            with pytest.raises(Exception):
                lf[lf["a"] > 0][["a"]].collect()
            live_after = session.memory.live
        assert range_cache().pending_count() == 0
        assert live_after <= live_before  # the failed run leaked nothing
