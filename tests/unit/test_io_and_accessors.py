"""Unit tests for CSV IO, the .str/.dt accessors, and the metastore."""

import os
import time

import numpy as np
import pytest

from repro.frame import DataFrame, Series, read_csv, to_datetime
from repro.frame.io_csv import read_header, scan_partitions
from repro.metastore import MetaStore, compute_metadata


class TestReadCsv:
    def test_roundtrip_types(self, make_csv):
        path = make_csv({"i": [1, 2], "f": [1.5, 2.5], "s": ["a", "b"]})
        frame = read_csv(path)
        assert frame.dtypes["i"] == np.dtype("int64")
        assert frame.dtypes["f"] == np.dtype("float64")
        assert frame.dtypes["s"] == np.dtype(object)

    def test_usecols(self, make_csv):
        path = make_csv({"a": [1], "b": [2], "c": [3]})
        frame = read_csv(path, usecols=["c", "a"])
        assert frame.columns == ["a", "c"]  # file order preserved

    def test_usecols_unknown_rejected(self, make_csv):
        path = make_csv({"a": [1]})
        with pytest.raises(ValueError):
            read_csv(path, usecols=["zzz"])

    def test_dtype_override(self, make_csv):
        path = make_csv({"a": [1, 2]})
        frame = read_csv(path, dtype={"a": "float64"})
        assert frame.dtypes["a"] == np.dtype("float64")

    def test_dtype_category(self, make_csv):
        path = make_csv({"s": ["x", "y", "x"]})
        frame = read_csv(path, dtype={"s": "category"})
        assert frame.column("s").is_category

    def test_parse_dates(self, make_csv):
        path = make_csv({"t": ["2024-01-01 10:00:00", "2024-02-01 11:00:00"]})
        frame = read_csv(path, parse_dates=["t"])
        assert frame.dtypes["t"] == np.dtype("datetime64[ns]")

    def test_nrows(self, make_csv):
        path = make_csv({"a": list(range(100))})
        assert len(read_csv(path, nrows=7)) == 7

    def test_index_col(self, make_csv):
        path = make_csv({"k": ["p", "q"], "v": [1, 2]})
        frame = read_csv(path, index_col="k")
        assert frame.columns == ["v"]
        assert list(frame.index.to_array()) == ["p", "q"]

    def test_empty_values_become_nan(self, make_csv):
        path = make_csv({"a": [1.0, np.nan, 3.0]})
        frame = read_csv(path)
        assert np.isnan(frame["a"].values[1])

    def test_empty_string_becomes_none_for_objects(self, make_csv):
        path = make_csv({"s": ["x", None, "y"]})
        frame = read_csv(path)
        assert frame["s"].to_list() == ["x", None, "y"]

    def test_int_with_na_promotes_to_float(self, make_csv):
        path = make_csv({"a": ["1", "", "3"]})
        frame = read_csv(path)
        assert frame.dtypes["a"] == np.dtype("float64")

    def test_read_header(self, make_csv):
        path = make_csv({"a": [1], "b": [2]})
        assert read_header(path) == ["a", "b"]


class TestPartitionedRead:
    def test_partitions_cover_all_rows_exactly(self, make_csv):
        path = make_csv({"a": list(range(997))})
        ranges = scan_partitions(path, 7)
        total = 0
        seen = []
        for byte_range in ranges:
            part = read_csv(path, byte_range=byte_range)
            total += len(part)
            seen.extend(part["a"].to_list())
        assert total == 997
        assert sorted(seen) == list(range(997))

    def test_single_partition(self, make_csv):
        path = make_csv({"a": [1, 2, 3]})
        ranges = scan_partitions(path, 1)
        assert len(ranges) == 1
        assert len(read_csv(path, byte_range=ranges[0])) == 3

    def test_more_partitions_than_rows(self, make_csv):
        path = make_csv({"a": [1, 2]})
        ranges = scan_partitions(path, 50)
        total = sum(len(read_csv(path, byte_range=r)) for r in ranges)
        assert total == 2


class TestWriteCsv:
    def test_roundtrip_values(self, make_csv, tmp_path):
        frame = DataFrame({"a": [1, 2], "s": ["x", "y"]})
        out = os.path.join(tmp_path, "out.csv")
        frame.to_csv(out)
        again = read_csv(out)
        assert again["a"].to_list() == [1, 2]
        assert again["s"].to_list() == ["x", "y"]

    def test_na_written_as_empty(self, tmp_path):
        frame = DataFrame({"a": [1.0, np.nan]})
        out = os.path.join(tmp_path, "out.csv")
        frame.to_csv(out)
        text = open(out).read()
        # a lone empty field is quoted so the row is not an empty line
        assert text.splitlines()[2] in ("", '""')

    def test_datetime_roundtrip(self, tmp_path):
        frame = DataFrame(
            {"t": np.array(["2024-05-01T10:30:00"], dtype="datetime64[ns]")}
        )
        out = os.path.join(tmp_path, "t.csv")
        frame.to_csv(out)
        again = read_csv(out, parse_dates=["t"])
        assert again["t"].values[0] == np.datetime64("2024-05-01T10:30:00")


class TestToDatetime:
    def test_series(self):
        out = to_datetime(Series(["2024-01-01", "2024-06-15"]))
        assert out.dtype == np.dtype("datetime64[ns]")

    def test_none_becomes_nat(self):
        out = to_datetime(Series(np.array(["2024-01-01", None], dtype=object)))
        assert np.isnat(out.values[1])


class TestStrAccessor:
    def test_lower_upper_title_strip(self):
        s = Series(["  Hello  ", "WORLD "])
        assert s.str.strip().to_list() == ["Hello", "WORLD"]
        assert s.str.lower().to_list() == ["  hello  ", "world "]
        assert Series(["ab"]).str.upper().to_list() == ["AB"]
        assert Series(["ab cd"]).str.title().to_list() == ["Ab Cd"]

    def test_len(self):
        assert Series(["ab", "c"]).str.len().to_list() == [2, 1]

    def test_contains(self):
        assert Series(["apple", "pear"]).str.contains("pp").to_list() == [True, False]

    def test_contains_case_insensitive(self):
        assert Series(["APPLE"]).str.contains("app", case=False).to_list() == [True]

    def test_startswith_endswith(self):
        s = Series(["apple", "grape"])
        assert s.str.startswith("a").to_list() == [True, False]
        assert s.str.endswith("e").to_list() == [True, True]

    def test_replace_slice_zfill(self):
        assert Series(["a-b"]).str.replace("-", "_").to_list() == ["a_b"]
        assert Series(["abcdef"]).str.slice(1, 3).to_list() == ["bc"]
        assert Series(["7"]).str.zfill(3).to_list() == ["007"]

    def test_split_get(self):
        s = Series(["a,b", "c,d"])
        assert s.str.split(",").str.get(1).to_list() == ["b", "d"]

    def test_cat(self):
        out = Series(["a"]).str.cat(Series(["b"]), sep="-")
        assert out.to_list() == ["a-b"]

    def test_none_propagates(self):
        s = Series(np.array(["a", None], dtype=object))
        assert s.str.upper().to_list() == ["A", None]

    def test_category_fast_path(self):
        s = Series(["x", "y", "x"]).astype("category")
        assert s.str.upper().to_list() == ["X", "Y", "X"]

    def test_non_string_rejected(self):
        with pytest.raises(AttributeError):
            Series([1, 2]).str


class TestDtAccessor:
    def s(self):
        return to_datetime(Series(["2024-03-15 13:45:30", "2023-12-31 23:59:59"]))

    def test_fields(self):
        s = self.s()
        assert s.dt.year.to_list() == [2024, 2023]
        assert s.dt.month.to_list() == [3, 12]
        assert s.dt.day.to_list() == [15, 31]
        assert s.dt.hour.to_list() == [13, 23]
        assert s.dt.minute.to_list() == [45, 59]
        assert s.dt.second.to_list() == [30, 59]

    def test_dayofweek_matches_python(self):
        import datetime

        s = self.s()
        expected = [
            datetime.date(2024, 3, 15).weekday(),
            datetime.date(2023, 12, 31).weekday(),
        ]
        assert s.dt.dayofweek.to_list() == expected

    def test_dayofyear(self):
        s = to_datetime(Series(["2024-01-01", "2024-02-01"]))
        assert s.dt.dayofyear.to_list() == [1, 32]

    def test_date_truncates(self):
        out = self.s().dt.date
        assert out.values[0] == np.datetime64("2024-03-15")

    def test_non_datetime_rejected(self):
        with pytest.raises(AttributeError):
            Series([1, 2]).dt


class TestMetastore:
    def test_compute_metadata_types(self, make_csv):
        path = make_csv(
            {"i": [1, 2, 3], "f": [1.0, 2.0, 3.0], "s": ["a", "b", "a"]}
        )
        meta = compute_metadata(path, sample_rows=None)
        assert meta.columns["i"].dtype == "int64"
        assert meta.columns["f"].dtype == "float64"
        assert meta.columns["s"].dtype == "object"
        assert meta.n_rows == 3

    def test_min_max(self, make_csv):
        path = make_csv({"x": [5, 1, 9]})
        meta = compute_metadata(path, sample_rows=None)
        assert meta.columns["x"].min_value == 1
        assert meta.columns["x"].max_value == 9

    def test_category_candidate(self, make_csv):
        path = make_csv({"s": ["a", "b"] * 50})
        meta = compute_metadata(path, sample_rows=None)
        assert meta.columns["s"].is_category_candidate()

    def test_high_cardinality_not_candidate(self, make_csv):
        path = make_csv({"s": [f"u{i}" for i in range(100)]})
        meta = compute_metadata(path, sample_rows=None)
        assert not meta.columns["s"].is_category_candidate()

    def test_dtype_hints_respect_read_only(self, make_csv):
        path = make_csv({"s": ["a", "b"] * 50, "x": [1, 2] * 50})
        meta = compute_metadata(path, sample_rows=None)
        hints = meta.dtype_hints(read_only_columns=["s", "x"])
        assert hints["s"] == "category"
        hints_mutated = meta.dtype_hints(read_only_columns=["x"])
        assert "s" not in hints_mutated

    def test_store_roundtrip(self, make_csv, tmp_path):
        path = make_csv({"a": [1, 2]})
        store = MetaStore(os.path.join(tmp_path, "ms"))
        put = store.compute_and_store(path)
        got = store.get(path)
        assert got is not None
        assert got.n_rows == put.n_rows

    def test_mtime_invalidation(self, make_csv, tmp_path):
        path = make_csv({"a": [1, 2]})
        store = MetaStore(os.path.join(tmp_path, "ms"))
        store.compute_and_store(path)
        time.sleep(0.01)
        with open(path, "a") as f:
            f.write("3\n")
        assert store.get(path) is None

    def test_get_or_compute(self, make_csv, tmp_path):
        path = make_csv({"a": [1]})
        store = MetaStore(os.path.join(tmp_path, "ms"))
        meta = store.get_or_compute(path)
        assert meta.n_rows == 1

    def test_estimated_bytes_subset_smaller(self, make_csv, tmp_path):
        path = make_csv({"a": [1] * 50, "s": ["xxxxxxxx"] * 50})
        meta = compute_metadata(path, sample_rows=None)
        assert meta.estimated_bytes(["a"]) < meta.estimated_bytes()

    def test_row_estimation_from_sample(self, make_csv):
        path = make_csv({"a": list(range(1000))})
        meta = compute_metadata(path, sample_rows=100)
        assert meta.sampled
        assert 800 <= meta.n_rows <= 1200
