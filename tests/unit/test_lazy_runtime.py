"""Unit tests for the LaFP lazy wrappers, lazy print, and session."""

import io

import pytest

import repro.lazyfatpandas.pandas as lfp
from repro.core.session import get_session, reset_session
from repro.lazyfatpandas.func import len as lazy_len
from repro.lazyfatpandas.func import print as lazy_print


@pytest.fixture(autouse=True)
def _pandas_backend():
    lfp.BACKEND_ENGINE = lfp.BackendEngines.PANDAS
    reset_session("pandas")
    yield
    lfp.BACKEND_ENGINE = lfp.BackendEngines.DASK


def lazy_taxi(taxi_csv):
    return lfp.read_csv(taxi_csv, parse_dates=["tpep_pickup_datetime"])


class TestLazyConstruction:
    def test_read_csv_is_lazy(self, taxi_csv):
        frame = lazy_taxi(taxi_csv)
        assert frame.node.op == "read_csv"
        assert frame.node.result is None

    def test_columns_tracked_from_header(self, taxi_csv):
        frame = lazy_taxi(taxi_csv)
        assert "fare_amount" in frame.columns

    def test_dataframe_constructor(self):
        frame = lfp.DataFrame({"a": [1, 2]})
        assert frame.compute()["a"].to_list() == [1, 2]

    def test_getitem_builds_nodes(self, taxi_csv):
        frame = lazy_taxi(taxi_csv)
        series = frame["fare_amount"]
        assert series.node.op == "getitem_column"
        mask = series > 0
        assert mask.node.op == "binop"
        filtered = frame[mask]
        assert filtered.node.op == "filter"

    def test_setitem_rebinds_node(self, taxi_csv):
        frame = lazy_taxi(taxi_csv)
        before = frame.node.id
        frame["tip_ratio"] = frame.tip_amount / frame.fare_amount
        assert frame.node.op == "setitem"
        assert frame.node.id != before
        assert "tip_ratio" in frame.columns

    def test_getattr_column_access(self, taxi_csv):
        frame = lazy_taxi(taxi_csv)
        assert frame.fare_amount.node.op == "getitem_column"

    def test_unknown_attr_raises_when_columns_known(self, taxi_csv):
        frame = lazy_taxi(taxi_csv)
        with pytest.raises(AttributeError):
            frame.not_a_column


class TestComputeCorrectness:
    def test_filter_groupby_matches_eager(self, taxi_csv):
        from repro.frame import read_csv

        lazy = lazy_taxi(taxi_csv)
        lazy = lazy[lazy.fare_amount > 0]
        lazy["day"] = lazy.tpep_pickup_datetime.dt.dayofweek
        result = lazy.groupby(["day"])["passenger_count"].sum().compute()

        eager = read_csv(taxi_csv, parse_dates=["tpep_pickup_datetime"])
        eager = eager[eager.fare_amount > 0]
        eager["day"] = eager.tpep_pickup_datetime.dt.dayofweek
        expected = eager.groupby(["day"])["passenger_count"].sum()

        assert dict(zip(result.index.to_array(), result.values)) == dict(
            zip(expected.index.to_array(), expected.values)
        )

    def test_scalar_aggregation(self, taxi_csv):
        lazy = lazy_taxi(taxi_csv)
        mean = lazy.fare_amount.mean()
        assert isinstance(float(mean), float)

    def test_lazy_scalar_arithmetic(self, taxi_csv):
        lazy = lazy_taxi(taxi_csv)
        doubled = lazy.fare_amount.mean() * 2
        single = lazy.fare_amount.mean()
        assert float(doubled) == pytest.approx(2 * float(single.compute()))

    def test_merge(self):
        left = lfp.DataFrame({"k": [1, 2], "v": [10, 20]})
        right = lfp.DataFrame({"k": [2], "w": [99]})
        out = left.merge(right, on="k").compute()
        assert out["v"].to_list() == [20]

    def test_concat(self):
        a = lfp.DataFrame({"x": [1]})
        b = lfp.DataFrame({"x": [2]})
        out = lfp.concat([a, b]).compute()
        assert out["x"].to_list() == [1, 2]

    def test_str_and_dt_lazy(self, taxi_csv):
        lazy = lazy_taxi(taxi_csv)
        upper = lazy.vendor.str.upper()
        assert upper.node.op == "str_method"
        assert upper.compute().to_list()[0].startswith("V")
        hour = lazy.tpep_pickup_datetime.dt.hour
        assert hour.node.op == "dt_field"
        assert 0 <= hour.compute().values[0] <= 23

    def test_len_forces_compute(self, taxi_csv):
        assert len(lazy_taxi(taxi_csv)) == 200

    def test_shape(self, taxi_csv):
        assert lazy_taxi(taxi_csv).shape == (200, 6)

    def test_inplace_ops(self, taxi_csv):
        frame = lazy_taxi(taxi_csv)
        frame.rename(columns={"vendor": "v"}, inplace=True)
        assert "v" in frame.columns
        frame.drop(columns=["v"], inplace=True)
        assert "v" not in frame.columns

    def test_head_describe_value_counts(self, taxi_csv):
        frame = lazy_taxi(taxi_csv)
        assert len(frame.head(3).compute()) == 3
        desc = frame.describe().compute()
        assert "fare_amount" in desc.columns
        counts = frame.vendor.value_counts().compute()
        assert counts.values.sum() == 200

    def test_apply_udf(self):
        frame = lfp.DataFrame({"a": [1, 2]})
        out = frame.apply(lambda row: row["a"] * 2, axis=1).compute()
        assert out.to_list() == [2, 4]

    def test_to_csv_forces(self, taxi_csv, tmp_path):
        out_path = str(tmp_path / "out.csv")
        lazy_taxi(taxi_csv)[["fare_amount"]].to_csv(out_path)
        from repro.frame import read_csv

        assert len(read_csv(out_path)) == 200


class TestLazyPrint:
    def test_print_is_deferred(self, capsys, taxi_csv):
        frame = lazy_taxi(taxi_csv)
        lazy_print(frame.head(2))
        assert capsys.readouterr().out == ""
        lfp.flush()
        assert capsys.readouterr().out != ""

    def test_print_order_preserved(self, capsys):
        a = lfp.DataFrame({"x": [1]})
        lazy_print("first", a.x.sum())
        lazy_print("second")
        lazy_print("third", 42)
        lfp.flush()
        out = capsys.readouterr().out.splitlines()
        assert out == ["first 1", "second", "third 42"]

    def test_fstring_marker_resolved(self, capsys):
        frame = lfp.DataFrame({"x": [2, 4]})
        avg = frame.x.mean()
        lazy_print(f"average: {avg}")
        lfp.flush()
        assert capsys.readouterr().out.strip() == "average: 3.0"

    def test_plain_print_still_chained(self, capsys):
        lazy_print("hello")
        assert capsys.readouterr().out == ""
        lfp.flush()
        assert capsys.readouterr().out.strip() == "hello"

    def test_print_to_file_bypasses_laziness(self):
        buffer = io.StringIO()
        lazy_print("direct", file=buffer)
        assert buffer.getvalue().strip() == "direct"

    def test_compute_executes_pending_prints_first(self, capsys):
        frame = lfp.DataFrame({"x": [1, 2, 3]})
        lazy_print("before")
        total = frame.x.sum().compute()
        out = capsys.readouterr().out
        assert "before" in out
        assert total == 6

    def test_flush_clears_pending(self, capsys):
        lazy_print("once")
        lfp.flush()
        lfp.flush()  # no double output
        assert capsys.readouterr().out.count("once") == 1

    def test_lazy_len_in_fstring(self, capsys):
        frame = lfp.DataFrame({"x": [1, 2, 3]})
        n = lazy_len(frame)
        lazy_print(f"rows: {n}")
        lfp.flush()
        assert capsys.readouterr().out.strip() == "rows: 3"

    def test_lazy_len_on_plain_list(self):
        assert lazy_len([1, 2, 3]) == 3


class TestSession:
    def test_backend_switch(self, taxi_csv):
        session = get_session()
        session.set_backend("modin")
        assert session.backend.name == "modin"
        session.set_backend("pandas")
        assert session.backend.name == "pandas"

    def test_unknown_backend_rejected(self):
        session = get_session()
        session.set_backend("spark")
        with pytest.raises(ValueError):
            _ = session.backend

    def test_backend_engine_sync(self, taxi_csv):
        lfp.BACKEND_ENGINE = lfp.BackendEngines.MODIN
        frame = lfp.read_csv(taxi_csv)
        frame.fare_amount.sum().compute()
        assert get_session().backend.name == "modin"

    def test_live_df_marks_persist(self, taxi_csv):
        frame = lazy_taxi(taxi_csv)
        frame = frame[frame.fare_amount > 0]
        total = frame.passenger_count.sum()
        total.compute(live_df=[frame])
        assert frame.node.persist
        assert frame.node.result is not None

    def test_persisted_node_reused(self, taxi_csv):
        calls = []
        from repro.backends.pandas_backend import PandasBackend

        original = PandasBackend.read_csv

        def counting(self, **kwargs):
            calls.append(1)
            return original(self, **kwargs)

        PandasBackend.read_csv = counting
        try:
            frame = lazy_taxi(taxi_csv)
            frame = frame[frame.fare_amount > 0]
            frame.passenger_count.sum().compute(live_df=[frame])
            frame.passenger_count.mean().compute()
            # second compute reuses the persisted filter result: one read
            assert sum(calls) == 1
        finally:
            PandasBackend.read_csv = original

    def test_dead_persists_released(self, taxi_csv):
        frame = lazy_taxi(taxi_csv)
        filtered = frame[frame.fare_amount > 0]
        filtered.passenger_count.sum().compute(live_df=[filtered])
        assert filtered.node.persist
        # a later compute with no live_df releases the persisted result
        other = lfp.DataFrame({"x": [1]})
        other.x.sum().compute()
        assert not filtered.node.persist
