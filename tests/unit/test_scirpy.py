"""Unit tests for SCIRPy: lowering, CFG, regions, codegen round-trips."""

import ast
import contextlib
import io

import pytest

from repro.analysis.scirpy import (
    StmtKind,
    build_regions,
    cfg_to_source,
    lower_source,
)
from repro.analysis.scirpy.regions import IfRegion, LoopRegion


def roundtrip_equivalent(source: str) -> bool:
    """Execute original and regenerated programs; compare state+stdout."""
    cfg, _tree = lower_source(source)
    regenerated = cfg_to_source(cfg)
    ns1, ns2 = {}, {}
    out1, out2 = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out1):
        exec(source, ns1)  # noqa: S102
    with contextlib.redirect_stdout(out2):
        exec(regenerated, ns2)  # noqa: S102
    clean = lambda ns: {
        k: v
        for k, v in ns.items()
        if not k.startswith("_") and not callable(v)
    }
    return clean(ns1) == clean(ns2) and out1.getvalue() == out2.getvalue()


class TestLowering:
    def test_straight_line_single_block(self):
        cfg, _ = lower_source("a = 1\nb = a + 1\n")
        blocks = [b for b in cfg.blocks() if b.live_stmts()]
        # one code block + the synthetic exit
        assert len(blocks) == 2

    def test_if_creates_branch(self):
        cfg, _ = lower_source("x = 1\nif x:\n    y = 2\nz = 3\n")
        kinds = [s.kind for s in cfg.statements()]
        assert StmtKind.BRANCH in kinds

    def test_loop_creates_header(self):
        cfg, _ = lower_source("for i in range(3):\n    pass\n")
        kinds = [s.kind for s in cfg.statements()]
        assert StmtKind.LOOP in kinds

    def test_branch_edges_labelled(self):
        cfg, _ = lower_source("if 1:\n    a = 1\nelse:\n    a = 2\n")
        branch_block = next(
            b for b in cfg.blocks() if b.terminator is not None
        )
        labels = {label for _, label in branch_block.succs}
        assert labels == {"then", "else"}

    def test_loop_edges_labelled(self):
        cfg, _ = lower_source("while True:\n    break\n")
        header = next(
            b for b in cfg.blocks()
            if b.terminator is not None and b.terminator.kind == StmtKind.LOOP
        )
        labels = {label for _, label in header.succs}
        assert labels == {"body", "exit"}


class TestDominators:
    def test_entry_dominates_everything(self):
        cfg, _ = lower_source("a = 1\nif a:\n    b = 2\nc = 3\n")
        dom = cfg.dominators()
        for block in cfg.blocks():
            assert cfg.entry.id in dom[block.id]

    def test_back_edges_found_for_loops(self):
        cfg, _ = lower_source("for i in range(3):\n    x = i\n")
        assert len(cfg.back_edges()) == 1

    def test_no_back_edges_in_straight_line(self):
        cfg, _ = lower_source("a = 1\nb = 2\n")
        assert cfg.back_edges() == []

    def test_to_dot(self):
        cfg, _ = lower_source("a = 1\n")
        assert "digraph" in cfg.to_dot()


class TestRegions:
    def test_if_region_built(self):
        cfg, _ = lower_source("if 1:\n    a = 1\nb = 2\n")
        region = build_regions(cfg)
        found = _find_regions(region, IfRegion)
        assert len(found) == 1

    def test_loop_region_built(self):
        cfg, _ = lower_source("for i in range(2):\n    a = i\n")
        region = build_regions(cfg)
        assert len(_find_regions(region, LoopRegion)) == 1

    def test_nested_regions(self):
        cfg, _ = lower_source(
            "for i in range(2):\n    if i:\n        a = i\n"
        )
        region = build_regions(cfg)
        loops = _find_regions(region, LoopRegion)
        assert len(loops) == 1
        assert len(_find_regions(loops[0].body, IfRegion)) == 1


def _find_regions(region, kind):
    from repro.analysis.scirpy.regions import BlockRegion, SequenceRegion

    out = []
    stack = [region]
    while stack:
        current = stack.pop()
        if current is None or isinstance(current, BlockRegion):
            continue
        if isinstance(current, kind):
            out.append(current)
        if isinstance(current, SequenceRegion):
            stack.extend(current.items)
        elif isinstance(current, IfRegion):
            stack.extend([current.then, current.orelse])
        elif isinstance(current, LoopRegion):
            stack.append(current.body)
    return out


class TestRoundTrip:
    CORPUS = [
        "a = 1\nb = a * 2\nprint(a + b)\n",
        "x = 5\nif x > 3:\n    y = 1\nelse:\n    y = 2\nprint(y)\n",
        "x = 2\nif x > 3:\n    y = 1\nelif x > 1:\n    y = 2\nelse:\n    y = 3\nprint(y)\n",
        "t = 0\nfor i in range(10):\n    t += i\nprint(t)\n",
        "t = 0\nwhile t < 50:\n    t += 7\nprint(t)\n",
        (
            "t = 0\n"
            "for i in range(10):\n"
            "    if i % 2 == 0:\n"
            "        continue\n"
            "    t += i\n"
            "    if t > 12:\n"
            "        break\n"
            "print(t)\n"
        ),
        (
            "acc = []\n"
            "for i in range(4):\n"
            "    for j in range(3):\n"
            "        if j == i:\n"
            "            continue\n"
            "        acc.append((i, j))\n"
            "print(len(acc))\n"
        ),
        (
            "n = 0\n"
            "while True:\n"
            "    n += 1\n"
            "    if n > 5:\n"
            "        break\n"
            "print(n)\n"
        ),
        (
            "total = 0\n"
            "values = [3, 1, 4, 1, 5]\n"
            "for v in values:\n"
            "    if v > 2:\n"
            "        total += v\n"
            "    else:\n"
            "        total -= 1\n"
            "print(total)\n"
        ),
        (
            "def helper(v):\n"
            "    return v * 2\n"
            "out = helper(21)\n"
            "print(out)\n"
        ),
        (
            "x = 1\n"
            "if x:\n"
            "    if x > 0:\n"
            "        r = 'pos'\n"
            "    else:\n"
            "        r = 'zero'\n"
            "else:\n"
            "    r = 'neg'\n"
            "print(r)\n"
        ),
    ]

    @pytest.mark.parametrize("idx", range(len(CORPUS)))
    def test_roundtrip(self, idx):
        assert roundtrip_equivalent(self.CORPUS[idx])

    def test_regenerated_source_parses(self):
        for source in self.CORPUS:
            cfg, _ = lower_source(source)
            ast.parse(cfg_to_source(cfg))
