"""Integration: OOM behaviour (Figure 12 in miniature) and the paper's
running examples (Figures 3/4 and 7/8)."""

import pytest

import repro.lazyfatpandas.pandas as lfp
from repro.analysis.jit import optimize_source
from repro.workloads.runner import Runner


@pytest.fixture(scope="module")
def small_runner():
    r = Runner(base_rows=800, enforce_budget=True)
    r.prepare(["S", "L"], programs=["nyt", "emp"])
    yield r
    r.cleanup()


class TestOOMBehaviour:
    """A miniature Figure 12: who survives the largest dataset."""

    def test_pandas_fails_at_l_on_wide_strings(self, small_runner):
        result = small_runner.run("nyt", "pandas", "L")
        assert not result.ok
        assert "OOM" in result.error

    def test_lafp_pandas_survives_l_via_column_selection(self, small_runner):
        result = small_runner.run("nyt", "lafp_pandas", "L")
        assert result.ok, result.error

    def test_dask_survives_l_via_spilling(self, small_runner):
        result = small_runner.run("nyt", "dask", "L")
        assert result.ok, result.error

    def test_emp_plot_kills_even_lafp_dask_at_l(self, small_runner):
        result = small_runner.run("emp", "lafp_dask", "L")
        assert not result.ok
        assert "OOM" in result.error

    def test_all_modes_survive_s(self, small_runner):
        for mode in ("pandas", "modin", "dask", "lafp_dask"):
            result = small_runner.run("nyt", mode, "S")
            assert result.ok, f"{mode}: {result.error}"

    def test_optimized_peak_memory_lower(self, small_runner):
        base = small_runner.run("nyt", "pandas", "S")
        opt = small_runner.run("nyt", "lafp_pandas", "S")
        assert base.ok and opt.ok
        assert opt.peak_bytes < base.peak_bytes


class TestPaperFigures:
    """The rewrites shown in the paper regenerate structurally."""

    FIG3 = (
        "import repro.lazyfatpandas.pandas as pd\n"
        "pd.analyze()\n"
        "df = pd.read_csv('data.csv', parse_dates=['tpep_pickup_datetime'])\n"
        "df = df[df.fare_amount > 0]\n"
        "df['day'] = df.tpep_pickup_datetime.dt.dayofweek\n"
        "df = df.groupby(['day'])['passenger_count'].sum()\n"
        "print(df)\n"
    )

    FIG7 = (
        "import repro.lazyfatpandas.pandas as pd\n"
        "pd.analyze()\n"
        "df = pd.read_csv('data.csv')\n"
        "print(df.head())\n"
        "df['day'] = df.pickup_datetime.dt.dayofweek\n"
        "p_per_day = df.groupby(['day'])['passenger_count'].sum()\n"
        "print(p_per_day)\n"
        "avg_fare = df.fare_amount.mean()\n"
        "print(f'Average fare: {avg_fare}')\n"
    )

    FIG10 = (
        "import repro.lazyfatpandas.pandas as pd\n"
        "import repro.workloads.plotlib as plt\n"
        "pd.analyze()\n"
        "df = pd.read_csv('data.csv')\n"
        "print(df.head())\n"
        "df['day'] = df.pickup_datetime.dt.dayofweek\n"
        "p_per_day = df.groupby(['day'])['passenger_count'].sum()\n"
        "print(p_per_day)\n"
        "plt.plot(p_per_day)\n"
        "plt.savefig('fig.png')\n"
        "avg_fare = df.fare_amount.mean()\n"
        "print(f'Average fare: {avg_fare}')\n"
    )

    def test_fig3_becomes_fig4(self):
        out = optimize_source(self.FIG3)
        # Figure 4's signature elements:
        assert "from repro.lazyfatpandas.func import print" in out
        assert "usecols=" in out
        for column in ("fare_amount", "passenger_count", "tpep_pickup_datetime"):
            assert column in out
        assert out.rstrip().endswith("pd.flush()")
        assert "pd.analyze()" not in out

    def test_fig7_becomes_fig8(self):
        out = optimize_source(self.FIG7)
        assert "from repro.lazyfatpandas.func import print" in out
        assert out.rstrip().endswith("pd.flush()")
        # head() heuristic: the column selection still happens
        assert "usecols=" in out

    def test_fig10_becomes_fig11(self):
        out = optimize_source(self.FIG10)
        # line 10 of Figure 11: the forced compute with live_df
        assert "p_per_day.compute(live_df=[df])" in out

    def test_fig6_taskgraph_shape(self, taxi_csv):
        """The task graph of Figure 3's program has the Figure 6 nodes."""
        from repro.core.session import reset_root_session
        from repro.graph import collect_subgraph

        lfp.BACKEND_ENGINE = lfp.BackendEngines.PANDAS
        reset_root_session("pandas")
        df = lfp.read_csv(taxi_csv, parse_dates=["tpep_pickup_datetime"])
        df = df[df.fare_amount > 0]
        df["day"] = df.tpep_pickup_datetime.dt.dayofweek
        out = df.groupby(["day"])["passenger_count"].sum()
        ops = {n.op for n in collect_subgraph([out.node])}
        assert {
            "read_csv", "getitem_column", "binop", "filter",
            "dt_field", "setitem", "groupby_agg",
        } <= ops
        lfp.BACKEND_ENGINE = lfp.BackendEngines.DASK
