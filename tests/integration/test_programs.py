"""Integration: the ten benchmark programs across all six modes.

The paper's regression framework (section 5.2): every (program, mode)
combination must produce a result whose md5 equals the unoptimized-pandas
reference.
"""

import pytest

from repro.workloads.programs import PROGRAMS
from repro.workloads.runner import Runner
from repro.workloads.verify import verify_program


@pytest.fixture(scope="module")
def runner():
    r = Runner(base_rows=1200, enforce_budget=False)
    r.prepare(["S"])
    yield r
    r.cleanup()


@pytest.mark.parametrize("program", sorted(PROGRAMS))
def test_all_modes_hash_identical(runner, program):
    report = verify_program(runner, program, size="S")
    assert report.ok, f"{program}: {report.failures}"


@pytest.mark.parametrize("program", sorted(PROGRAMS))
def test_lafp_pandas_runs_and_reports_optimizations(runner, program):
    result = runner.run(program, "lafp_pandas", "S")
    assert result.ok, result.error
    assert result.seconds > 0
    assert result.peak_bytes > 0


def test_program_inventory_matches_paper(runner):
    assert sorted(PROGRAMS) == [
        "ais", "cty", "dso", "emp", "env", "fdb", "mov", "nyt", "stu", "zip",
    ]


def test_every_program_saves_a_result(runner):
    for program in sorted(PROGRAMS):
        result = runner.run(program, "pandas", "S")
        assert result.result_hash is not None, program


def test_stdout_captured_not_leaked(runner, capsys):
    runner.run("cty", "lafp_dask", "S")
    assert capsys.readouterr().out == ""
