"""Integration: the ten benchmark programs across all six modes.

The paper's regression framework (section 5.2): every (program, mode)
combination must produce a result whose md5 equals the unoptimized-pandas
reference.
"""

import pytest

from repro.workloads.programs import PROGRAMS
from repro.workloads.runner import Runner
from repro.workloads.verify import verify_program


@pytest.fixture(scope="module")
def runner():
    r = Runner(base_rows=1200, enforce_budget=False)
    r.prepare(["S"])
    yield r
    r.cleanup()


@pytest.mark.parametrize("program", sorted(PROGRAMS))
def test_all_modes_hash_identical(runner, program):
    report = verify_program(runner, program, size="S")
    assert report.ok, f"{program}: {report.failures}"


@pytest.mark.parametrize("program", sorted(PROGRAMS))
def test_lafp_pandas_runs_and_reports_optimizations(runner, program):
    result = runner.run(program, "lafp_pandas", "S")
    assert result.ok, result.error
    assert result.seconds > 0
    assert result.peak_bytes > 0


def test_program_inventory_matches_paper(runner):
    assert sorted(PROGRAMS) == [
        "ais", "cty", "dso", "emp", "env", "fdb", "mov", "nyt", "stu", "zip",
    ]


def test_every_program_saves_a_result(runner):
    for program in sorted(PROGRAMS):
        result = runner.run(program, "pandas", "S")
        assert result.result_hash is not None, program


def test_stdout_captured_not_leaked(runner, capsys):
    runner.run("cty", "lafp_dask", "S")
    assert capsys.readouterr().out == ""


class TestSchedulerStrategies:
    """All three executor strategies reproduce the same paper results."""

    @pytest.mark.parametrize("program", ["nyt", "stu", "mov"])
    def test_strategies_hash_identical_on_paper_workloads(
        self, runner, program
    ):
        hashes = {}
        for strategy in ("serial", "threaded", "fused"):
            result = runner.run(program, "lafp_pandas", "S",
                                strategy=strategy)
            assert result.ok, f"{strategy}: {result.error}"
            assert result.strategy == strategy
            hashes[strategy] = result.result_hash
        assert hashes["threaded"] == hashes["serial"]
        assert hashes["fused"] == hashes["serial"]

    def test_run_result_carries_scheduler_stats(self, runner):
        result = runner.run("nyt", "lafp_pandas", "S", strategy="threaded")
        assert result.ok, result.error
        stats = result.execution_stats
        assert stats is not None
        assert stats["effective_strategy"] == "threaded"
        assert stats["nodes_executed"] > 0
        assert stats["nodes"][0]["op"]
        # the whole record serializes (the runner's result JSON)
        import json

        json.dumps(result.to_dict())

    def test_baseline_modes_report_no_graph_stats(self, runner):
        result = runner.run("nyt", "pandas", "S")
        assert result.ok
        assert result.execution_stats is None

    def test_result_strategy_reports_what_actually_ran(self, runner):
        """A lazy engine downgrades threaded to serial; the RunResult
        must say so instead of echoing the request."""
        result = runner.run("nyt", "lafp_dask", "S", strategy="threaded")
        assert result.ok, result.error
        assert result.strategy == "serial"
        assert result.execution_stats["strategy"] == "threaded"

    def test_concurrent_cells_do_not_race_on_paths(self, runner):
        """The env-var and redirect seams are gone: two cells running
        concurrently in one process keep their own dataset/result
        directories and their own captured stdout, and the process
        stdout comes back afterwards."""
        import sys
        import threading

        stdout_before = sys.stdout
        results = {}

        def cell(program):
            results[program] = runner.run(program, "lafp_pandas", "S")

        threads = [threading.Thread(target=cell, args=(p,))
                   for p in ("nyt", "stu")]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert sys.stdout is stdout_before
        assert results["nyt"].ok, results["nyt"].error
        assert results["stu"].ok, results["stu"].error
        assert results["nyt"].result_hash != results["stu"].result_hash
        # nyt prints its grouped result; the output landed in *its*
        # capture, not the other cell's
        assert results["nyt"].stdout.strip()
        assert results["nyt"].stdout != results["stu"].stdout


class TestSourceFormats:
    """The --source-format axis: same program, different physical bytes,
    identical results -- with and without pushdown folding."""

    @pytest.mark.parametrize("source_format", ["jsonl", "dataset", "columnar"])
    @pytest.mark.parametrize("program", ["cty", "stu"])
    def test_variants_hash_identical_to_csv(
        self, runner, program, source_format
    ):
        baseline = runner.run(program, "lafp_pandas", "S")
        variant = runner.run(program, "lafp_pandas", "S",
                             source_format=source_format)
        assert baseline.ok and variant.ok, (baseline.error, variant.error)
        assert variant.source_format == source_format
        assert variant.result_hash == baseline.result_hash

    @pytest.mark.parametrize("program", ["cty", "nyt", "stu"])
    def test_columnar_cold_and_warm_hash_identical_to_csv(
        self, runner, program
    ):
        """The columnar variant through the result cache: the cold run
        (footer reads + chunk fetches, cache inserts) and the warm run
        (``from_cached`` substitution keyed on the footer's stat
        signature) must both reproduce the CSV hash."""
        baseline = runner.run(program, "lafp_pandas", "S")
        assert baseline.ok, baseline.error
        options = {"optimizer.reuse": True}
        cold = runner.run(program, "lafp_pandas", "S",
                          source_format="columnar", options=options)
        warm = runner.run(program, "lafp_pandas", "S",
                          source_format="columnar", options=options)
        assert cold.ok and warm.ok, (cold.error, warm.error)
        assert cold.result_hash == baseline.result_hash
        assert warm.result_hash == baseline.result_hash

    @pytest.mark.parametrize("program", ["cty", "stu"])
    def test_columnar_pushdown_ablation_equivalence(self, runner, program):
        folded = runner.run(program, "lafp_pandas", "S",
                            source_format="columnar")
        ablated = runner.run(
            program, "lafp_pandas", "S", source_format="columnar",
            options={
                "optimizer.predicate_pushdown": False,
                "optimizer.partition_pruning": False,
            },
        )
        assert folded.ok and ablated.ok, (folded.error, ablated.error)
        assert folded.result_hash == ablated.result_hash

    def test_columnar_variant_on_dask_backend(self, runner):
        baseline = runner.run("cty", "lafp_dask", "S")
        variant = runner.run("cty", "lafp_dask", "S",
                             source_format="columnar")
        assert baseline.ok and variant.ok, (baseline.error, variant.error)
        assert variant.result_hash == baseline.result_hash

    @pytest.mark.parametrize("program", ["cty", "nyt", "stu"])
    def test_pushdown_folding_equivalence_on_paper_workloads(
        self, runner, program
    ):
        """Folding pushdown into the scan (and pruning on its stats)
        must never change a paper workload's result."""
        folded = runner.run(program, "lafp_pandas", "S",
                            source_format="dataset")
        ablated = runner.run(
            program, "lafp_pandas", "S", source_format="dataset",
            options={
                "optimizer.predicate_pushdown": False,
                "optimizer.partition_pruning": False,
            },
        )
        assert folded.ok and ablated.ok, (folded.error, ablated.error)
        assert folded.result_hash == ablated.result_hash

    def test_dataset_variant_on_dask_backend(self, runner):
        baseline = runner.run("cty", "lafp_dask", "S")
        variant = runner.run("cty", "lafp_dask", "S",
                             source_format="dataset")
        assert baseline.ok and variant.ok, (baseline.error, variant.error)
        assert variant.result_hash == baseline.result_hash
