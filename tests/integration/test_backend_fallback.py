"""Integration: the pandas-fallback conversion path (section 2.6).

"If a chosen back-end does not support a specific Pandas API
functionality, LaFP is able to convert data from the back-end
representation back to Pandas, to execute the original Pandas function"
-- these tests drive unsupported-on-Dask operations through the full
LaFP stack and check results against eager execution.
"""

import numpy as np
import pytest

import repro.lazyfatpandas.pandas as lfp
from repro.core.session import reset_root_session
from repro.frame import read_csv


@pytest.fixture(autouse=True)
def _dask_backend():
    lfp.BACKEND_ENGINE = lfp.BackendEngines.DASK
    reset_root_session("dask")
    yield
    session = reset_root_session("pandas")
    del session


class TestDaskFallbacks:
    def test_sort_values_falls_back(self, taxi_csv):
        df = lfp.read_csv(taxi_csv)
        out = df.sort_values("fare_amount", ascending=False).head(5).compute()
        eager = read_csv(taxi_csv).sort_values("fare_amount", ascending=False).head(5)
        assert np.allclose(
            out["fare_amount"].values, eager["fare_amount"].values
        )

    def test_describe_falls_back(self, taxi_csv):
        df = lfp.read_csv(taxi_csv)
        desc = df.describe().compute()
        assert "fare_amount" in desc.columns
        assert len(desc) == 5

    def test_reset_index_falls_back(self, taxi_csv):
        df = lfp.read_csv(taxi_csv)
        agg = df.groupby(["vendor"])["fare_amount"].sum()
        # groupby result is a series; to_frame + reset gets key column back
        frame = agg.to_frame("total").reset_index().compute()
        assert "total" in frame.columns

    def test_window_op_falls_back(self, taxi_csv):
        df = lfp.read_csv(taxi_csv)
        out = df.fare_amount.cumsum().compute()
        eager = read_csv(taxi_csv)["fare_amount"].cumsum()
        assert out.values[-1] == pytest.approx(eager.values[-1])

    def test_index_col_emulation(self, taxi_csv):
        df = lfp.read_csv(taxi_csv, index_col="vendor")
        out = df.compute()
        assert "vendor" not in out.columns

    def test_result_after_fallback_continues_lazily(self, taxi_csv):
        # fallback output is re-wrapped into the backend representation,
        # so downstream lazy ops keep working
        df = lfp.read_csv(taxi_csv)
        sorted_frame = df.sort_values("fare_amount")
        filtered = sorted_frame[sorted_frame.fare_amount > 0]
        total = filtered.passenger_count.sum().compute()
        eager = read_csv(taxi_csv)
        expected = eager[eager.fare_amount > 0]["passenger_count"].sum()
        assert int(total) == int(expected)


class TestModinPath:
    def test_full_pipeline_on_modin(self, taxi_csv):
        lfp.BACKEND_ENGINE = lfp.BackendEngines.MODIN
        reset_root_session("modin")
        df = lfp.read_csv(taxi_csv, parse_dates=["tpep_pickup_datetime"])
        df = df[df.fare_amount > 0]
        df["hour"] = df.tpep_pickup_datetime.dt.hour
        out = df.groupby(["hour"])["passenger_count"].sum().compute()
        eager = read_csv(taxi_csv, parse_dates=["tpep_pickup_datetime"])
        eager = eager[eager.fare_amount > 0]
        eager["hour"] = eager.tpep_pickup_datetime.dt.hour
        expected = eager.groupby(["hour"])["passenger_count"].sum()
        assert np.array_equal(
            np.sort(out.values), np.sort(expected.values)
        )

    def test_modin_sort_is_native(self, taxi_csv):
        lfp.BACKEND_ENGINE = lfp.BackendEngines.MODIN
        reset_root_session("modin")
        df = lfp.read_csv(taxi_csv)
        out = df.sort_values("fare_amount").compute()
        values = out["fare_amount"].values
        assert (values[:-1] <= values[1:]).all()


class TestBackendSwitchMidSession:
    def test_backend_change_between_computes(self, taxi_csv):
        lfp.BACKEND_ENGINE = lfp.BackendEngines.DASK
        df = lfp.read_csv(taxi_csv)
        total_dask = int(df.passenger_count.sum().compute())

        lfp.BACKEND_ENGINE = lfp.BackendEngines.PANDAS
        df2 = lfp.read_csv(taxi_csv)
        total_pandas = int(df2.passenger_count.sum().compute())
        assert total_dask == total_pandas
