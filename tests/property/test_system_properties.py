"""Property-based tests for system-level invariants:

- the Dask simulator computes the same results as the eager engine for
  arbitrary pipelines, at any partitioning;
- SCIRPy region reconstruction preserves program behaviour for randomly
  generated structured programs;
- the LaFP optimizer never changes results.
"""

import contextlib
import io
import os

from hypothesis import given, settings, strategies as st

import repro.lazyfatpandas.pandas as lfp
from repro.analysis.scirpy import cfg_to_source, lower_source
from repro.backends import DaskBackend
from repro.core.session import reset_root_session
from repro.frame import DataFrame, read_csv

ints = st.integers(min_value=-100, max_value=100)
keys = st.sampled_from(["a", "b", "c", "d"])


@st.composite
def csv_tables(draw):
    n = draw(st.integers(min_value=1, max_value=80))
    return {
        "k": draw(st.lists(keys, min_size=n, max_size=n)),
        "v": draw(st.lists(ints, min_size=n, max_size=n)),
    }


class TestDaskEquivalence:
    @given(data=csv_tables(), nparts=st.integers(min_value=1, max_value=9))
    @settings(max_examples=25, deadline=None)
    def test_partitioned_groupby_equals_eager(self, tmp_path_factory, data, nparts):
        path = os.path.join(tmp_path_factory.mktemp("dask"), "t.csv")
        DataFrame(data).to_csv(path)
        eager = read_csv(path).groupby("k")["v"].sum()

        size = os.path.getsize(path)
        backend = DaskBackend(partition_bytes=max(1, size // nparts))
        lazy = backend.read_csv(path=path).groupby("k")["v"].sum()
        backend.store.clear()

        got = dict(zip(lazy.index.to_array(), lazy.values))
        want = dict(zip(eager.index.to_array(), eager.values))
        assert got == want

    @given(data=csv_tables(), threshold=ints, nparts=st.integers(min_value=1, max_value=6))
    @settings(max_examples=25, deadline=None)
    def test_partitioned_filter_equals_eager(
        self, tmp_path_factory, data, threshold, nparts
    ):
        path = os.path.join(tmp_path_factory.mktemp("dask"), "t.csv")
        DataFrame(data).to_csv(path)
        eager = read_csv(path)
        expected = sorted(eager[eager["v"] > threshold]["v"].to_list())

        size = os.path.getsize(path)
        backend = DaskBackend(partition_bytes=max(1, size // nparts))
        lazy = backend.read_csv(path=path)
        got = sorted(lazy[lazy["v"] > threshold].compute()["v"].to_list())
        backend.store.clear()
        assert got == expected


# -- random structured programs ------------------------------------------------


@st.composite
def structured_programs(draw, depth=0):
    """Random break/continue-free structured programs over x, y, t."""
    statements = []
    n = draw(st.integers(min_value=1, max_value=3))
    for _ in range(n):
        kind = draw(
            st.sampled_from(
                ["assign", "if", "for"] if depth < 2 else ["assign"]
            )
        )
        if kind == "assign":
            var = draw(st.sampled_from(["x", "y", "t"]))
            op = draw(st.sampled_from(["+", "-", "*"]))
            const = draw(st.integers(min_value=1, max_value=5))
            statements.append(f"{var} = {var} {op} {const}")
        elif kind == "if":
            cond_var = draw(st.sampled_from(["x", "y", "t"]))
            bound = draw(st.integers(min_value=-10, max_value=10))
            body = draw(structured_programs(depth=depth + 1))
            block = [f"if {cond_var} > {bound}:"]
            block += ["    " + line for line in body]
            if draw(st.booleans()):
                orelse = draw(structured_programs(depth=depth + 1))
                block.append("else:")
                block += ["    " + line for line in orelse]
            statements.extend(block)
        else:
            count = draw(st.integers(min_value=0, max_value=4))
            body = draw(structured_programs(depth=depth + 1))
            statements.append(f"for i{depth} in range({count}):")
            statements.extend("    " + line for line in body)
    return statements


@given(structured_programs())
@settings(max_examples=60, deadline=None)
def test_region_roundtrip_preserves_behaviour(body):
    source = "x = 1\ny = 2\nt = 0\n" + "\n".join(body) + "\nprint(x, y, t)\n"
    cfg, _ = lower_source(source)
    regenerated = cfg_to_source(cfg)
    ns1, ns2 = {}, {}
    out1, out2 = io.StringIO(), io.StringIO()
    with contextlib.redirect_stdout(out1):
        exec(source, ns1)  # noqa: S102
    with contextlib.redirect_stdout(out2):
        exec(regenerated, ns2)  # noqa: S102
    assert out1.getvalue() == out2.getvalue()


# -- optimizer safety ----------------------------------------------------------


class TestOptimizerNeverChangesResults:
    @given(data=csv_tables(), threshold=ints)
    @settings(max_examples=20, deadline=None)
    def test_lazy_pipeline_equals_eager(self, tmp_path_factory, data, threshold):
        path = os.path.join(tmp_path_factory.mktemp("opt"), "t.csv")
        DataFrame(data).to_csv(path)

        eager = read_csv(path)
        eager = eager[eager["v"] > threshold]
        eager["w"] = eager["v"] * 2
        expected = eager.groupby("k")["w"].sum()

        lfp.BACKEND_ENGINE = lfp.BackendEngines.PANDAS
        reset_root_session("pandas")
        lazy = lfp.read_csv(path)
        lazy = lazy[lazy.v > threshold]
        lazy["w"] = lazy.v * 2
        got = lazy.groupby(["k"])["w"].sum().compute()
        lfp.BACKEND_ENGINE = lfp.BackendEngines.DASK

        assert dict(zip(got.index.to_array(), got.values)) == dict(
            zip(expected.index.to_array(), expected.values)
        )
