"""Randomized plan-equivalence fuzzer for the executor strategies.

Hypothesis generates small tables (CSV or JSONL on disk) and random
plans over them -- filters, projections, assigns, sorts, heads, merges
and groupby aggregations -- then collects each plan on every
(backend, strategy) pair in the grid and demands the result be
**bit-identical** (dtypes included) to the same backend's serial run.
A second pass forces the shuffle lowering, and a third layers a real
memory budget on top so the spill machinery engages; neither may change
a single bit.  On a mismatch the failing plan's ``explain()`` is
printed so the counterexample is actionable.

Aggregations stay on integer columns (exact partial sums), so the
partition-parallel paths cannot introduce float reassociation noise;
float columns exercise the row-wise paths (filters, arithmetic, sorts)
where bit-identity must hold everywhere.
"""

import itertools
import json
import os

import numpy as np
from hypothesis import given, settings, strategies as st

import repro.lazyfatpandas.pandas as lfp
from repro.core.session import Session
from repro.frame import DataFrame
from repro.graph.scheduler import DEFAULT_EXECUTORS

BACKENDS = ["pandas", "modin", "dask"]
STRATEGIES = DEFAULT_EXECUTORS.names()

_dirs = itertools.count()

# -- table generation -------------------------------------------------------

_keys = st.integers(min_value=0, max_value=5)
_ints = st.integers(min_value=-100, max_value=100)
_floats = st.integers(min_value=-400, max_value=400).map(lambda i: i / 4)
_words = st.sampled_from(["ab", "cd", "ef", "gh", ""])


@st.composite
def tables(draw):
    n = draw(st.integers(min_value=1, max_value=50))
    col = lambda elems: draw(st.lists(elems, min_size=n, max_size=n))
    return {
        "k": col(_keys),
        "v": col(_ints),
        "f": col(_floats),
        "w": col(_words),
    }


@st.composite
def right_tables(draw):
    n = draw(st.integers(min_value=1, max_value=20))
    col = lambda elems: draw(st.lists(elems, min_size=n, max_size=n))
    return {"k": col(_keys), "r": col(_ints)}


# -- plan generation --------------------------------------------------------


@st.composite
def plans(draw, force_wide=False):
    """A random plan as data: (transform steps, terminal step).

    Column availability is tracked during generation so every step
    references live columns, whatever the projections before it did.
    """
    live = ["k", "v", "f", "w"]
    steps = []
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        kinds = ["sort", "head"]
        if any(c != "w" for c in live):
            kinds.append("filter")
        if "v" in live and "k" in live:
            kinds.append("assign")
        if len(live) > 1:
            kinds.append("project")
        kind = draw(st.sampled_from(kinds))
        if kind == "filter":
            column = draw(st.sampled_from([c for c in live if c != "w"]))
            op = draw(st.sampled_from([">", "<=", "!="]))
            steps.append(("filter", column, op, draw(_ints)))
        elif kind == "assign":
            steps.append(("assign",))
            if "z" not in live:
                live = live + ["z"]
        elif kind == "project":
            keep = draw(
                st.lists(st.sampled_from(live), min_size=1,
                         max_size=len(live), unique=True)
            )
            live = [c for c in live if c in keep]
            steps.append(("project", live))
        elif kind == "sort":
            steps.append((
                "sort", draw(st.sampled_from(live)),
                draw(st.booleans()),
            ))
        elif kind == "head":
            steps.append(("head", draw(st.integers(1, 30))))
    terminals = ["frame"]
    int_cols = [c for c in live if c in ("k", "v", "z")]
    if int_cols:
        terminals.append("sum")
    if "k" in live and int_cols != ["k"]:
        terminals.append("groupby")
    if "k" in live:
        terminals.append("merge")
    if force_wide:
        terminals = [t for t in terminals if t in ("groupby", "merge")]
        if not terminals:
            terminals = ["frame"]
    terminal = draw(st.sampled_from(terminals))
    if terminal == "sum":
        terminal = ("sum", draw(st.sampled_from(int_cols)))
    elif terminal == "groupby":
        terminal = (
            "groupby",
            draw(st.sampled_from([c for c in int_cols if c != "k"])),
            draw(st.sampled_from(["sum", "mean", "count"])),
        )
    else:
        terminal = (terminal,)
    return steps, terminal


def _write_table(data, directory, name, fmt):
    path = os.path.join(directory, f"{name}.{fmt}")
    if fmt == "csv":
        DataFrame(data).to_csv(path)
    elif fmt == "lfc":
        from repro.io import write_columnar

        # tiny row groups: multi-chunk files even at fuzz sizes, so the
        # chunk-skip and per-group byte-range paths actually exercise
        write_columnar(DataFrame(data), path, row_group_rows=8)
    else:
        keys = list(data)
        with open(path, "w") as handle:
            for row in zip(*(data[k] for k in keys)):
                handle.write(json.dumps(dict(zip(keys, row))) + "\n")
    return path


def _scan(fmt, path, partition_bytes):
    if fmt == "columnar":
        return lfp.scan_columnar(path)  # chunking comes from the footer
    scan = lfp.scan_csv if fmt == "csv" else lfp.scan_jsonl
    return scan(path, partition_bytes=partition_bytes)


def _table_ext(fmt):
    return {"csv": "csv", "jsonl": "jsonl", "columnar": "lfc"}[fmt]


def _build(plan, fmt, left_path, right_path, partition_bytes=512):
    frame = _scan(fmt, left_path, partition_bytes)
    steps, terminal = plan
    for step in steps:
        if step[0] == "filter":
            _, column, op, value = step
            series = frame[column]
            mask = {
                ">": series > value,
                "<=": series <= value,
                "!=": series != value,
            }[op]
            frame = frame[mask]
        elif step[0] == "assign":
            frame["z"] = frame["v"] * 2 + frame["k"]
        elif step[0] == "project":
            frame = frame[step[1]]
        elif step[0] == "sort":
            frame = frame.sort_values(step[1], ascending=step[2])
        elif step[0] == "head":
            frame = frame.head(step[1])
    if terminal[0] == "sum":
        return frame[terminal[1]].sum()
    if terminal[0] == "groupby":
        return frame.groupby(["k"])[terminal[1]].agg(terminal[2])
    if terminal[0] == "merge":
        right = _scan(fmt, right_path, 256)
        return frame.merge(right, on="k", how="inner")
    return frame


# -- bit-identical comparison (dtype- and NaN-aware) ------------------------


def _columns_equal(ca, cb) -> bool:
    av, bv = ca.to_array(), cb.to_array()
    if ca.values.dtype != cb.values.dtype:
        return False
    if av.dtype.kind == "f":
        return bool(((av == bv) | ((av != av) & (bv != bv))).all())
    if len(av) == 0:
        return len(bv) == 0
    eq = av == bv
    if av.dtype == object:
        eq = eq | np.array(
            [x is None and y is None for x, y in zip(av, bv)],
            dtype=bool,
        )
    return bool(np.asarray(eq).all())


def _equal(a, b) -> bool:
    if type(a).__name__ == "Series":
        if type(b).__name__ != "Series" or a.name != b.name:
            return False
        if not np.array_equal(a.index.to_array(), b.index.to_array()):
            return False
        return _columns_equal(a.column, b.column)
    if type(a).__name__ == "DataFrame":
        if list(a.columns) != list(b.columns) or len(a) != len(b):
            return False
        return all(_columns_equal(a.column(c), b.column(c)) for c in a.columns)
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (a != a and b != b)
    return type(a) is type(b) and a == b


# -- the grid ---------------------------------------------------------------


def _collect_grid(plan, fmt, left, right, options, tmp_dir):
    """Collect the plan on every (backend, strategy) pair; every
    strategy must match its backend's serial result bit-for-bit."""
    for backend in BACKENDS:
        baseline = None
        ordered = ["serial"] + [s for s in STRATEGIES if s != "serial"]
        for strategy in ordered:
            opts = {"executor.strategy": strategy,
                    "executor.max_workers": 2}
            opts.update(options)
            with Session(backend=backend, options=opts):
                out = _build(plan, fmt, left, right)
                result = out.collect()
            if strategy == "serial":
                baseline = result
            elif not _equal(result, baseline):
                with Session(backend=backend, options=opts):
                    text = _build(plan, fmt, left, right).explain()
                raise AssertionError(
                    f"strategy {strategy!r} on backend {backend!r} "
                    f"diverged from serial with options {options}.\n"
                    f"plan: {plan}\nexplain():\n{text}"
                )


def _fresh_dir(tmp_path_factory):
    base = tmp_path_factory.mktemp("fuzz")
    path = os.path.join(base, str(next(_dirs)))
    os.makedirs(path, exist_ok=True)
    return path


class TestStrategyEquivalence:
    @given(data=tables(), right=right_tables(), plan=plans(),
           fmt=st.sampled_from(["csv", "jsonl", "columnar"]))
    @settings(max_examples=12, deadline=None)
    def test_random_plans_identical_across_grid(
        self, tmp_path_factory, data, right, plan, fmt
    ):
        tmp_dir = _fresh_dir(tmp_path_factory)
        ext = _table_ext(fmt)
        left_path = _write_table(data, tmp_dir, "left", ext)
        right_path = _write_table(right, tmp_dir, "right", ext)
        _collect_grid(plan, fmt, left_path, right_path, {}, tmp_dir)

    @given(data=tables(), right=right_tables(),
           plan=plans(force_wide=True))
    @settings(max_examples=6, deadline=None)
    def test_forced_shuffle_identical_across_grid(
        self, tmp_path_factory, data, right, plan
    ):
        """The hash-partition lowering fires on every merge/groupby at
        threshold 100 -- the bucket pipelines must be invisible."""
        tmp_dir = _fresh_dir(tmp_path_factory)
        left_path = _write_table(data, tmp_dir, "left", "csv")
        right_path = _write_table(right, tmp_dir, "right", "csv")
        _collect_grid(
            plan, "csv", left_path, right_path,
            {"optimizer.shuffle_threshold_bytes": 100}, tmp_dir,
        )

    @given(data=tables(), right=right_tables(), plan=plans(),
           fmt=st.sampled_from(["csv", "jsonl", "columnar"]))
    @settings(max_examples=8, deadline=None)
    def test_cache_warm_and_cold_identical_across_grid(
        self, tmp_path_factory, data, right, plan, fmt
    ):
        """The cross-session result cache (``optimizer.reuse``) must be
        invisible: with caching on, both the cold run (which inserts)
        and the warm run (which substitutes ``from_cached`` leaves) must
        match the same backend's reuse-off serial result bit-for-bit,
        on every strategy.  ``cache.min_cost: 0.0`` makes every
        fingerprintable node cache-worthy so the substitution path is
        maximally exercised."""
        from repro.cache.result_cache import result_cache

        tmp_dir = _fresh_dir(tmp_path_factory)
        ext = _table_ext(fmt)
        left_path = _write_table(data, tmp_dir, "left", ext)
        right_path = _write_table(right, tmp_dir, "right", ext)
        for backend in BACKENDS:
            result_cache().clear()
            with Session(backend=backend,
                         options={"executor.strategy": "serial"}):
                baseline = _build(plan, fmt, left_path, right_path).collect()
            for strategy in ["serial"] + [
                s for s in STRATEGIES if s != "serial"
            ]:
                opts = {
                    "executor.strategy": strategy,
                    "executor.max_workers": 2,
                    "optimizer.reuse": True,
                    "cache.min_cost": 0.0,
                }
                for leg in ("cold", "warm"):
                    with Session(backend=backend, options=opts):
                        result = _build(
                            plan, fmt, left_path, right_path
                        ).collect()
                    assert _equal(result, baseline), (
                        f"cached {leg} run diverged from uncached serial: "
                        f"{backend}/{strategy}\nplan: {plan}"
                    )
        result_cache().clear()

    @given(seed=st.integers(min_value=0, max_value=2**16),
           key_range=st.integers(min_value=30, max_value=60))
    @settings(max_examples=2, deadline=None)
    def test_forced_spill_identical_across_grid(
        self, tmp_path_factory, seed, key_range
    ):
        """A tight budget over a ~300KB join forces buckets to disk;
        spilled and resident runs must agree bit-for-bit.  The dask
        sim gets a wider budget: its join working set (materialized
        bucket outputs) is not spillable below ~400KB on this shape.
        """
        tmp_dir = _fresh_dir(tmp_path_factory)
        rng = np.random.RandomState(seed)
        n = 4000
        left_path = _write_table(
            {"k": rng.randint(0, key_range, n).tolist(),
             "v": list(range(n)),
             "s": [f"s{i % 7}" for i in range(n)]},
            tmp_dir, "left", "csv",
        )
        right_path = _write_table(
            {"k": list(range(1000, 1300)) + list(range(8)),
             "r": list(range(308))},
            tmp_dir, "right", "csv",
        )
        spill_dir = os.path.join(tmp_dir, "spill")
        budgets = {"pandas": 300_000, "modin": 300_000, "dask": 450_000}
        plan = ([], ("merge",))
        for backend in BACKENDS:
            baseline = None
            ordered = ["serial"] + [s for s in STRATEGIES if s != "serial"]
            for strategy in ordered:
                with Session(backend=backend, options={
                    "executor.strategy": strategy,
                    "executor.max_workers": 2,
                    "memory.budget": budgets[backend],
                    "optimizer.shuffle_threshold_bytes": 100,
                    "memory.spill_dir": spill_dir,
                }) as session:
                    result = _build(
                        plan, "csv", left_path, right_path,
                        partition_bytes=2048,
                    ).collect()
                    stats = session.last_execution_stats.to_dict()
                if baseline is None:
                    baseline = result
                    if backend in ("pandas", "modin"):
                        assert stats["bytes_spilled"] > 0, (
                            f"{backend} never spilled -- the budget no "
                            "longer forces the spill path"
                        )
                else:
                    assert _equal(result, baseline), (
                        f"forced-spill run diverged: {backend}/{strategy}"
                    )
