"""Property-based tests (hypothesis) for the frame engine's invariants.

Each property checks the columnar engine against a plain-Python
reference implementation over randomly generated tables.
"""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.frame import DataFrame, Series, concat, merge

# -- strategies -------------------------------------------------------------

ints = st.integers(min_value=-10_000, max_value=10_000)
floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
words = st.text(
    alphabet="abcdefgh", min_size=1, max_size=6
)


@st.composite
def tables(draw, min_rows=0, max_rows=60):
    n = draw(st.integers(min_value=min_rows, max_value=max_rows))
    return {
        "i": draw(st.lists(ints, min_size=n, max_size=n)),
        "f": draw(st.lists(floats, min_size=n, max_size=n)),
        "s": draw(st.lists(words, min_size=n, max_size=n)),
    }


# -- filtering ----------------------------------------------------------------


@given(tables())
@settings(max_examples=60, deadline=None)
def test_filter_matches_reference(data):
    frame = DataFrame(data)
    out = frame[frame["i"] > 0]
    expected = [v for v in data["i"] if v > 0]
    assert out["i"].to_list() == expected


@given(tables())
@settings(max_examples=60, deadline=None)
def test_filter_complement_partitions_rows(data):
    frame = DataFrame(data)
    mask = frame["i"] > 0
    kept = frame[mask]
    dropped = frame[~mask]
    assert len(kept) + len(dropped) == len(frame)


# -- sorting --------------------------------------------------------------------


@given(tables(min_rows=1))
@settings(max_examples=60, deadline=None)
def test_sort_values_sorted_and_permutation(data):
    frame = DataFrame(data)
    out = frame.sort_values("i")
    values = out["i"].to_list()
    assert values == sorted(data["i"])
    assert sorted(out["s"].to_list()) == sorted(data["s"])


@given(tables(min_rows=1))
@settings(max_examples=40, deadline=None)
def test_sort_desc_is_reverse_of_asc_for_unique_keys(data):
    unique = {}
    for i, v in enumerate(data["i"]):
        unique.setdefault(v, i)
    frame = DataFrame({"i": list(unique.keys())})
    asc = frame.sort_values("i")["i"].to_list()
    desc = frame.sort_values("i", ascending=False)["i"].to_list()
    assert desc == list(reversed(asc))


# -- dedup ------------------------------------------------------------------------


@given(tables())
@settings(max_examples=60, deadline=None)
def test_drop_duplicates_reference(data):
    frame = DataFrame(data)
    out = frame.drop_duplicates(subset=["s"])
    seen, expected = set(), []
    for v in data["s"]:
        if v not in seen:
            seen.add(v)
            expected.append(v)
    assert out["s"].to_list() == expected


# -- groupby --------------------------------------------------------------------------


@given(tables())
@settings(max_examples=60, deadline=None)
def test_groupby_sum_reference(data):
    frame = DataFrame(data)
    out = frame.groupby("s")["i"].sum()
    expected = {}
    for key, value in zip(data["s"], data["i"]):
        expected[key] = expected.get(key, 0) + value
    got = dict(zip(out.index.to_array(), out.values))
    assert {k: int(v) for k, v in got.items()} == expected


@given(tables())
@settings(max_examples=40, deadline=None)
def test_groupby_size_totals_rows(data):
    frame = DataFrame(data)
    out = frame.groupby("s").size()
    assert out.values.sum() == len(frame)


@given(tables(min_rows=1))
@settings(max_examples=40, deadline=None)
def test_groupby_mean_bounded_by_min_max(data):
    frame = DataFrame(data)
    means = frame.groupby("s")["f"].mean()
    mins = frame.groupby("s")["f"].min()
    maxs = frame.groupby("s")["f"].max()
    for lo, mid, hi in zip(mins.values, means.values, maxs.values):
        assert lo - 1e-9 <= mid <= hi + 1e-9


# -- merge -----------------------------------------------------------------------------


@given(tables(max_rows=30), tables(max_rows=30))
@settings(max_examples=40, deadline=None)
def test_inner_merge_matches_nested_loop(left_data, right_data):
    left = DataFrame({"k": left_data["s"], "lv": left_data["i"]})
    right = DataFrame({"k": right_data["s"], "rv": right_data["i"]})
    out = merge(left, right, on="k")
    expected = [
        (lk, lv, rv)
        for lk, lv in zip(left_data["s"], left_data["i"])
        for rk, rv in zip(right_data["s"], right_data["i"])
        if lk == rk
    ]
    got = list(zip(out["k"].to_list(), out["lv"].to_list(), out["rv"].to_list()))
    assert sorted(got) == sorted(expected)


@given(tables(max_rows=30))
@settings(max_examples=40, deadline=None)
def test_left_merge_keeps_all_left_rows(data):
    left = DataFrame({"k": data["s"], "v": data["i"]})
    right = DataFrame({"k": ["a"], "w": [1]})
    out = merge(left, right, on="k", how="left")
    assert len(out) >= len(left)


# -- concat / roundtrip ------------------------------------------------------------------


@given(tables(), tables())
@settings(max_examples=40, deadline=None)
def test_concat_length_and_order(data_a, data_b):
    a, b = DataFrame(data_a), DataFrame(data_b)
    out = concat([a, b])
    assert len(out) == len(a) + len(b)
    assert out["i"].to_list() == data_a["i"] + data_b["i"]


@given(tables())
@settings(max_examples=30, deadline=None)
def test_csv_roundtrip(tmp_path_factory, data):
    import os

    frame = DataFrame(data)
    path = os.path.join(
        tmp_path_factory.mktemp("prop"), "roundtrip.csv"
    )
    frame.to_csv(path)
    from repro.frame import read_csv

    again = read_csv(path)
    assert len(again) == len(frame)
    assert again["i"].to_list() == data["i"]
    # str() writes the shortest exact repr, so the roundtrip is bit-exact
    assert [float(v) for v in again["f"].to_list()] == data["f"]


# -- category invariants --------------------------------------------------------------------


@given(st.lists(words, min_size=0, max_size=80))
@settings(max_examples=60, deadline=None)
def test_category_roundtrip_identity(values):
    series = Series(np.array(values, dtype=object))
    encoded = series.astype("category")
    assert encoded.values.tolist() == values


@given(st.lists(words, min_size=1, max_size=80))
@settings(max_examples=40, deadline=None)
def test_category_nunique_matches_set(values):
    series = Series(np.array(values, dtype=object)).astype("category")
    assert series.nunique() == len(set(values))


# -- series aggregation -------------------------------------------------------------------------


@given(st.lists(floats, min_size=1, max_size=100))
@settings(max_examples=60, deadline=None)
def test_sum_mean_consistent(values):
    series = Series(values)
    assert math.isclose(
        series.sum(), sum(values), rel_tol=1e-9, abs_tol=1e-6
    )
    assert math.isclose(
        series.mean(), sum(values) / len(values), rel_tol=1e-9, abs_tol=1e-6
    )


@given(st.lists(ints, min_size=1, max_size=100))
@settings(max_examples=60, deadline=None)
def test_min_max_bound_all_values(values):
    series = Series(values)
    assert series.min() == min(values)
    assert series.max() == max(values)
