#!/usr/bin/env python
"""Repo invariant checks, enforced in CI next to the style linter.

Three structural rules the linters cannot express, checked with nothing
but the stdlib ``ast`` module:

1. **No new module-level mutable globals.**  PR 1 killed the global
   singleton session; the registries (``OPS``, ``_REGISTRY`` options,
   ``DEFAULT_SOURCES``, ``DEFAULT_ANALYZERS``, ``SCHEMA_RULES``) are the
   sanctioned pattern for module-level mutable state.  Everything
   mutable at module scope that exists today is pinned in
   ``MUTABLE_GLOBAL_ALLOWLIST``; adding a new one fails this check so
   the pattern is adopted deliberately, not by drift.

2. **No real-pandas shortcuts.**  The repro stack *simulates* the
   pandas surface; ``src/repro`` must never import the real thing (nor
   call ``pandas.read_csv``) outside the designated seams -- ``io/``
   (the source layer) and ``core/compat.py`` (the deprecation shims).
   Today there are zero such imports; this keeps it that way.

3. **Every ``register_op`` declares its column contract.**  The
   optimizer's projection and predicate passes trust ``mod_attrs`` /
   ``used_attrs``; a registration that omits either silently inherits a
   default that over- or under-claims.  Each call must pass both
   keywords explicitly.

Usage::

    python tools/check_invariants.py          # repo root, exit 1 on fail
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

# ---------------------------------------------------------------------------
# check 1: module-level mutable globals


#: constructor calls that produce mutable containers.
_MUTABLE_CALLS = {"dict", "list", "set", "defaultdict", "OrderedDict"}

#: value node types that are mutable container literals.
_MUTABLE_LITERALS = (
    ast.Dict, ast.List, ast.Set, ast.DictComp, ast.ListComp, ast.SetComp,
)

#: every module-level mutable global that exists today, pinned.
#: (path relative to src/repro, name).  Registry singletons
#: (``*Registry()`` instantiations) are allowed structurally and do not
#: need pinning.  To add a new entry, prefer one of the registries; if
#: the table really is a new frozen lookup table, pin it here in the
#: same commit that introduces it.
MUTABLE_GLOBAL_ALLOWLIST = {
    ("analysis/dataflow/frames.py", "PANDAS_MODULES"),
    ("analysis/dataflow/frames.py", "FRAME_PRESERVING"),
    ("analysis/dataflow/frames.py", "FRAME_TRANSFORMING"),
    ("analysis/dataflow/frames.py", "FRAME_TO_SERIES"),
    ("analysis/dataflow/frames.py", "SERIES_METHODS"),
    ("analysis/dataflow/frames.py", "SERIES_AGGS"),
    ("analysis/dataflow/frames.py", "GROUPBY_AGGS"),
    ("analysis/dataflow/frames.py", "INFORMATIVE"),
    ("analysis/dataflow/live_attributes.py", "_DERIVING"),
    ("analysis/dataflow/typeinfer.py", "_PRIORITY"),
    ("analysis/plan/rules.py", "_FRAME_CONSUMING"),
    ("analysis/plan/rules.py", "BUILTIN_RULES"),
    ("analysis/plan/schema.py", "_NUMERIC_DTYPES"),
    ("analysis/plan/schema.py", "_UNKNOWN_SCHEMAS"),
    ("analysis/plan/schema.py", "_HEADER_CACHE"),
    ("analysis/plan/schema.py", "SCHEMA_RULES"),
    ("analysis/rewrite/forced_compute.py", "_LAZY_KINDS"),
    ("backends/base.py", "_BINOPS"),
    ("backends/dask_sim/frame.py", "_PARTIAL_PLANS"),
    ("backends/dask_sim/frame.py", "_RECOMBINE"),
    ("core/backend_choice.py", "ORDER_SENSITIVE_OPS"),
    ("core/config.py", "_REGISTRY"),
    ("core/config.py", "LEGACY_FLAG_KEYS"),
    ("core/lazyframe.py", "_BINOP_LABELS"),
    ("core/optimizer/common_subexpr.py", "_SHARABLE_OPS"),
    ("core/optimizer/projection.py", "_PASSTHROUGH"),
    ("core/optimizer/projection.py", "_FRAME_OPS"),
    ("frame/dtypes.py", "_ALIASES"),
    ("graph/explain.py", "_ELIDED_ARGS"),
    ("graph/explain.py", "_SCAN_SPECIAL"),
    ("graph/node.py", "OPS"),
    ("graph/node.py", "_ELEMENTWISE_SERIES_OPS"),
    ("graph/scheduler/estimates.py", "_DTYPE_WIDTHS"),
    ("io/columnar.py", "_FOOTER_CACHE"),
    ("io/fs.py", "_FILESYSTEMS"),
    ("io/fs.py", "_CODECS"),
    ("io/predicate.py", "_COMPARISONS"),
    ("io/predicate.py", "_FLIPPED"),
    ("lazyfatpandas/pandas.py", "_SYNCED_MODULES"),
    ("workloads/datagen.py", "PARTITION_KEYS"),
    ("workloads/datagen.py", "_GENERATORS"),
    ("workloads/programs.py", "PROGRAMS"),
    ("workloads/runner.py", "SCALES"),
    ("workloads/runner.py", "MODES"),
    ("workloads/runner.py", "_HEADERS"),
    ("workloads/runner.py", "_BACKEND_OF_MODE"),
}


def _is_registry_call(value: ast.expr) -> bool:
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    name = getattr(func, "id", None) or getattr(func, "attr", None) or ""
    return name.endswith("Registry")


def _is_mutable_value(value: ast.expr) -> bool:
    if isinstance(value, _MUTABLE_LITERALS):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = getattr(func, "id", None) or getattr(func, "attr", None)
        return name in _MUTABLE_CALLS
    return False


def check_mutable_globals(tree: ast.Module, rel: str) -> Iterator[str]:
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
            value = stmt.value
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            targets, value = [stmt.target], stmt.value
        else:
            continue
        if value is None or _is_registry_call(value):
            continue
        if not _is_mutable_value(value):
            continue
        for target in targets:
            if target.id == "__all__":
                continue
            if (rel, target.id) in MUTABLE_GLOBAL_ALLOWLIST:
                continue
            yield (
                f"src/repro/{rel}:{stmt.lineno}: new module-level mutable "
                f"global '{target.id}' -- use a registry "
                f"(see tools/check_invariants.py) or pin it in "
                f"MUTABLE_GLOBAL_ALLOWLIST"
            )


# ---------------------------------------------------------------------------
# check 2: real-pandas imports / pandas.read_csv calls

#: modules allowed to touch real pandas, should the need ever arise:
#: the source layer and the deprecation shims.
_PANDAS_ALLOWED_PREFIXES = ("io/",)
_PANDAS_ALLOWED_FILES = ("core/compat.py",)


def _pandas_allowed(rel: str) -> bool:
    return rel in _PANDAS_ALLOWED_FILES or rel.startswith(
        _PANDAS_ALLOWED_PREFIXES
    )


def check_real_pandas(tree: ast.Module, rel: str) -> Iterator[str]:
    if _pandas_allowed(rel):
        return
    pandas_aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "pandas" or alias.name.startswith("pandas."):
                    pandas_aliases.add(alias.asname or alias.name.split(".")[0])
                    yield (
                        f"src/repro/{rel}:{node.lineno}: imports real "
                        f"pandas; the repro stack must stay "
                        f"self-contained outside io/ and core/compat.py"
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module == "pandas" or (
                node.module or ""
            ).startswith("pandas."):
                yield (
                    f"src/repro/{rel}:{node.lineno}: imports from real "
                    f"pandas; the repro stack must stay self-contained "
                    f"outside io/ and core/compat.py"
                )
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr != "read_csv":
            continue
        base = node.func.value
        base_name = getattr(base, "id", None)
        if base_name in pandas_aliases or base_name == "pandas":
            yield (
                f"src/repro/{rel}:{node.lineno}: direct pandas.read_csv "
                f"call; go through the source layer (repro.io) instead"
            )


# ---------------------------------------------------------------------------
# check 3: register_op must declare mod_attrs and used_attrs


def check_register_op(tree: ast.Module, rel: str) -> Iterator[str]:
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = getattr(func, "id", None) or getattr(func, "attr", None)
        if name != "register_op":
            continue
        # the contract keywords live on the wrapped OpSpec(...) call
        # (register_op(OpSpec(...))) or, for a hypothetical keyword
        # form, on register_op itself.
        spec_call = node
        if node.args and isinstance(node.args[0], ast.Call):
            spec_call = node.args[0]
        keywords = {kw.arg for kw in spec_call.keywords if kw.arg}
        keywords |= {kw.arg for kw in node.keywords if kw.arg}
        missing = sorted({"mod_attrs", "used_attrs"} - keywords)
        if missing:
            yield (
                f"src/repro/{rel}:{node.lineno}: register_op call missing "
                f"explicit {', '.join(missing)} -- the optimizer trusts "
                f"these; declare the op's column contract"
            )


# ---------------------------------------------------------------------------

CHECKS = (check_mutable_globals, check_real_pandas, check_register_op)


def run(src: Path = SRC) -> List[str]:
    failures: List[str] = []
    for path in sorted(src.rglob("*.py")):
        rel = path.relative_to(src).as_posix()
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except SyntaxError as exc:  # pragma: no cover - ruff catches first
            failures.append(f"src/repro/{rel}: syntax error: {exc}")
            continue
        for check in CHECKS:
            failures.extend(check(tree, rel))
    return failures


def main() -> int:
    failures = run()
    if failures:
        print(f"{len(failures)} invariant violation(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("invariants ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
