"""Alias of :mod:`repro.lazyfatpandas.pandas` (see Figure 2)."""

from repro.lazyfatpandas.pandas import *  # noqa: F401,F403
from repro.lazyfatpandas.pandas import (  # explicit for linters
    BACKEND_ENGINE,
    BackendEngines,
    DataFrame,
    analyze,
    concat,
    flush,
    merge,
    read_csv,
    reset,
    to_datetime,
)
