"""Alias of :mod:`repro.lazyfatpandas.pandas` (see Figure 2)."""

from repro.lazyfatpandas.pandas import *  # noqa: F401,F403
from repro.lazyfatpandas.pandas import (  # explicit for linters
    BACKEND_ENGINE,
    BackendEngines,
    DataFrame,
    Session,
    analyze,
    concat,
    current_session,
    flush,
    from_pandas,
    get_option,
    merge,
    option_context,
    options,
    read_csv,
    reset,
    scan_csv,
    scan_dataset,
    scan_jsonl,
    scan_source,
    set_backend,
    set_option,
    to_datetime,
)
from repro.lazyfatpandas.pandas import _install_backend_sync
from repro.lazyfatpandas.pandas import __all__  # noqa: F401 - same surface

# Assignments of ``pd.BACKEND_ENGINE`` on this alias module must reach
# the current session exactly like the canonical module's do.
_install_backend_sync(__name__)
