"""Top-level alias so the paper's verbatim imports work.

``import lazyfatpandas.pandas as pd`` resolves to
:mod:`repro.lazyfatpandas.pandas`.
"""

from repro.lazyfatpandas import func, pandas

__all__ = ["func", "pandas"]
