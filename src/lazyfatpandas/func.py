"""Alias of :mod:`repro.lazyfatpandas.func`."""

from repro.lazyfatpandas.func import len, print  # noqa: A004,F401
