"""User-facing Lazy Fat Pandas facade (Figure 2).

Usage, exactly as the paper prescribes::

    import repro.lazyfatpandas.pandas as pd
    pd.analyze()                      # JIT static analysis + rewrite
    df = pd.read_csv("data.csv")
    ...

and for programs run without the rewriter, the lazy runtime alone::

    import repro.lazyfatpandas.pandas as pd
    from repro.lazyfatpandas.func import print   # lazy print
    ...
    pd.flush()

A top-level ``lazyfatpandas`` alias package is installed as well, so the
paper's verbatim ``import lazyfatpandas.pandas as pd`` also works.
"""

from repro.lazyfatpandas import func, pandas

__all__ = ["func", "pandas"]
