"""User-facing Lazy Fat Pandas facade (Figure 2).

The paper-verbatim usage is unchanged -- two added lines run a pandas
program under LaFP on the default root session::

    import repro.lazyfatpandas.pandas as pd
    pd.analyze()                      # JIT static analysis + rewrite
    df = pd.read_csv("data.csv")
    ...

and for programs run without the rewriter, the lazy runtime alone::

    import repro.lazyfatpandas.pandas as pd
    from repro.lazyfatpandas.func import print   # lazy print
    ...
    pd.flush()

Beyond the paper's API, execution state is explicit and thread-safe.
Sessions are context managers resolved through a per-thread stack, each
with its own backend engines and options, so independent programs --
including programs on *different threads with different backends* -- no
longer share mutable globals::

    with pd.Session(backend="pandas") as s:
        df = pd.read_csv("data.csv")          # bound to s
        hot = df[df.fare > 0].persist()       # compute + pin (section 3.5)
        print(hot.explain())                  # raw vs optimized task graph
        result = hot.groupby(["hour"])["fare"].sum().collect()

Configuration is pandas-style, per session, dotted-key, and nestable::

    pd.options.optimizer.predicate_pushdown   # attribute-style read/write
    pd.set_option("executor.cache", False)
    with pd.option_context("optimizer.metadata", False):
        ...

See ``examples/sessions_and_options.py`` for a guided tour.  The retired
process-global API (``get_session`` / ``reset_session`` /
``BACKEND_ENGINE`` sync hooks) survives only as deprecation shims in
:mod:`repro.core.compat`; the module-level ``pd.BACKEND_ENGINE``
assignment now writes straight through to the current session.

A top-level ``lazyfatpandas`` alias package is installed as well, so the
paper's verbatim ``import lazyfatpandas.pandas as pd`` also works.
"""

from repro.lazyfatpandas import func, pandas

__all__ = ["func", "pandas"]
