"""``lazyfatpandas.func``: lazy replacements for builtins (section 3.3).

``from repro.lazyfatpandas.func import print`` overrides the builtin with
LaFP's lazy print: instead of forcing computation, a print *node* joins
the task graph, chained to the previous print so output order is
preserved.  Execution happens at the next forced computation or at
``pd.flush()``.

f-strings evaluate before ``print`` is called, so lazy values embedded in
them format themselves as escape markers carrying their node id
(``LazyObject.__format__``); the print node resolves the markers against
the session's node registry at execution time -- the paper's unique-ID
escape-sequence mechanism.

``len`` is the lazy length: applied to a lazy frame/series it returns a
:class:`~repro.core.LazyScalar`; on anything else it is the builtin.
"""

from __future__ import annotations

import builtins
from typing import List

from repro.backends.base import MARKER_PATTERN
from repro.core.lazyframe import LazyFrame, LazyObject, LazyScalar, LazySeries
from repro.core.session import current_session, node_for_id
from repro.graph.node import Node

_builtin_print = builtins.print
_builtin_len = builtins.len


def print(*args, sep: str = " ", end: str = "\n", file=None, flush: bool = False):
    """Lazy print: adds a node to the task graph (Figure 9).

    Falls through to the builtin when neither a lazy value nor a lazy
    marker is involved (and a custom ``file`` always bypasses laziness).
    """
    # Queue on the session current at call time -- that is the session
    # whose flush (explicit pd.flush(), forced compute, or `with
    # Session(...)` exit) the caller can reach, so output is never
    # stranded on an exited session.  Lazy values and markers from
    # *other* sessions still resolve: inputs reference their nodes
    # directly, and markers fall back to the cross-session node map.
    session = current_session()
    involves_lazy = any(isinstance(a, LazyObject) for a in args) or any(
        isinstance(a, str) and MARKER_PATTERN.search(a) for a in args
    )
    if file is not None or not involves_lazy:
        # Even plain prints must respect ordering against pending lazy
        # prints; chain them as zero-input lazy nodes.
        if file is not None:
            return _builtin_print(*args, sep=sep, end=end, file=file, flush=flush)
    inputs: List[Node] = []
    seen: dict = {}

    def _input_index(node: Node) -> int:
        if node.id not in seen:
            seen[node.id] = _builtin_len(inputs)
            inputs.append(node)
        return seen[node.id]

    segments = []
    marker_map = {}
    for arg in args:
        if isinstance(arg, LazyObject):
            segments.append({"kind": "node", "index": _input_index(arg.node)})
        elif isinstance(arg, str) and MARKER_PATTERN.search(arg):
            for match in MARKER_PATTERN.finditer(arg):
                node_id = int(match.group(1))
                # Each marker resolves through its *own* owner: the
                # print's session first, then the cross-session map, so
                # a marker string can mix with lazy values from another
                # session.
                node = session.node_registry.get(node_id) or node_for_id(node_id)
                if node is None:
                    raise KeyError(
                        f"lazy print marker references unknown node {node_id}"
                    )
                marker_map[match.group(1)] = _input_index(node)
            segments.append({"kind": "fstring", "value": arg})
        else:
            segments.append({"kind": "literal", "value": arg})

    node = Node(
        "print",
        inputs=inputs,
        args={
            "segments": segments,
            "marker_map": marker_map,
            "sep": sep,
            "end": end,
        },
        label="print",
    )
    session.register(node)
    session.add_print(node)
    return None


def len(obj):  # noqa: A001 - deliberate builtin shadow (paper's lazy len)
    """Lazy ``len``: a LazyScalar for lazy collections, builtin otherwise."""
    if isinstance(obj, LazyFrame):
        session = obj.session
        node = Node("frame_len", inputs=[obj.node], label="len")
        return LazyScalar(session.register(node), session)
    if isinstance(obj, LazySeries):
        session = obj.session
        node = Node("series_len", inputs=[obj.node], label="len")
        return LazyScalar(session.register(node), session)
    return _builtin_len(obj)
