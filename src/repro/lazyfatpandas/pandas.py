"""The ``lazyfatpandas.pandas`` module: LaFP's drop-in pandas surface.

Importing this module as ``pd`` gives the paper's API:

- ``pd.read_csv`` and friends return :class:`~repro.core.LazyFrame`s that
  build the task graph instead of executing,
- ``pd.scan_csv`` / ``pd.scan_jsonl`` / ``pd.scan_dataset`` /
  ``pd.scan_columnar`` / ``pd.from_pandas`` are the unified
  source-layer ingress
  (:mod:`repro.io`): LazyFrames rooted at generic ``scan`` nodes the
  optimizer folds projections and predicates *into*,
- ``pd.analyze()`` triggers JIT static analysis of the calling program
  (section 2.4),
- ``pd.flush()`` forces pending lazy prints (section 3.3).

Execution state lives in explicit :class:`~repro.core.session.Session`
objects resolved per thread; everything here binds to the *current*
session::

    with pd.Session(backend="pandas") as s:
        df = pd.read_csv("data.csv")     # bound to s
        df.collect()                     # runs on s's pandas engine

Configuration is pandas-style, per session and nestable::

    pd.options.optimizer.predicate_pushdown      # read
    pd.set_option("executor.cache", False)       # write
    with pd.option_context("optimizer.metadata", False):
        ...

Scripts with no explicit session run on a shared root session, so the
paper-verbatim two-line change still works.  The legacy backend selector
``pd.BACKEND_ENGINE = pd.BackendEngines.PANDAS`` is kept: assigning it
forwards to ``set_option("backend.engine", ...)`` on the current session
(the old pre-compute sync hooks are gone).
"""

from __future__ import annotations

import contextlib
import enum
import sys
import types
import warnings
from typing import Optional, Sequence

from repro.core.config import (
    OptionError,
    canonical_key,
    describe_options,
    is_foreign_option_key,
    iter_option_pairs,
    options,
)
from repro.core.lazyframe import LazyFrame, LazyObject, LazySeries
from repro.core.session import Session, current_session, reset_root_session
from repro.frame.io_csv import read_header
from repro.graph.node import Node
from repro.io.api import (
    from_pandas,
    scan_columnar,
    scan_csv,
    scan_dataset,
    scan_jsonl,
    scan_source,
)

__all__ = [
    "BACKEND_ENGINE",
    "BackendEngines",
    "DataFrame",
    "LazyFrame",
    "LazySeries",
    "OptionError",
    "Session",
    "analyze",
    "concat",
    "current_session",
    "describe_options",
    "flush",
    "from_pandas",
    "get_option",
    "merge",
    "option_context",
    "options",
    "read_csv",
    "reset",
    "scan_columnar",
    "scan_csv",
    "scan_dataset",
    "scan_jsonl",
    "scan_source",
    "set_backend",
    "set_option",
    "to_datetime",
]


class BackendEngines(enum.Enum):
    """Selectable execution backends (section 2.6)."""

    PANDAS = "pandas"
    DASK = "dask"
    MODIN = "modin"


#: Legacy selector: assigning ``pd.BACKEND_ENGINE = pd.BackendEngines.X``
#: sets ``backend.engine`` on the current session (see module docstring).
BACKEND_ENGINE = BackendEngines.DASK


#: every module carrying the BACKEND_ENGINE write-through (the canonical
#: module plus the ``lazyfatpandas.pandas`` alias).
_SYNCED_MODULES = set()


def set_backend(engine) -> None:
    """Select the current session's execution backend by enum or name.

    Also mirrors the choice into ``BACKEND_ENGINE`` on every facade
    module, so the legacy selector and helpers that read it (e.g. the
    ``reset()`` default) always reflect the last explicit choice, no
    matter which module or API spelling made it.
    """
    name = engine.value if isinstance(engine, BackendEngines) else str(engine)
    current_session().set_option("backend.engine", name)
    try:
        mirror = BackendEngines(name)
    except ValueError:
        mirror = name  # custom-registry engines keep their string name
    # Direct ModuleType.__setattr__ avoids re-entering the write-through.
    for module_name in _SYNCED_MODULES:
        module = sys.modules.get(module_name)
        if module is not None:
            types.ModuleType.__setattr__(module, "BACKEND_ENGINE", mirror)


class _BackendSyncModule(types.ModuleType):
    """Module type forwarding ``BACKEND_ENGINE`` assignment into the
    current session, replacing the retired module-level sync hooks."""

    def __setattr__(self, name: str, value) -> None:
        super().__setattr__(name, value)
        if name == "BACKEND_ENGINE":
            set_backend(value)


def _install_backend_sync(module_name: str) -> None:
    """Give a facade module the ``BACKEND_ENGINE`` write-through (also
    applied to the ``lazyfatpandas.pandas`` alias module)."""
    _SYNCED_MODULES.add(module_name)
    sys.modules[module_name].__class__ = _BackendSyncModule


# ---------------------------------------------------------------------------
# Options (pandas-style, per current session).
# ---------------------------------------------------------------------------


def _canonical_pairs(args: tuple, kwargs: dict):
    """Resolve (key, value) pairs to canonical LaFP keys, dropping
    pandas-compat keys (``display.*``-style namespaces and bare
    shorthand keys like ``"max_columns"``) with a warning so a dotless
    typo of a legacy flag is at least visible.  Unknown dotted keys
    outside the pandas namespaces raise -- a typo'd LaFP key must
    error, never silently no-op.  One policy for ``set_option``,
    ``get_option`` and ``option_context``.
    """
    pairs = []
    for k, v in iter_option_pairs(args, kwargs):
        key = str(k)
        try:
            pairs.append((canonical_key(key), v))
        except OptionError:
            if not is_foreign_option_key(key):
                raise
            warnings.warn(
                f"ignoring pandas-compat option {key!r} (not an LaFP option)",
                stacklevel=3,
            )
    return pairs


def set_option(*args, **kwargs) -> None:
    """Set options on the current session.

    Accepts the same shapes as :func:`option_context`: key/value pairs,
    a single mapping, or legacy flag names as keywords.  Dotted LaFP
    keys (``optimizer.*``, ``backend.engine``, ``executor.cache``) and
    legacy flag names are applied -- with their validation errors
    surfaced.  pandas option keys are accepted and ignored so
    unmodified pandas scripts keep running.
    """
    session = current_session()
    for canon, v in _canonical_pairs(args, kwargs):
        session.set_option(canon, v)


def get_option(key):
    """Read an option from the current session.

    pandas-compat keys (tolerated as no-ops by :func:`set_option`)
    read as ``None``.
    """
    key = str(key)
    try:
        canon = canonical_key(key)
    except OptionError:
        if is_foreign_option_key(key):
            return None
        raise
    return current_session().get_option(canon)


def option_context(*args, **kwargs):
    """Nestable temporary option overrides on the current session::

        with pd.option_context("optimizer.predicate_pushdown", False):
            df.collect()

    pandas-compat keys are dropped (no-op), matching :func:`set_option`.
    Keys are validated immediately; the *target session* is resolved at
    ``__enter__``.  When composing with a session in one statement, the
    session must come first -- ``with pd.Session(...),
    pd.option_context(...):`` -- so the overrides land on the new
    session; the reverse order targets whatever session was current
    before the statement.
    """
    return _option_context_cm(dict(_canonical_pairs(args, kwargs)))


@contextlib.contextmanager
def _option_context_cm(pairs):
    with current_session().option_context(pairs):
        yield


# ---------------------------------------------------------------------------
# Frame constructors.
# ---------------------------------------------------------------------------


def read_csv(
    path: str,
    usecols: Optional[Sequence[str]] = None,
    dtype=None,
    parse_dates: Optional[Sequence[str]] = None,
    nrows: Optional[int] = None,
    index_col: Optional[str] = None,
    read_only_cols: Optional[Sequence[str]] = None,
    mutated_cols: Optional[Sequence[str]] = None,
) -> LazyFrame:
    """Lazy CSV read.

    ``read_only_cols`` / ``mutated_cols`` carry the static analyzer's
    kill-set result (section 3.6): either the columns proven read-only,
    or the columns the program assigns (read-only = header minus
    mutated).  The runtime optimizer intersects them with metastore
    cardinality candidates to choose ``category`` dtypes safely.

    When the session's ``workload.source_format`` option names another
    physical format (the runner's ``--source-format`` axis) and the
    sibling variant of ``path`` exists, the read is rerouted through the
    matching scan source -- the program text stays pandas-verbatim while
    the bytes come from JSONL or a hive-partitioned dataset.
    """
    session = current_session()
    rerouted = _reroute_by_source_format(
        session, path, usecols=usecols, dtype=dtype,
        parse_dates=parse_dates, nrows=nrows, index_col=index_col,
    )
    if rerouted is not None:
        return rerouted
    args = {"path": path}
    if usecols is not None:
        args["usecols"] = list(usecols)
    if dtype is not None:
        args["dtype"] = dict(dtype)
    if parse_dates is not None:
        args["parse_dates"] = list(parse_dates)
    if nrows is not None:
        args["nrows"] = nrows
    if index_col is not None:
        args["index_col"] = index_col
    if read_only_cols is not None:
        args["read_only_cols"] = list(read_only_cols)
    if mutated_cols is not None:
        args["mutated_cols"] = list(mutated_cols)
    node = Node("read_csv", args=args, label=f"read_csv {path}")
    try:
        columns = read_header(path)
        if usecols is not None:
            columns = [c for c in columns if c in set(usecols)]
        if index_col is not None:
            columns = [c for c in columns if c != index_col]
    except OSError:
        columns = None
    return LazyFrame(session.register(node), session, columns=columns)


def _reroute_by_source_format(
    session, path, usecols=None, dtype=None, parse_dates=None,
    nrows=None, index_col=None,
):
    """Reroute a ``read_csv`` onto another physical format, or ``None``.

    Only fires when ``workload.source_format`` names a non-CSV format
    AND the sibling variant exists on disk (see
    :func:`repro.io.api.sibling_variant`); a missing variant falls back
    to the plain CSV read rather than failing the program.
    """
    fmt = session.get_option("workload.source_format")
    if fmt in (None, "csv"):
        return None
    from repro.io.api import sibling_variant

    variant = sibling_variant(path, fmt)
    if variant is None:
        return None
    if fmt == "jsonl":
        return scan_jsonl(
            variant, usecols=usecols, dtype=dtype,
            parse_dates=parse_dates, nrows=nrows, index_col=index_col,
        )
    if nrows is not None:
        return None  # columnar/dataset scans have no row limit; stay on CSV
    if fmt == "columnar":
        if dtype is not None:
            return None  # footer dtypes are authoritative; stay on CSV
        return scan_columnar(
            variant, usecols=usecols, parse_dates=parse_dates,
            index_col=index_col,
        )
    return scan_dataset(
        variant, usecols=usecols, dtype=dtype,
        parse_dates=parse_dates, index_col=index_col,
    )


def DataFrame(data) -> LazyFrame:
    """Lazy in-memory frame construction."""
    session = current_session()
    node = Node("from_data", args={"data": data}, label="DataFrame")
    columns = list(data.keys()) if isinstance(data, dict) else None
    return LazyFrame(session.register(node), session, columns=columns)


def merge(left: LazyFrame, right: LazyFrame, **kwargs) -> LazyFrame:
    """Module-level merge, mirroring ``pandas.merge``."""
    return left.merge(right, **kwargs)


def concat(objs: Sequence[LazyObject], ignore_index: bool = True):
    """Lazy row-wise concatenation.

    The result binds to the first input's session (like every derived
    lazy object), not to whatever session is current at call time.
    """
    session = objs[0].session
    nodes = [o.node for o in objs]
    node = Node("concat", inputs=nodes, label="concat")
    session.register(node)
    if isinstance(objs[0], LazySeries):
        return LazySeries(node, session, name=objs[0].name)
    columns = objs[0].columns if isinstance(objs[0], LazyFrame) else None
    return LazyFrame(node, session, columns=columns)


def to_datetime(series: LazySeries) -> LazySeries:
    """Lazy string-to-datetime conversion (bound to the input's session)."""
    session = series.session
    node = Node("to_datetime", inputs=[series.node], label="to_datetime")
    return LazySeries(session.register(node), session, name=series.name)


# ---------------------------------------------------------------------------
# Control-flow entry points (Figure 2's two lines).
# ---------------------------------------------------------------------------


def analyze(run: bool = True) -> Optional[str]:
    """JIT static analysis of the calling program (section 2.4, Figure 5).

    Finds the caller's source via reflection, rewrites it (column
    selection, lazy print, forced computation, metadata hints), executes
    the optimized program, and stops the original one.  Inside the
    optimized program (or when the source cannot be found, e.g. in a
    REPL) this is a no-op.

    With ``run=False`` the optimized source is returned instead of
    executed -- used by tests and by ``EXPERIMENTS.md`` tooling.
    """
    from repro.analysis.jit import jit_analyze

    return jit_analyze(depth=2, run=run)


def flush() -> None:
    """Execute pending lazy prints (inserted by the rewriter, Figure 8)."""
    current_session().flush()


def reset(backend: Optional[str] = None) -> None:
    """Replace the root LaFP session (benchmark harness hook).

    Without an argument the fresh root uses the last explicit engine
    choice (``BACKEND_ENGINE`` assignment or ``set_backend()`` keep the
    module global current, wherever they were made); a choice made via
    ``set_option("backend.engine", ...)`` on an explicit session stays
    scoped to that session.  Prefer scoped ``with
    pd.Session(backend=...)`` blocks; this only affects code running
    outside any explicit session.
    """
    if backend is None:
        engine = BACKEND_ENGINE
        backend = engine.value if isinstance(engine, BackendEngines) else str(engine)
    reset_root_session(backend)


_install_backend_sync(__name__)
