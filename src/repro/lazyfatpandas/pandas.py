"""The ``lazyfatpandas.pandas`` module: LaFP's drop-in pandas surface.

Importing this module as ``pd`` gives the paper's API:

- ``pd.read_csv`` and friends return :class:`~repro.core.LazyFrame`s that
  build the task graph instead of executing,
- ``pd.analyze()`` triggers JIT static analysis of the calling program
  (section 2.4),
- ``pd.flush()`` forces pending lazy prints (section 3.3),
- ``pd.BACKEND_ENGINE = pd.BackendEngines.PANDAS`` selects the executor
  (section 2.6; default DASK).
"""

from __future__ import annotations

import enum
import sys
from typing import Optional, Sequence

from repro.core.lazyframe import LazyFrame, LazyObject, LazySeries
from repro.core.session import SYNC_HOOKS, get_session, reset_session
from repro.frame.io_csv import read_header
from repro.graph.node import Node


class BackendEngines(enum.Enum):
    """Selectable execution backends (section 2.6)."""

    PANDAS = "pandas"
    DASK = "dask"
    MODIN = "modin"


#: Assign to choose the backend, e.g.
#: ``pd.BACKEND_ENGINE = pd.BackendEngines.PANDAS``.
BACKEND_ENGINE = BackendEngines.DASK


def _sync_backend() -> None:
    """Propagate the module-level backend choice into the session."""
    session = get_session()
    wanted = BACKEND_ENGINE.value
    if session.backend_name != wanted:
        session.set_backend(wanted)


SYNC_HOOKS.append(_sync_backend)


# ---------------------------------------------------------------------------
# Frame constructors.
# ---------------------------------------------------------------------------


def read_csv(
    path: str,
    usecols: Optional[Sequence[str]] = None,
    dtype=None,
    parse_dates: Optional[Sequence[str]] = None,
    nrows: Optional[int] = None,
    index_col: Optional[str] = None,
    read_only_cols: Optional[Sequence[str]] = None,
    mutated_cols: Optional[Sequence[str]] = None,
) -> LazyFrame:
    """Lazy CSV read.

    ``read_only_cols`` / ``mutated_cols`` carry the static analyzer's
    kill-set result (section 3.6): either the columns proven read-only,
    or the columns the program assigns (read-only = header minus
    mutated).  The runtime optimizer intersects them with metastore
    cardinality candidates to choose ``category`` dtypes safely.
    """
    _sync_backend()
    session = get_session()
    args = {"path": path}
    if usecols is not None:
        args["usecols"] = list(usecols)
    if dtype is not None:
        args["dtype"] = dict(dtype)
    if parse_dates is not None:
        args["parse_dates"] = list(parse_dates)
    if nrows is not None:
        args["nrows"] = nrows
    if index_col is not None:
        args["index_col"] = index_col
    if read_only_cols is not None:
        args["read_only_cols"] = list(read_only_cols)
    if mutated_cols is not None:
        args["mutated_cols"] = list(mutated_cols)
    node = Node("read_csv", args=args, label=f"read_csv {path}")
    try:
        columns = read_header(path)
        if usecols is not None:
            columns = [c for c in columns if c in set(usecols)]
        if index_col is not None:
            columns = [c for c in columns if c != index_col]
    except OSError:
        columns = None
    return LazyFrame(session.register(node), session, columns=columns)


def DataFrame(data) -> LazyFrame:
    """Lazy in-memory frame construction."""
    session = get_session()
    node = Node("from_data", args={"data": data}, label="DataFrame")
    columns = list(data.keys()) if isinstance(data, dict) else None
    return LazyFrame(session.register(node), session, columns=columns)


def merge(left: LazyFrame, right: LazyFrame, **kwargs) -> LazyFrame:
    """Module-level merge, mirroring ``pandas.merge``."""
    return left.merge(right, **kwargs)


def concat(objs: Sequence[LazyObject], ignore_index: bool = True):
    """Lazy row-wise concatenation."""
    session = get_session()
    nodes = [o.node for o in objs]
    node = Node("concat", inputs=nodes, label="concat")
    session.register(node)
    if isinstance(objs[0], LazySeries):
        return LazySeries(node, session, name=objs[0].name)
    columns = objs[0].columns if isinstance(objs[0], LazyFrame) else None
    return LazyFrame(node, session, columns=columns)


def to_datetime(series: LazySeries) -> LazySeries:
    """Lazy string-to-datetime conversion."""
    session = get_session()
    node = Node("to_datetime", inputs=[series.node], label="to_datetime")
    return LazySeries(session.register(node), session, name=series.name)


# ---------------------------------------------------------------------------
# Control-flow entry points (Figure 2's two lines).
# ---------------------------------------------------------------------------


def analyze(run: bool = True) -> Optional[str]:
    """JIT static analysis of the calling program (section 2.4, Figure 5).

    Finds the caller's source via reflection, rewrites it (column
    selection, lazy print, forced computation, metadata hints), executes
    the optimized program, and stops the original one.  Inside the
    optimized program (or when the source cannot be found, e.g. in a
    REPL) this is a no-op.

    With ``run=False`` the optimized source is returned instead of
    executed -- used by tests and by ``EXPERIMENTS.md`` tooling.
    """
    _sync_backend()
    from repro.analysis.jit import jit_analyze

    return jit_analyze(depth=2, run=run)


def flush() -> None:
    """Execute pending lazy prints (inserted by the rewriter, Figure 8)."""
    _sync_backend()
    get_session().flush()


def reset(backend: Optional[str] = None) -> None:
    """Start a fresh LaFP session (benchmark harness hook)."""
    reset_session(backend or BACKEND_ENGINE.value)


def set_option(*args, **kwargs) -> None:
    """Accepted for pandas compatibility; LaFP has no display options."""
