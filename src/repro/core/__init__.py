"""LaFP lazy runtime (the paper's primary contribution).

- :mod:`repro.core.session` -- explicit :class:`Session` objects resolved
  through a thread-local stack (``with Session(backend=...)``), each
  owning its backend engines, pending lazy prints, persisted-node cache
  and options; a shared root session backs paper-verbatim scripts.
- :mod:`repro.core.config` -- the pandas-style per-session option layer
  (``options`` / ``set_option`` / ``option_context`` with dotted keys
  like ``optimizer.predicate_pushdown`` and ``backend.engine``).
- :mod:`repro.core.lazyframe` -- ``LazyFrame`` / ``LazySeries`` /
  ``LazyScalar`` wrappers that mirror the pandas API and build the task
  graph (the paper's ``FatDataFrame``, section 2.5), with explicit
  ``collect()`` / ``persist()`` / ``explain()``.
- :mod:`repro.core.optimizer` -- runtime DAG optimizations (section 3):
  predicate pushdown, common-subexpression elimination, projection
  pushdown, metadata-driven dtypes, and ``live_df`` persistence.
- :mod:`repro.core.compat` -- deprecation shims for the retired
  process-global ``get_session`` / ``reset_session`` API.
"""

from repro.core.config import (
    OptionError,
    SessionOptions,
    describe_options,
    options,
)
from repro.core.session import (
    Session,
    current_session,
    reset_root_session,
    root_session,
)
from repro.core.compat import get_session, reset_session
from repro.core.lazyframe import LazyFrame, LazyGroupBy, LazyScalar, LazySeries

__all__ = [
    "LazyFrame",
    "LazyGroupBy",
    "LazyScalar",
    "LazySeries",
    "OptionError",
    "Session",
    "SessionOptions",
    "current_session",
    "describe_options",
    "get_session",
    "options",
    "reset_root_session",
    "reset_session",
    "root_session",
]
