"""LaFP lazy runtime (the paper's primary contribution).

- :mod:`repro.core.session` -- per-program state: backend choice, pending
  lazy prints, persisted-node cache, optimization flags.
- :mod:`repro.core.lazyframe` -- ``LazyFrame`` / ``LazySeries`` /
  ``LazyScalar`` wrappers that mirror the pandas API and build the task
  graph (the paper's ``FatDataFrame``, section 2.5).
- :mod:`repro.core.optimizer` -- runtime DAG optimizations (section 3):
  predicate pushdown, common-subexpression elimination, projection
  pushdown, metadata-driven dtypes, and ``live_df`` persistence.
"""

from repro.core.session import Session, get_session, reset_session
from repro.core.lazyframe import LazyFrame, LazyGroupBy, LazyScalar, LazySeries

__all__ = [
    "LazyFrame",
    "LazyGroupBy",
    "LazyScalar",
    "LazySeries",
    "Session",
    "get_session",
    "reset_session",
]
