"""Lazy wrapper objects (the paper's ``LaFPDataFrame`` / ``FatDataFrame``).

Every method mirrors the pandas API but, instead of executing, appends an
operator node to the task graph and returns a new lazy wrapper (section
2.5).  Materialization happens through :meth:`collect` (or its
paper-era spelling :meth:`compute`), lazy print / ``pd.flush()``, or
implicitly for APIs that need real data (``len``, ``shape``, iteration).

Each wrapper is bound at construction to the session that was current on
the calling thread (:func:`repro.core.session.current_session`), so
frames built inside ``with Session(...)`` blocks execute on that
session's engine no matter where they are later collected.

In-place pandas idioms (``df[c] = s``, ``inplace=True``) are modelled by
*rebinding the wrapper's node*: the Python object identity is the mutable
variable, the nodes stay immutable.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.graph.node import Node
from repro.core.session import Session, current_session

_MARKER = "\x00LAFP:{}\x00"


class LazyObject:
    """Common plumbing for lazy frame/series/scalar wrappers."""

    def __init__(self, node: Node, session: Optional[Session] = None):
        self._session = session or current_session()
        self._node = self._session.register(node)

    @property
    def node(self) -> Node:
        return self._node

    @property
    def session(self) -> Session:
        """The session this object executes on (bound at construction)."""
        return self._session

    def _new_node(self, op: str, inputs=(), args=None, label=None) -> Node:
        node = Node(op, inputs=inputs, args=args, label=label)
        return self._session.register(node)

    def compute(self, live_df: Optional[Sequence] = None):
        """Force evaluation (optimizing first); returns an eager value."""
        return self._session.compute(self._node, live_df=live_df)

    # -- explicit execution API --------------------------------------------

    def collect(self, live: Optional[Sequence] = None):
        """Execute the task graph under this object; returns the eager
        result (the Dask-style spelling of :meth:`compute`).

        ``live`` names lazy objects whose shared subexpressions should
        stay persisted across this execution (section 3.5).
        """
        return self._session.compute(self._node, live_df=live)

    def persist(self) -> "LazyObject":
        """Compute this object's graph and pin its result for reuse.

        Subsumes ``compute(live_df=[self])``: shared interior nodes are
        marked persistent so later collections reuse them instead of
        recomputing (source reads are deliberately not pinned -- that
        would defeat column pruning).  Returns ``self`` so pipelines can
        chain: ``hot = df[df.x > 0].persist()``.

        The pin follows the paper's section 3.5 release rule: it
        survives until the first collection whose ``live`` list does not
        include this object (that collection still reuses the pin, then
        frees it).  To keep it across several collections, pass
        ``collect(live=[hot])`` on all but the last.
        """
        self._session.compute(self._node, live_df=[self])
        return self

    def validate(self):
        """Statically analyze this object's plan without executing it.

        Returns the diagnostic list (possibly empty, possibly warnings
        and hints); raises
        :class:`~repro.analysis.plan.PlanValidationError` when any
        finding has error severity -- *before* any partition is read.
        """
        return self._session.validate(self._node)

    def explain(self, optimized: bool = True, stats: bool = False,
                diagnostics: bool = False) -> str:
        """Text rendering of this object's task graph: the raw plan and
        (unless ``optimized=False``) the plan after the session's
        optimizer rules ran.  ``stats=True`` appends the session's most
        recent per-node execution statistics (populate them with a
        ``collect()`` first); ``diagnostics=True`` appends the static
        analyzer's findings on the raw plan.  Never executes or mutates
        the graph."""
        return self._session.explain(
            self._node, optimized=optimized, stats=stats,
            diagnostics=diagnostics,
        )

    # -- deferred formatting (section 3.3) ---------------------------------

    def __format__(self, spec: str) -> str:
        return _MARKER.format(self._node.id)

    def __str__(self) -> str:
        return _MARKER.format(self._node.id)


class LazyFrame(LazyObject):
    """Lazy dataframe mirroring the pandas DataFrame API."""

    def __init__(self, node: Node, session: Optional[Session] = None,
                 columns: Optional[List[str]] = None):
        super().__init__(node, session)
        self._columns = columns

    def _frame(self, op, inputs=(), args=None, columns=None, label=None) -> "LazyFrame":
        node = self._new_node(op, inputs, args, label)
        return LazyFrame(node, self._session, columns=columns)

    def _series(self, op, inputs=(), args=None, name=None, label=None) -> "LazySeries":
        node = self._new_node(op, inputs, args, label)
        return LazySeries(node, self._session, name=name)

    # -- schema ------------------------------------------------------------

    @property
    def columns(self) -> Optional[List[str]]:
        """Statically tracked column names (None when unknown)."""
        return self._columns

    def _derive_columns(self, add=None, remove=None, only=None, rename=None):
        if self._columns is None:
            return None
        cols = list(self._columns)
        if only is not None:
            return [c for c in cols if c in set(only)]
        if rename:
            cols = [rename.get(c, c) for c in cols]
        if remove:
            cols = [c for c in cols if c not in set(remove)]
        for name in add or ():
            if name not in cols:
                cols.append(name)
        return cols

    # -- selection ----------------------------------------------------------

    def __getitem__(self, key):
        if isinstance(key, str):
            return self._series(
                "getitem_column", [self._node], {"column": key},
                name=key, label=f"get_item {key}",
            )
        if isinstance(key, list):
            return self._frame(
                "getitem_columns", [self._node], {"columns": list(key)},
                columns=self._derive_columns(only=key),
                label=f"get_item {key}",
            )
        if isinstance(key, LazySeries):
            return self._frame(
                "filter", [self._node, key.node],
                columns=self._columns, label="get_item [filter]",
            )
        raise TypeError(f"unsupported LazyFrame key: {key!r}")

    def __setitem__(self, key: str, value) -> None:
        inputs = [self._node]
        args = {"column": key}
        if isinstance(value, LazyObject):
            inputs.append(value.node)
        else:
            args["value"] = value
        node = self._new_node("setitem", inputs, args, label=f"set_item {key}")
        self._node = node
        self._columns = self._derive_columns(add=[key])

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        columns = object.__getattribute__(self, "_columns")
        if columns is None or name in columns:
            return self[name]
        raise AttributeError(f"LazyFrame has no attribute or column {name!r}")

    @property
    def loc(self):
        return _LazyLoc(self)

    # -- transforms --------------------------------------------------------------

    def dropna(self, subset=None, inplace: bool = False):
        frame = self._frame(
            "dropna", [self._node], {"subset": subset}, columns=self._columns
        )
        return self._maybe_inplace(frame, inplace)

    def fillna(self, value, inplace: bool = False):
        frame = self._frame(
            "fillna", [self._node], {"value": value}, columns=self._columns
        )
        return self._maybe_inplace(frame, inplace)

    def astype(self, dtype) -> "LazyFrame":
        return self._frame(
            "astype", [self._node], {"dtype": dtype}, columns=self._columns
        )

    def rename(self, columns: dict, inplace: bool = False):
        frame = self._frame(
            "rename", [self._node], {"columns": columns},
            columns=self._derive_columns(rename=columns),
        )
        return self._maybe_inplace(frame, inplace)

    def drop(self, labels=None, columns=None, axis: int = 0, inplace: bool = False):
        if columns is None and axis == 1:
            columns = labels
        drop_list = [columns] if isinstance(columns, str) else list(columns)
        frame = self._frame(
            "drop", [self._node], {"columns": drop_list},
            columns=self._derive_columns(remove=drop_list),
        )
        return self._maybe_inplace(frame, inplace)

    def round(self, decimals: int = 0) -> "LazyFrame":
        return self._frame(
            "round", [self._node], {"decimals": decimals}, columns=self._columns
        )

    def sort_values(self, by, ascending=True, inplace: bool = False):
        frame = self._frame(
            "sort_values", [self._node],
            {"by": by, "ascending": ascending}, columns=self._columns,
        )
        return self._maybe_inplace(frame, inplace)

    def sort_index(self) -> "LazyFrame":
        return self._frame("sort_index", [self._node], columns=self._columns)

    def drop_duplicates(self, subset=None, inplace: bool = False):
        frame = self._frame(
            "drop_duplicates", [self._node], {"subset": subset},
            columns=self._columns,
        )
        return self._maybe_inplace(frame, inplace)

    def head(self, n: int = 5) -> "LazyFrame":
        return self._frame("head", [self._node], {"n": n}, columns=self._columns)

    def tail(self, n: int = 5) -> "LazyFrame":
        return self._frame("tail", [self._node], {"n": n}, columns=self._columns)

    def nlargest(self, n: int, columns) -> "LazyFrame":
        return self._frame(
            "nlargest", [self._node], {"n": n, "columns": columns},
            columns=self._columns,
        )

    def nsmallest(self, n: int, columns) -> "LazyFrame":
        return self._frame(
            "nsmallest", [self._node], {"n": n, "columns": columns},
            columns=self._columns,
        )

    def describe(self) -> "LazyFrame":
        return self._frame("describe", [self._node])

    def info(self) -> "LazyScalar":
        node = self._new_node("info", [self._node])
        return LazyScalar(node, self._session)

    def sample(self, n: int, seed: int = 0) -> "LazyFrame":
        return self._frame(
            "sample", [self._node], {"n": n, "seed": seed}, columns=self._columns
        )

    def reset_index(self, drop: bool = False, inplace: bool = False):
        frame = self._frame("reset_index", [self._node], {"drop": drop})
        return self._maybe_inplace(frame, inplace)

    def set_index(self, column: str, inplace: bool = False):
        frame = self._frame(
            "set_index", [self._node], {"column": column},
            columns=self._derive_columns(remove=[column]),
        )
        return self._maybe_inplace(frame, inplace)

    def apply(self, func, axis: int = 1) -> "LazySeries":
        return self._series("apply", [self._node], {"func": func, "axis": axis})

    def assign(self, **kwargs) -> "LazyFrame":
        frame = self
        for name, value in kwargs.items():
            if callable(value):
                value = value(frame)
            out = LazyFrame(frame._node, self._session, columns=frame._columns)
            out[name] = value
            frame = out
        return frame

    def copy(self) -> "LazyFrame":
        # Nodes are immutable; a copy just needs an independent binding.
        return LazyFrame(self._node, self._session, columns=self._columns)

    def _maybe_inplace(self, frame: "LazyFrame", inplace: bool):
        if inplace:
            self._node = frame._node
            self._columns = frame._columns
            return None
        return frame

    # -- combination --------------------------------------------------------------

    def merge(self, right, **kwargs) -> "LazyFrame":
        if not isinstance(right, LazyFrame):
            raise TypeError("merge requires a LazyFrame right side")
        return self._frame(
            "merge", [self._node, right.node], dict(kwargs), label="merge"
        )

    def groupby(self, by, as_index: bool = True) -> "LazyGroupBy":
        keys = [by] if isinstance(by, str) else list(by)
        return LazyGroupBy(self, keys, as_index=as_index)

    # -- forcing APIs ---------------------------------------------------------------

    def __len__(self) -> int:
        return int(len(self.compute()))

    @property
    def shape(self):
        return self.compute().shape

    def to_csv(self, path: str, index: bool = False) -> None:
        node = self._new_node(
            "to_csv", [self._node], {"path": path, "index": index}
        )
        self._session.compute(node)

    def __repr__(self) -> str:
        return f"<LazyFrame node={self._node.id} op={self._node.op}>"


class LazySeries(LazyObject):
    """Lazy series mirroring the pandas Series API."""

    def __init__(self, node: Node, session: Optional[Session] = None,
                 name: Optional[str] = None):
        super().__init__(node, session)
        self.name = name

    def _series(self, op, inputs=(), args=None, label=None) -> "LazySeries":
        node = self._new_node(op, inputs, args, label)
        return LazySeries(node, self._session, name=self.name)

    def _scalar(self, op, inputs=(), args=None, label=None) -> "LazyScalar":
        node = self._new_node(op, inputs, args, label)
        return LazyScalar(node, self._session)

    # -- binary / comparison operators -------------------------------------------

    def _binop(self, other, symbol: str, reflected: bool = False) -> "LazySeries":
        inputs = [self._node]
        args = {"op": symbol, "reflected": reflected}
        if isinstance(other, LazyObject):
            inputs.append(other.node)
        else:
            args["right"] = other
        return self._series("binop", inputs, args, label=_BINOP_LABELS.get(symbol, symbol))

    def __add__(self, other):
        return self._binop(other, "+")

    def __radd__(self, other):
        return self._binop(other, "+", reflected=True)

    def __sub__(self, other):
        return self._binop(other, "-")

    def __rsub__(self, other):
        return self._binop(other, "-", reflected=True)

    def __mul__(self, other):
        return self._binop(other, "*")

    def __rmul__(self, other):
        return self._binop(other, "*", reflected=True)

    def __truediv__(self, other):
        return self._binop(other, "/")

    def __rtruediv__(self, other):
        return self._binop(other, "/", reflected=True)

    def __floordiv__(self, other):
        return self._binop(other, "//")

    def __mod__(self, other):
        return self._binop(other, "%")

    def __eq__(self, other):  # type: ignore[override]
        return self._binop(other, "==")

    def __ne__(self, other):  # type: ignore[override]
        return self._binop(other, "!=")

    def __lt__(self, other):
        return self._binop(other, "<")

    def __le__(self, other):
        return self._binop(other, "<=")

    def __gt__(self, other):
        return self._binop(other, ">")

    def __ge__(self, other):
        return self._binop(other, ">=")

    __hash__ = None  # type: ignore[assignment]

    def __and__(self, other):
        return self._binop(other, "&")

    def __or__(self, other):
        return self._binop(other, "|")

    def __invert__(self):
        return self._series("unop", [self._node], {"op": "~"})

    def __neg__(self):
        return self._series("unop", [self._node], {"op": "-"})

    def abs(self) -> "LazySeries":
        return self._series("unop", [self._node], {"op": "abs"})

    def round(self, decimals: int = 0) -> "LazySeries":
        return self._series("round", [self._node], {"decimals": decimals})

    # -- predicates & missing data --------------------------------------------------

    def isin(self, values) -> "LazySeries":
        return self._series("isin", [self._node], {"values": list(values)})

    def between(self, left, right, inclusive: str = "both") -> "LazySeries":
        return self._series(
            "between", [self._node],
            {"left": left, "right": right, "inclusive": inclusive},
        )

    def isna(self) -> "LazySeries":
        return self._series("isna", [self._node])

    isnull = isna

    def notna(self) -> "LazySeries":
        return self._series("notna", [self._node])

    notnull = notna

    def fillna(self, value) -> "LazySeries":
        return self._series("series_fillna", [self._node], {"value": value})

    def dropna(self) -> "LazySeries":
        return self._series("filter", [self._node, self.notna().node])

    def astype(self, dtype) -> "LazySeries":
        return self._series("series_astype", [self._node], {"dtype": dtype})

    def map(self, func) -> "LazySeries":
        return self._series("series_map", [self._node], {"func": func})

    apply = map

    def __getitem__(self, key):
        if isinstance(key, LazySeries):
            return self._series("filter", [self._node, key.node])
        raise TypeError(f"unsupported LazySeries key: {key!r}")

    # -- window / positional ops (never commute with filters) --------------------

    def _call(self, method: str, *args, **kwargs) -> "LazySeries":
        return self._series(
            "series_call", [self._node],
            {"method": method, "args": args, "kwargs": kwargs},
            label=method,
        )

    def shift(self, periods: int = 1) -> "LazySeries":
        return self._call("shift", periods)

    def diff(self, periods: int = 1) -> "LazySeries":
        return self._call("diff", periods)

    def cumsum(self) -> "LazySeries":
        return self._call("cumsum")

    def cummax(self) -> "LazySeries":
        return self._call("cummax")

    def cummin(self) -> "LazySeries":
        return self._call("cummin")

    def rank(self, ascending: bool = True) -> "LazySeries":
        return self._call("rank", ascending=ascending)

    def clip(self, lower=None, upper=None) -> "LazySeries":
        return self._call("clip", lower, upper)

    # -- accessors --------------------------------------------------------------------

    @property
    def str(self) -> "LazyStringAccessor":
        return LazyStringAccessor(self)

    @property
    def dt(self) -> "LazyDatetimeAccessor":
        return LazyDatetimeAccessor(self)

    # -- aggregations -------------------------------------------------------------------

    def sum(self) -> "LazyScalar":
        return self._scalar("series_agg", [self._node], {"func": "sum"}, label="sum")

    def mean(self) -> "LazyScalar":
        return self._scalar("series_agg", [self._node], {"func": "mean"}, label="mean")

    def min(self) -> "LazyScalar":
        return self._scalar("series_agg", [self._node], {"func": "min"}, label="min")

    def max(self) -> "LazyScalar":
        return self._scalar("series_agg", [self._node], {"func": "max"}, label="max")

    def count(self) -> "LazyScalar":
        return self._scalar("series_agg", [self._node], {"func": "count"}, label="count")

    def std(self) -> "LazyScalar":
        return self._scalar("series_agg", [self._node], {"func": "std"}, label="std")

    def median(self) -> "LazyScalar":
        return self._scalar("series_agg", [self._node], {"func": "median"}, label="median")

    def nunique(self) -> "LazyScalar":
        return self._scalar("nunique", [self._node], label="nunique")

    def unique(self):
        """Eager: returns the actual unique values (small result)."""
        node = self._new_node("unique", [self._node])
        return self._session.compute(node)

    def value_counts(self) -> "LazySeries":
        return self._series("value_counts", [self._node], label="value_counts")

    def head(self, n: int = 5) -> "LazySeries":
        return self._series("head", [self._node], {"n": n}, label="head")

    def sort_values(self, ascending: bool = True) -> "LazySeries":
        return self._series(
            "sort_values", [self._node], {"by": None, "ascending": ascending}
        )

    def to_frame(self, name=None) -> "LazyFrame":
        node = self._new_node("to_frame_series", [self._node], {"name": name})
        return LazyFrame(node, self._session)

    def __len__(self) -> int:
        return int(len(self.compute()))

    def __repr__(self) -> str:
        return f"<LazySeries node={self._node.id} op={self._node.op}>"


class LazyScalar(LazyObject):
    """Lazy scalar (aggregation results, lazy ``len``)."""

    def _binop(self, other, symbol: str, reflected: bool = False) -> "LazyScalar":
        inputs = [self._node]
        args = {"op": symbol, "reflected": reflected}
        if isinstance(other, LazyObject):
            inputs.append(other.node)
        else:
            args["right"] = other
        node = self._new_node("binop", inputs, args)
        return LazyScalar(node, self._session)

    def __add__(self, other):
        return self._binop(other, "+")

    def __radd__(self, other):
        return self._binop(other, "+", reflected=True)

    def __sub__(self, other):
        return self._binop(other, "-")

    def __rsub__(self, other):
        return self._binop(other, "-", reflected=True)

    def __mul__(self, other):
        return self._binop(other, "*")

    def __rmul__(self, other):
        return self._binop(other, "*", reflected=True)

    def __truediv__(self, other):
        return self._binop(other, "/")

    def __rtruediv__(self, other):
        return self._binop(other, "/", reflected=True)

    def __float__(self) -> float:
        return float(self.compute())

    def __int__(self) -> int:
        return int(self.compute())

    def __repr__(self) -> str:
        return f"<LazyScalar node={self._node.id} op={self._node.op}>"


_BINOP_LABELS = {">": "greater_than", "<": "less_than", "==": "equals"}


class LazyStringAccessor:
    """Lazy ``.str``: records the method call as a node."""

    def __init__(self, series: LazySeries):
        self._series = series

    def __getattr__(self, method: str):
        if method.startswith("_"):
            raise AttributeError(method)

        def _call(*args, **kwargs):
            lazy_extra = [a.node for a in args if isinstance(a, LazyObject)]
            plain = tuple(a for a in args if not isinstance(a, LazyObject))
            node = self._series._new_node(
                "str_method",
                [self._series.node, *lazy_extra],
                {"method": method, "args": plain, "kwargs": kwargs},
                label=f"str.{method}",
            )
            return LazySeries(node, self._series._session, name=self._series.name)

        return _call


class LazyDatetimeAccessor:
    """Lazy ``.dt``: component access as nodes."""

    _FIELDS = (
        "year", "month", "day", "hour", "minute", "second",
        "dayofweek", "weekday", "date", "dayofyear",
    )

    def __init__(self, series: LazySeries):
        self._series = series

    def __getattr__(self, field: str):
        if field not in self._FIELDS:
            raise AttributeError(field)
        node = self._series._new_node(
            "dt_field", [self._series.node], {"field": field}, label=field
        )
        return LazySeries(node, self._series._session, name=self._series.name)


class LazyGroupBy:
    """``df.groupby(keys)`` -- holds context until an aggregation is named."""

    def __init__(self, frame: LazyFrame, keys: List[str], as_index: bool = True):
        self._frame = frame
        self._keys = keys
        self._as_index = as_index

    def __getitem__(self, column: Union[str, List[str]]):
        if isinstance(column, str):
            return LazySeriesGroupBy(self._frame, self._keys, column)
        return LazyFrameGroupBy(self._frame, self._keys, list(column), self._as_index)

    def size(self) -> LazySeries:
        node = self._frame._new_node(
            "groupby_size", [self._frame.node], {"keys": self._keys},
            label=f"groupby {self._keys} size",
        )
        return LazySeries(node, self._frame._session)

    def agg(self, spec: dict) -> LazyFrame:
        node = self._frame._new_node(
            "groupby_agg_multi",
            [self._frame.node],
            {"keys": self._keys, "spec": spec, "as_index": self._as_index,
             "columns": list(spec)},
            label=f"groupby {self._keys} agg",
        )
        return LazyFrame(node, self._frame._session)


class LazySeriesGroupBy:
    """``df.groupby(keys)[col]`` -- aggregation methods emit one node."""

    def __init__(self, frame: LazyFrame, keys: List[str], column: str):
        self._frame = frame
        self._keys = keys
        self._column = column

    def _agg(self, func: str) -> LazySeries:
        node = self._frame._new_node(
            "groupby_agg",
            [self._frame.node],
            {"keys": self._keys, "column": self._column, "func": func},
            label=f"groupby {self._keys} {func}",
        )
        return LazySeries(node, self._frame._session, name=self._column)

    def sum(self) -> LazySeries:
        return self._agg("sum")

    def mean(self) -> LazySeries:
        return self._agg("mean")

    def count(self) -> LazySeries:
        return self._agg("count")

    def min(self) -> LazySeries:
        return self._agg("min")

    def max(self) -> LazySeries:
        return self._agg("max")

    def agg(self, func: str) -> LazySeries:
        return self._agg(func)


class LazyFrameGroupBy:
    """``df.groupby(keys)[[c1, c2]]``."""

    def __init__(self, frame: LazyFrame, keys: List[str], columns: List[str],
                 as_index: bool = True):
        self._frame = frame
        self._keys = keys
        self._columns = columns
        self._as_index = as_index

    def _agg_all(self, func: str) -> LazyFrame:
        node = self._frame._new_node(
            "groupby_agg_multi",
            [self._frame.node],
            {
                "keys": self._keys,
                "spec": {c: func for c in self._columns},
                "as_index": self._as_index,
                "columns": self._columns,
            },
            label=f"groupby {self._keys} {func}",
        )
        return LazyFrame(node, self._frame._session)

    def sum(self) -> LazyFrame:
        return self._agg_all("sum")

    def mean(self) -> LazyFrame:
        return self._agg_all("mean")

    def count(self) -> LazyFrame:
        return self._agg_all("count")

    def min(self) -> LazyFrame:
        return self._agg_all("min")

    def max(self) -> LazyFrame:
        return self._agg_all("max")

    def agg(self, spec) -> LazyFrame:
        if isinstance(spec, str):
            return self._agg_all(spec)
        return LazyGroupBy(self._frame, self._keys, self._as_index).agg(spec)


class _LazyLoc:
    """Boolean-mask ``loc`` support."""

    def __init__(self, frame: LazyFrame):
        self._frame = frame

    def __getitem__(self, key):
        if isinstance(key, tuple) and len(key) == 2:
            rows, cols = key
            base = self._frame[rows] if isinstance(rows, LazySeries) else self._frame
            if isinstance(cols, str):
                return base[cols]
            return base[list(cols)]
        if isinstance(key, LazySeries):
            return self._frame[key]
        raise TypeError(f"unsupported loc key: {key!r}")
