"""LaFP session: backend selection, compute orchestration, lazy-print state.

One session exists per program run (reset between benchmark runs).  It
owns:

- the chosen backend (``pandas`` / ``dask`` / ``modin``; default ``dask``
  as in section 2.6),
- the chain of pending lazy-print nodes (section 3.3),
- the set of persisted nodes from previous ``compute(live_df=...)`` calls
  (section 3.5), released once no longer live,
- optimization flags (used by the ablation benchmarks),
- the node registry that resolves f-string escape markers back to nodes.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.backends import Backend, get_backend
from repro.graph import Executor, Node, collect_subgraph


#: Hooks run before every compute/flush (the facade registers one that
#: propagates the module-level ``BACKEND_ENGINE`` choice).
SYNC_HOOKS: List = []


@dataclasses.dataclass
class OptimizationFlags:
    """Toggles for each runtime optimization (ablation knobs)."""

    predicate_pushdown: bool = True
    common_subexpression: bool = True
    projection_pushdown: bool = True
    metadata: bool = True
    caching: bool = True  # live_df-driven persistence (section 3.5)


class Session:
    """Holds the lazily-built task graph's runtime state."""

    def __init__(self, backend: str = "dask"):
        self.backend_name = backend
        self._backend: Optional[Backend] = None
        self.flags = OptimizationFlags()
        self.last_print: Optional[Node] = None
        self.pending_prints: List[Node] = []
        self.node_registry: Dict[int, Node] = {}
        self.persisted: List[Node] = []
        self.metastore = None  # set lazily; tests may inject one
        self.stats = {"computes": 0, "nodes_executed": 0}

    # -- backend ------------------------------------------------------------

    @property
    def backend(self) -> Backend:
        if self._backend is None or self._backend.name != self.backend_name:
            self._backend = get_backend(self.backend_name)
        return self._backend

    def set_backend(self, name: str) -> None:
        self.backend_name = name
        self._backend = None

    # -- node bookkeeping -------------------------------------------------------

    def register(self, node: Node) -> Node:
        self.node_registry[node.id] = node
        return node

    def add_print(self, node: Node) -> None:
        """Chain a lazy print for deterministic output order."""
        if self.last_print is not None:
            node.order_deps.append(self.last_print)
        self.last_print = node
        self.pending_prints.append(node)

    # -- computation ---------------------------------------------------------------

    def compute(self, node: Node, live_df: Optional[Sequence] = None):
        """Force ``node`` (and pending prints), with live_df persistence.

        Pending lazy prints execute first (ordering edges keep them in
        program order) -- this is the paper's rule that forced computation
        processes pending prints so external output does not interleave
        wrongly (section 3.4).
        """
        live_nodes = _live_nodes(live_df)
        roots = [p for p in self.pending_prints] + [node]
        results = self._run(roots, live_nodes)
        self.pending_prints.clear()
        return results[-1]

    def flush(self) -> None:
        """Execute all pending lazy prints (the ``pd.flush()`` of Fig. 8)."""
        if not self.pending_prints:
            return
        roots = list(self.pending_prints)
        self._run(roots, live_nodes=[])
        self.pending_prints.clear()

    def _run(self, roots: List[Node], live_nodes: List[Node]):
        from repro.core.optimizer import optimize

        for hook in SYNC_HOOKS:
            hook()
        # Optimization is transactional: the rules rewire the shared graph
        # for *this* execution (like Dask optimizing a copy of its graph),
        # then the original wiring is restored -- later computations may
        # demand columns or rows this execution's rewrites pruned away.
        # Results survive restoration: a node's value is the same in the
        # optimized and original graphs.
        snapshot = self._snapshot(roots)
        try:
            optimize(roots, self, live_nodes=live_nodes)
            executor = Executor(self.backend)
            results = executor.execute(roots)
        finally:
            self._restore(snapshot)
        self.stats["computes"] += 1
        self._release_dead_persists(live_nodes)
        return results

    @staticmethod
    def _snapshot(roots: List[Node]):
        nodes = collect_subgraph(roots)
        return [
            (node, node.op, list(node.inputs), dict(node.args), list(node.order_deps))
            for node in nodes
        ]

    @staticmethod
    def _restore(snapshot) -> None:
        for node, op, inputs, args, order_deps in snapshot:
            node.op = op
            node.inputs = inputs
            node.args = args
            node.order_deps = order_deps

    def _release_dead_persists(self, live_nodes: List[Node]) -> None:
        """Drop persisted results that no live dataframe still references
        (section 3.5: persisted frames are discarded after their last use).
        """
        still_live = set()
        if live_nodes:
            for live in live_nodes:
                still_live.update(n.id for n in collect_subgraph([live]))
        survivors = []
        for node in self.persisted:
            if node.id in still_live:
                survivors.append(node)
            else:
                node.persist = False
                node.clear_result()
        self.persisted = survivors


_session: Optional[Session] = None


def get_session() -> Session:
    global _session
    if _session is None:
        _session = Session()
    return _session


def reset_session(backend: str = "dask") -> Session:
    """Fresh session (used between programs and benchmark runs)."""
    global _session
    _session = Session(backend=backend)
    return _session


def _live_nodes(live_df) -> List[Node]:
    """Unwrap lazy wrappers / raw nodes passed as ``live_df``."""
    if not live_df:
        return []
    nodes = []
    for item in live_df:
        node = getattr(item, "_node", None)
        if node is None and isinstance(item, Node):
            node = item
        if node is not None:
            nodes.append(node)
    return nodes
