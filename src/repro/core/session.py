"""LaFP sessions: explicit, thread-safe execution state.

A :class:`Session` owns everything one logical program needs:

- its options (:class:`~repro.core.config.SessionOptions`, including the
  ``backend.engine`` choice -- default ``dask`` as in section 2.6),
- per-session :class:`~repro.backends.engine.Engine` instances resolved
  through an :class:`~repro.backends.engine.EngineRegistry`, so two
  sessions can run different backends concurrently,
- a per-session :class:`~repro.memory.manager.MemoryManager` (budgeted
  via the ``memory.budget`` option), so concurrent sessions account and
  budget their allocations independently -- the root session adopts the
  historical process-wide manager,
- an :class:`~repro.graph.scheduler.ExecutorRegistry` from which the
  ``executor.strategy`` option picks the execution strategy (serial /
  threaded / fused) for every ``collect()``,
- the chain of pending lazy-print nodes (section 3.3),
- the set of persisted nodes from ``persist()`` / ``compute(live_df=...)``
  calls (section 3.5), released once no longer live,
- the node registry that resolves f-string escape markers back to nodes.

Sessions are resolved through a *thread-local stack*::

    with Session(backend="pandas") as s:
        df = lfp.read_csv(path)       # binds to s
        df.collect()                  # runs on s's pandas engine

:func:`current_session` returns the innermost active session of the
calling thread, falling back to a shared process root session so
paper-verbatim scripts (no explicit session) keep working.  The old
process-global ``get_session`` / ``reset_session`` entry points live
on as deprecation shims in :mod:`repro.core.compat`.
"""

from __future__ import annotations

import os
import threading
import warnings
import weakref
from typing import Dict, List, Optional, Sequence

from repro.backends.engine import DEFAULT_REGISTRY, Engine, EngineRegistry
from repro.core.config import OptimizerFlagsView, SessionOptions
from repro.graph import Node, collect_subgraph, render_plan
from repro.graph.scheduler import (
    DEFAULT_EXECUTORS,
    ExecutionStats,
    ExecutorRegistry,
    Scheduler,
)
from repro.memory.manager import MemoryManager, memory_manager as _root_memory


#: "the memory.budget option has never written through to the manager".
_BUDGET_UNSYNCED = object()


def _auto_worker_cap() -> int:
    """Hard pool-size ceiling for ``executor.max_workers="auto"``."""
    return max(1, min(8, os.cpu_count() or 4))


def _shutdown_pool(pool) -> None:
    """Best-effort pool shutdown (module-level so a session finalizer
    never keeps the session alive through its own cell)."""
    try:
        pool.shutdown(wait=True, cancel_futures=True)
    except Exception:  # noqa: BLE001 - already-broken pools may raise
        pass


class Session:
    """Holds the lazily-built task graph's runtime state.

    Context manager: ``with Session(...)`` makes it the calling thread's
    current session; on exit the previous session is current again
    (nesting works like any stack).
    """

    def __init__(
        self,
        backend: Optional[str] = None,
        options: Optional[dict] = None,
        registry: Optional[EngineRegistry] = None,
        metastore=None,
        executors: Optional[ExecutorRegistry] = None,
        memory: Optional[MemoryManager] = None,
    ):
        self.options = SessionOptions(options)
        if backend is not None:
            self.options.set("backend.engine", backend)
        self.registry = registry or DEFAULT_REGISTRY
        self.executors = executors or DEFAULT_EXECUTORS
        self._engines: Dict[str, Engine] = {}
        # Each session accounts memory on its own manager; the root
        # session injects the historical process-wide one.
        if memory is None:
            memory = MemoryManager()
        self._memory = memory
        #: manager budget saved before the first option write-through, so
        #: leaving an option_context restores it (sentinel = never synced).
        self._budget_before_option: object = _BUDGET_UNSYNCED
        self.last_print: Optional[Node] = None
        self.pending_prints: List[Node] = []
        self.node_registry: Dict[int, Node] = {}
        self.persisted: List[Node] = []
        self.metastore = metastore  # set lazily; tests may inject one
        self.stats = {"computes": 0, "nodes_executed": 0}
        self.last_optimize_report: Optional[dict] = None
        self.last_execution_stats: Optional[ExecutionStats] = None
        #: analysis-gate memo: roots key -> (graph version, diagnostics).
        #: The node registry only ever grows, so its size is a cheap
        #: version stamp for "was any node built since the last gate?".
        self._analysis_cache: Dict[tuple, tuple] = {}
        #: plan-fingerprint memo: node id -> (graph version, source stat
        #: deps, digest); same versioning scheme as the analysis gate
        #: (see repro.cache.fingerprint).
        self._fingerprint_cache: Dict[int, tuple] = {}
        #: the in-flight run's CacheRunState, installed by the
        #: ``optimizer.reuse`` pass and handed to the scheduler by _run.
        self._cache_run = None
        #: lazily-created process-strategy worker pool (see
        #: :meth:`process_pool`), its creation key, and the finalizer
        #: that shuts it down when the session is garbage-collected.
        self._process_pool = None
        self._process_pool_key: Optional[tuple] = None
        self._pool_finalizer: Optional[weakref.finalize] = None

    # -- options -----------------------------------------------------------

    @property
    def flags(self) -> OptimizerFlagsView:
        """Legacy ``OptimizationFlags``-shaped view over the options."""
        return OptimizerFlagsView(self.options)

    def get_option(self, key: str):
        return self.options.get(key)

    def set_option(self, key: str, value) -> None:
        self.options.set(key, value)

    def option_context(self, *args, **kwargs):
        """Nestable temporary option overrides (see
        :meth:`SessionOptions.context`)."""
        return self.options.context(*args, **kwargs)

    # -- engine / backend --------------------------------------------------

    @property
    def backend_name(self) -> str:
        return str(self.options.get("backend.engine"))

    @property
    def engine(self) -> Engine:
        """The engine named by ``backend.engine``, instantiated per
        session and cached, so its state (e.g. the Dask partition store)
        survives switching away and back."""
        name = self.backend_name.lower()
        engine = self._engines.get(name)
        if engine is None:
            engine = self.registry.create(name)
            self._engines[name] = engine
        return engine

    @property
    def backend(self):
        return self.engine.backend

    def set_backend(self, name: str) -> None:
        """Routes through the options so there is one source of truth."""
        self.options.set("backend.engine", name)

    # -- memory ------------------------------------------------------------

    @property
    def memory(self) -> MemoryManager:
        """This session's memory manager.

        An explicitly-set ``memory.budget`` option writes through on
        access, and the manager's prior budget comes back once the
        option is unset again -- ``option_context("memory.budget", ...)``
        budgets exactly its scope.  When the option was never touched
        the manager's own budget is authoritative, so harness code that
        assigns ``memory_manager.budget`` directly keeps working at root.
        """
        if self.options.is_set("memory.budget"):
            if self._budget_before_option is _BUDGET_UNSYNCED:
                self._budget_before_option = self._memory.budget
            self._memory.budget = self.options.get("memory.budget")
        elif self._budget_before_option is not _BUDGET_UNSYNCED:
            self._memory.budget = self._budget_before_option
            self._budget_before_option = _BUDGET_UNSYNCED
        return self._memory

    # -- scheduling --------------------------------------------------------

    def scheduler(self) -> Scheduler:
        """Build the scheduler the ``executor.strategy`` option names.

        Strategies that run ``backend.apply`` concurrently fall back to
        ``serial`` on engines without ``supports_parallel_apply`` (the
        lazy simulators build shared expression graphs); the returned
        scheduler's stats report both the requested and effective
        strategy.
        """
        requested = str(self.options.get("executor.strategy")).lower()
        spec = self.executors.spec(requested)
        if (
            spec.requires_parallel_apply
            and not self.engine.supports_parallel_apply
        ):
            spec = self.executors.spec("serial")
        raw_workers = self.options.get("executor.max_workers")
        auto_workers = raw_workers == "auto"
        scheduler = spec.create(
            self.backend,
            session=self,
            memory=self.memory,
            max_workers=(
                _auto_worker_cap() if auto_workers else int(raw_workers)
            ),
            static_order=bool(self.options.get("executor.static_order")),
        )
        # "auto" resolves per run inside Scheduler._plan, once the
        # static order's simulated peak bytes exist to size against.
        scheduler.auto_workers = auto_workers
        scheduler.requested_strategy = requested
        return scheduler

    def process_pool(self, workers: Optional[int] = None):
        """The session's shared process-strategy worker pool.

        Created on first use by :class:`~repro.graph.scheduler.process.
        ProcessScheduler` (which passes its resolved ``workers``, so
        ``max_workers="auto"`` sizes the pool too) and reused across
        ``collect()`` calls (forking a pool per execution would dominate
        small plans); resized when ``executor.max_workers`` changes.
        ``close()`` shuts it down; a finalizer does the same when the
        session is garbage-collected.
        """
        from repro.graph.scheduler.process import create_worker_pool

        if workers is None:
            raw = self.options.get("executor.max_workers")
            workers = _auto_worker_cap() if raw == "auto" else int(raw)
        workers = int(workers)
        start_method = self.options.get("executor.process_start_method")
        key = (workers, start_method, self.backend_name.lower())
        if self._process_pool is not None and self._process_pool_key != key:
            self.close_pool()
        if self._process_pool is None:
            self._process_pool = create_worker_pool(
                workers, start_method, self.backend_name.lower()
            )
            self._process_pool_key = key
            self._pool_finalizer = weakref.finalize(
                self, _shutdown_pool, self._process_pool
            )
        return self._process_pool

    def discard_pool(self, pool) -> None:
        """Forget ``pool`` (it broke); a fresh one is built on next use."""
        if self._process_pool is pool:
            self._process_pool = None
            if self._pool_finalizer is not None:
                self._pool_finalizer.detach()
                self._pool_finalizer = None
        _shutdown_pool(pool)

    def close_pool(self) -> None:
        """Shut down the process-strategy worker pool, if one exists."""
        pool, self._process_pool = self._process_pool, None
        if self._pool_finalizer is not None:
            self._pool_finalizer.detach()
            self._pool_finalizer = None
        if pool is not None:
            _shutdown_pool(pool)

    def close(self) -> None:
        """Release the session's external resources (worker pools).

        Idempotent; the session remains usable afterwards (pools are
        recreated on demand).  ``with Session(...)`` blocks do *not*
        close on exit -- a session can be re-entered -- so servers that
        own long-lived sessions call this explicitly.
        """
        self.close_pool()

    # -- activation --------------------------------------------------------

    def activate(self) -> "Session":
        """Push onto the calling thread's session stack."""
        _stack().append(self)
        return self

    def deactivate(self) -> None:
        """Pop this session off the calling thread's stack.

        Sessions activated inside this one's scope and never
        deactivated (e.g. a script that called ``activate()`` bare) are
        popped along with it -- the stack must stay consistent, so
        ``current_session()`` never resolves to a dead scope.  Such
        out-of-order exits are reported as a ``RuntimeWarning``;
        deactivating a session that is not on the stack at all is an
        error.
        """
        stack = _stack()
        if self not in stack:
            raise RuntimeError("session is not active on this thread")
        if stack[-1] is not self:
            warnings.warn(
                "session deactivated out of order; sessions activated "
                "inside its scope were still active and were popped too",
                RuntimeWarning,
                stacklevel=2,
            )
        while stack:
            if stack.pop() is self:
                break

    def __enter__(self) -> "Session":
        return self.activate()

    def __exit__(self, exc_type, exc, tb) -> bool:
        # On a clean exit, drain pending lazy prints (the paper's rule:
        # deferred output must appear by end of program; without this, a
        # print queued inside the block would be lost once the outer
        # session becomes current).  SystemExit counts as a clean exit
        # -- a program calling sys.exit() still expects its deferred
        # output.  Real errors skip the drain so the flush cannot mask
        # them.
        try:
            if exc_type is None or issubclass(exc_type, SystemExit):
                self.flush()
        finally:
            self.deactivate()
        return False

    # -- node bookkeeping --------------------------------------------------

    def register(self, node: Node) -> Node:
        self.node_registry[node.id] = node
        _nodes_by_id[node.id] = node
        return node

    def add_print(self, node: Node) -> None:
        """Chain a lazy print for deterministic output order."""
        if self.last_print is not None:
            node.order_deps.append(self.last_print)
        self.last_print = node
        self.pending_prints.append(node)

    # -- computation -------------------------------------------------------

    def compute(self, node: Node, live_df: Optional[Sequence] = None):
        """Force ``node`` (and pending prints), with live_df persistence.

        Pending lazy prints execute first (ordering edges keep them in
        program order) -- this is the paper's rule that forced computation
        processes pending prints so external output does not interleave
        wrongly (section 3.4).
        """
        live_nodes = _live_nodes(live_df)
        roots = [p for p in self.pending_prints] + [node]
        results = self._run(roots, live_nodes)
        self.pending_prints.clear()
        return results[-1]

    def flush(self) -> None:
        """Execute all pending lazy prints (the ``pd.flush()`` of Fig. 8)."""
        if not self.pending_prints:
            return
        roots = list(self.pending_prints)
        self._run(roots, live_nodes=[])
        self.pending_prints.clear()

    def explain(self, node: Node, optimized: bool = True,
                stats: bool = False, diagnostics: bool = False) -> str:
        """Render ``node``'s task graph as text: the raw plan and (by
        default) the plan after this session's optimizer rules ran.

        With ``stats=True`` the session's most recent execution
        statistics (per-node wall time, queue wait, bytes registered and
        released, fusion and throttle counters) are appended -- run a
        ``collect()`` first to populate them.  With ``diagnostics=True``
        the static plan analyzer's findings on the *raw* plan are
        appended (deterministically ordered and numbered like the raw
        plan itself, so the section golden-tests the same way).

        Purely observational: the graph, persist marks, and the session's
        persisted set are restored afterwards, so ``explain()`` never
        changes what a later ``collect()`` computes.
        """
        from repro.core.optimizer import optimize

        roots = [node]
        sections = ["== raw plan ==", render_plan(roots)]
        if diagnostics:
            from repro.analysis.plan import analyze_plan, render_diagnostics

            sections += [
                "", "== diagnostics ==",
                render_diagnostics(analyze_plan(roots, session=self)),
            ]
        if optimized:
            snapshot = self._snapshot(roots)
            persist_marks = [(entry[0], entry[0].persist) for entry in snapshot]
            persisted_before = list(self.persisted)
            report_before = self.last_optimize_report
            try:
                optimize(roots, self, live_nodes=[])
                sections += ["", "== optimized plan ==", render_plan(roots)]
            finally:
                self._restore(snapshot)
                for marked, flag in persist_marks:
                    marked.persist = flag
                self.persisted = persisted_before
                self.last_optimize_report = report_before
        if stats:
            sections += ["", "== last execution stats =="]
            if self.last_execution_stats is None:
                sections.append("(no execution recorded yet; collect() first)")
            else:
                sections.append(self.last_execution_stats.render())
        return "\n".join(sections)

    def validate(self, node: Node):
        """Run the static plan analyzer over ``node``'s graph.

        Returns the (possibly empty) diagnostic list when no finding has
        error severity; raises
        :class:`~repro.analysis.plan.PlanValidationError` -- carrying
        every diagnostic -- when one does.  Nothing is executed and no
        partition is read.
        """
        from repro.analysis.plan import PlanValidationError, analyze_plan

        diagnostics = analyze_plan([node], session=self)
        if any(d.is_error for d in diagnostics):
            raise PlanValidationError(diagnostics)
        return diagnostics

    def _analysis_gate(self, roots: List[Node]) -> Optional[tuple]:
        """The ``analysis.level`` hook: every computation passes through
        here *before* the optimizer or scheduler touch the plan, so
        strict sessions reject provably broken plans without reading a
        single partition.  Returns the memo key of the analyzed plan
        (``None`` when analysis is off) so ``_run`` can re-stamp the
        cache after the transactional optimize grew the node registry."""
        level = str(self.options.get("analysis.level"))
        if level == "off":
            return
        from repro.analysis.plan import PlanValidationError, analyze_plan
        from repro.analysis.plan.diagnostics import PlanDiagnosticsWarning

        # Re-collecting an unchanged plan (the common steady state: the
        # same frame computed in a loop) reuses the previous analysis --
        # the raw graph is append-only between computations, so "same
        # roots + no new nodes" means "same plan".
        key = tuple(sorted({r.id for r in roots}))
        version = len(self.node_registry)
        cached = self._analysis_cache.get(key)
        if cached is not None and cached[0] == version:
            diagnostics = cached[1]
        else:
            diagnostics = analyze_plan(roots, session=self)
            if len(self._analysis_cache) >= 64:
                self._analysis_cache.clear()
            self._analysis_cache[key] = (version, diagnostics)
        errors = [d for d in diagnostics if d.is_error]
        if not errors:
            return key
        if level == "strict":
            raise PlanValidationError(diagnostics)
        summary = "; ".join(f"{d.code} {d.message}" for d in errors[:3])
        if len(errors) > 3:
            summary += f"; ... ({len(errors) - 3} more)"
        warnings.warn(
            f"static plan analysis found {len(errors)} error(s): {summary}",
            PlanDiagnosticsWarning,
            stacklevel=4,
        )
        return key

    def _run(self, roots: List[Node], live_nodes: List[Node]):
        from repro.core.optimizer import optimize

        gate_key = self._analysis_gate(roots)
        # Optimization is transactional: the rules rewire the shared graph
        # for *this* execution (like Dask optimizing a copy of its graph),
        # then the original wiring is restored -- later computations may
        # demand columns or rows this execution's rewrites pruned away.
        # Results survive restoration: a node's value is the same in the
        # optimized and original graphs.
        snapshot = self._snapshot(roots)
        scheduler = self.scheduler()
        fingerprint_version = len(self.node_registry)
        try:
            optimize(roots, self, live_nodes=live_nodes)
            # the reuse pass (optimizer.cache) left its run state here;
            # the scheduler offers executed results back through it.
            scheduler.cache_state = self._cache_run
            results = scheduler.execute(roots)
        finally:
            self._restore(snapshot)
            if scheduler.last_stats is not None:
                self.last_execution_stats = scheduler.last_stats
                self.stats["nodes_executed"] += (
                    scheduler.last_stats.nodes_executed
                )
                if self._cache_run is not None:
                    self._cache_run.flush_to_stats(scheduler.last_stats)
            self._cache_run = None
        self.stats["computes"] += 1
        self._release_dead_persists(live_nodes)
        if gate_key is not None and gate_key in self._analysis_cache:
            # the optimizer's temporary rewrite nodes grew the registry,
            # but the raw plan was restored unchanged -- re-stamp so the
            # next collect of the same roots reuses this analysis.
            self._analysis_cache[gate_key] = (
                len(self.node_registry),
                self._analysis_cache[gate_key][1],
            )
        if self._fingerprint_cache:
            # same re-stamp for the plan-fingerprint memo: digests
            # computed against the raw pre-optimize graph stay valid.
            from repro.cache.fingerprint import restamp_fingerprints

            restamp_fingerprints(self, fingerprint_version)
        return results

    @staticmethod
    def _snapshot(roots: List[Node]):
        nodes = collect_subgraph(roots)
        return [
            (node, node.op, list(node.inputs), dict(node.args), list(node.order_deps))
            for node in nodes
        ]

    @staticmethod
    def _restore(snapshot) -> None:
        for node, op, inputs, args, order_deps in snapshot:
            node.op = op
            node.inputs = inputs
            node.args = args
            node.order_deps = order_deps

    def _release_dead_persists(self, live_nodes: List[Node]) -> None:
        """Drop persisted results that no live dataframe still references
        (section 3.5: persisted frames are discarded after their last use).
        """
        still_live = set()
        if live_nodes:
            for live in live_nodes:
                still_live.update(n.id for n in collect_subgraph([live]))
        survivors = []
        for node in self.persisted:
            if node.id in still_live:
                survivors.append(node)
            else:
                node.persist = False
                node.clear_result()
        self.persisted = survivors

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Session backend={self.backend_name!r} "
            f"computes={self.stats['computes']}>"
        )


# ---------------------------------------------------------------------------
# Session resolution: per-thread stack over a shared root.
# ---------------------------------------------------------------------------

_tls = threading.local()
_root_lock = threading.RLock()
_root: Optional[Session] = None

#: node id -> node (weak: an entry lives exactly as long as its node,
#: i.e. no longer than the owning session's registry keeps it -- this
#: adds no growth beyond the registry itself).  Node ids come from one
#: process-wide counter, so ids are unambiguous across sessions.
_nodes_by_id: "weakref.WeakValueDictionary[int, Node]" = (
    weakref.WeakValueDictionary()
)


def node_for_id(node_id: int) -> Optional[Node]:
    """Resolve a registered node by id, across all live sessions.

    Lets f-string escape markers (section 3.3) resolve even when the
    embedding string outlives the ``with Session(...)`` block it was
    built in."""
    return _nodes_by_id.get(node_id)


def _stack() -> List[Session]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


def _clear_stack_after_fork() -> None:
    # A forked child (e.g. a process-strategy worker) inherits the
    # forking thread's active-session stack; those sessions -- and
    # their memory budgets -- belong to the parent, so the child
    # starts from the root session.
    _stack().clear()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX only
    os.register_at_fork(after_in_child=_clear_stack_after_fork)


def current_session() -> Session:
    """The innermost active session of this thread, else the root."""
    stack = _stack()
    if stack:
        return stack[-1]
    return root_session()


def root_session() -> Session:
    """The shared fallback session used outside any ``with Session``."""
    global _root
    if _root is None:
        with _root_lock:
            if _root is None:
                _root = Session(memory=_root_memory)
    return _root


def reset_root_session(
    backend: Optional[str] = None, options: Optional[dict] = None
) -> Session:
    """Replace the root session (test/benchmark isolation hook).

    Only affects code running *outside* explicit ``with Session(...)``
    blocks; active session stacks are untouched.
    """
    global _root
    with _root_lock:
        # `backend=None` falls through to the options dict (or the
        # registry default "dask"), so an options-supplied engine is
        # not clobbered.  The root session always adopts the process
        # manager so direct `memory_manager.budget = ...` keeps working.
        _root = Session(backend=backend, options=options, memory=_root_memory)
        return _root


def _live_nodes(live_df) -> List[Node]:
    """Unwrap lazy wrappers / raw nodes passed as ``live_df``."""
    if not live_df:
        return []
    nodes = []
    for item in live_df:
        node = getattr(item, "_node", None)
        if node is None and isinstance(item, Node):
            node = item
        if node is not None:
            nodes.append(node)
    return nodes


def __getattr__(name: str):
    # Deprecated process-global entry points live in repro.core.compat;
    # keep `from repro.core.session import get_session` importable.
    if name in ("get_session", "reset_session"):
        from repro.core import compat

        return getattr(compat, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
