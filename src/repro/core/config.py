"""Per-session configuration: a pandas-style dotted-key option layer.

Every :class:`~repro.core.session.Session` owns a :class:`SessionOptions`
instance; nothing here is process-global except the *registry of known
option keys* (defaults + docs + validators), which is immutable at
runtime.  The public surface mirrors pandas:

- ``lfp.options.optimizer.predicate_pushdown`` -- attribute-style access
  to the *current* session's options,
- ``lfp.set_option("executor.cache", False)`` / ``lfp.get_option(key)``,
- ``lfp.option_context("optimizer.metadata", False)`` -- a nestable
  context manager restoring prior values on exit.

Registered keys:

========================================  =========  ==================================
key                                       default
========================================  =========  ==================================
``backend.engine``                        "dask"     execution engine name
``optimizer.predicate_pushdown``          True       section 3.2 filter motion
``optimizer.common_subexpression``        True       CSE + shared-node merging
``optimizer.projection_pushdown``         True       required-column inference
``optimizer.metadata``                    True       metastore dtype hints (section 3.6)
``optimizer.partition_pruning``           True       stats-driven scan partition pruning
``optimizer.shuffle``                     True       lower oversized merge/groupby into
                                                     the partition-wise shuffle pipeline
``optimizer.shuffle_partitions``          None       bucket count P (None = derived
                                                     from byte estimates)
``optimizer.shuffle_threshold_bytes``     None       shuffle/broadcast size limit
                                                     (None = memory.budget headroom)
``executor.cache``                        True       live_df persistence (section 3.5)
``executor.strategy``                     "serial"   scheduler strategy (serial /
                                                     threaded / fused / process /
                                                     async); env default via
                                                     ``LAFP_EXECUTOR_STRATEGY``
``executor.max_workers``                  4          threaded/process/async pool size
                                                     ("auto" = sized from the static
                                                     order's simulated peak vs budget)
``executor.static_order``                 True       memory-aware static ordering pass
``executor.process_retries``              1          re-runs of a task whose process
                                                     worker died, before ExecutionError
``executor.process_start_method``         None       multiprocessing start method of the
                                                     process strategy (None = fork when
                                                     available); env default via
                                                     ``LAFP_PROCESS_START_METHOD``
``optimizer.reuse``                       False      serve cache-hit subplans from the
                                                     cross-session result cache and
                                                     insert cache-worthy results
``cache.budget``                          64 MiB     in-memory byte budget of the
                                                     process-global result cache
``cache.spill_budget``                    256 MiB    disk-tier byte budget; beyond it
                                                     entries are evicted (files deleted)
``cache.min_cost``                        0.01       wall x bytes floor (byte-seconds)
                                                     below which a result is never
                                                     inserted
``memory.budget``                         None       per-session simulated byte budget
``memory.spill_dir``                      None       shuffle spill directory (None =
                                                     system temp dir)
``workload.data_dir``                     None       dataset dir for benchmark programs
``workload.result_dir``                   None       result dir for benchmark programs
``workload.source_format``                None       physical source format axis
                                                     (csv / jsonl / dataset)
``analysis.level``                        "warn"     static plan analysis before
                                                     execution (off / warn / strict)
========================================  =========  ==================================

The pre-Session ``OptimizationFlags`` attribute names (``caching``,
``predicate_pushdown``, ...) are accepted everywhere a key is accepted,
and ``session.flags`` exposes the same attribute view, so ablation
harness code written against the old API keeps working.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
from typing import Callable, Dict, Iterator, Mapping, Optional, Tuple


class OptionError(KeyError):
    """Unknown option key or invalid option value."""


#: pandas option namespaces tolerated as no-ops so unmodified pandas
#: scripts (``pd.set_option("display.max_rows", ...)``,
#: ``pd.options.display.max_rows = ...``) run under the facade.  Any
#: other unknown *dotted* root is an error -- a typo'd LaFP key must
#: never silently no-op.
FOREIGN_OPTION_ROOTS = (
    "display", "mode", "compute", "io", "plotting", "styler", "future",
)


@dataclasses.dataclass(frozen=True)
class OptionSpec:
    """One registered option: its default, doc line and validator."""

    key: str
    default: object
    doc: str = ""
    validator: Optional[Callable[[object], None]] = None
    #: True when the option changes *what a plan computes* (not just
    #: how fast): semantic options join the result-cache key, so
    #: flipping one can never serve a stale cached result.
    semantic: bool = False


_REGISTRY: Dict[str, OptionSpec] = {}

#: Pre-Session flag names (``OptimizationFlags`` fields) -> dotted keys.
LEGACY_FLAG_KEYS: Dict[str, str] = {
    "predicate_pushdown": "optimizer.predicate_pushdown",
    "common_subexpression": "optimizer.common_subexpression",
    "projection_pushdown": "optimizer.projection_pushdown",
    "metadata": "optimizer.metadata",
    "caching": "executor.cache",
}


def register_option(
    key: str,
    default: object,
    doc: str = "",
    validator: Optional[Callable[[object], None]] = None,
    semantic: bool = False,
) -> None:
    """Add a key to the option registry (done once, at import time)."""
    _REGISTRY[key] = OptionSpec(key=key, default=default, doc=doc,
                                validator=validator, semantic=semantic)


def semantic_option_keys() -> Tuple[str, ...]:
    """Registered keys flagged ``semantic`` (sorted, stable)."""
    return tuple(sorted(k for k, s in _REGISTRY.items() if s.semantic))


def semantic_signature(options: "SessionOptions") -> Tuple[Tuple[str, str], ...]:
    """The semantics-relevant slice of a session's options, in the
    canonical form the result-cache key embeds: sorted
    ``(key, repr(value))`` pairs over every ``semantic`` option."""
    return tuple(
        (key, repr(options.get(key))) for key in semantic_option_keys()
    )


def registered_options() -> Dict[str, OptionSpec]:
    """Snapshot of the registry (key -> spec)."""
    return dict(_REGISTRY)


def canonical_key(key: str) -> str:
    """Resolve ``key`` (dotted or legacy flag name) to its registry key."""
    if key in _REGISTRY:
        return key
    if key in LEGACY_FLAG_KEYS:
        return LEGACY_FLAG_KEYS[key]
    raise OptionError(
        f"unknown option {key!r}; known options: {sorted(_REGISTRY)}"
    )


def is_foreign_option_key(key: str) -> bool:
    """Is ``key`` a pandas option the facade tolerates as a no-op?

    True for keys in a pandas namespace (``display.*`` etc.) and for
    bare dotless keys (pandas accepts shorthand like ``"max_columns"``)
    that are not LaFP keys or legacy flags.  Unknown *dotted* keys
    outside the pandas namespaces are never foreign -- a typo'd LaFP
    key must error, not silently no-op.
    """
    if key in _REGISTRY or key in LEGACY_FLAG_KEYS:
        return False
    root = key.split(".", 1)[0]
    return root in FOREIGN_OPTION_ROOTS or "." not in key


def describe_options() -> str:
    """Human-readable listing of every option, default, and doc line."""
    lines = []
    for key in sorted(_REGISTRY):
        spec = _REGISTRY[key]
        lines.append(f"{key} (default: {spec.default!r})")
        if spec.doc:
            lines.append(f"    {spec.doc}")
    return "\n".join(lines)


def _validate_bool(value: object) -> None:
    if not isinstance(value, bool):
        raise OptionError(f"expected a bool, got {value!r}")


def _validate_str(value: object) -> None:
    if not isinstance(value, str) or not value:
        raise OptionError(f"expected a non-empty string, got {value!r}")


register_option(
    "backend.engine", "dask",
    doc="Execution engine resolved through the session's EngineRegistry "
        "(section 2.6; 'pandas', 'dask', or 'modin' by default).",
    validator=_validate_str,
)
register_option(
    "optimizer.predicate_pushdown", True,
    doc="Move filters toward sources past safe points (section 3.2).",
    validator=_validate_bool,
)
register_option(
    "optimizer.common_subexpression", True,
    doc="Merge structurally identical nodes before execution.",
    validator=_validate_bool,
)
register_option(
    "optimizer.projection_pushdown", True,
    doc="Narrow read_csv to the columns the graph actually uses.",
    validator=_validate_bool,
)
register_option(
    "optimizer.metadata", True,
    doc="Metastore-driven dtype hints and category encoding (section 3.6).",
    validator=_validate_bool,
)
register_option(
    "optimizer.partition_pruning", True,
    doc="Drop scan partitions whose statistics (hive key values, exact "
        "per-partition min/max from the metastore) prove the pushed "
        "predicate can never match.",
    validator=_validate_bool,
)
def _validate_positive_int(value: object) -> None:
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise OptionError(f"expected a positive int, got {value!r}")


def _validate_optional_positive_int(value: object) -> None:
    if value is None:
        return
    _validate_positive_int(value)


def _validate_optional_bytes(value: object) -> None:
    if value is None:
        return
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        raise OptionError(
            f"expected None or a non-negative byte count, got {value!r}"
        )


def _validate_optional_str(value: object) -> None:
    if value is not None and (not isinstance(value, str) or not value):
        raise OptionError(f"expected None or a non-empty string, got {value!r}")


register_option(
    "executor.cache", True,
    doc="live_df-driven persistence of shared subexpressions (section 3.5).",
    validator=_validate_bool,
)
register_option(
    "executor.strategy", os.environ.get("LAFP_EXECUTOR_STRATEGY", "serial"),
    doc="Scheduler strategy resolved through the session's "
        "ExecutorRegistry ('serial', 'threaded', 'fused', 'process', or "
        "'async'); the LAFP_EXECUTOR_STRATEGY env var sets the process "
        "default (the CI parallel-path leg uses it).",
    validator=_validate_str,
)
def _validate_max_workers(value: object) -> None:
    if value == "auto":
        return
    _validate_positive_int(value)


register_option(
    "executor.max_workers", 4,
    doc="Worker-pool size of the threaded, process, and async scheduler "
        "strategies.  'auto' sizes the pool per run from the static "
        "order's simulated peak bytes against memory.budget (capped at "
        "the CPU count), so concurrency never plans past the budget.",
    validator=_validate_max_workers,
)
register_option(
    "executor.static_order", True,
    doc="Run the memory-aware static ordering pass (a Sethi-Ullman-style "
        "DFS over per-node byte estimates) before executing: the serial "
        "and fused strategies follow it as their execution order, the "
        "threaded/process/async heaps use it as the tie-break ahead of "
        "the node id.  Purely an ordering choice among independent "
        "nodes; results are unaffected.",
    validator=_validate_bool,
)


def _validate_non_negative_int(value: object) -> None:
    if isinstance(value, bool) or not isinstance(value, int) or value < 0:
        raise OptionError(f"expected a non-negative int, got {value!r}")


def _validate_start_method(value: object) -> None:
    if value is not None and value not in ("fork", "spawn", "forkserver"):
        raise OptionError(
            f"expected None, 'fork', 'spawn' or 'forkserver', got {value!r}"
        )


register_option(
    "executor.process_retries", 1,
    doc="How many times the process strategy re-runs a shipped task "
        "whose worker died (BrokenProcessPool) before raising "
        "ExecutionError.  Shipped tasks are pure, so re-running is "
        "always safe.",
    validator=_validate_non_negative_int,
)
register_option(
    "executor.process_start_method",
    os.environ.get("LAFP_PROCESS_START_METHOD") or None,
    doc="multiprocessing start method of the process strategy's worker "
        "pool (None = 'fork' where available, else the platform "
        "default).  'spawn'/'forkserver' workers import the package "
        "fresh; 'fork' inherits the parent and is much faster to start. "
        "The LAFP_PROCESS_START_METHOD env var sets the process default "
        "(the CI spawn leg uses it).",
    validator=_validate_start_method,
)
register_option(
    "memory.budget", None,
    doc="Per-session simulated memory budget in bytes (None = unbudgeted). "
        "Each session's allocations count only against its own budget.",
    validator=_validate_optional_bytes,
)
register_option(
    "memory.spill_dir", None,
    doc="Directory shuffle buckets spill to when headroom runs out "
        "(None = the system temp dir); each store gets its own "
        "mkdtemp underneath, removed on close.",
    validator=_validate_optional_str,
)
register_option(
    "optimizer.shuffle", True,
    doc="Lower oversized merge / groupby-agg nodes over partitioned "
        "scans into the hash-partition -> spill -> stream pipeline "
        "(shuffle_write / shuffle_read / partial_agg / combine_agg). "
        "Only fires when a size limit exists: optimizer."
        "shuffle_threshold_bytes if set, else the memory.budget "
        "headroom. Lazy engines (the Dask sim) are never lowered.",
    validator=_validate_bool,
)
register_option(
    "optimizer.shuffle_partitions", None,
    doc="Bucket count P for lowered shuffles (None = derived from the "
        "scan byte estimates so one bucket is roughly a quarter of the "
        "size limit, clamped to [2, 32]).",
    validator=_validate_optional_positive_int,
)
register_option(
    "optimizer.shuffle_threshold_bytes", None,
    doc="Estimated-bytes limit above which merge / groupby inputs are "
        "shuffled and below which a merge side may be broadcast "
        "(None = use the current memory.budget headroom).",
    validator=_validate_optional_bytes,
)
register_option(
    "workload.data_dir", None,
    doc="Directory benchmark programs read datasets from (replaces the "
        "LAFP_DATA_DIR env var so parallel grid cells cannot race).",
    validator=_validate_optional_str,
)
register_option(
    "workload.result_dir", None,
    doc="Directory benchmark programs write results to (replaces the "
        "LAFP_RESULT_DIR env var so parallel grid cells cannot race).",
    validator=_validate_optional_str,
)


def _validate_source_format(value: object) -> None:
    if value is None:
        return
    if value not in ("csv", "jsonl", "dataset", "columnar"):
        raise OptionError(
            f"expected None, 'csv', 'jsonl', 'dataset' or 'columnar', "
            f"got {value!r}"
        )


register_option(
    "workload.source_format", None,
    doc="Physical source format benchmark programs read (the runner's "
        "--source-format axis): None/'csv' keeps the plain read_csv "
        "path; 'jsonl'/'dataset'/'columnar' reroutes pd.read_csv "
        "through the matching scan source when the sibling dataset "
        "variant exists.",
    validator=_validate_source_format,
    # flipping the format changes which physical files a program's
    # read_csv resolves to, so a cached result keyed under one format
    # must never serve a session running under another.
    semantic=True,
)


def _validate_analysis_level(value: object) -> None:
    if value not in ("off", "warn", "strict"):
        raise OptionError(
            f"expected 'off', 'warn' or 'strict', got {value!r}"
        )


register_option(
    "analysis.level", "warn",
    doc="Static plan analysis before execution: 'off' skips it, 'warn' "
        "emits a PlanDiagnosticsWarning for error-severity diagnostics, "
        "'strict' raises PlanValidationError before any partition is "
        "read.",
    validator=_validate_analysis_level,
)


def _validate_non_negative_float(value: object) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)) \
            or value < 0:
        raise OptionError(
            f"expected a non-negative number, got {value!r}"
        )


register_option(
    "io.retries", 2,
    doc="How many times a transient range-read failure (the object "
        "store's dropped-connection analogue) is retried with "
        "exponential backoff before surfacing as ExecutionError.",
    validator=_validate_non_negative_int,
)
register_option(
    "io.retry_backoff", 0.005,
    doc="Base backoff in seconds between range-read retries (doubles "
        "per attempt).",
    validator=_validate_non_negative_float,
)
register_option(
    "io.prefetch", True,
    doc="Let parallel scheduler strategies prefetch the byte ranges a "
        "plan's scans will read (sources that can enumerate them, i.e. "
        "columnar) so remote latency overlaps compute.  Purely a "
        "latency optimization; reads fall back to direct fetches on "
        "any miss.",
    validator=_validate_bool,
)
register_option(
    "io.prefetch_budget", 32 * 1024 * 1024,
    doc="Byte ceiling of prefetched-but-unconsumed ranges (None = "
        "unbounded).  Completed entries beyond it are evicted "
        "oldest-first; every resident entry also charges the session's "
        "memory budget through a TrackedBuffer.",
    validator=_validate_optional_bytes,
)
register_option(
    "optimizer.reuse", False,
    doc="Serve subplans whose fingerprint hits the process-global "
        "result cache as pre-materialized from_cached leaves, and "
        "insert this run's cache-worthy results for later sessions. "
        "Off by default: the cache is shared process state, so reuse "
        "is an explicit opt-in per session.",
    validator=_validate_bool,
)
register_option(
    "cache.budget", 64 * 1024 * 1024,
    doc="In-memory byte budget of the process-global result cache "
        "(None = unbounded).  Admission demotes least-recently-used "
        "entries to the disk tier first, so the cache's resident bytes "
        "never overshoot this ceiling.",
    validator=_validate_optional_bytes,
)
register_option(
    "cache.spill_budget", 256 * 1024 * 1024,
    doc="Disk-tier byte budget of the result cache (None = unbounded). "
        "Beyond it, least-recently-used demoted entries are evicted "
        "and their files deleted immediately.",
    validator=_validate_optional_bytes,
)
register_option(
    "cache.min_cost", 0.01,
    doc="Cache-worthiness floor in byte-seconds: a result is inserted "
        "only when its actual wall time x serialized size meets this "
        "(a 64 B scalar computed in microseconds never qualifies; any "
        "real scan/join/aggregate does).",
    validator=_validate_non_negative_float,
)


def iter_option_pairs(args: tuple, kwargs: Mapping) -> Iterator[Tuple[str, object]]:
    """Yield (key, value) pairs from pandas-style positional pairs, a
    single mapping argument, and/or legacy-flag keyword arguments.

    Shared by ``SessionOptions.context`` and the facade's ``set_option``
    / ``option_context`` so every entry point accepts the same shapes.
    """
    if len(args) == 1 and isinstance(args[0], Mapping):
        yield from args[0].items()
    elif args:
        if len(args) % 2 != 0:
            raise OptionError(
                "option_context takes key/value pairs, e.g. "
                "option_context('executor.cache', False)"
            )
        yield from zip(args[::2], args[1::2])
    yield from kwargs.items()


class SessionOptions:
    """The option values of one session (unset keys fall to defaults)."""

    __slots__ = ("_values",)

    def __init__(self, overrides: Optional[Mapping[str, object]] = None):
        self._values: Dict[str, object] = {}
        for key, value in (overrides or {}).items():
            self.set(key, value)

    def get(self, key: str) -> object:
        key = canonical_key(key)
        if key in self._values:
            return self._values[key]
        return _REGISTRY[key].default

    def is_set(self, key: str) -> bool:
        """True when ``key`` was explicitly set (not falling to default)."""
        return canonical_key(key) in self._values

    def set(self, key: str, value: object) -> None:
        key = canonical_key(key)
        spec = _REGISTRY[key]
        if spec.validator is not None:
            spec.validator(value)
        self._values[key] = value

    def to_dict(self) -> Dict[str, object]:
        """Every registered key with its effective value."""
        return {key: self.get(key) for key in sorted(_REGISTRY)}

    @contextlib.contextmanager
    def context(self, *args, **kwargs):
        """Temporarily override options; restores prior state on exit.

        Accepts pandas-style pairs (``context("a.b", 1, "c.d", 2)``), a
        single mapping, or legacy flag names as keywords
        (``context(caching=False)``).  Nestable.
        """
        saved = []
        try:
            for key, value in iter_option_pairs(args, kwargs):
                canon = canonical_key(key)
                saved.append((canon, canon in self._values,
                              self._values.get(canon)))
                self.set(canon, value)
            yield self
        finally:
            for canon, was_set, old in reversed(saved):
                if was_set:
                    self._values[canon] = old
                else:
                    self._values.pop(canon, None)

    def __repr__(self) -> str:
        return f"SessionOptions({self.to_dict()!r})"


class OptimizerFlagsView:
    """Attribute view with the old ``OptimizationFlags`` field names.

    ``session.flags.predicate_pushdown = False`` writes through to the
    session's options; reads come from them.  Kept so the ablation
    benchmarks and seed tests run unchanged on the new config layer.
    """

    __slots__ = ("_options",)

    def __init__(self, options: SessionOptions):
        object.__setattr__(self, "_options", options)

    def __getattr__(self, name: str):
        try:
            key = LEGACY_FLAG_KEYS[name]
        except KeyError:
            raise AttributeError(name) from None
        return self._options.get(key)

    def __setattr__(self, name: str, value) -> None:
        try:
            key = LEGACY_FLAG_KEYS[name]
        except KeyError:
            raise AttributeError(
                f"no such optimization flag {name!r}; "
                f"known flags: {sorted(LEGACY_FLAG_KEYS)}"
            ) from None
        self._options.set(key, value)

    def __repr__(self) -> str:
        values = {name: self._options.get(key)
                  for name, key in LEGACY_FLAG_KEYS.items()}
        return f"OptimizerFlagsView({values!r})"


def _current_options() -> SessionOptions:
    from repro.core.session import current_session

    return current_session().options


class _ForeignOptionsNamespace:
    """Sink for pandas-compat namespaces: assignments are no-ops
    (``options.display.max_rows = 500``) and reads return ``None``,
    matching what the facade's ``get_option`` reports for foreign keys."""

    __slots__ = ()

    def __getattr__(self, name: str) -> None:
        if name.startswith("_"):
            raise AttributeError(name)
        return None

    def __setattr__(self, name: str, value) -> None:
        pass

    def __repr__(self) -> str:
        return "<foreign pandas options: ignored>"


class OptionsNamespace:
    """Attribute-style proxy over the *current* session's options.

    ``lfp.options.optimizer.predicate_pushdown`` reads; assignment
    writes.  The proxy is stateless: it always resolves the session at
    access time, so it follows ``with Session(...):`` blocks.
    """

    __slots__ = ("_prefix",)

    def __init__(self, prefix: str = ""):
        object.__setattr__(self, "_prefix", prefix)

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        full = self._prefix + name
        if full in _REGISTRY:
            return _current_options().get(full)
        nested = full + "."
        if any(key.startswith(nested) for key in _REGISTRY):
            return OptionsNamespace(nested)
        if not self._prefix and name in FOREIGN_OPTION_ROOTS:
            return _ForeignOptionsNamespace()
        raise AttributeError(
            f"no option or option group {full!r}; "
            f"known options: {sorted(_REGISTRY)}"
        )

    def __setattr__(self, name: str, value) -> None:
        _current_options().set(self._prefix + name, value)

    def __dir__(self):
        names = set()
        for key in _REGISTRY:
            if key.startswith(self._prefix):
                names.add(key[len(self._prefix):].split(".", 1)[0])
        return sorted(names)

    def __repr__(self) -> str:
        values = {key: _current_options().get(key)
                  for key in sorted(_REGISTRY)
                  if key.startswith(self._prefix)}
        return f"options[{self._prefix or '*'}] -> {values!r}"


#: The module-level proxy re-exported as ``lfp.options``.
options = OptionsNamespace()
