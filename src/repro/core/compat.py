"""Deprecated process-global session helpers.

This module is the *only* place the pre-Session API is defined.  The old
model -- one mutable singleton session per process -- is replaced by the
thread-local session stack in :mod:`repro.core.session`; these shims keep
seed-era scripts and tests running while steering callers to the new API:

===========================  ==========================================
old                          new
===========================  ==========================================
``get_session()``            ``current_session()`` (read) or
                             ``with Session(...):`` (scoped state)
``reset_session(backend)``   ``with Session(backend=...):`` for scoped
                             runs; ``reset_root_session(backend)`` for
                             harnesses that truly need the root replaced
``read_csv(path, ...)``      ``repro.scan_csv(path, ...)`` -- the
                             unified source layer (:mod:`repro.io`);
                             CSV is one registered format among equals
===========================  ==========================================
"""

from __future__ import annotations

import warnings


def get_session():
    """Deprecated: the current session (root unless one is active)."""
    warnings.warn(
        "get_session() is deprecated; use "
        "repro.core.session.current_session(), or run inside an explicit "
        "`with Session(...)` block",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.core.session import current_session

    return current_session()


def reset_session(backend: str = "dask"):
    """Deprecated: replace the root session (pre-Session benchmark hook)."""
    warnings.warn(
        "reset_session() is deprecated; use `with Session(backend=...)` "
        "for isolated runs, or repro.core.session.reset_root_session()",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.core.session import reset_root_session

    return reset_root_session(backend)


def read_csv(path, **kwargs):
    """Deprecated: the pre-source-layer CSV ingress.

    Kept as a thin shim over the facade's pandas-compat ``read_csv``
    (which still builds a ``read_csv`` node for pandas-verbatim
    programs).  New code should use :func:`repro.scan_csv`: a generic
    ``scan`` node over the registered CSV :class:`~repro.io.DataSource`,
    which the optimizer can fold projections/predicates into and whose
    partitions the pruning pass can drop.
    """
    warnings.warn(
        "repro.core.compat.read_csv() is deprecated; use repro.scan_csv() "
        "(the unified DataSource scan API), or "
        "repro.lazyfatpandas.pandas.read_csv for pandas-compat programs",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.lazyfatpandas.pandas import read_csv as facade_read_csv

    return facade_read_csv(path, **kwargs)
