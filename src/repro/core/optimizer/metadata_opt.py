"""Metadata-driven read optimization (section 3.6).

For each ``read_csv`` node (and each generic ``scan`` node over a CSV
source -- the file-backed format whose untyped text the hints exist
for), consult the metastore and:

- pass ``dtype`` hints for numeric columns (avoids inference work and
  object fallbacks),
- declare low-cardinality *read-only* string columns as ``category``.

Read-only status comes from two places, intersected with the metastore's
cardinality candidates:

- the static rewriter passes ``read_only_cols`` (kill-set analysis,
  section 3.1) into the read call;
- at runtime, any column that appears in a downstream ``setitem`` /
  modifying op is excluded -- the dynamic mirror of the same check, so a
  later assignment can never hit a closed category domain.
"""

from __future__ import annotations

from typing import Optional, Sequence, Set

from repro.graph.node import ALL_COLUMNS, Node
from repro.graph.taskgraph import collect_subgraph


def apply_metadata_hints(roots: Sequence[Node], metastore) -> int:
    """Inject dtype hints into sources; returns sources updated."""
    if metastore is None:
        return 0
    nodes = collect_subgraph(roots)
    modified_columns = _modified_columns(nodes)
    updated = 0
    for node in nodes:
        if node.op != "read_csv" and not (
            node.op == "scan" and node.args.get("format") == "csv"
        ):
            continue
        path = node.args.get("path")
        if path is None:
            continue
        meta = metastore.get(path)
        if meta is None:
            continue
        static_read_only = node.args.get("read_only_cols")
        if static_read_only is None and "mutated_cols" in node.args:
            static_read_only = [
                c
                for c in meta.columns
                if c not in set(node.args["mutated_cols"])
            ]
        read_only = _effective_read_only(
            meta.columns.keys(), static_read_only, modified_columns
        )
        hints = meta.dtype_hints(read_only_columns=sorted(read_only))
        parse_dates = set(node.args.get("parse_dates") or [])
        existing = dict(node.args.get("dtype") or {})
        for column, dtype in hints.items():
            if column in parse_dates or column in existing:
                continue
            existing[column] = dtype
        if existing:
            node.args["dtype"] = existing
            updated += 1
    return updated


def _modified_columns(nodes) -> Set[str]:
    """Columns any node in the graph modifies (runtime kill set)."""
    modified: Set[str] = set()
    for node in nodes:
        mods = node.mod_attrs()
        if ALL_COLUMNS in mods:
            # A whole-frame modification (astype/fillna/...) taints
            # nothing by name; those ops rewrite values, not domains, and
            # category columns survive them via decode paths.
            mods = mods - {ALL_COLUMNS}
        modified |= mods
    return modified


def _effective_read_only(
    all_columns,
    static_read_only: Optional[Sequence[str]],
    modified: Set[str],
) -> Set[str]:
    if static_read_only is not None:
        base = set(static_read_only)
    else:
        base = set(all_columns)
    return {c for c in base if c not in modified}
