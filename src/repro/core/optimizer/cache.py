"""Cache substitution: serve fingerprint-hit subplans, insert new ones.

Runs as the *first* optimizer pass (``optimizer.reuse``), against the
raw plan -- before CSE or any rewrite mutates it -- so the fingerprints
it computes are exactly the ones a later session's raw plan will
produce.  Node identity survives the rest of the pipeline (rewrites
mutate op/args/inputs in place, they never re-id a node), which is what
lets the post-execution insertion path map an executed node back to the
raw fingerprint recorded here even after, say, shuffle lowering turned
its subtree into a bucket pipeline: the rewritten plan computes a
bit-identical value (pinned by the equivalence fuzzer), so caching it
under the raw fingerprint is sound.

Substitution rewrites a hit node in place into a ``from_cached`` leaf
whose args carry the serialized blob itself.  Carrying the bytes (not
the cache key) makes the rewrite eviction-proof -- a concurrent session
evicting the entry between substitution and execution cannot fault the
plan -- and defers deserialization to execution, where its cost is
attributed to the node like any other.  The rewrite is undone by
``Session._run``'s transactional snapshot/restore like every other
optimizer mutation.

A subtree is eligible only when *every* node in it is deterministic and
replayable: a ``sample`` (unseeded randomness) or a side-effect node
(a replay would silently skip the effect) poisons all its consumers.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Sequence, Set

from repro.cache.fingerprint import Unfingerprintable, fingerprint_node
from repro.cache.result_cache import (
    CacheKey,
    result_cache,
    serialize_value,
)
from repro.core.config import semantic_signature
from repro.graph.node import Node


class CacheRunState:
    """Per-run cache bookkeeping, shared between the substitution pass
    and the scheduler's post-execution insertion seam.

    ``offer`` is called from scheduler worker threads (and the process
    strategy's coordination thread); everything it touches is guarded.
    """

    def __init__(
        self,
        backend: str,
        signature,
        budget: Optional[int],
        spill_budget: Optional[int],
        min_cost: float,
    ) -> None:
        self.backend = backend
        self.signature = signature
        self.budget = budget
        self.spill_budget = spill_budget
        self.min_cost = min_cost
        #: raw-graph fingerprint key per eligible node id (cache misses
        #: the insertion seam may fill after execution)
        self.candidates: Dict[int, CacheKey] = {}
        self.hits = 0
        self.misses = 0
        self.bytes_reused = 0
        self.inserted = 0
        self.evictions = 0
        self._offered: Set[int] = set()
        self._lock = threading.Lock()

    def offer(self, node: Node, value, wall_seconds: float) -> bool:
        """Insert ``node``'s executed result if it is cache-worthy.

        Worthiness = the node was fingerprinted as a raw-plan miss AND
        its actual cost (wall seconds x serialized bytes) meets
        ``cache.min_cost``.  Non-eager values (streams, stores, lazy
        expressions) are silently skipped.  Returns True on insert.
        """
        key = self.candidates.get(node.id)
        if key is None:
            return False
        with self._lock:
            if node.id in self._offered:
                return False
        try:
            blob, kind = serialize_value(value)
        except TypeError:
            # A lazy-backend interior value: the root offer after
            # materialization may still succeed, so don't mark it done.
            return False
        with self._lock:
            if node.id in self._offered:
                return False
            self._offered.add(node.id)
        if wall_seconds * len(blob) < self.min_cost:
            return False
        evicted = result_cache().put(
            key, blob, kind,
            budget=self.budget, spill_budget=self.spill_budget,
        )
        with self._lock:
            self.inserted += 1
            self.evictions += evicted
        return True

    def flush_to_stats(self, stats) -> None:
        """Publish this run's cache counters into ``ExecutionStats``."""
        if stats is None:
            return
        stats.record_cache_run(
            hits=self.hits,
            misses=self.misses,
            bytes_reused=self.bytes_reused,
            evictions=self.evictions,
            inserted=self.inserted,
        )


def _subtree_cacheable(
    node: Node, memo: Dict[int, bool]
) -> bool:
    cached = memo.get(node.id)
    if cached is not None:
        return cached
    ok = node.spec.cacheable and not node.spec.side_effect and all(
        _subtree_cacheable(inp, memo) for inp in node.inputs
    )
    memo[node.id] = ok
    return ok


def substitute_cached_subplans(
    roots: Sequence[Node], session
) -> CacheRunState:
    """Rewrite cache-hit subgraphs under ``roots`` into ``from_cached``
    leaves; record every eligible miss as an insertion candidate.

    Top-down: a hit at a node serves the whole subtree, so its inputs
    are never probed (the biggest reusable prefix wins).
    """
    opts = session.options
    state = CacheRunState(
        backend=session.engine.name,
        signature=semantic_signature(opts),
        budget=opts.get("cache.budget"),
        spill_budget=opts.get("cache.spill_budget"),
        min_cost=float(opts.get("cache.min_cost")),
    )
    cache = result_cache()
    cacheable_memo: Dict[int, bool] = {}
    seen: Set[int] = set()

    def visit(node: Node) -> None:
        if node.id in seen:
            return
        seen.add(node.id)
        if node.computed or node.op == "from_cached":
            return
        if _subtree_cacheable(node, cacheable_memo):
            try:
                fp = fingerprint_node(node, session)
            except Unfingerprintable:
                fp = None
            if fp is not None:
                key: CacheKey = (fp, state.backend, state.signature)
                hit = cache.get(key, budget=state.budget)
                if hit is not None:
                    blob, kind = hit
                    state.hits += 1
                    state.bytes_reused += len(blob)
                    node.op = "from_cached"
                    node.inputs = []
                    node.args = {
                        "key": fp[:12],
                        "blob": blob,
                        "nbytes": len(blob),
                        "kind": kind,
                    }
                    return  # the subtree is served; nothing below runs
                state.misses += 1
                state.candidates[node.id] = key
        for inp in node.inputs:
            visit(inp)

    for root in roots:
        visit(root)
    return state
