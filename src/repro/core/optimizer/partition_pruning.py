"""Partition pruning: skip source pieces a folded predicate proves empty.

Runs after predicate pushdown has folded filters into ``scan`` nodes
(:func:`~repro.core.optimizer.predicate_pushdown.fold_predicates_into_scans`).
For every scan the pass resolves the source, lists its partitions, and
keeps only those the predicate *may* match, judged against trusted
statistics:

- exact hive ``key=value`` constants (directory-partitioned datasets),
- exact per-partition column min/max from the metastore
  (:class:`repro.metastore.stats.PartitionStats`, or unsampled per-file
  extrema for dataset leaves).

Partitions without statistics are always kept -- pruning is a proof, not
a guess, which is what makes the pruned scan bit-identical to the full
one.  The kept indices land in the scan's ``partitions`` arg (total in
``partitions_total``), where backends, ``explain()``, and the
scheduler's :class:`~repro.graph.scheduler.stats.ExecutionStats` read
them.
"""

from __future__ import annotations

from typing import Sequence

from repro.graph.node import Node
from repro.graph.taskgraph import collect_subgraph


def prune_scan_partitions(
    roots: Sequence[Node], metastore, prune: bool = True
) -> int:
    """Annotate scan nodes with kept partitions; returns partitions
    pruned across the subgraph.

    ``prune=False`` (the ``optimizer.partition_pruning`` ablation) still
    records ``partitions_total`` -- stats and ``explain()`` then report
    an honest ``read/total`` instead of an unknown -- but never drops a
    partition."""
    from repro.io.predicate import Predicate
    from repro.io.registry import resolve_source

    pruned = 0
    for node in collect_subgraph(roots):
        if node.op != "scan" or node.args.get("partitions") is not None:
            continue
        try:
            source = resolve_source(node.args, metastore=metastore)
            parts = source.partitions()
        except Exception:  # noqa: BLE001 - missing path, unknown format
            continue
        node.args["partitions_total"] = len(parts)
        predicate = Predicate.from_arg(node.args.get("predicate"))
        if prune and predicate is not None and parts:
            kept = [p.index for p in parts if predicate.may_match(p)]
            if len(kept) < len(parts):
                node.args["partitions"] = kept
                pruned += len(parts) - len(kept)
        # Stamp the post-pruning byte estimate while the source is in
        # hand -- the scheduler's per-node estimator reads it from the
        # args instead of re-resolving the source and re-listing its
        # partitions from the filesystem.
        estimate = source.estimated_bytes(
            columns=node.args.get("columns"),
            partitions=node.args.get("partitions"),
        )
        if estimate is not None:
            node.args["est_bytes"] = int(estimate)
    return pruned
