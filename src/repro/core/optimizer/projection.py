"""Runtime projection pushdown: narrow sources to needed columns.

Static analysis (section 3.1) already injects ``usecols`` where the whole
program is analysable.  This runtime pass is the complement for graphs
built purely dynamically: it propagates a *required-column* set backward
from the roots to each source, with per-operator transfer functions, and
terminates by narrowing the source itself: ``usecols`` on ``read_csv``
nodes, or the ``columns`` arg folded into a generic ``scan`` node when
its registered source format declares ``supports_projection``.

Conservative by construction: any operator whose column flow is unknown
(merge outputs, UDF apply, prints of whole frames, describe, ...) marks
its frame inputs as requiring *all* columns.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set

from repro.graph.node import ALL_COLUMNS, Node
from repro.graph.taskgraph import collect_subgraph, topological_order

#: Operators through which the requirement set passes untouched.
_PASSTHROUGH = {
    "filter", "dropna", "head", "tail", "sample", "sort_index",
    "drop_duplicates", "sort_values", "fillna", "astype", "round",
    "identity", "abs",
}


def push_down_projections(roots: Sequence[Node]) -> int:
    """Narrow eligible sources; returns how many were narrowed."""
    nodes = collect_subgraph(roots)
    required = _required_columns(roots, nodes)
    narrowed = 0
    for node in nodes:
        if node.op == "read_csv":
            arg_name = "usecols"
        elif node.op == "scan" and _scan_supports_projection(node):
            arg_name = "columns"
        else:
            continue
        if node.args.get(arg_name) is not None:
            continue
        needs = required.get(node.id)
        if needs is None or ALL_COLUMNS in needs:
            continue
        if not needs:
            continue  # degenerate; leave untouched
        node.args[arg_name] = sorted(needs)
        narrowed += 1
    return narrowed


def _scan_supports_projection(node: Node) -> bool:
    from repro.io.registry import source_capabilities

    spec = source_capabilities(node.args.get("format"))
    return spec is not None and spec.supports_projection


def _required_columns(
    roots: Sequence[Node], nodes: Sequence[Node],
    order: Optional[Sequence[Node]] = None,
) -> Dict[int, Set[str]]:
    """Backward column-requirement propagation (reverse topological).

    ``order``, when given, must be ``topological_order(roots)`` -- callers
    that already sorted the subgraph (the plan analyzer) skip the resort.
    """
    required: Dict[int, Set[str]] = {}
    root_ids = {r.id for r in roots}
    if order is None:
        order = topological_order(roots)

    def demand(node: Node, cols: Set[str]) -> None:
        bucket = required.setdefault(node.id, set())
        bucket.update(cols)

    for node in reversed(order):
        out_req = required.get(node.id, set())
        if node.id in root_ids and not node.spec.scalar:
            # A root frame is handed to the user whole.
            out_req = out_req | {ALL_COLUMNS}

        op = node.op
        if op in ("read_csv", "scan", "from_data", "from_pandas"):
            continue
        if op == "getitem_column":
            demand(node.inputs[0], {node.args["column"]})
            _demand_rest(node, demand, start=1)
            continue
        if op == "getitem_columns":
            demand(node.inputs[0], set(node.args["columns"]))
            continue
        if op in _PASSTHROUGH:
            frame = node.inputs[0]
            extra = node.used_attrs()
            demand(frame, out_req | extra)
            _demand_rest(node, demand, start=1)
            continue
        if op == "setitem":
            assigned = node.args["column"]
            passed = {c for c in out_req if c != assigned}
            demand(node.inputs[0], passed)
            _demand_rest(node, demand, start=1)
            continue
        if op in ("rename", "drop"):
            if op == "rename":
                inverse = {v: k for k, v in node.args["columns"].items()}
                passed = {inverse.get(c, c) for c in out_req}
            else:
                passed = set(out_req)
            demand(node.inputs[0], passed)
            continue
        if op == "groupby_agg":
            demand(
                node.inputs[0],
                set(node.args["keys"]) | {node.args["column"]},
            )
            continue
        if op in ("groupby_agg_multi",):
            demand(
                node.inputs[0],
                set(node.args["keys"]) | set(node.args.get("columns", [])),
            )
            continue
        if op == "groupby_size":
            demand(node.inputs[0], set(node.args["keys"]))
            continue
        if op in (
            "binop", "unop", "str_method", "dt_field", "isin", "between",
            "isna", "notna", "series_fillna", "series_astype", "series_map",
            "to_datetime", "series_agg", "series_len", "nunique", "unique",
            "value_counts", "to_frame_series",
        ):
            # Series-level: inputs are series nodes, handled transitively.
            for inp in node.inputs:
                demand(inp, set())
            continue
        if op == "print":
            for inp in node.inputs:
                demand(inp, _print_demand(inp))
            continue
        # Unknown / whole-frame consumers: merge, concat, describe, apply,
        # info, to_csv, nlargest*, reset/set_index, ...
        for inp in node.inputs:
            if _is_frame_producer(inp):
                demand(inp, {ALL_COLUMNS})
            else:
                demand(inp, set())
    return required


def _demand_rest(node: Node, demand, start: int) -> None:
    for inp in node.inputs[start:]:
        demand(inp, set())


def _print_demand(node: Node) -> Set[str]:
    """What printing ``node``'s value demands of it.

    Mirrors the paper's heuristic (section 3.1): informative calls --
    ``head()``, ``describe()``, ``info()`` -- do not make all attributes
    live, since their output "does not affect the intended program
    result"; a print of a whole frame does.
    """
    if node.op in ("head", "tail", "describe", "info"):
        return set()
    if _is_frame_producer(node):
        return {ALL_COLUMNS}
    return set()


_FRAME_OPS = {
    "read_csv", "scan", "from_data", "from_pandas",
    "getitem_columns", "filter", "setitem",
    "dropna", "fillna", "astype", "rename", "drop", "sort_values",
    "sort_index", "drop_duplicates", "head", "tail", "sample", "merge",
    "concat", "nlargest", "nsmallest", "describe", "reset_index",
    "set_index", "round", "abs", "identity", "groupby_agg_multi",
    "to_frame_series",
}


def _is_frame_producer(node: Node) -> bool:
    return node.op in _FRAME_OPS
