"""Runtime task-graph optimizer (section 3).

``optimize(roots, session, live_nodes)`` runs the rule pipeline in a fixed
order chosen so each rule sees the previous rule's output:

1. **common-subexpression elimination** -- structurally identical nodes
   merge, so shared work is recognized before anything moves;
2. **predicate pushdown** (section 3.2) -- filters move toward sources
   past safe points;
3. **projection pushdown** -- required-column inference narrows
   ``read_csv`` nodes that static analysis could not rewrite;
4. **metadata optimization** (section 3.6) -- dtype hints and safe
   ``category`` encoding from the metastore;
5. **persistence marking** (section 3.5) -- nodes shared between the
   computed subgraph and ``live_df`` expressions are marked ``persist``.

Each rule honours its per-session option toggle
(``optimizer.predicate_pushdown``, ``optimizer.common_subexpression``,
``optimizer.projection_pushdown``, ``optimizer.metadata``,
``executor.cache``), which ``option_context()`` and the ablation
benchmarks flip.
"""

from repro.core.optimizer.pipeline import optimize
from repro.core.optimizer.predicate_pushdown import push_down_predicates
from repro.core.optimizer.common_subexpr import (
    eliminate_common_subexpressions,
    mark_persistent_nodes,
    persist_shared_nodes,
)
from repro.core.optimizer.projection import push_down_projections
from repro.core.optimizer.metadata_opt import apply_metadata_hints

__all__ = [
    "apply_metadata_hints",
    "eliminate_common_subexpressions",
    "mark_persistent_nodes",
    "persist_shared_nodes",
    "optimize",
    "push_down_predicates",
    "push_down_projections",
]
