"""Common-subexpression elimination and live_df persistence (section 3.5).

Two related mechanisms:

- :func:`eliminate_common_subexpressions` merges structurally identical
  nodes *within* one execution, so e.g. two filters built from equal
  predicates share a node (also the enabler for the paper's multi-parent
  pushdown rule).

- :func:`mark_persistent_nodes` handles reuse *across* compute
  boundaries: when ``compute(live_df=[...])`` fires, any node shared
  between the computed subgraph and a live dataframe's expression is
  marked ``persist`` so its result survives execution and later
  computations reuse it instead of recomputing (the 13x-vs-1.4x `stu`
  ablation of section 5.3).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.graph.node import Node
from repro.graph.taskgraph import collect_subgraph, topological_order


def _signature(node: Node):
    """Structural identity key, or None when the node must not merge.

    Side-effect nodes never merge (two prints are two prints); nodes whose
    args contain callables (UDFs) are not comparable.
    """
    if node.spec.side_effect:
        return None
    parts = []
    for key in sorted(node.args):
        value = node.args[key]
        if callable(value):
            return None
        try:
            parts.append((key, repr(value)))
        except Exception:  # pragma: no cover - exotic arg types
            return None
    return (node.op, tuple(parts), tuple(inp.id for inp in node.inputs))


def eliminate_common_subexpressions(roots: Sequence[Node]) -> int:
    """Merge structurally identical nodes; returns the number merged.

    Processes in topological order so children merge before parents,
    letting whole identical chains collapse.
    """
    order = topological_order(roots)
    canonical: Dict[object, Node] = {}
    replaced = 0
    for node in order:
        # Re-key after potential child replacement.
        signature = _signature(node)
        if signature is None:
            continue
        winner = canonical.get(signature)
        if winner is None:
            canonical[signature] = node
            continue
        # Point every consumer of `node` at the canonical twin.
        for consumer in order:
            consumer.replace_input(node, winner)
            consumer.order_deps = [
                winner if dep is node else dep for dep in consumer.order_deps
            ]
        replaced += 1
    return replaced


#: frame-producing ops worth pinning when consumed more than once on a
#: lazy backend (a shared series is cheap to recompute; a shared frame
#: pipeline is not).
_SHARABLE_OPS = {
    "read_csv", "filter", "setitem", "merge", "dropna", "fillna",
    "astype", "rename", "drop", "getitem_columns", "concat", "identity",
}


def persist_shared_nodes(roots: Sequence[Node]) -> List[Node]:
    """Pin frame nodes with multiple consumers (lazy backends only).

    Eager backends share results for free: the executor holds each
    node's materialized value until its last consumer ran.  On a lazy
    backend a node's "result" is an unevaluated expression, so two
    consumers would *recompute* the shared pipeline partition by
    partition -- the behaviour real Dask exhibits when ``compute()`` is
    called per output instead of once.  Persisting the shared node makes
    LaFP behave like ``dask.compute(*outputs)``: shared work runs once
    (at the price of materialized partitions, which Figure 15 shows as
    LaFP-Dask's memory cost).
    """
    from repro.graph.taskgraph import consumer_counts

    nodes = collect_subgraph(roots)
    counts = consumer_counts(nodes)
    marked = []
    for node in nodes:
        if node.persist or node.op not in _SHARABLE_OPS:
            continue
        if counts.get(node.id, 0) >= 2:
            node.persist = True
            marked.append(node)
    return marked


def mark_persistent_nodes(
    roots: Sequence[Node],
    live_nodes: Sequence[Node],
    session,
) -> List[Node]:
    """Mark common nodes of (roots x live_df) for persistence.

    Returns the nodes newly marked.  Sources (reads) are not persisted:
    re-reading is what the backends are good at, and persisting a full
    read would defeat column pruning.
    """
    if not live_nodes:
        return []
    computed = {n.id: n for n in collect_subgraph(roots)}
    marked: List[Node] = []
    for live in live_nodes:
        for node in collect_subgraph([live]):
            if node.id not in computed:
                continue
            if node.spec.side_effect or node.spec.is_source:
                continue
            if not node.persist:
                node.persist = True
                marked.append(node)
    session.persisted.extend(marked)
    return marked
