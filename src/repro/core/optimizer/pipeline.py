"""Optimizer pipeline: runs the section-3 rules in order, per session options."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.graph.node import Node
from repro.core.optimizer.cache import substitute_cached_subplans
from repro.core.optimizer.common_subexpr import (
    eliminate_common_subexpressions,
    mark_persistent_nodes,
    persist_shared_nodes,
)
from repro.core.optimizer.metadata_opt import apply_metadata_hints
from repro.core.optimizer.partition_pruning import prune_scan_partitions
from repro.core.optimizer.predicate_pushdown import (
    fold_predicates_into_scans,
    push_down_predicates,
)
from repro.core.optimizer.projection import push_down_projections
from repro.core.optimizer.shuffle import lower_shuffle_nodes


def optimize(
    roots: Sequence[Node],
    session,
    live_nodes: Optional[List[Node]] = None,
) -> dict:
    """Optimize the subgraph under ``roots`` in place.

    Each rule is gated by the session's options (``optimizer.*`` /
    ``executor.cache``), which ``option_context()`` and the ablation
    benchmarks flip per session.  Returns a report of what each rule did
    (used by tests and the ablation benchmarks).
    """
    opts = session.options
    report = {"cse": 0, "pushdown": 0, "scan_fold": 0, "projection": 0,
              "metadata": 0, "pruned_partitions": 0, "shuffle_lowered": 0,
              "persisted": 0, "reuse_hits": 0, "reuse_misses": 0,
              "reuse_bytes": 0}
    if opts.get("optimizer.reuse"):
        # First, against the RAW plan: later rewrites would change the
        # fingerprints, and substituted subtrees need no optimizing.
        state = substitute_cached_subplans(roots, session)
        session._cache_run = state
        report["reuse_hits"] = state.hits
        report["reuse_misses"] = state.misses
        report["reuse_bytes"] = state.bytes_reused
    if opts.get("optimizer.common_subexpression"):
        report["cse"] = eliminate_common_subexpressions(roots)
    if opts.get("optimizer.predicate_pushdown"):
        report["pushdown"] = push_down_predicates(roots)
        # The terminating step: filters sitting on capable scan sources
        # fold into the scan's args (the source filters while reading).
        report["scan_fold"] = fold_predicates_into_scans(roots)
    if opts.get("optimizer.projection_pushdown"):
        report["projection"] = push_down_projections(roots)
    if opts.get("optimizer.metadata"):
        report["metadata"] = apply_metadata_hints(roots, session.metastore)
    # After folding: drop partitions whose statistics prove the pushed
    # predicate can never match.  Runs even when pruning is ablated --
    # it then only records totals, so explain()/stats still report
    # read-vs-existing partition counts.
    report["pruned_partitions"] = prune_scan_partitions(
        roots, session.metastore,
        prune=bool(opts.get("optimizer.partition_pruning")),
    )
    # After pruning stamped per-scan byte estimates: lower oversized
    # merge/groupby nodes into the partition-wise shuffle pipeline.
    report["shuffle_lowered"] = lower_shuffle_nodes(
        roots, session, live_nodes,
    )
    cache = opts.get("executor.cache")
    if cache and live_nodes:
        report["persisted"] = len(
            mark_persistent_nodes(roots, live_nodes, session)
        )
    if cache and session.engine.is_lazy:
        shared = persist_shared_nodes(roots)
        session.persisted.extend(shared)
        report["persisted"] += len(shared)
    session.last_optimize_report = report
    return report
