"""Shuffle lowering: partition-wise merge / groupby over big scans.

Rewrites ``merge`` and ``groupby_agg`` / ``groupby_agg_multi`` nodes
whose inputs are partitioned scans too big for the size limit into a
hash-partition -> spill -> stream pipeline (dask-expr's Merge ->
Blockwise/Shuffle/broadcast lowering is the pattern, ROADMAP item 1):

- **broadcast** -- when the right merge side's byte estimate fits in a
  quarter of the limit, only the left scan is switched to streaming
  (``stream=True``) and the merge runs partition-at-a-time against the
  materialized right side.
- **shuffle merge** -- both scans stream into ``shuffle_write`` nodes
  that hash-split rows on the join key into P spillable buckets (plus a
  global row-position column per side); P independent bucket-pair
  ``merge`` nodes then feed one ``combine_agg`` that restores the exact
  in-memory row order from the position columns.
- **partial aggregation** -- decomposable groupby functions (sum /
  count / min / max / mean / size / first) aggregate per partition in a
  ``partial_agg`` node; ``combine_agg`` re-aggregates the stacked
  partials.  Holistic functions (nunique / std) fall back to the
  shuffle: each key lands wholly in one bucket, so per-bucket
  aggregation is exact.

The pass mutates the consuming node in place (the session snapshots and
restores plans around execution, so user graphs are untouched) and is
gated on ``optimizer.shuffle`` plus an actual size limit:
``optimizer.shuffle_threshold_bytes`` if set, else the session's
``memory.budget`` headroom.  Lazy engines shuffle internally already
and are never lowered.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.node import Node
from repro.graph.taskgraph import collect_subgraph, consumer_counts

#: functions whose partials re-aggregate exactly across partitions
_DECOMPOSABLE = frozenset(
    {"sum", "count", "min", "max", "mean", "size", "first"}
)
#: functions the per-bucket (holistic) path supports
_BUCKETABLE = _DECOMPOSABLE | frozenset({"std", "nunique"})

_LPOS = "__lafp_lpos__"
_RPOS = "__lafp_rpos__"
_MAX_BUCKETS = 32


def lower_shuffle_nodes(
    roots: Sequence[Node],
    session,
    live_nodes: Optional[List[Node]] = None,
) -> int:
    """Lower eligible merge/groupby nodes under ``roots``; returns the
    number of nodes rewritten."""
    opts = session.options
    if not opts.get("optimizer.shuffle"):
        return 0
    if session.engine.is_lazy:
        return 0
    limit = opts.get("optimizer.shuffle_threshold_bytes")
    if limit is None and session.memory is not None:
        limit = session.memory.headroom()
    if limit is None or int(limit) <= 0:
        return 0
    limit = int(limit)
    nodes = collect_subgraph(list(roots))
    counts = consumer_counts(nodes)
    # scans referenced outside the pure data flow (order deps, the roots
    # themselves, live user frames) must stay materializable
    pinned = {dep.id for node in nodes for dep in node.order_deps}
    pinned.update(root.id for root in roots)
    for live in live_nodes or ():
        pinned.update(n.id for n in collect_subgraph([live]))
    lowered = 0
    for node in list(nodes):
        if node.computed:
            continue
        if node.op == "merge":
            lowered += _lower_merge(node, counts, pinned, opts, limit)
        elif node.op in ("groupby_agg", "groupby_agg_multi"):
            lowered += _lower_groupby(node, counts, pinned, opts, limit)
    return lowered


def _streamable_scan(node: Node, counts: Dict[int, int],
                     pinned: set) -> Optional[int]:
    """Byte estimate of ``node`` when it is a scan that may legally
    stream (sole consumer, not pinned, stats stamped), else None."""
    if node.op != "scan" or node.computed or node.persist:
        return None
    if node.id in pinned or counts.get(node.id, 0) != 1:
        return None
    if node.args.get("stream"):
        return None  # already claimed by another lowering this pass
    est = node.args.get("est_bytes")
    if est is None or node.args.get("partitions_total") is None:
        return None
    return int(est)


def _partition_count(opts, total_bytes: int, limit: int) -> int:
    explicit = opts.get("optimizer.shuffle_partitions")
    if explicit:
        return int(explicit)
    per_bucket = max(1, limit // 4)
    return max(2, min(_MAX_BUCKETS, -(-total_bytes // per_bucket)))


# -- merge -------------------------------------------------------------


def _lower_merge(node: Node, counts, pinned, opts, limit: int) -> int:
    from repro.analysis.plan.schema import merge_key_columns

    if len(node.inputs) != 2 or node.inputs[0] is node.inputs[1]:
        return 0
    how = node.args.get("how", "inner")
    if how not in ("inner", "left", "right", "outer"):
        return 0
    left_keys, right_keys = merge_key_columns(node)
    if left_keys is None or right_keys is None:
        return 0  # natural join: key set unknown until schemas meet
    if {_LPOS, _RPOS} & (set(left_keys) | set(right_keys)):
        return 0
    left, right = node.inputs
    left_est = _streamable_scan(left, counts, pinned)
    right_est = _streamable_scan(right, counts, pinned)
    if left_est is None or right_est is None:
        return 0
    if left_est + right_est <= limit:
        return 0  # fits in memory anyway
    small = max(1, limit // 4)
    if right_est <= small and how in ("inner", "left"):
        # broadcast fast path: stream the big left side only; the
        # merge node itself is untouched and detects the stream input
        left.args["stream"] = True
        return 1
    n_buckets = _partition_count(opts, left_est + right_est, limit)
    left.args["stream"] = True
    right.args["stream"] = True
    write_left = Node(
        "shuffle_write", [left],
        {"keys": list(left_keys), "n_buckets": n_buckets,
         "pos_name": _LPOS, "est_total": left_est},
        label="shuffle left",
    )
    write_right = Node(
        "shuffle_write", [right],
        {"keys": list(right_keys), "n_buckets": n_buckets,
         "pos_name": _RPOS, "est_total": right_est},
        label="shuffle right",
    )
    merge_args = dict(node.args)
    pieces = []
    for i in range(n_buckets):
        read_left = Node(
            "shuffle_read", [write_left],
            {"bucket": i, "n_buckets": n_buckets, "est_total": left_est},
            label=f"left bucket {i}",
        )
        read_right = Node(
            "shuffle_read", [write_right],
            {"bucket": i, "n_buckets": n_buckets, "est_total": right_est},
            label=f"right bucket {i}",
        )
        piece = Node(
            "merge", [read_left, read_right], dict(merge_args),
            label=f"merge bucket {i}",
        )
        # re-own the result's payload so the (much larger) bucket
        # frames can release as soon as the bucket-local merge is done
        pieces.append(Node(
            "compact", [piece], {}, label=f"compact bucket {i}",
        ))
    node.op = "combine_agg"
    node.inputs = pieces
    node.args = {"kind": "merge", "pos_names": [_LPOS, _RPOS]}
    return 1


# -- groupby -----------------------------------------------------------


def _lower_groupby(node: Node, counts, pinned, opts, limit: int) -> int:
    if len(node.inputs) != 1:
        return 0
    scan = node.inputs[0]
    est = _streamable_scan(scan, counts, pinned)
    if est is None or est <= limit:
        return 0
    keys_arg = node.args.get("keys")
    keys = [keys_arg] if isinstance(keys_arg, str) else list(keys_arg or ())
    if not keys:
        return 0
    triples = _output_triples(node)
    if triples is None:
        return 0
    labels = {label for _c, _f, label in triples}
    sources = {col for col, _f, _l in triples}
    if (labels | sources) & set(keys):
        return 0  # aggregating a key column: label collisions
    funcs = {func for _c, func, _l in triples}
    if funcs <= _DECOMPOSABLE:
        _rewrite_partial(node, scan, keys, triples, est)
        return 1
    if funcs <= _BUCKETABLE:
        _rewrite_bucketed(node, scan, keys, triples, est, opts, limit)
        return 1
    return 0


def _output_triples(node: Node) -> Optional[List[Tuple[str, str, str]]]:
    """(source column, func, output label) per output, in output order;
    None when the spec is not lowerable."""
    if node.op == "groupby_agg":
        column = node.args.get("column")
        func = node.args.get("func")
        if not isinstance(column, str) or not isinstance(func, str):
            return None
        return [(column, func, column)]
    spec = node.args.get("spec")
    if not isinstance(spec, dict):
        return None
    triples: List[Tuple[str, str, str]] = []
    for name, funcs in spec.items():
        func_list = [funcs] if isinstance(funcs, str) else list(funcs)
        if not all(isinstance(f, str) for f in func_list):
            return None
        for func in func_list:
            label = name if len(func_list) == 1 else f"{name}_{func}"
            triples.append((name, func, label))
    return triples


def _combine_args(node: Node, keys: List[str], outputs: List[dict]) -> dict:
    if node.op == "groupby_agg":
        return {"kind": "agg", "keys": keys, "outputs": outputs,
                "output": "series", "name": node.args.get("column")}
    return {"kind": "agg", "keys": keys, "outputs": outputs,
            "output": "frame",
            "as_index": bool(node.args.get("as_index", True))}


def _rewrite_partial(node: Node, scan: Node, keys: List[str],
                     triples, est: int) -> None:
    """Decomposable path: per-partition partials, one re-aggregation."""
    pairs: List[Tuple[str, str, str]] = []
    outputs: List[dict] = []
    combine_of = {"sum": "sum", "count": "sum", "size": "sum",
                  "min": "min", "max": "max", "first": "first"}
    for i, (column, func, label) in enumerate(triples):
        if func == "mean":
            sum_label, count_label = f"__lafp{i}_sum", f"__lafp{i}_count"
            pairs.append((column, "sum", sum_label))
            pairs.append((column, "count", count_label))
            outputs.append({"label": label, "mode": "mean",
                            "sum": sum_label, "count": count_label})
        else:
            partial = f"__lafp{i}_{func}"
            pairs.append((column, func, partial))
            outputs.append({"label": label, "mode": "direct",
                            "partial": partial, "func": combine_of[func]})
    combine = _combine_args(node, keys, outputs)
    n_parts = _scan_parts(scan)
    scan.args["stream"] = True
    partial = Node(
        "partial_agg", [scan],
        {"keys": keys, "pairs": pairs, "est_total": est, "n_parts": n_parts},
        label="partial agg",
    )
    node.op = "combine_agg"
    node.inputs = [partial]
    node.args = combine


def _rewrite_bucketed(node: Node, scan: Node, keys: List[str],
                      triples, est: int, opts, limit: int) -> None:
    """Holistic path: hash-shuffle so each key is whole in one bucket,
    aggregate exactly per bucket, stack (groups never straddle)."""
    combine = _combine_args(node, keys, [
        {"label": label, "mode": "direct", "partial": label, "func": "first"}
        for _column, _func, label in triples
    ])
    n_buckets = _partition_count(opts, est, limit)
    scan.args["stream"] = True
    write = Node(
        "shuffle_write", [scan],
        {"keys": keys, "n_buckets": n_buckets, "est_total": est},
        label="shuffle groupby",
    )
    pieces = []
    bucket_est = max(1, est // n_buckets)
    for i in range(n_buckets):
        read = Node(
            "shuffle_read", [write],
            {"bucket": i, "n_buckets": n_buckets, "est_total": est},
            label=f"bucket {i}",
        )
        pieces.append(Node(
            "partial_agg", [read],
            {"keys": keys, "pairs": list(triples),
             "est_total": bucket_est, "n_parts": 1},
            label=f"agg bucket {i}",
        ))
    node.op = "combine_agg"
    node.inputs = pieces
    node.args = combine


def _scan_parts(scan: Node) -> int:
    partitions = scan.args.get("partitions")
    if partitions is not None:
        return max(1, len(partitions))
    return max(1, int(scan.args.get("partitions_total") or 1))
