"""Predicate pushdown on the task DAG (section 3.2).

A filter node ``f`` with frame input ``u`` swaps below ``u`` when the
paper's three safe-point conditions hold:

1. ``mod_attrs(u) ∩ used_attrs(f) = ∅``,
2. ``u`` is row-preserving: filtering its input does not change the
   computed values of surviving output rows (encoded per-operator in
   :class:`repro.graph.node.OpSpec`),
3. ``f`` is the only (data) consumer of ``u``.

Two multi-parent extensions are also implemented:

- all parents of ``u`` are filters with *structurally equal* predicates:
  one filter pushes below ``u`` and the parents are removed;
- all parents of ``u`` are filters with different predicates: their
  conjunction pushes below ``u`` while the originals stay.

Pushdown used to stop at the source node; :func:`fold_predicates_into_scans`
now takes the final step for generic ``scan`` sources whose format
declares ``supports_predicate``: a filter sitting directly on a scan --
typically the end state of the swaps above -- is converted to the
serializable conjunct form (:mod:`repro.io.predicate`) and folded into
the scan node's args, so the source filters rows while reading and the
partition-pruning pass has something to prove against.  The conversion
is all-or-nothing; inexpressible masks leave the filter in the graph.

Pushing rebases the predicate expression: the mask was built against
``u``'s output, so its column reads are re-rooted onto ``u``'s input
(condition 1 guarantees those columns are unchanged by ``u``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.graph.node import ALL_COLUMNS, Node
from repro.graph.taskgraph import collect_subgraph, consumers_of

_MAX_PASSES = 50


def push_down_predicates(roots: Sequence[Node]) -> int:
    """Move filters toward sources; returns the number of swaps made."""
    swaps = 0
    for _ in range(_MAX_PASSES):
        moved = _one_pass(roots)
        if not moved:
            break
        swaps += moved
    return swaps


def fold_predicates_into_scans(roots: Sequence[Node]) -> int:
    """Fold filters over capable ``scan`` sources into the scan's args;
    returns the number of filters absorbed."""
    folded = 0
    for _ in range(_MAX_PASSES):
        if not _one_fold_pass(roots):
            break
        folded += 1
    return folded


def _one_fold_pass(roots: Sequence[Node]) -> int:
    from repro.io.predicate import conjuncts_from_mask, merge_conjuncts
    from repro.io.registry import source_capabilities

    nodes = collect_subgraph(roots)
    consumers = consumers_of(nodes)
    root_ids = {r.id for r in roots}
    for f in nodes:
        if not f.spec.is_filter or len(f.inputs) < 2:
            continue
        # Chase identity aliases earlier rewrites (swaps, prior folds)
        # left between the filter and the scan.
        chain: List[Node] = []
        u = f.inputs[0]
        while u.op == "identity" and u.inputs:
            chain.append(u)
            u = u.inputs[0]
        if u.op != "scan" or u.id in root_ids:
            continue
        if any(n.id in root_ids for n in chain):
            continue
        spec = source_capabilities(u.args.get("format"))
        if spec is None or not spec.supports_predicate:
            continue
        # The scan's unfiltered output must reach nobody but this filter
        # (its own mask reads move into the predicate with it), and the
        # mask subgraph must be exclusively this filter's: CSE can share
        # a mask's column read with an unrelated consumer (an unfiltered
        # aggregate of the same column), which after folding would see
        # pre-filtered rows.
        mask_nodes = collect_subgraph([f.inputs[1]])
        mask_ids = {n.id for n in mask_nodes}
        chain_ids = {n.id for n in chain}
        allowed = chain_ids | mask_ids | {f.id}
        if any(n.id in root_ids for n in mask_nodes):
            continue
        if any(
            consumer.id not in allowed
            for hop in [u, *chain, *mask_nodes]
            for consumer in consumers.get(hop.id, [])
        ):
            continue
        conjuncts = conjuncts_from_mask(f.inputs[1], u, aliases=chain)
        if conjuncts is None:
            continue
        u.args["predicate"] = merge_conjuncts(
            u.args.get("predicate"), conjuncts
        )
        _alias(f, u)
        return 1
    return 0


def _one_pass(roots: Sequence[Node]) -> int:
    nodes = collect_subgraph(roots)
    consumers = consumers_of(nodes)
    root_ids = {r.id for r in roots}
    moved = 0
    for f in nodes:
        if not f.spec.is_filter:
            continue
        u = f.inputs[0]
        if _can_swap(f, u, consumers, root_ids):
            _swap(f, u)
            return 1  # graph changed; recompute consumer map
        merged = _try_multi_parent(u, consumers, root_ids, nodes)
        if merged:
            return merged
    return moved


def _can_swap(f: Node, u: Node, consumers: Dict[int, List[Node]], root_ids) -> bool:
    if u.spec.is_source or u.spec.side_effect or not u.spec.row_preserving:
        return False
    if not u.inputs:
        return False
    if u.id in root_ids:
        return False  # u's unfiltered output is requested elsewhere
    mods = u.mod_attrs()
    used = f.used_attrs()
    if ALL_COLUMNS in mods and used:
        return False
    if ALL_COLUMNS in used and mods:
        return False
    if mods & used:
        return False
    # Condition 3: f is the only data consumer of u -- but predicate
    # column reads that feed f's own mask are allowed, since they move
    # with the filter.
    mask_nodes = {n.id for n in collect_subgraph([f.inputs[1]])}
    for consumer in consumers.get(u.id, []):
        if consumer is f:
            continue
        if consumer.id in mask_nodes:
            continue
        return False
    # u's side inputs (e.g. a setitem's value series) are row-aligned
    # with u's frame input; after the swap they must be recomputed on the
    # *filtered* frame.  That is only sound when the side expression is a
    # pure elementwise derivation of the frame input.
    base = u.inputs[0]
    for side in u.inputs[1:]:
        if not _elementwise_over(side, base):
            return False
    return True


def _elementwise_over(node: Node, base: Node) -> bool:
    """True when ``node``'s subgraph down to ``base`` is elementwise.

    Walks the expression; every path must reach ``base`` only through
    row-preserving series operators, so re-rooting it onto a filtered
    frame yields the filtered rows of the same values.
    """
    from repro.graph.node import _ELEMENTWISE_SERIES_OPS

    stack = [node]
    seen = set()
    while stack:
        current = stack.pop()
        if current is base or current.id in seen:
            continue
        seen.add(current.id)
        if current.op == "getitem_column":
            # reads a column of whatever frame it points at; fine.
            stack.extend(current.inputs)
            continue
        if current.op in _ELEMENTWISE_SERIES_OPS:
            stack.extend(current.inputs)
            continue
        if current.spec.is_source:
            continue
        return False
    return True


def _swap(f: Node, u: Node) -> None:
    """Rewire so the filter runs before ``u``."""
    base = u.inputs[0]
    new_mask = _rebase(f.inputs[1], old=u, new=base)
    new_filter = Node("filter", inputs=[base, new_mask], label=f.label)
    u.replace_input(base, new_filter)
    # Side inputs (setitem values, second filter masks) were row-aligned
    # with the unfiltered base; recompute them on the filtered frame.
    for i in range(1, len(u.inputs)):
        u.inputs[i] = _rebase(u.inputs[i], old=base, new=new_filter)
    # f becomes a passthrough of u: consumers of f now see u's output.
    _alias(f, u)


def _alias(old: Node, new: Node) -> None:
    """Make ``old`` a transparent alias of ``new``.

    Consumers hold direct references to ``old``; rather than hunting all
    of them down we convert ``old`` into an identity projection of
    ``new``.  The later CSE/identity cleanup or executor handles it at
    zero cost (identity is implemented as a no-op).
    """
    old.op = "identity"
    old.inputs = [new]
    old.args = {}


def _rebase(mask: Node, old: Node, new: Node) -> Node:
    """Clone the predicate expression with reads re-rooted on ``new``."""
    memo: Dict[int, Node] = {}

    def clone(node: Node) -> Node:
        if node is old:
            return new
        if node.id in memo:
            return memo[node.id]
        if not _depends_on(node, old):
            return node  # untouched branch; safe to share
        copy = Node(
            node.op,
            inputs=[clone(inp) for inp in node.inputs],
            args=dict(node.args),
            label=node.label,
        )
        memo[node.id] = copy
        return copy

    return clone(mask)


def _depends_on(node: Node, target: Node) -> bool:
    return any(n is target for n in collect_subgraph([node]))


def _try_multi_parent(
    u: Node,
    consumers: Dict[int, List[Node]],
    root_ids,
    nodes: List[Node],
) -> int:
    """The paper's multi-parent rules (same-filter and conjunction)."""
    all_consumers = consumers.get(u.id, [])
    if u.spec.is_source or u.spec.side_effect or not u.spec.row_preserving:
        return 0
    if not u.inputs or u.id in root_ids:
        return 0
    parents = [
        c for c in all_consumers if c.spec.is_filter and c.inputs[0] is u
    ]
    if len(parents) < 2:
        return 0
    # Consumers inside the parents' own mask expressions move with the
    # filters; any other consumer sees u's unfiltered output and blocks
    # the rewrite.
    mask_nodes = set()
    for p in parents:
        mask_nodes |= {n.id for n in collect_subgraph([p.inputs[1]])}
    for c in all_consumers:
        if c in parents or c.id in mask_nodes:
            continue
        return 0
    mods = u.mod_attrs()
    for p in parents:
        used = p.used_attrs()
        if (ALL_COLUMNS in mods and used) or (ALL_COLUMNS in used and mods):
            return 0
        if mods & used:
            return 0
    if u.args.get("_pp_conj_done"):
        return 0

    base = u.inputs[0]
    for side in u.inputs[1:]:
        if not _elementwise_over(side, base):
            return 0

    first_mask = parents[0].inputs[1]
    if all(structurally_equal(p.inputs[1], first_mask) for p in parents[1:]):
        # Same filter everywhere: push one below, drop the parents.
        new_mask = _rebase(first_mask, old=u, new=base)
        new_filter = Node("filter", inputs=[base, new_mask], label=parents[0].label)
        u.replace_input(base, new_filter)
        for i in range(1, len(u.inputs)):
            u.inputs[i] = _rebase(u.inputs[i], old=base, new=new_filter)
        for p in parents:
            _alias(p, u)
        return len(parents)

    # Different predicates: push the conjunction below, keep originals.
    conj: Optional[Node] = None
    for p in parents:
        rebased = _rebase(p.inputs[1], old=u, new=base)
        conj = rebased if conj is None else Node(
            "binop", inputs=[conj, rebased], args={"op": "&"}, label="and"
        )
    new_filter = Node("filter", inputs=[base, conj], label="pushed_conjunction")
    u.replace_input(base, new_filter)
    for i in range(1, len(u.inputs)):
        u.inputs[i] = _rebase(u.inputs[i], old=base, new=new_filter)
    u.args["_pp_conj_done"] = True  # avoid re-pushing every pass
    return 1


def structurally_equal(a: Node, b: Node) -> bool:
    """Recursive structural comparison of two expression subgraphs."""
    if a is b:
        return True
    if a.op != b.op or len(a.inputs) != len(b.inputs):
        return False
    try:
        if {k: repr(v) for k, v in a.args.items()} != {
            k: repr(v) for k, v in b.args.items()
        }:
            return False
    except Exception:  # pragma: no cover - unreprable args
        return False
    return all(
        structurally_equal(x, y) for x, y in zip(a.inputs, b.inputs)
    )
