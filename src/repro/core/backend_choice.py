"""Cost-based automatic backend selection (the paper's future work).

Sections 2.6 and 3.6 describe the plan: "decisions on what framework to
use depend on whether the dataframes can fit in memory, which can be
inferred from the metadata statistics", plus row-order dependence.  This
module implements it:

- estimate the in-memory footprint of each source read (columns actually
  needed, via the metastore's per-column widths),
- model each backend's memory behaviour (pandas: eager whole-frame with
  a working-copy factor; Modin: dictionary-compressed strings; Dask:
  bounded by partitions + spill),
- respect *order sensitivity*: programs using order-dependent operations
  (sort + positional access) must not run on Dask (section 5.1's caveat),
- pick the fastest backend that fits.

``choose_backend_for_roots`` works on a LaFP task graph, so the choice
can be made at the first ``compute()`` with full knowledge of the reads
and their (possibly projection-narrowed) column sets.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.graph.node import Node
from repro.graph.taskgraph import collect_subgraph

#: eager engines hold the source frame plus roughly one working copy.
EAGER_WORKING_FACTOR = 2.0
#: fraction of string bytes Arrow-style dictionary encoding removes for
#: repetitive columns (selectivity below the category threshold).
DICTIONARY_SAVINGS = 0.8
#: operations whose results depend on global row order.
ORDER_SENSITIVE_OPS = {"sort_values", "sort_index", "head", "tail", "nlargest", "nsmallest"}


@dataclasses.dataclass
class BackendEstimate:
    """Cost-model output for one backend."""

    backend: str
    bytes_needed: int
    fits: bool
    order_safe: bool

    @property
    def viable(self) -> bool:
        return self.fits and self.order_safe


def estimate_read_bytes(node: Node, metastore, compressed_strings: bool) -> Optional[int]:
    """In-memory bytes of one ``read_csv`` node, per the metastore."""
    path = node.args.get("path")
    if path is None or metastore is None:
        return None
    meta = metastore.get(path)
    if meta is None:
        return None
    columns = node.args.get("usecols") or list(meta.columns)
    total = 0.0
    for name in columns:
        stats = meta.columns.get(name)
        if stats is None:
            continue
        width = stats.avg_width
        if (
            compressed_strings
            and stats.dtype == "object"
            and stats.selectivity <= 0.5
        ):
            width = width * (1 - DICTIONARY_SAVINGS) + 4  # codes
        total += width * meta.n_rows
    return int(total)


def order_sensitive(roots: Sequence[Node]) -> bool:
    """Does the graph rely on global row order anywhere?"""
    return any(
        n.op in ORDER_SENSITIVE_OPS for n in collect_subgraph(list(roots))
    )


def choose_backend_for_roots(
    roots: Sequence[Node],
    metastore,
    budget_bytes: Optional[int],
) -> List[BackendEstimate]:
    """Rank backends for this computation; first viable entry wins.

    Without a budget or metadata the ranking degrades gracefully to the
    paper's default order (pandas fastest when everything fits is
    unknowable, so the lazy default wins: dask).
    """
    reads = [n for n in collect_subgraph(list(roots)) if n.op == "read_csv"]
    plain = [estimate_read_bytes(n, metastore, compressed_strings=False) for n in reads]
    packed = [estimate_read_bytes(n, metastore, compressed_strings=True) for n in reads]
    sensitive = order_sensitive(roots)

    if budget_bytes is None or not reads or any(b is None for b in plain):
        # no basis for a cost decision: prefer the safe lazy default,
        # falling back to pandas when row order matters.
        default = "pandas" if sensitive else "dask"
        return [BackendEstimate(default, 0, True, True)]

    pandas_bytes = int(sum(plain) * EAGER_WORKING_FACTOR)
    modin_bytes = int(sum(packed) * EAGER_WORKING_FACTOR)
    estimates = [
        BackendEstimate("pandas", pandas_bytes, pandas_bytes <= budget_bytes, True),
        BackendEstimate("modin", modin_bytes, modin_bytes <= budget_bytes, True),
        # Dask needs only a few partitions resident; treat as always
        # fitting, but unusable for order-sensitive programs.
        BackendEstimate("dask", 0, True, not sensitive),
    ]
    return estimates


def pick(estimates: List[BackendEstimate]) -> str:
    """First viable backend in preference order (fastest first)."""
    for estimate in estimates:
        if estimate.viable:
            return estimate.backend
    # nothing fits: the out-of-core engine is the only hope, order be damned
    return "dask"


def auto_select(session, roots: Sequence[Node]) -> str:
    """Choose and install a backend on ``session`` for this computation."""
    estimates = choose_backend_for_roots(
        roots, session.metastore, session.memory.budget
    )
    backend = pick(estimates)
    session.set_backend(backend)
    return backend
