"""Reproduction of *Efficient Dataframe Systems: Lazy Fat Pandas on a Diet*.

The package is organised bottom-up:

- :mod:`repro.memory` -- simulated memory budget (stands in for the paper's
  32 GB machine so out-of-memory behaviour is reproducible at laptop scale).
- :mod:`repro.frame` -- an eager columnar dataframe engine (the pandas
  stand-in; pandas is not available offline).
- :mod:`repro.backends` -- partitioned lazy (Dask-like) and partitioned
  eager (Modin-like) execution engines.
- :mod:`repro.metastore` -- per-file metadata and statistics (section 3.6).
- :mod:`repro.graph` / :mod:`repro.core` -- the LaFP task graph, lazy
  wrapper frames, and the runtime optimizer (sections 2.5-2.6, 3.2-3.5).
- :mod:`repro.lazyfatpandas` -- the user-facing facade from Figure 2
  (``import repro.lazyfatpandas.pandas as pd``; ``pd.analyze()``).
- :mod:`repro.analysis` -- the JIT static-analysis framework: SCIRPy IR,
  CFG, dataflow (live attribute / live dataframe analysis), program
  rewriting and codegen (sections 2.1-2.4, 3.1).
- :mod:`repro.workloads` -- the ten benchmark programs, dataset generators
  and the measurement runner used by ``benchmarks/``.
"""

__version__ = "0.1.0"

from repro.memory import MemoryManager, SimulatedMemoryError, memory_manager

#: top-level source-layer constructors, resolved lazily (PEP 562) so
#: ``import repro`` stays light and free of circular imports -- the scan
#: API pulls in the whole core/graph/backends stack.
_SCAN_API = (
    "scan_csv", "scan_jsonl", "scan_dataset", "scan_source", "from_pandas",
)

__all__ = [
    "MemoryManager",
    "SimulatedMemoryError",
    "memory_manager",
    "__version__",
    *_SCAN_API,
]


def __getattr__(name: str):
    if name in _SCAN_API:
        import repro.io.api as _api

        return getattr(_api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
