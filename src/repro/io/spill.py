"""Spill-backed staging for the partition-wise shuffle pipeline.

Two pieces back the ``shuffle_write`` / ``shuffle_read`` operators (see
``repro.core.optimizer.shuffle`` for the lowering pass that emits them):

- :class:`PartitionStream` -- a single-use stream of a scan's partition
  frames.  ``Backend.scan`` returns one instead of concatenating when
  the plan marked the scan with ``stream=True``, so downstream shuffle
  operators see partitions one at a time and peak memory stays at a
  partition, not the table.
- :class:`ShuffleStore` -- P hash buckets of frame chunks.  Chunks live
  in memory (their :class:`~repro.frame.column.Column` buffers charged
  to the session's ``memory.budget``) until headroom runs out, then are
  pickled to per-chunk spill files and their buffers released.  Reading
  a bucket back re-registers the bytes and deletes the file eagerly.

Spill files are pickles of ``(name, Column)`` pairs rather than
JSONL/CSV: ``Column.__getstate__`` round-trips values, categories, and
dtype exactly, which the bit-identity contract of the shuffle path
requires.  The spill directory is a ``tempfile.mkdtemp`` under
``memory.spill_dir`` (or the system tmpdir) and is removed when the
store is garbage-collected or explicitly closed.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
import threading
import weakref
from typing import Callable, Iterator, List, Optional, Union

import numpy as np

from repro.frame.column import Column
from repro.frame.concat import concat_consuming
from repro.frame.dataframe import DataFrame

_EMPTY_IDX = np.empty(0, dtype=np.int64)

#: every not-yet-closed store, so headroom pressure in one operator can
#: spill chunks held by *another* operator's store (a merge keeps two
#: stores live at once; spilling only your own cannot free the other
#: side's bytes).  Weak so abandoned stores never pin their chunks.
#:
#: Ownership contract: a ShuffleStore's spill files belong to the
#: *execution* that created it and die with ``close()`` (or the
#: finalizer) -- at session close at the latest.  Results that outlive
#: their creating session belong to the cross-session
#: :class:`repro.cache.result_cache.ResultCache` instead, which keeps
#: its own directory and deletes an entry's file at *eviction* time,
#: never waiting for any session to close.  The two tiers never share
#: files: caching a shuffle-derived result serializes the materialized
#: value into the cache's directory, so evicting it can never touch a
#: live store's chunks (and a store closing can never strand a cached
#: result).
_LIVE_STORES: "weakref.WeakSet[ShuffleStore]" = weakref.WeakSet()


def live_store_count() -> int:
    """Number of not-yet-closed stores (a shuffle is in flight)."""
    return len(_LIVE_STORES)


def _disarm_after_fork() -> None:
    # A forked child inherits every live store -- and each store's
    # finalizer, which would rmtree the PARENT's spill directory when
    # the child exits or collects the store.  Detach them all in the
    # child (the parent's copies are untouched; memory is separate)
    # and forget the stores so child-side spill pressure cannot mutate
    # chunk lists the parent still owns on disk.
    for store in list(_LIVE_STORES):
        if store._finalizer is not None:
            store._finalizer.detach()
            store._finalizer = None
        _LIVE_STORES.discard(store)


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX only
    os.register_at_fork(after_in_child=_disarm_after_fork)


def spill_live_stores(nbytes: int) -> int:
    """Spill across all live stores, fullest first, until ``nbytes``
    are freed (or nothing in-memory remains).  Returns bytes freed."""
    stores = sorted(
        _LIVE_STORES, key=lambda s: -s.in_memory_bytes()
    )
    freed = 0
    for store in stores:
        if freed >= nbytes:
            break
        freed += store.spill(nbytes - freed)
    return freed


class PartitionStream:
    """Single-use iterator over a scan's partition frames.

    ``factory`` opens the underlying source scan; ``empty_factory``
    yields a zero-row frame with the scan's exact output schema (used
    for empty sources and dtype templates).  ``n_partitions`` is the
    planned partition count when known.
    """

    def __init__(
        self,
        factory: Callable[[], Iterator[DataFrame]],
        empty_factory: Callable[[], DataFrame],
        n_partitions: Optional[int] = None,
    ) -> None:
        self._factory = factory
        self._empty_factory = empty_factory
        self.n_partitions = n_partitions
        self._consumed = False

    @property
    def consumed(self) -> bool:
        return self._consumed

    def __iter__(self) -> Iterator[DataFrame]:
        if self._consumed:
            raise RuntimeError(
                "PartitionStream is single-use and was already consumed"
            )
        self._consumed = True
        return iter(self._factory())

    def empty_frame(self) -> DataFrame:
        """Zero-row frame with the stream's output schema."""
        return self._empty_factory()

    def materialize(self) -> DataFrame:
        """Concatenate the remaining partitions into one eager frame.

        Safety valve for consumers that cannot stream (fallback paths);
        the shuffle operators never call this.
        """
        frames = list(self)
        if not frames:
            return self.empty_frame()
        if len(frames) == 1:
            return frames[0]
        out = concat_consuming(frames)
        assert isinstance(out, DataFrame)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "consumed" if self._consumed else "pending"
        return f"<PartitionStream parts={self.n_partitions} {state}>"


class _SpilledChunk:
    """On-disk replacement for an in-memory bucket chunk."""

    __slots__ = ("path", "nbytes")

    def __init__(self, path: str, nbytes: int) -> None:
        self.path = path
        self.nbytes = nbytes


_Chunk = Union[DataFrame, _SpilledChunk]


class ShuffleStore:
    """Hash-bucket staging area between shuffle_write and shuffle_read.

    The write phase appends per-bucket frame chunks (and may spill);
    the read phase drains one bucket at a time.  Distinct buckets may
    be drained from concurrent threads -- all chunk-list mutation is
    guarded by one lock.
    """

    def __init__(
        self, n_buckets: int, spill_dir: Optional[str] = None
    ) -> None:
        self.n_buckets = int(n_buckets)
        self._spill_root = spill_dir
        self._dir: Optional[str] = None
        self._chunks: List[List[_Chunk]] = [[] for _ in range(self.n_buckets)]
        self._template: Optional[DataFrame] = None
        self._seq = 0
        self._lock = threading.Lock()
        self._finalizer: Optional[weakref.finalize] = None
        #: total bytes written to spill files (monotonic counter)
        self.bytes_spilled = 0
        #: number of chunks that hit disk
        self.spill_chunks = 0
        #: total in-memory bytes ever appended (monotonic); divided by
        #: ``n_buckets`` this predicts a bucket's materialized size far
        #: better than the planner's disk-based estimate.
        self.appended_bytes = 0
        _LIVE_STORES.add(self)

    # -- write phase ---------------------------------------------------

    @property
    def template(self) -> Optional[DataFrame]:
        return self._template

    def set_template(self, frame: DataFrame) -> None:
        """Remember a zero-row frame for empty buckets.

        Rebuilt with payload-owning columns: a plain ``take`` would
        share (and so pin) the source partition's heap payload for the
        store's whole lifetime."""
        if self._template is not None:
            return
        empty = frame.take(_EMPTY_IDX)
        cols = {}
        for name in empty.columns:
            col = empty.column(name)
            if col.is_category:
                cols[name] = Column(
                    col.values, categories=col.categories
                )
            else:
                cols[name] = Column(col.values)
        self._template = DataFrame.from_columns(cols)

    def append(self, bucket: int, frame: DataFrame) -> None:
        if len(frame) == 0:
            return
        with self._lock:
            self._chunks[bucket].append(frame)
            self.appended_bytes += frame.nbytes

    def bucket_estimate(self) -> int:
        """Predicted in-memory size of one materialized bucket."""
        return max(1, self.appended_bytes // max(1, self.n_buckets))

    def in_memory_bytes(self) -> int:
        with self._lock:
            return sum(
                chunk.nbytes
                for bucket in self._chunks
                for chunk in bucket
                if isinstance(chunk, DataFrame)
            )

    def spill(self, nbytes: int) -> int:
        """Spill in-memory chunks, largest first, until ``nbytes`` are
        freed (or nothing in-memory remains).  Returns bytes freed."""
        with self._lock:
            resident = [
                (chunk.nbytes, b, i)
                for b, bucket in enumerate(self._chunks)
                for i, chunk in enumerate(bucket)
                if isinstance(chunk, DataFrame)
            ]
            resident.sort(key=lambda t: (-t[0], t[1], t[2]))
            freed = 0
            for size, b, i in resident:
                if freed >= nbytes:
                    break
                chunk = self._chunks[b][i]
                assert isinstance(chunk, DataFrame)
                self._chunks[b][i] = self._spill_chunk(b, chunk)
                freed += size
            return freed

    def spill_all(self) -> int:
        """Spill every in-memory chunk (out-of-memory recovery)."""
        return self.spill(1 << 62)

    def _spill_chunk(self, bucket: int, frame: DataFrame) -> _SpilledChunk:
        path = os.path.join(
            self._ensure_dir(), f"b{bucket:04d}-{self._seq:06d}.pkl"
        )
        self._seq += 1
        payload = [(name, frame.column(name)) for name in frame.columns]
        nbytes = frame.nbytes
        with open(path, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
        self.bytes_spilled += nbytes
        self.spill_chunks += 1
        # dropping the frame reference releases its tracked buffers
        return _SpilledChunk(path, nbytes)

    def _ensure_dir(self) -> str:
        if self._dir is None:
            root = self._spill_root
            if root is not None:
                os.makedirs(root, exist_ok=True)
            self._dir = tempfile.mkdtemp(prefix="lafp-shuffle-", dir=root)
            self._finalizer = weakref.finalize(
                self, shutil.rmtree, self._dir, True
            )
        return self._dir

    # -- read phase ----------------------------------------------------

    def read_bucket(self, bucket: int) -> DataFrame:
        """Drain bucket ``bucket`` into one eager frame (consuming).

        Failure-atomic: the bucket's chunks go back into the store (and
        no spill file is deleted) if building the output raises, so a
        :class:`~repro.memory.manager.SimulatedMemoryError` mid-drain --
        concurrent bucket pipelines can race past the reader's headroom
        check -- leaves everything in place for a spill-and-retry.
        """
        with self._lock:
            chunks = self._chunks[bucket]
            self._chunks[bucket] = []
        try:
            out = self._build_bucket_frame(chunks)
        except BaseException:
            with self._lock:
                self._chunks[bucket] = chunks + self._chunks[bucket]
            raise
        for chunk in chunks:
            if isinstance(chunk, _SpilledChunk):
                try:
                    os.unlink(chunk.path)
                except OSError:  # pragma: no cover - best effort
                    pass
        return out

    def _build_bucket_frame(self, chunks: List[_Chunk]) -> DataFrame:
        pieces: List[DataFrame] = []
        for chunk in chunks:
            if isinstance(chunk, _SpilledChunk):
                with open(chunk.path, "rb") as fh:
                    payload = pickle.load(fh)
                pieces.append(DataFrame.from_columns(dict(payload)))
            else:
                pieces.append(chunk)
        if not pieces:
            if self._template is None:
                raise RuntimeError("ShuffleStore has no data and no template")
            return self._template.take(_EMPTY_IDX)
        if len(pieces) == 1:
            return pieces[0]
        # concat through shallow wrappers: concat_consuming empties the
        # frames it is given, and these chunks must survive a mid-concat
        # OOM so the caller can restore them
        wrappers = [
            DataFrame.from_columns(
                {name: piece.column(name) for name in piece.columns}
            )
            for piece in pieces
        ]
        out = concat_consuming(wrappers)
        assert isinstance(out, DataFrame)
        return out

    def close(self) -> None:
        """Drop all chunks and remove the spill directory."""
        _LIVE_STORES.discard(self)
        with self._lock:
            self._chunks = [[] for _ in range(self.n_buckets)]
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
            self._dir = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ShuffleStore buckets={self.n_buckets} "
            f"spilled={self.bytes_spilled}B>"
        )
