"""Serializable scan predicates: the currency of predicate pushdown
*into* sources.

The runtime optimizer's filters are mask-expression subgraphs; a source
cannot execute those.  A :class:`Predicate` is the fragment both sides
understand: a conjunction of simple per-column comparisons that

- serializes to plain lists/dicts (it travels inside a ``scan`` node's
  ``args``, so it must survive ``repr``-based structural comparison and
  the session's snapshot/restore),
- evaluates against an eager frame (sources filter each partition right
  after reading it),
- evaluates against partition *statistics* (min/max from the metastore,
  exact hive ``key=value`` values), which is what makes partition
  pruning provable rather than heuristic.

:func:`conjuncts_from_mask` is the bridge from the graph world: it
converts a filter's mask subgraph into conjuncts when -- and only when --
the whole mask is expressible, so folding a filter into a scan never
changes its semantics.

Beyond the flat AND, two *nested* term shapes compose (serialized as
plain dicts like everything else)::

    {"op": "or",  "terms": [[conj, ...], [conj, ...]]}   # OR of ANDs
    {"op": "not", "term": [conj, ...]}                   # NOT of an AND

Statistics evaluation over them is **three-valued**: a term proves
``False`` (no row can match), ``True`` (every row matches -- what NOT
needs to prune), or ``None`` (unknown, never prune).  Proofs are
null-aware where it matters: ``!=`` matches NA rows, so its
cannot-match proof consults the partition's ``null_counts`` when the
source recorded them (columnar footers do; sampled text stats keep the
legacy min/max-only behaviour).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

#: comparison ops a conjunct may carry (plus "between" and "isin").
_COMPARISONS = {"<", "<=", ">", ">=", "==", "!="}

#: mirror image used when a reflected binop (``5 > col``) is normalized.
_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}


def _is_literal(value) -> bool:
    """Values a conjunct may compare against (JSON-able scalars)."""
    return isinstance(value, (int, float, str, bool)) or value is None


class Predicate:
    """An AND of simple column conjuncts, applied at the source boundary."""

    def __init__(self, conjuncts: Sequence[dict]):
        self.conjuncts: List[dict] = [dict(c) for c in conjuncts]

    # -- serialization ----------------------------------------------------

    @classmethod
    def from_arg(cls, arg) -> Optional["Predicate"]:
        """Rebuild from a ``scan`` node's ``args['predicate']`` (or None)."""
        if not arg:
            return None
        return cls(arg)

    def to_arg(self) -> List[dict]:
        return [dict(c) for c in self.conjuncts]

    def columns(self) -> Set[str]:
        out: Set[str] = set()
        for conj in self.conjuncts:
            out |= _term_columns(conj)
        return out

    # -- frame evaluation -------------------------------------------------

    def mask(self, frame):
        """Boolean eager series: rows of ``frame`` satisfying every
        conjunct."""
        combined = None
        for conj in self.conjuncts:
            part = _term_mask(frame, conj)
            combined = part if combined is None else (combined & part)
        return combined

    def filter(self, frame):
        mask = self.mask(frame)
        if mask is None:
            return frame
        return frame[mask]

    # -- statistics evaluation (partition pruning) ------------------------

    def may_match(self, partition) -> bool:
        """False only when the partition *provably* contains no matching
        row: every row fails some conjunct given the partition's exact
        hive key values or exact column min/max (and ``null_counts``
        where the source recorded them).  Missing statistics always
        answer True (never prune on a guess)."""
        for conj in self.conjuncts:
            if _prove(conj, partition) is False:
                return False
        return True

    # -- rendering --------------------------------------------------------

    def render(self) -> str:
        """Compact text for ``explain()``: ``(fare>0 & state=='CA')``."""
        return "(" + " & ".join(
            _render_term(c) for c in self.conjuncts
        ) + ")"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Predicate {self.render()}>"


def _term_columns(term: dict) -> Set[str]:
    op = term.get("op")
    if op == "or":
        out: Set[str] = set()
        for group in term["terms"]:
            for sub in group:
                out |= _term_columns(sub)
        return out
    if op == "not":
        out = set()
        for sub in term["term"]:
            out |= _term_columns(sub)
        return out
    return {term["column"]}


def _render_term(term: dict) -> str:
    op = term.get("op")
    if op == "or":
        groups = [
            " & ".join(_render_term(sub) for sub in group)
            for group in term["terms"]
        ]
        return "(" + " | ".join(f"({g})" for g in groups) + ")"
    if op == "not":
        inner = " & ".join(_render_term(sub) for sub in term["term"])
        return f"~({inner})"
    col = term["column"]
    if op == "between":
        return f"{term['low']!r}<={col}<={term['high']!r}"
    if op == "isin":
        return f"{col} in {list(term['values'])!r}"
    return f"{col}{op}{term['value']!r}"


def _term_mask(frame, term: dict):
    op = term.get("op")
    if op == "or":
        combined = None
        for group in term["terms"]:
            part = _group_mask(frame, group)
            combined = part if combined is None else (combined | part)
        return combined
    if op == "not":
        return ~_group_mask(frame, term["term"])
    return _conjunct_mask(frame[term["column"]], term)


def _group_mask(frame, group: Sequence[dict]):
    combined = None
    for term in group:
        part = _term_mask(frame, term)
        combined = part if combined is None else (combined & part)
    return combined


def _conjunct_mask(series, conj: dict):
    op = conj["op"]
    if op == "between":
        return series.between(
            conj["low"], conj["high"], inclusive=conj.get("inclusive", "both")
        )
    if op == "isin":
        return series.isin(list(conj["values"]))
    value = conj["value"]
    if op == "<":
        return series < value
    if op == "<=":
        return series <= value
    if op == ">":
        return series > value
    if op == ">=":
        return series >= value
    if op == "==":
        return series == value
    if op == "!=":
        return series != value
    raise ValueError(f"unknown predicate op {op!r}")


def _scalar_matches(value, conj: dict) -> bool:
    """Evaluate a conjunct against one exact value (a hive key)."""
    op = conj["op"]
    try:
        if op == "between":
            inclusive = conj.get("inclusive", "both")
            low_ok = (value >= conj["low"]) if inclusive in ("both", "left") \
                else (value > conj["low"])
            high_ok = (value <= conj["high"]) if inclusive in ("both", "right") \
                else (value < conj["high"])
            return bool(low_ok and high_ok)
        if op == "isin":
            return value in set(conj["values"])
        other = conj["value"]
        return bool({
            "<": value < other,
            "<=": value <= other,
            ">": value > other,
            ">=": value >= other,
            "==": value == other,
            "!=": value != other,
        }[op])
    except TypeError:
        return True  # incomparable types: never prune


def _range_may_match(lo, hi, conj: dict) -> bool:
    """Can any value in ``[lo, hi]`` satisfy the conjunct?"""
    op = conj["op"]
    try:
        if op == "between":
            inclusive = conj.get("inclusive", "both")
            low, high = conj["low"], conj["high"]
            if inclusive in ("both", "right"):
                if lo > high:
                    return False
            elif lo >= high:
                return False
            if inclusive in ("both", "left"):
                if hi < low:
                    return False
            elif hi <= low:
                return False
            return True
        if op == "isin":
            values = [v for v in conj["values"] if not isinstance(v, str)]
            if len(values) != len(conj["values"]):
                return True  # string membership: no numeric range proof
            return any(lo <= v <= hi for v in values)
        value = conj["value"]
        return {
            "<": lo < value,
            "<=": lo <= value,
            ">": hi > value,
            ">=": hi >= value,
            "==": lo <= value <= hi,
            "!=": not (lo == hi == value),
        }[op]
    except TypeError:
        return True  # incomparable types: never prune


# ---------------------------------------------------------------------------
# Three-valued statistics proofs (partition pruning and chunk skipping).
# ---------------------------------------------------------------------------


def _prove(term: dict, partition) -> Optional[bool]:
    """Prove a term over one partition's statistics.

    ``False``: no row can match.  ``True``: every row matches.
    ``None``: the statistics cannot decide.  Only ``False`` prunes
    directly; ``True`` exists so NOT can flip it into a prune.
    """
    op = term.get("op")
    if op == "or":
        results = [_prove_group(group, partition) for group in term["terms"]]
        if any(r is True for r in results):
            return True
        if results and all(r is False for r in results):
            return False
        return None
    if op == "not":
        inner = _prove_group(term["term"], partition)
        if inner is None:
            return None
        return not inner
    return _prove_leaf(term, partition)


def _prove_group(group: Sequence[dict], partition) -> Optional[bool]:
    """AND-combine term proofs (empty groups prove nothing)."""
    if not group:
        return None
    results = [_prove(term, partition) for term in group]
    if any(r is False for r in results):
        return False
    if all(r is True for r in results):
        return True
    return None


def _prove_leaf(conj: dict, partition) -> Optional[bool]:
    column = conj["column"]
    if column in partition.key_values:
        # a hive key is one exact non-null constant for every row, so
        # the conjunct's truth value is the proof for the partition.
        return _scalar_proof(partition.key_values[column], conj)
    lo = partition.min_values.get(column)
    hi = partition.max_values.get(column)
    if lo is None or hi is None:
        return None
    nulls = getattr(partition, "null_counts", {}).get(column)
    if not _range_may_match(lo, hi, conj):
        # no non-null value can match.  NA rows still match ``!=`` (NaN
        # != v is True), so that proof additionally needs a recorded
        # null_count of zero; sources without null counts keep the
        # legacy min/max-only prune.
        if conj["op"] != "!=" or nulls is None or nulls == 0:
            return False
        return None
    if _range_all_match(lo, hi, nulls, conj):
        return True
    return None


def _scalar_proof(value, conj: dict) -> Optional[bool]:
    """Three-valued :func:`_scalar_matches`: ``None`` on incomparable
    types instead of the may-match default."""
    op = conj["op"]
    try:
        if op == "between":
            inclusive = conj.get("inclusive", "both")
            low_ok = (value >= conj["low"]) if inclusive in ("both", "left") \
                else (value > conj["low"])
            high_ok = (value <= conj["high"]) if inclusive in ("both", "right") \
                else (value < conj["high"])
            return bool(low_ok and high_ok)
        if op == "isin":
            return value in set(conj["values"])
        other = conj["value"]
        return bool({
            "<": value < other,
            "<=": value <= other,
            ">": value > other,
            ">=": value >= other,
            "==": value == other,
            "!=": value != other,
        }[op])
    except TypeError:
        return None


def _range_all_match(lo, hi, nulls, conj: dict) -> bool:
    """Does *every* row provably satisfy the conjunct?

    Comparisons, ``==``, ``between`` and ``isin`` never match NA rows,
    so their all-match proofs require a recorded null_count of zero;
    ``!=`` matches NA, so proving the value lies outside ``[lo, hi]``
    suffices regardless of nulls.
    """
    op = conj["op"]
    no_nulls = nulls == 0
    try:
        if op == "!=":
            value = conj["value"]
            return bool(value < lo or value > hi)
        if not no_nulls:
            return False
        if op == "between":
            inclusive = conj.get("inclusive", "both")
            low, high = conj["low"], conj["high"]
            low_ok = lo >= low if inclusive in ("both", "left") else lo > low
            high_ok = hi <= high if inclusive in ("both", "right") \
                else hi < high
            return bool(low_ok and high_ok)
        if op == "isin":
            return bool(lo == hi and lo in set(conj["values"]))
        value = conj["value"]
        return bool({
            "<": hi < value,
            "<=": hi <= value,
            ">": lo > value,
            ">=": lo >= value,
            "==": lo == hi == value,
        }[op])
    except TypeError:
        return False


# ---------------------------------------------------------------------------
# Mask-subgraph -> conjuncts conversion (used by the optimizer fold pass).
# ---------------------------------------------------------------------------


def conjuncts_from_mask(mask, source, aliases=()) -> Optional[List[dict]]:
    """Convert a filter's mask expression into conjuncts, or ``None``.

    ``mask`` is the filter node's second input; ``source`` the scan node
    the filter would fold into (``aliases`` are identity nodes standing
    for it).  The conversion is all-or-nothing: every leaf comparison
    must read a column *directly off the source* and compare against a
    plain literal.  Anything else -- derived columns, series-vs-series
    comparisons, OR, negation -- returns ``None`` and the filter stays
    in the graph.
    """
    accepted = {id(source)} | {id(a) for a in aliases}

    def source_column(node) -> Optional[str]:
        if node.op == "getitem_column" and node.inputs \
                and id(node.inputs[0]) in accepted:
            return node.args["column"]
        return None

    def convert(node) -> Optional[List[dict]]:
        if node.op == "unop" and node.args.get("op") == "~":
            if len(node.inputs) != 1:
                return None
            inner = convert(node.inputs[0])
            if inner is None:
                return None
            return [{"op": "not", "term": inner}]
        if node.op == "binop":
            op = node.args.get("op")
            if op == "&":
                if len(node.inputs) != 2:
                    return None
                left = convert(node.inputs[0])
                right = convert(node.inputs[1])
                if left is None or right is None:
                    return None
                return left + right
            if op == "|":
                if len(node.inputs) != 2:
                    return None
                left = convert(node.inputs[0])
                right = convert(node.inputs[1])
                if left is None or right is None:
                    return None
                return [{"op": "or", "terms": [left, right]}]
            if op in _COMPARISONS:
                if len(node.inputs) != 1 or "right" not in node.args:
                    return None  # series-vs-series: not foldable
                column = source_column(node.inputs[0])
                value = node.args["right"]
                if column is None or not _is_literal(value):
                    return None
                if node.args.get("reflected"):
                    op = _FLIPPED[op]
                return [{"column": column, "op": op, "value": value}]
            return None
        if node.op == "between":
            column = source_column(node.inputs[0])
            low, high = node.args.get("left"), node.args.get("right")
            if column is None or not (_is_literal(low) and _is_literal(high)):
                return None
            return [{
                "column": column, "op": "between", "low": low, "high": high,
                "inclusive": node.args.get("inclusive", "both"),
            }]
        if node.op == "isin":
            column = source_column(node.inputs[0])
            values = node.args.get("values")
            if column is None or values is None \
                    or not all(_is_literal(v) for v in values):
                return None
            return [{"column": column, "op": "isin", "values": list(values)}]
        return None

    return convert(mask)


def merge_conjuncts(existing, new) -> List[dict]:
    """Append ``new`` conjuncts onto an existing predicate arg,
    dropping exact duplicates (repeated folds of equal filters)."""
    out: List[dict] = [dict(c) for c in (existing or [])]
    seen = {repr(sorted(c.items())) for c in out}
    for conj in new:
        key = repr(sorted(conj.items()))
        if key not in seen:
            seen.add(key)
            out.append(dict(conj))
    return out


def required_read_columns(
    columns: Optional[Sequence[str]],
    predicate: Optional[Predicate],
    schema: Sequence[str],
) -> Optional[List[str]]:
    """Physical columns a partition read needs: the projection plus any
    predicate columns (filtered out again after the mask is applied).
    ``None`` means the whole schema."""
    if columns is None:
        return None
    needed = set(columns)
    if predicate is not None:
        needed |= predicate.columns()
    return [c for c in schema if c in needed]
