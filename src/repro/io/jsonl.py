"""Newline-delimited JSON: reader, writer, and the :class:`JsonlSource`.

One JSON object per line.  Values keep their JSON types (ints stay
int64, floats float64, ``null`` becomes NA), which is exactly the
metadata CSV loses -- the format exists here so the scan layer has a
second real format with different physical characteristics.

Byte-range partitioning reuses the CSV convention (a reader seeks to
``start``, finishes the partial line, reads until past ``end``) minus
the header line CSV carries.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.frame import DataFrame
from repro.frame.column import Column
from repro.io.source import DataSource, Partition

#: Target bytes per partition (same scale as the CSV sources).
DEFAULT_PARTITION_BYTES = 1 << 20


def write_jsonl(frame: DataFrame, path: str) -> None:
    """Write a frame as one JSON object per line (NA as ``null``)."""
    arrays = [frame.column(name).to_array() for name in frame.columns]
    names = frame.columns
    with open(path, "w") as f:
        for i in range(len(frame)):
            record = {}
            for name, arr in zip(names, arrays):
                record[name] = _jsonable(arr[i])
            f.write(json.dumps(record) + "\n")


def _jsonable(value):
    if value is None:
        return None
    if isinstance(value, (np.floating, float)):
        return None if np.isnan(value) else float(value)
    if isinstance(value, (np.integer, int)):
        return int(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.datetime64):
        if np.isnat(value):
            return None
        return str(value.astype("datetime64[s]")).replace("T", " ")
    return str(value)


def read_jsonl_header(path: str) -> List[str]:
    """Column names: union of keys over the first few records, in
    first-seen order (records may omit keys)."""
    names: List[str] = []
    seen = set()
    with open(path) as f:
        for i, line in enumerate(f):
            if i >= 100:
                break
            line = line.strip()
            if not line:
                continue
            for key in json.loads(line):
                if key not in seen:
                    seen.add(key)
                    names.append(key)
    return names


def read_jsonl(
    path: str,
    columns: Optional[Sequence[str]] = None,
    nrows: Optional[int] = None,
    byte_range: Optional[Tuple[int, int]] = None,
    parse_dates: Optional[Sequence[str]] = None,
    dtype: Optional[dict] = None,
) -> DataFrame:
    """Read (a byte range of) a JSONL file into a :class:`DataFrame`."""
    wanted = list(columns) if columns is not None else None
    records: List[dict] = []
    for line in _iter_lines(path, byte_range):
        records.append(json.loads(line))
        if nrows is not None and len(records) >= nrows:
            break

    if wanted is None:
        wanted = []
        seen = set()
        for record in records:
            for key in record:
                if key not in seen:
                    seen.add(key)
                    wanted.append(key)
        if not wanted and os.path.getsize(path):
            wanted = read_jsonl_header(path)

    columns_out: Dict[str, Column] = {}
    parse_set = set(parse_dates or [])
    for name in wanted:
        values = [record.get(name) for record in records]
        if name in parse_set:
            cleaned = ["NaT" if v in (None, "") else str(v) for v in values]
            columns_out[name] = Column(
                np.asarray(cleaned, dtype="datetime64[ns]")
            )
        else:
            columns_out[name] = _column_from_values(values)
    frame = DataFrame.from_columns(columns_out)
    if dtype:
        applicable = {k: v for k, v in dtype.items() if k in set(wanted)}
        if applicable:
            frame = frame.astype(applicable)
    return frame


def _iter_lines(path: str, byte_range: Optional[Tuple[int, int]]):
    if byte_range is None:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if line:
                    yield line
        return
    start, end = byte_range
    with open(path, "rb") as f:
        f.seek(start)
        if start > 0:
            f.seek(start - 1)
            if f.read(1) != b"\n":
                f.readline()  # partial line belongs to the upstream range
        while f.tell() < end:
            raw = f.readline()
            if not raw:
                break
            text = raw.decode("utf-8").strip()
            if text:
                yield text


def _column_from_values(values: List[object]) -> Column:
    """JSON values -> typed column: int64 when all ints, float64 when
    numeric with NA, object otherwise (None preserved as NA)."""
    has_na = any(v is None for v in values)
    non_null = [v for v in values if v is not None]
    if non_null and all(
        isinstance(v, bool) for v in non_null
    ) and not has_na:
        return Column(np.asarray(values, dtype=bool))
    if non_null and all(
        isinstance(v, int) and not isinstance(v, bool) for v in non_null
    ):
        if not has_na:
            return Column(np.asarray(values, dtype=np.int64))
        return Column(np.asarray(
            [np.nan if v is None else float(v) for v in values],
            dtype=np.float64,
        ))
    if non_null and all(
        isinstance(v, (int, float)) and not isinstance(v, bool)
        for v in non_null
    ):
        return Column(np.asarray(
            [np.nan if v is None else float(v) for v in values],
            dtype=np.float64,
        ))
    return Column(np.asarray(values, dtype=object))


def jsonl_partitions(path: str, n_partitions: int) -> List[Tuple[int, int]]:
    """Split a JSONL file into ~equal byte ranges (no header to skip);
    ranges align to newlines downstream exactly like the CSV reader."""
    size = os.path.getsize(path)
    n_partitions = max(1, n_partitions)
    span = max(1, size // n_partitions)
    ranges = []
    start = 0
    for i in range(n_partitions):
        end = size if i == n_partitions - 1 else min(size, start + span)
        if start >= size:
            break
        ranges.append((start, end))
        start = end
    return ranges


class JsonlSource(DataSource):
    """Byte-range partitioned newline-delimited JSON."""

    format_name = "jsonl"
    supports_projection = True
    supports_predicate = True
    partitioned = True

    def __init__(self, path: str, metastore=None, **options):
        super().__init__(path, metastore=metastore, **options)
        self.partition_bytes = int(
            options.get("partition_bytes") or DEFAULT_PARTITION_BYTES
        )
        self._schema: Optional[List[str]] = None
        self._parts: Optional[List[Partition]] = None

    def schema(self) -> List[str]:
        if self._schema is None:
            self._schema = read_jsonl_header(self.path)
        return self._schema

    def partitions(self) -> List[Partition]:
        from repro.io.csv_source import attach_file_stats

        if self._parts is not None:
            return self._parts
        if self.options.get("nrows") is not None:
            size = os.path.getsize(self.path)
            parts = [Partition(0, self.path, byte_range=(0, size),
                               est_bytes=size)]
        else:
            n = max(1, os.path.getsize(self.path) // self.partition_bytes)
            parts = [
                Partition(i, self.path, byte_range=rng,
                          est_bytes=rng[1] - rng[0])
                for i, rng in enumerate(jsonl_partitions(self.path, int(n)))
            ]
        attach_file_stats(parts, self.path, self.metastore)
        self._parts = parts
        return parts

    def read_partition(self, partition, columns=None, predicate=None):
        read_cols = self._read_columns(columns, predicate)
        frame = read_jsonl(
            partition.path,
            columns=read_cols,
            nrows=self.options.get("nrows"),
            byte_range=partition.byte_range,
            parse_dates=self.options.get("parse_dates"),
            dtype=self.options.get("dtype"),
        )
        return self._finish(frame, columns, predicate)

    def estimated_bytes(self, columns=None, partitions=None):
        estimate = super().estimated_bytes(columns=columns,
                                           partitions=partitions)
        if estimate is not None:
            # JSONL repeats every key on every row; the in-memory frame
            # is much denser than the file. Halve the raw-byte estimate.
            return estimate // 2
        return None
