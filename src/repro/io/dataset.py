"""Directory-partitioned datasets (hive-style ``key=value/`` layout).

A dataset root contains one subdirectory level per partition key::

    sales/
      region=east/part-0.csv
      region=west/part-0.csv

Each leaf file is one partition; the key columns are not stored in the
leaves -- they are constants recovered from the path and appended to
every row on read.  That makes predicates over partition keys *exactly*
prunable (no statistics needed), while predicates over payload columns
prune through the metastore's per-file min/max (trusted only when the
file's metadata was computed unsampled -- sampled extrema are not
proof).  Leaves whose metadata carries per-byte-range partition stats
split further into one partition per range, so pruning can skip a
*slice* of a leaf file and the reader fetches only that byte range.

Leaves may be CSV or JSONL; :func:`write_dataset` produces the layout
from an eager frame (the datagen "partitioned variant" path).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

import numpy as np

from repro.frame import DataFrame
from repro.frame.column import Column
from repro.frame.io_csv import read_csv, read_header, write_csv
from repro.io.jsonl import read_jsonl, read_jsonl_header, write_jsonl
from repro.io.source import DataSource, Partition

_LEAF_EXTENSIONS = (".csv", ".jsonl")


def parse_key_value(component: str):
    """``"year=2024"`` -> ``("year", 2024)`` with numeric coercion."""
    key, _, raw = component.partition("=")
    return key, coerce_key_value(raw)


def coerce_key_value(raw: str):
    try:
        return int(raw)
    except ValueError:
        try:
            return float(raw)
        except ValueError:
            return raw


def discover_leaves(root: str) -> List[dict]:
    """All leaf files under ``root`` with their decoded key values,
    sorted by relative path for deterministic partition indices."""
    leaves = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        rel = os.path.relpath(dirpath, root)
        components = [] if rel == "." else rel.split(os.sep)
        if not all("=" in c for c in components):
            continue
        keys = dict(parse_key_value(c) for c in components)
        for name in sorted(filenames):
            if name.endswith(_LEAF_EXTENSIONS):
                leaves.append({
                    "path": os.path.join(dirpath, name),
                    "key_values": keys,
                })
    return leaves


def write_dataset(
    frame: DataFrame,
    root: str,
    partition_on: str,
    fmt: str = "csv",
) -> List[str]:
    """Write ``frame`` as a hive-partitioned dataset; returns leaf paths.

    Rows are grouped by ``partition_on``; the key column lives only in
    the directory names (read back as a constant column).
    """
    values = frame.column(partition_on).to_array()
    payload = frame[[c for c in frame.columns if c != partition_on]]
    paths = []
    for value in _ordered_unique(values):
        mask = values == value
        piece = payload.take(np.nonzero(mask)[0])
        leaf_dir = os.path.join(root, f"{partition_on}={value}")
        os.makedirs(leaf_dir, exist_ok=True)
        leaf = os.path.join(leaf_dir, f"part-0.{fmt}")
        if fmt == "jsonl":
            write_jsonl(piece, leaf)
        else:
            write_csv(piece, leaf)
        paths.append(leaf)
    return paths


def _ordered_unique(values: np.ndarray) -> List[object]:
    seen = set()
    out = []
    for v in values.tolist():
        if v not in seen:
            seen.add(v)
            out.append(v)
    return out


class DatasetSource(DataSource):
    """One partition per leaf file; hive keys become constant columns."""

    format_name = "dataset"
    supports_projection = True
    supports_predicate = True
    partitioned = True

    def __init__(self, path: str, metastore=None, **options):
        super().__init__(path, metastore=metastore, **options)
        self._leaves: Optional[List[dict]] = None
        self._schema: Optional[List[str]] = None
        self._parts: Optional[List[Partition]] = None

    # -- layout -----------------------------------------------------------

    def leaves(self) -> List[dict]:
        if self._leaves is None:
            self._leaves = discover_leaves(self.path)
            if not self._leaves:
                raise OSError(f"no partition files under {self.path!r}")
        return self._leaves

    def key_columns(self) -> List[str]:
        return list(self.leaves()[0]["key_values"])

    def schema(self) -> List[str]:
        if self._schema is None:
            first = self.leaves()[0]["path"]
            if first.endswith(".jsonl"):
                leaf_cols = read_jsonl_header(first)
            else:
                leaf_cols = read_header(first)
            self._schema = leaf_cols + self.key_columns()
        return self._schema

    def partitions(self) -> List[Partition]:
        if self._parts is not None:
            return self._parts
        parts: List[Partition] = []
        for leaf in self.leaves():
            meta = self.metastore.get(leaf["path"]) if self.metastore else None
            ranges = getattr(meta, "partitions", None) if meta else None
            if ranges:
                # Sub-file chunk stats (metadata computed with
                # ``partition_ranges``): one partition per byte range,
                # so payload-column pruning can discard a *slice* of a
                # leaf the per-file extrema could never rule out.
                for ps in ranges:
                    parts.append(Partition(
                        len(parts), leaf["path"],
                        byte_range=(ps.start, ps.end),
                        key_values=dict(leaf["key_values"]),
                        est_rows=ps.n_rows,
                        est_bytes=ps.n_bytes,
                        min_values=dict(ps.min_values),
                        max_values=dict(ps.max_values),
                    ))
                continue
            part = Partition(
                len(parts), leaf["path"],
                key_values=dict(leaf["key_values"]),
                est_bytes=os.path.getsize(leaf["path"]),
            )
            self._attach_leaf_stats(part, meta)
            parts.append(part)
        self._parts = parts
        return parts

    def _attach_leaf_stats(self, part: Partition, meta) -> None:
        if meta is None:
            return
        part.est_rows = meta.n_rows
        part.est_bytes = int(meta.row_size * meta.n_rows) or part.est_bytes
        if meta.sampled:
            return  # sampled extrema are estimates, not pruning proof
        for name, stats in meta.columns.items():
            if stats.min_value is not None:
                part.min_values[name] = stats.min_value
            if stats.max_value is not None:
                part.max_values[name] = stats.max_value

    # -- reading ----------------------------------------------------------

    def read_partition(self, partition, columns=None, predicate=None):
        keys = partition.key_values
        read_cols = self._read_columns(columns, predicate)
        leaf_cols = None
        if read_cols is not None:
            leaf_cols = [c for c in read_cols if c not in keys]
        if partition.path.endswith(".jsonl"):
            frame = read_jsonl(
                partition.path,
                columns=leaf_cols,
                byte_range=partition.byte_range,
                parse_dates=self.options.get("parse_dates"),
                dtype=self.options.get("dtype"),
            )
        else:
            frame = read_csv(
                partition.path,
                usecols=leaf_cols,
                byte_range=partition.byte_range,
                dtype=self.options.get("dtype"),
                parse_dates=self.options.get("parse_dates"),
            )
        n = len(frame)
        for name, value in keys.items():
            if read_cols is not None and name not in read_cols:
                continue
            frame = frame.with_column(name, _constant_column(value, n))
        return self._finish(frame, columns, predicate)


def _constant_column(value, n: int) -> Column:
    if isinstance(value, bool) or isinstance(value, str):
        return Column(np.asarray([value] * n, dtype=object))
    if isinstance(value, int):
        return Column(np.full(n, value, dtype=np.int64))
    if isinstance(value, float):
        return Column(np.full(n, value, dtype=np.float64))
    return Column(np.asarray([value] * n, dtype=object))
