"""Byte-range filesystem abstraction: the scan layer's road off localhost.

Every remote-capable format reads through one small protocol,
:class:`ByteRangeFilesystem` (``stat`` / ``list`` / ``read_range`` /
``open_output``), resolved from a URL's scheme exactly like dask's
``open_files`` dispatches on protocol.  Two implementations ship:

- :class:`LocalFilesystem` for plain paths and ``file://`` URLs,
- :class:`InMemoryObjectStore` for ``memory://`` URLs -- the test double
  for an object store, with injectable per-range latency and transient
  failure rates so remote behaviour (latency overlap, retry budgets) is
  exercised hermetically.

On top of the protocol live the pieces every consumer shares: a
pluggable compression-codec registry (gzip built-in), bounded
retry-with-backoff over transient range-read failures, and per-session
:class:`IOCounters` feeding the scheduler's ``ExecutionStats``
(``bytes_read`` / ``ranges_prefetched`` / ``prefetch_hits`` /
``io_retries``).
"""

from __future__ import annotations

import dataclasses
import gzip as _gzip
import os
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple


@dataclasses.dataclass(frozen=True)
class FileStat:
    """What a filesystem knows about one object without reading it."""

    url: str
    size: int
    #: modification time in nanoseconds (object stores use a version
    #: counter); part of the cache-invalidation stat signature.
    mtime_ns: int


class TransientIOError(IOError):
    """A range read failed in a way a retry may fix (the object-store
    analogue of a dropped connection or a 503)."""


class ByteRangeFilesystem:
    """Protocol for random-access byte reads, keyed by URL."""

    scheme = "abstract"

    def stat(self, url: str) -> FileStat:
        raise NotImplementedError

    def list(self, url: str) -> List[str]:
        """URLs directly under a directory/prefix, sorted."""
        raise NotImplementedError

    def read_range(self, url: str, start: int, end: int) -> bytes:
        """Bytes ``[start, end)`` of the object (end clamped to size)."""
        raise NotImplementedError

    def open_output(self, url: str):
        """Binary write handle (context manager) replacing the object."""
        raise NotImplementedError

    def exists(self, url: str) -> bool:
        try:
            self.stat(url)
            return True
        except (OSError, KeyError):
            return False


def local_path(url: str) -> str:
    """Strip a ``file://`` prefix; plain paths pass through."""
    if url.startswith("file://"):
        return url[len("file://"):]
    return url


class LocalFilesystem(ByteRangeFilesystem):
    """The local disk behind the byte-range protocol."""

    scheme = "file"

    def stat(self, url: str) -> FileStat:
        path = local_path(url)
        st = os.stat(path)
        return FileStat(url=url, size=st.st_size, mtime_ns=st.st_mtime_ns)

    def list(self, url: str) -> List[str]:
        path = local_path(url)
        return sorted(os.path.join(path, name) for name in os.listdir(path))

    def read_range(self, url: str, start: int, end: int) -> bytes:
        with open(local_path(url), "rb") as f:
            f.seek(start)
            return f.read(max(0, end - start))

    def open_output(self, url: str):
        path = local_path(url)
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        return open(path, "wb")


class _MemoryOutput:
    """Write handle that publishes into the store atomically on close."""

    def __init__(self, store: "InMemoryObjectStore", key: str):
        self._store = store
        self._key = key
        self._chunks: List[bytes] = []
        self._closed = False

    def write(self, data: bytes) -> int:
        self._chunks.append(bytes(data))
        return len(data)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._store._put(self._key, b"".join(self._chunks))

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class InMemoryObjectStore(ByteRangeFilesystem):
    """A process-local object store for ``memory://`` URLs.

    The "remote" test double: ``latency`` seconds are charged per range
    read, and ``fail_every=N`` makes every Nth range read raise
    :class:`TransientIOError` -- exactly the failure shape the retry
    layer must absorb.  Objects are versioned (``mtime_ns`` bumps on
    every write) so stat signatures invalidate caches like real
    mutation does.
    """

    scheme = "memory"

    def __init__(self):
        self._lock = threading.Lock()
        self._objects: Dict[str, Tuple[bytes, int]] = {}
        self._version = 0
        #: injectable remote behaviour (tests and benchmarks set these).
        self.latency = 0.0
        self.fail_every = 0
        #: total read_range calls answered (failures included).
        self.range_reads = 0
        self._read_count = 0

    @staticmethod
    def _key(url: str) -> str:
        if url.startswith("memory://"):
            return url[len("memory://"):]
        return url.lstrip("/")

    def _put(self, key: str, data: bytes) -> None:
        with self._lock:
            self._version += 1
            self._objects[key] = (data, self._version)

    def reset(self) -> None:
        """Drop every object and injected behaviour (test isolation)."""
        with self._lock:
            self._objects.clear()
            self.latency = 0.0
            self.fail_every = 0
            self.range_reads = 0
            self._read_count = 0

    def stat(self, url: str) -> FileStat:
        key = self._key(url)
        with self._lock:
            if key not in self._objects:
                raise FileNotFoundError(f"memory://{key}")
            data, version = self._objects[key]
        return FileStat(url=url, size=len(data), mtime_ns=version)

    def list(self, url: str) -> List[str]:
        prefix = self._key(url).rstrip("/")
        prefix = prefix + "/" if prefix else ""
        with self._lock:
            keys = sorted(k for k in self._objects if k.startswith(prefix))
        return [f"memory://{k}" for k in keys]

    def read_range(self, url: str, start: int, end: int) -> bytes:
        key = self._key(url)
        with self._lock:
            if key not in self._objects:
                raise FileNotFoundError(f"memory://{key}")
            data, _ = self._objects[key]
            self.range_reads += 1
            self._read_count += 1
            fail = self.fail_every and self._read_count % self.fail_every == 0
            latency = self.latency
        if latency:
            time.sleep(latency)
        if fail:
            raise TransientIOError(
                f"injected failure on range read #{self.range_reads} "
                f"of memory://{key}"
            )
        return data[start:end]

    def open_output(self, url: str):
        return _MemoryOutput(self, self._key(url))


# ---------------------------------------------------------------------------
# Protocol-dispatched resolution (dask's open_files shape).
# ---------------------------------------------------------------------------

_LOCAL = LocalFilesystem()
_MEMORY = InMemoryObjectStore()

_FILESYSTEMS: Dict[str, Callable[[], ByteRangeFilesystem]] = {
    "file": lambda: _LOCAL,
    "memory": lambda: _MEMORY,
}


def memory_store() -> InMemoryObjectStore:
    """The process-global ``memory://`` store (reset it between tests)."""
    return _MEMORY


def register_filesystem(
    scheme: str, factory: Callable[[], ByteRangeFilesystem]
) -> None:
    """Register a scheme -> filesystem factory (third-party stores)."""
    _FILESYSTEMS[str(scheme).lower()] = factory


def url_scheme(url: str) -> Optional[str]:
    """The URL's scheme, or ``None`` for plain local paths."""
    head, sep, _ = url.partition("://")
    if not sep or os.sep in head or "/" in head:
        return None
    return head.lower()


def resolve_filesystem(url: str) -> ByteRangeFilesystem:
    """The filesystem serving ``url`` (plain paths go to local disk)."""
    scheme = url_scheme(url)
    if scheme is None:
        return _LOCAL
    factory = _FILESYSTEMS.get(scheme)
    if factory is None:
        raise ValueError(
            f"no filesystem registered for scheme {scheme!r} "
            f"(known: {sorted(_FILESYSTEMS)})"
        )
    return factory()


def is_remote_url(url: str) -> bool:
    """True when ``url`` is served by a non-local filesystem."""
    scheme = url_scheme(url)
    return scheme is not None and scheme != "file"


# ---------------------------------------------------------------------------
# Compression codecs.
# ---------------------------------------------------------------------------

_CODECS: Dict[str, Tuple[Callable[[bytes], bytes], Callable[[bytes], bytes]]]
_CODECS = {
    "none": (lambda data: data, lambda data: data),
    "gzip": (
        lambda data: _gzip.compress(data, compresslevel=1),
        _gzip.decompress,
    ),
}


def register_codec(
    name: str,
    compress: Callable[[bytes], bytes],
    decompress: Callable[[bytes], bytes],
) -> None:
    _CODECS[str(name).lower()] = (compress, decompress)


def codec_names() -> List[str]:
    return sorted(_CODECS)


def compress_chunk(data: bytes, codec: Optional[str]) -> bytes:
    return _CODECS[str(codec or "none").lower()][0](data)


def decompress_chunk(data: bytes, codec: Optional[str]) -> bytes:
    return _CODECS[str(codec or "none").lower()][1](data)


# ---------------------------------------------------------------------------
# Per-session I/O counters.
# ---------------------------------------------------------------------------


class IOCounters:
    """Thread-safe I/O accounting, diffed into ``ExecutionStats``.

    One instance rides on each :class:`~repro.core.session.Session`
    (created lazily); the scheduler snapshots it around a run so the
    run's stats carry exactly that run's bytes.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self.bytes_read = 0
        self.ranges_prefetched = 0
        self.prefetch_hits = 0
        self.io_retries = 0

    def add(self, *, bytes_read: int = 0, ranges_prefetched: int = 0,
            prefetch_hits: int = 0, io_retries: int = 0) -> None:
        with self._lock:
            self.bytes_read += bytes_read
            self.ranges_prefetched += ranges_prefetched
            self.prefetch_hits += prefetch_hits
            self.io_retries += io_retries

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "bytes_read": self.bytes_read,
                "ranges_prefetched": self.ranges_prefetched,
                "prefetch_hits": self.prefetch_hits,
                "io_retries": self.io_retries,
            }


_COUNTER_LOCK = threading.Lock()
_FALLBACK_COUNTERS = IOCounters()


def session_io_counters(session=None) -> IOCounters:
    """The active session's counters (a shared fallback outside one)."""
    if session is None:
        from repro.core.session import current_session

        try:
            session = current_session()
        except Exception:
            session = None
    if session is None:
        return _FALLBACK_COUNTERS
    counters = getattr(session, "_io_counters", None)
    if counters is None:
        with _COUNTER_LOCK:
            counters = getattr(session, "_io_counters", None)
            if counters is None:
                counters = IOCounters()
                session._io_counters = counters
    return counters


def _retry_policy() -> Tuple[int, float]:
    """(retries, backoff seconds) from the active session's options."""
    from repro.core.session import current_session

    try:
        session = current_session()
        return (
            int(session.get_option("io.retries")),
            float(session.get_option("io.retry_backoff")),
        )
    except Exception:
        return 2, 0.005


def read_range_with_retry(
    fs: ByteRangeFilesystem,
    url: str,
    start: int,
    end: int,
    retries: Optional[int] = None,
    backoff: Optional[float] = None,
    counters: Optional[IOCounters] = None,
) -> bytes:
    """One range read with bounded retry-with-backoff.

    :class:`TransientIOError` is retried up to ``io.retries`` times with
    exponential backoff; exhaustion surfaces as the scheduler's
    :class:`~repro.graph.scheduler.base.ExecutionError` (infrastructure
    failure, not a plan bug).  Successful reads count ``bytes_read``
    once -- prefetch-cache hits never re-enter here.
    """
    if retries is None or backoff is None:
        opt_retries, opt_backoff = _retry_policy()
        retries = opt_retries if retries is None else retries
        backoff = opt_backoff if backoff is None else backoff
    counters = counters or session_io_counters()
    last_error: Optional[Exception] = None
    for attempt in range(int(retries) + 1):
        try:
            data = fs.read_range(url, start, end)
        except TransientIOError as exc:
            last_error = exc
            if attempt < retries:
                counters.add(io_retries=1)
                time.sleep(backoff * (2 ** attempt))
            continue
        counters.add(bytes_read=len(data))
        return data
    from repro.graph.scheduler.base import ExecutionError

    raise ExecutionError(
        f"range read {url!r} [{start}, {end}) failed after "
        f"{int(retries) + 1} attempts: {last_error}"
    ) from last_error
