"""Source registry: format name -> :class:`DataSource`, mirroring
:class:`~repro.backends.engine.EngineRegistry` and
:class:`~repro.graph.scheduler.ExecutorRegistry`.

A :class:`SourceSpec` carries the capability facts the *optimizer*
branches on without touching the filesystem (can projections fold in?
predicates? is the source partitioned at all?); ``create`` instantiates
the source lazily for passes that need real partitions.  Third-party
formats register into :data:`DEFAULT_SOURCES` (or a private registry
handed to the resolving call) exactly like custom engines and executor
strategies do.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, List, Optional

from repro.io.columnar import ColumnarSource
from repro.io.csv_source import CsvSource
from repro.io.dataset import DatasetSource
from repro.io.jsonl import JsonlSource
from repro.io.source import DataSource

#: scan-node arg keys owned by the runtime, not the source constructor.
STRUCTURAL_ARGS = frozenset({
    "format", "path", "columns", "predicate", "partitions",
    "partitions_total", "est_bytes", "read_only_cols", "mutated_cols",
    "stream",
})


@dataclasses.dataclass(frozen=True)
class SourceSpec:
    """Static description of one scan format."""

    format: str
    factory: Callable[..., DataSource]
    supports_projection: bool = False
    supports_predicate: bool = False
    partitioned: bool = False
    description: str = ""

    @classmethod
    def from_source(cls, source_cls, description: str = "") -> "SourceSpec":
        """Derive a spec from a :class:`DataSource` subclass's own
        class-level capability flags."""
        return cls(
            format=source_cls.format_name,
            factory=source_cls,
            supports_projection=source_cls.supports_projection,
            supports_predicate=source_cls.supports_predicate,
            partitioned=source_cls.partitioned,
            description=description,
        )

    def create(self, path: str, metastore=None, **options) -> DataSource:
        return self.factory(path, metastore=metastore, **options)


class SourceRegistry:
    """Format name -> :class:`SourceSpec` lookup."""

    def __init__(self, specs: Iterable[SourceSpec] = ()):
        self._specs: Dict[str, SourceSpec] = {}
        for spec in specs:
            self.register(spec)

    def register(self, spec: SourceSpec, replace: bool = False) -> SourceSpec:
        key = spec.format.lower()
        if key in self._specs and not replace:
            raise ValueError(f"source format {spec.format!r} already registered")
        self._specs[key] = spec
        return spec

    def unregister(self, fmt: str) -> None:
        self._specs.pop(str(fmt).lower(), None)

    def spec(self, fmt: str) -> SourceSpec:
        key = str(fmt).lower()
        if key not in self._specs:
            raise ValueError(
                f"unknown source format {fmt!r}; choose from {self.formats()}"
            )
        return self._specs[key]

    def get(self, fmt: str) -> Optional[SourceSpec]:
        return self._specs.get(str(fmt).lower())

    def formats(self) -> List[str]:
        return sorted(self._specs)

    def __contains__(self, fmt: str) -> bool:
        return str(fmt).lower() in self._specs


#: The stock registry with the four built-in formats.
DEFAULT_SOURCES = SourceRegistry([
    SourceSpec.from_source(
        CsvSource, description="byte-range partitioned CSV file"
    ),
    SourceSpec.from_source(
        JsonlSource, description="byte-range partitioned newline JSON"
    ),
    SourceSpec.from_source(
        DatasetSource, description="hive-style key=value/ directory dataset"
    ),
    SourceSpec.from_source(
        ColumnarSource,
        description="row-group columnar file with per-chunk statistics "
                    "(local or object-store URLs)",
    ),
])


def resolve_source(
    args: dict, metastore=None, registry: Optional[SourceRegistry] = None
) -> DataSource:
    """Instantiate the source a ``scan`` node's args describe.

    Non-structural args (``dtype``, ``parse_dates``, ``partition_bytes``,
    ``nrows``, ...) pass through to the source constructor as options.
    """
    spec = (registry or DEFAULT_SOURCES).spec(args["format"])
    options = {
        k: v for k, v in args.items()
        if k not in STRUCTURAL_ARGS and v is not None
    }
    return spec.create(args["path"], metastore=metastore, **options)


def source_capabilities(fmt: str,
                        registry: Optional[SourceRegistry] = None):
    """The format's spec, or ``None`` for unknown formats (optimizer
    passes treat unknown as "no capabilities": nothing folds in)."""
    return (registry or DEFAULT_SOURCES).get(fmt)
