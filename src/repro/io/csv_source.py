"""The CSV :class:`DataSource`: the seed reader behind a scan boundary.

Wraps :mod:`repro.frame.io_csv` (including its ``scan_partitions``
byte-range chunking, unchanged) in the :class:`~repro.io.source.DataSource`
protocol, so the optimizer can fold projections (``usecols``) and
predicates into the read, and the pruning pass can consult the
metastore's per-partition min/max statistics
(:class:`repro.metastore.stats.PartitionStats`).
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro.frame.io_csv import read_csv, read_header, scan_partitions
from repro.io.source import DataSource, Partition

#: Target bytes of CSV per partition (the Dask backend's scale).
DEFAULT_PARTITION_BYTES = 1 << 20


def attach_file_stats(parts: List[Partition], path: str, metastore) -> None:
    """Fill partition statistics from the metastore, when available.

    Per-partition entries (``FileMetadata.partitions``) must have been
    computed over the *same* byte ranges the source derives -- ranges are
    matched exactly and silently ignored otherwise, so stale chunking
    can never mis-prune.  Exact per-partition min/max enables pruning;
    row/byte estimates feed the scheduler's admission throttle.
    """
    meta = metastore.get(path) if metastore is not None else None
    if meta is None:
        return
    by_range = {
        (p.start, p.end): p for p in meta.partitions
    }
    for part in parts:
        stat = by_range.get(part.byte_range)
        if stat is None:
            continue
        part.est_rows = stat.n_rows
        part.est_bytes = stat.n_bytes
        part.min_values = dict(stat.min_values)
        part.max_values = dict(stat.max_values)


class CsvSource(DataSource):
    """Byte-range partitioned CSV (migrated from the ``io_csv`` path)."""

    format_name = "csv"
    supports_projection = True
    supports_predicate = True
    partitioned = True

    def __init__(self, path: str, metastore=None, **options):
        super().__init__(path, metastore=metastore, **options)
        self.partition_bytes = int(
            options.get("partition_bytes") or DEFAULT_PARTITION_BYTES
        )
        self._schema: Optional[List[str]] = None
        self._full_span: Optional[tuple] = None
        self._parts: Optional[List[Partition]] = None

    def schema(self) -> List[str]:
        if self._schema is None:
            self._schema = read_header(self.path)
        return self._schema

    def full_span(self) -> tuple:
        """The whole data region ``(data_start, file_size)``."""
        if self._full_span is None:
            size = os.path.getsize(self.path)
            with open(self.path, "rb") as f:
                f.readline()  # header
                self._full_span = (f.tell(), size)
        return self._full_span

    def partitions(self) -> List[Partition]:
        if self._parts is not None:
            return self._parts
        if self.options.get("nrows") is not None:
            # A row-limited read is inherently sequential: one partition.
            size = os.path.getsize(self.path)
            parts = [Partition(0, self.path, byte_range=(0, size),
                               est_bytes=size)]
        else:
            n = max(1, os.path.getsize(self.path) // self.partition_bytes)
            ranges = scan_partitions(self.path, int(n))
            parts = [
                Partition(i, self.path, byte_range=rng,
                          est_bytes=rng[1] - rng[0])
                for i, rng in enumerate(ranges)
            ]
            if not parts:  # header-only file: one empty piece
                parts = [Partition(0, self.path, byte_range=(0, 0),
                                   est_bytes=0)]
        attach_file_stats(parts, self.path, self.metastore)
        self._parts = parts
        return parts

    def read_partition(self, partition, columns=None, predicate=None):
        read_cols = self._read_columns(columns, predicate)
        nrows = self.options.get("nrows")
        byte_range = partition.byte_range
        if nrows is not None or byte_range == self.full_span():
            # a single whole-file partition takes the bulk parser path
            byte_range = None
        frame = read_csv(
            self.path,
            usecols=read_cols,
            dtype=self.options.get("dtype"),
            parse_dates=self.options.get("parse_dates"),
            nrows=nrows,
            byte_range=byte_range,
        )
        return self._finish(frame, columns, predicate)

    def estimated_bytes(self, columns=None, partitions=None):
        parts = self.select_partitions(partitions)
        meta = self.metastore.get(self.path) if self.metastore else None
        if meta is not None and meta.columns:
            # width x rows from column statistics, per selected partition.
            names = list(columns) if columns is not None else list(meta.columns)
            width = sum(
                meta.columns[n].avg_width for n in names if n in meta.columns
            )
            rows = sum(
                p.est_rows if p.est_rows is not None
                else _rows_from_bytes(p, meta)
                for p in parts
            )
            return int(width * rows)
        return super().estimated_bytes(columns=columns, partitions=partitions)


def _rows_from_bytes(part: Partition, meta) -> float:
    if part.est_bytes is None or not meta.row_size:
        return 0.0
    return part.est_bytes / max(1.0, meta.row_size)
