"""Scheduler-driven range prefetch: overlap remote latency with compute.

When a parallel strategy plans an execution, it walks the plan's scan
nodes and asks each source for the byte ranges its read will need
(:meth:`prefetch_ranges`); those ranges are fetched on a small shared
pool while earlier nodes run, so a 5 ms-per-range store costs wall
time once, not once per range.

The cache is deliberately narrow:

- entries are keyed ``(url, start, end)`` and consumed *once* -- a scan
  read pops its range (a prefetch hit) or falls through to a direct
  read (a miss); nothing is served twice, so no staleness window exists,
- in-flight fetches are visible: a consumer arriving early waits on the
  fetch instead of issuing a duplicate read,
- completed entries charge a :class:`~repro.memory.manager.TrackedBuffer`
  against the active session's budget and are evicted FIFO past
  ``io.prefetch_budget``; a budget-refused charge drops the data (the
  consumer re-reads) rather than holding untracked bytes,
- :func:`purge_url` abandons a plan's leftovers (pruned partitions,
  failed runs) -- in-flight workers see the flag and discard without
  charging, so nothing leaks.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from repro.io.fs import (
    IOCounters,
    read_range_with_retry,
    resolve_filesystem,
    session_io_counters,
)

#: fetch parallelism: small and shared, like dask's IO pool.
_POOL_WORKERS = 4

_pool: Optional[ThreadPoolExecutor] = None
_pool_lock = threading.Lock()


def _fetch_pool() -> ThreadPoolExecutor:
    global _pool
    with _pool_lock:
        if _pool is None:
            _pool = ThreadPoolExecutor(
                max_workers=_POOL_WORKERS,
                thread_name_prefix="lafp-prefetch",
            )
        return _pool


class _Entry:
    __slots__ = ("event", "data", "error", "buffer", "abandoned")

    def __init__(self):
        self.event = threading.Event()
        self.data: Optional[bytes] = None
        self.error: Optional[Exception] = None
        self.buffer = None
        self.abandoned = False


class RangeCache:
    """In-flight and completed prefetched ranges, consumed at most once."""

    def __init__(self):
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[str, int, int], _Entry]" = \
            OrderedDict()
        self._held_bytes = 0

    # -- producer side ----------------------------------------------------

    def submit(self, url: str, start: int, end: int,
               counters: IOCounters, manager=None,
               budget: Optional[int] = None,
               retries: Optional[int] = None,
               backoff: Optional[float] = None) -> bool:
        """Schedule one range fetch; False when already cached/in-flight."""
        key = (url, int(start), int(end))
        with self._lock:
            if key in self._entries:
                return False
            entry = _Entry()
            self._entries[key] = entry
        counters.add(ranges_prefetched=1)
        _fetch_pool().submit(
            self._fetch, key, entry, counters, manager, budget,
            retries, backoff,
        )
        return True

    def _fetch(self, key, entry: _Entry, counters: IOCounters,
               manager, budget, retries, backoff) -> None:
        url, start, end = key
        try:
            data = read_range_with_retry(
                resolve_filesystem(url), url, start, end,
                retries=retries, backoff=backoff, counters=counters,
            )
        except Exception as exc:  # surfaced to the consumer
            with self._lock:
                if not entry.abandoned:
                    entry.error = exc
            entry.event.set()
            return
        buffer = None
        if manager is not None:
            from repro.memory.manager import (
                SimulatedMemoryError,
                TrackedBuffer,
            )

            try:
                buffer = TrackedBuffer(len(data), manager=manager)
            except SimulatedMemoryError:
                # over budget: drop the prefetch (consumer re-reads)
                # instead of holding bytes the manager can't see.
                with self._lock:
                    self._entries.pop(key, None)
                entry.event.set()
                return
        with self._lock:
            if entry.abandoned:
                if buffer is not None:
                    buffer.release()
            else:
                entry.data = data
                entry.buffer = buffer
                self._held_bytes += len(data)
                self._evict_past(budget)
        entry.event.set()

    def _evict_past(self, budget: Optional[int]) -> None:
        """FIFO-evict completed entries past the byte budget (locked)."""
        if budget is None:
            return
        for key in list(self._entries):
            if self._held_bytes <= budget:
                break
            entry = self._entries[key]
            if entry.data is None:
                continue  # in-flight: never evicted
            del self._entries[key]
            self._held_bytes -= len(entry.data)
            if entry.buffer is not None:
                entry.buffer.release()

    # -- consumer side ----------------------------------------------------

    def consume(self, url: str, start: int, end: int) -> Optional[bytes]:
        """Pop a prefetched range (waiting on an in-flight fetch), or
        ``None`` on a miss.  A fetch that failed re-raises its error."""
        key = (url, int(start), int(end))
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
        entry.event.wait()
        with self._lock:
            if self._entries.get(key) is not entry:
                return None  # evicted/purged while we waited
            del self._entries[key]
            data, error, buffer = entry.data, entry.error, entry.buffer
            if data is not None:
                self._held_bytes -= len(data)
        if buffer is not None:
            buffer.release()
        if error is not None:
            raise error
        return data

    # -- lifecycle --------------------------------------------------------

    def purge_url(self, url: str) -> None:
        """Drop every entry of ``url``; in-flight fetches are abandoned
        (their workers discard the data without charging a buffer)."""
        with self._lock:
            for key in [k for k in self._entries if k[0] == url]:
                entry = self._entries.pop(key)
                entry.abandoned = True
                if entry.data is not None:
                    self._held_bytes -= len(entry.data)
                    if entry.buffer is not None:
                        entry.buffer.release()

    def clear(self) -> None:
        with self._lock:
            urls = {key[0] for key in self._entries}
        for url in urls:
            self.purge_url(url)

    def pending_count(self) -> int:
        with self._lock:
            return len(self._entries)


_CACHE = RangeCache()


def range_cache() -> RangeCache:
    return _CACHE


def fetch_range(url: str, start: int, end: int,
                counters: Optional[IOCounters] = None) -> bytes:
    """Consumer entry point: prefetched bytes when available, a direct
    (retried, counted) read otherwise."""
    counters = counters or session_io_counters()
    data = _CACHE.consume(url, start, end)
    if data is not None:
        counters.add(prefetch_hits=1)
        return data
    return read_range_with_retry(
        resolve_filesystem(url), url, start, end, counters=counters
    )


def prefetch_scan_node(node, session=None) -> List[str]:
    """Issue prefetches for one ``scan`` node's byte ranges.

    Asks the node's source for ``prefetch_ranges`` (sources without the
    hook -- whole-file text formats -- simply don't prefetch) and
    schedules each range against the active session's budget.  Returns
    the URLs touched so the scheduler can purge leftovers after the run.
    """
    args = node.args
    try:
        from repro.core.session import current_session
        from repro.io.predicate import Predicate
        from repro.io.registry import resolve_source

        session = session or current_session()
        if not session.get_option("io.prefetch"):
            return []
        source = resolve_source(args, metastore=session.metastore)
        hook = getattr(source, "prefetch_ranges", None)
        if hook is None:
            return []
        ranges = hook(
            columns=args.get("columns"),
            predicate=Predicate.from_arg(args.get("predicate")),
            partitions=args.get("partitions"),
        )
    except Exception:
        return []  # prefetch is an optimization: never fail the plan
    if not ranges:
        return []
    counters = session_io_counters(session)
    budget = session.get_option("io.prefetch_budget")
    retries = int(session.get_option("io.retries"))
    backoff = float(session.get_option("io.retry_backoff"))
    manager = session.memory
    urls = []
    for url, start, end in ranges:
        _CACHE.submit(url, start, end, counters, manager=manager,
                      budget=budget, retries=retries, backoff=backoff)
        if url not in urls:
            urls.append(url)
    return urls
