"""The LaFP source layer: pluggable scan formats behind one protocol.

Structure (mirrors the engine and scheduler subsystems):

- :mod:`repro.io.source`    -- the :class:`DataSource` protocol and
  :class:`Partition` (per-piece statistics: row/byte estimates, exact
  min/max/null counts, hive key values),
- :mod:`repro.io.registry`  -- :class:`SourceRegistry` +
  :data:`DEFAULT_SOURCES` (csv / jsonl / dataset / columnar),
- :mod:`repro.io.predicate` -- the serializable predicate fragment both
  the optimizer and the sources understand (AND/OR/NOT with
  three-valued statistics proofs),
- :mod:`repro.io.api`       -- ``scan_csv`` / ``scan_jsonl`` /
  ``scan_dataset`` / ``scan_columnar`` / ``from_pandas`` building
  LazyFrames over ``scan`` nodes,
- :mod:`repro.io.fs`        -- the :class:`ByteRangeFilesystem`
  protocol (``file://`` / ``memory://``), compression codecs, retried
  range reads, and per-session :class:`IOCounters`,
- :mod:`repro.io.prefetch`  -- the scheduler-driven range prefetch
  cache overlapping remote latency with compute,
- :mod:`repro.io.columnar`  -- the ``.lfc`` columnar container format
  and its chunk-pruning :class:`ColumnarSource`,
- :mod:`repro.io.spill`     -- :class:`PartitionStream` (streaming
  scans) and :class:`ShuffleStore` (spillable hash buckets) backing the
  shuffle operators,
- format modules            -- :mod:`~repro.io.csv_source`,
  :mod:`~repro.io.jsonl`, :mod:`~repro.io.dataset`.
"""

from repro.io.columnar import (
    ColumnarSource,
    read_columnar_footer,
    write_columnar,
)
from repro.io.csv_source import CsvSource
from repro.io.dataset import DatasetSource, write_dataset
from repro.io.fs import (
    ByteRangeFilesystem,
    FileStat,
    InMemoryObjectStore,
    IOCounters,
    LocalFilesystem,
    TransientIOError,
    memory_store,
    register_codec,
    register_filesystem,
    resolve_filesystem,
    session_io_counters,
)
from repro.io.jsonl import JsonlSource, read_jsonl, write_jsonl
from repro.io.predicate import Predicate, conjuncts_from_mask
from repro.io.prefetch import fetch_range, prefetch_scan_node, range_cache
from repro.io.registry import (
    DEFAULT_SOURCES,
    SourceRegistry,
    SourceSpec,
    resolve_source,
    source_capabilities,
)
from repro.io.source import DataSource, Partition
from repro.io.spill import PartitionStream, ShuffleStore

__all__ = [
    "ByteRangeFilesystem",
    "ColumnarSource",
    "CsvSource",
    "DEFAULT_SOURCES",
    "DataSource",
    "DatasetSource",
    "FileStat",
    "IOCounters",
    "InMemoryObjectStore",
    "JsonlSource",
    "LocalFilesystem",
    "Partition",
    "PartitionStream",
    "Predicate",
    "ShuffleStore",
    "SourceRegistry",
    "SourceSpec",
    "TransientIOError",
    "conjuncts_from_mask",
    "fetch_range",
    "memory_store",
    "prefetch_scan_node",
    "range_cache",
    "read_columnar_footer",
    "read_jsonl",
    "register_codec",
    "register_filesystem",
    "resolve_filesystem",
    "resolve_source",
    "session_io_counters",
    "source_capabilities",
    "write_columnar",
    "write_dataset",
    "write_jsonl",
]
