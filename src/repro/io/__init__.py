"""The LaFP source layer: pluggable scan formats behind one protocol.

Structure (mirrors the engine and scheduler subsystems):

- :mod:`repro.io.source`    -- the :class:`DataSource` protocol and
  :class:`Partition` (per-piece statistics: row/byte estimates, exact
  min/max, hive key values),
- :mod:`repro.io.registry`  -- :class:`SourceRegistry` +
  :data:`DEFAULT_SOURCES` (csv / jsonl / dataset),
- :mod:`repro.io.predicate` -- the serializable predicate fragment both
  the optimizer and the sources understand,
- :mod:`repro.io.api`       -- ``scan_csv`` / ``scan_jsonl`` /
  ``scan_dataset`` / ``from_pandas`` building LazyFrames over ``scan``
  nodes,
- :mod:`repro.io.spill`     -- :class:`PartitionStream` (streaming
  scans) and :class:`ShuffleStore` (spillable hash buckets) backing the
  shuffle operators,
- format modules            -- :mod:`~repro.io.csv_source`,
  :mod:`~repro.io.jsonl`, :mod:`~repro.io.dataset`.
"""

from repro.io.csv_source import CsvSource
from repro.io.dataset import DatasetSource, write_dataset
from repro.io.jsonl import JsonlSource, read_jsonl, write_jsonl
from repro.io.predicate import Predicate, conjuncts_from_mask
from repro.io.registry import (
    DEFAULT_SOURCES,
    SourceRegistry,
    SourceSpec,
    resolve_source,
    source_capabilities,
)
from repro.io.source import DataSource, Partition
from repro.io.spill import PartitionStream, ShuffleStore

__all__ = [
    "CsvSource",
    "DEFAULT_SOURCES",
    "DataSource",
    "DatasetSource",
    "JsonlSource",
    "Partition",
    "PartitionStream",
    "Predicate",
    "ShuffleStore",
    "SourceRegistry",
    "SourceSpec",
    "conjuncts_from_mask",
    "read_jsonl",
    "resolve_source",
    "source_capabilities",
    "write_dataset",
    "write_jsonl",
]
