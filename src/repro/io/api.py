"""Top-level scan constructors: LazyFrames rooted at generic ``scan``
nodes.

``repro.scan_csv() / scan_jsonl() / scan_dataset()`` are the unified
ingress: each returns a :class:`~repro.core.lazyframe.LazyFrame` whose
root is a ``scan`` node carrying the format name, the path, and the
format's read options.  The optimizer folds projections and predicates
into those args when the format's registry spec says the source can
execute them, and the pruning pass drops partitions whose statistics
provably fail the folded predicate; backends resolve the args back into
a :class:`~repro.io.source.DataSource` at execution time.

``scan_source()`` is the generic spelling custom formats use after
registering a :class:`~repro.io.registry.SourceSpec`.  ``from_pandas()``
wraps an already materialized eager frame.
"""

from __future__ import annotations

import os
from typing import Optional, Sequence

from repro.core.lazyframe import LazyFrame
from repro.core.session import current_session
from repro.graph.node import Node
from repro.io.registry import DEFAULT_SOURCES, resolve_source


def scan_source(
    fmt: str,
    path: str,
    usecols: Optional[Sequence[str]] = None,
    index_col: Optional[str] = None,
    **options,
) -> LazyFrame:
    """A LazyFrame scanning ``path`` through the ``fmt`` source.

    ``usecols`` seeds the scan's projection (the optimizer narrows it
    further); other keyword options (``dtype``, ``parse_dates``,
    ``nrows``, ``partition_bytes``, ...) travel to the source
    constructor.  ``index_col`` is realized as a ``set_index`` node
    after the scan, so sources stay index-free.
    """
    session = current_session()
    args = {"format": str(fmt), "path": path}
    if usecols is not None:
        args["columns"] = list(usecols)
    for key, value in options.items():
        if value is not None:
            args[key] = value
    node = Node("scan", args=args, label=f"scan_{fmt} {path}")
    columns = _static_schema(args, session)
    frame = LazyFrame(session.register(node), session, columns=columns)
    if index_col is not None:
        frame = frame.set_index(index_col)
    return frame


def _static_schema(args: dict, session) -> Optional[list]:
    """Best-effort column tracking at graph-build time (never fatal)."""
    try:
        source = resolve_source(args, metastore=session.metastore)
        schema = source.schema()
    except Exception:  # noqa: BLE001 - missing file, unknown format, ...
        return None
    if args.get("columns") is not None:
        wanted = set(args["columns"])
        return [c for c in schema if c in wanted]
    return list(schema)


def scan_csv(
    path: str,
    usecols: Optional[Sequence[str]] = None,
    dtype: Optional[dict] = None,
    parse_dates: Optional[Sequence[str]] = None,
    nrows: Optional[int] = None,
    index_col: Optional[str] = None,
    partition_bytes: Optional[int] = None,
    read_only_cols: Optional[Sequence[str]] = None,
    mutated_cols: Optional[Sequence[str]] = None,
) -> LazyFrame:
    """Lazy CSV scan (the ``read_csv`` path behind the source protocol)."""
    return scan_source(
        "csv", path, usecols=usecols, index_col=index_col,
        dtype=dict(dtype) if dtype else None,
        parse_dates=list(parse_dates) if parse_dates else None,
        nrows=nrows, partition_bytes=partition_bytes,
        read_only_cols=list(read_only_cols) if read_only_cols else None,
        mutated_cols=list(mutated_cols) if mutated_cols else None,
    )


def scan_jsonl(
    path: str,
    usecols: Optional[Sequence[str]] = None,
    dtype: Optional[dict] = None,
    parse_dates: Optional[Sequence[str]] = None,
    nrows: Optional[int] = None,
    index_col: Optional[str] = None,
    partition_bytes: Optional[int] = None,
) -> LazyFrame:
    """Lazy newline-delimited-JSON scan."""
    return scan_source(
        "jsonl", path, usecols=usecols, index_col=index_col,
        dtype=dict(dtype) if dtype else None,
        parse_dates=list(parse_dates) if parse_dates else None,
        nrows=nrows, partition_bytes=partition_bytes,
    )


def scan_dataset(
    path: str,
    usecols: Optional[Sequence[str]] = None,
    dtype: Optional[dict] = None,
    parse_dates: Optional[Sequence[str]] = None,
    index_col: Optional[str] = None,
) -> LazyFrame:
    """Lazy scan of a hive-style ``key=value/`` partitioned dataset."""
    return scan_source(
        "dataset", path, usecols=usecols, index_col=index_col,
        dtype=dict(dtype) if dtype else None,
        parse_dates=list(parse_dates) if parse_dates else None,
    )


def scan_columnar(
    path: str,
    usecols: Optional[Sequence[str]] = None,
    parse_dates: Optional[Sequence[str]] = None,
    index_col: Optional[str] = None,
) -> LazyFrame:
    """Lazy scan of a columnar (``.lfc``) file, local or remote URL.

    Dtypes come from the footer, so there is no ``dtype`` surface --
    the file already knows.  ``parse_dates`` converts string columns
    that were *written* as strings (e.g. from a CSV round-trip) into
    datetimes, matching ``read_csv`` semantics.
    """
    return scan_source(
        "columnar", path, usecols=usecols, index_col=index_col,
        parse_dates=list(parse_dates) if parse_dates else None,
    )


def from_pandas(frame) -> LazyFrame:
    """Wrap an eager frame into the lazy graph.

    The frame enters as a source node; the session's backend converts it
    into its own representation (partitioned on Dask/Modin) on first
    execution.
    """
    session = current_session()
    node = Node("from_pandas", args={"frame": frame}, label="from_pandas")
    columns = list(getattr(frame, "columns", None) or []) or None
    return LazyFrame(session.register(node), session, columns=columns)


def sibling_variant(csv_path: str, fmt: str) -> Optional[str]:
    """The on-disk variant of ``csv_path`` in another physical format.

    The naming convention shared with the workload generator: ``x.csv``
    has a JSONL sibling ``x.jsonl``, a hive-partitioned sibling
    directory ``x_hive/``, and a columnar sibling ``x.lfc``.  Returns
    ``None`` when the variant does not exist (callers fall back to the
    CSV).
    """
    stem, ext = os.path.splitext(csv_path)
    if ext != ".csv":
        return None
    if fmt == "jsonl":
        candidate = stem + ".jsonl"
        return candidate if os.path.isfile(candidate) else None
    if fmt == "dataset":
        candidate = stem + "_hive"
        return candidate if os.path.isdir(candidate) else None
    if fmt == "columnar":
        candidate = stem + ".lfc"
        return candidate if os.path.isfile(candidate) else None
    return None


__all__ = [
    "DEFAULT_SOURCES",
    "from_pandas",
    "scan_columnar",
    "scan_csv",
    "scan_dataset",
    "scan_jsonl",
    "scan_source",
    "sibling_variant",
]
