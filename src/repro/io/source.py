"""The :class:`DataSource` protocol: what every scan format plugs into.

A source owns one dataset (a file, a directory, an in-memory table) and
exposes exactly what the lazy runtime negotiates at the scan boundary:

- ``schema()``             -- output column names, in order,
- ``partitions()``         -- the independently readable pieces, each
                              carrying whatever statistics are known
                              (row/byte estimates, exact per-column
                              min/max, hive key values),
- capability flags         -- ``supports_projection`` (the source can
                              materialize only requested columns),
                              ``supports_predicate`` (it can filter rows
                              while reading), ``partitioned`` (it splits
                              into more than one piece),
- ``scan(...)``            -- an iterator of eager per-partition frames,
                              after projection and predicate are applied.

The optimizer folds pushdown *into* a ``scan`` node's args only when the
source's flags say the fold is executable; partition pruning consults
``Partition`` statistics; the threaded scheduler's admission throttle
consumes ``estimated_bytes``.  Formats register in
:mod:`repro.io.registry`, mirroring the engine and executor registries.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.frame import DataFrame
from repro.frame.column import Column
from repro.io.predicate import Predicate, required_read_columns


@dataclasses.dataclass
class Partition:
    """One independently readable piece of a source.

    Statistics are optional and *trusted*: ``min_values`` / ``max_values``
    must be exact over the whole partition (pruning proves emptiness with
    them), and ``key_values`` are hive-style constants every row of the
    partition carries.  ``est_rows`` / ``est_bytes`` are estimates and
    only feed scheduling, never correctness.
    """

    index: int
    path: str
    byte_range: Optional[Tuple[int, int]] = None
    key_values: Dict[str, object] = dataclasses.field(default_factory=dict)
    est_rows: Optional[int] = None
    est_bytes: Optional[int] = None
    min_values: Dict[str, float] = dataclasses.field(default_factory=dict)
    max_values: Dict[str, float] = dataclasses.field(default_factory=dict)
    #: exact per-column NA counts, where the source records them
    #: (columnar footers, full-range text stats).  Consulted by the
    #: null-aware ``!=`` proof; an absent column means "unknown".
    null_counts: Dict[str, int] = dataclasses.field(default_factory=dict)


class DataSource:
    """Base class for pluggable scan formats."""

    format_name = "abstract"
    supports_projection = False
    supports_predicate = False
    partitioned = False

    def __init__(self, path: str, metastore=None, **options):
        self.path = path
        self.metastore = metastore
        self.options = options

    # -- protocol ---------------------------------------------------------

    def schema(self) -> List[str]:
        """Output column names in order (projection subsets preserve it)."""
        raise NotImplementedError

    def partitions(self) -> List[Partition]:
        """The source's pieces, with whatever statistics are available."""
        raise NotImplementedError

    def read_partition(
        self,
        partition: Partition,
        columns: Optional[Sequence[str]] = None,
        predicate: Optional[Predicate] = None,
    ) -> DataFrame:
        """One partition as an eager frame, projected and filtered."""
        raise NotImplementedError

    # -- shared behaviour -------------------------------------------------

    def scan(
        self,
        columns: Optional[Sequence[str]] = None,
        predicate: Optional[Predicate] = None,
        partitions: Optional[Sequence[int]] = None,
    ) -> Iterator[DataFrame]:
        """Iterate eager frames for the selected partitions.

        ``partitions`` names partition *indices* to read (the optimizer's
        pruning pass narrows this); ``None`` reads everything.
        """
        for part in self.select_partitions(partitions):
            yield self.read_partition(part, columns=columns,
                                      predicate=predicate)

    def select_partitions(
        self, partitions: Optional[Sequence[int]] = None
    ) -> List[Partition]:
        parts = self.partitions()
        if partitions is None:
            return parts
        keep = set(partitions)
        return [p for p in parts if p.index in keep]

    def empty_frame(
        self,
        columns: Optional[Sequence[str]] = None,
        predicate: Optional[Predicate] = None,
    ) -> DataFrame:
        """Zero-row frame with the dtypes a real read produces.

        Used when every partition was pruned away: the unpruned run
        would have read typed columns and filtered them all out, so the
        pruned run must not degrade them to object.  Reading one
        partition (with the predicate that pruned it -- provably
        matching nothing) reproduces those dtypes exactly; only a
        source with no readable partition falls back to untyped empty
        columns."""
        try:
            parts = self.partitions()
        except OSError:
            parts = []
        if parts:
            frame = self.read_partition(parts[0], columns=columns,
                                        predicate=predicate)
            return frame.take(np.arange(0))
        names = list(columns) if columns is not None else self.schema()
        return DataFrame.from_columns({
            name: Column(np.array([], dtype=object)) for name in names
        })

    def estimated_bytes(
        self,
        columns: Optional[Sequence[str]] = None,
        partitions: Optional[Sequence[int]] = None,
    ) -> Optional[int]:
        """Predicted in-memory bytes of scanning (post-projection,
        post-pruning); ``None`` when nothing is known.  Default: sum of
        per-partition estimates, scaled by the projected column fraction
        (the width x rows heuristic -- per-column widths live in the
        metastore and refine this in the concrete sources)."""
        parts = self.select_partitions(partitions)
        known = [p.est_bytes for p in parts if p.est_bytes is not None]
        if not known:
            return None
        total = sum(known)
        if columns is not None:
            schema = self.schema()
            if schema:
                total = int(total * max(1, len(columns)) / len(schema))
        return total

    # -- helpers for subclasses -------------------------------------------

    def _finish(
        self,
        frame: DataFrame,
        columns: Optional[Sequence[str]],
        predicate: Optional[Predicate],
    ) -> DataFrame:
        """Apply the scan contract to a freshly read frame: filter rows
        first (the mask may need columns the projection drops), then
        project to the requested columns.  Output preserves the source's
        physical column order (the ``read_csv``/pandas ``usecols``
        convention), not the request order."""
        if predicate is not None:
            frame = predicate.filter(frame)
        if columns is not None:
            keep = set(columns)
            wanted = [c for c in frame.columns if c in keep]
            if wanted != list(frame.columns):
                frame = frame[wanted]
        return frame

    def _read_columns(
        self,
        columns: Optional[Sequence[str]],
        predicate: Optional[Predicate],
    ) -> Optional[List[str]]:
        """Physical columns the read must materialize (projection plus
        predicate columns)."""
        return required_read_columns(columns, predicate, self.schema())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.path!r}>"
