"""The LaFP columnar container format (``.lfc``) and its scan source.

Layout (single file, readable over any :class:`ByteRangeFilesystem`)::

    MAGIC | chunk payloads ... | footer JSON | u64 footer length | MAGIC

Rows are split into **row groups**; each group stores one contiguous
**chunk** per column (numeric/bool/datetime as raw fixed-width bytes,
strings dictionary-encoded as int32 codes with the dictionary in the
footer, anything else as JSON), optionally compressed per chunk.  The
JSON footer carries, per chunk: its byte extent, encoding, dtype, and
exact ``min`` / ``max`` / ``null_count`` statistics.

That footer is why the format exists: projection fetches only the byte
ranges of requested columns, and the per-chunk statistics are *proof
grade* (computed from every value at write time), so the predicate
layer's three-valued proofs can skip whole chunks without reading them
-- bytes pruned, not just parse work.  The same stats feed partition
pruning, byte estimates, footer-derived schemas, and cache stat
signatures; no sampling, no guessing.
"""

from __future__ import annotations

import json
import struct
import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.frame import DataFrame
from repro.frame.column import Column
from repro.io.fs import (
    compress_chunk,
    decompress_chunk,
    read_range_with_retry,
    resolve_filesystem,
)
from repro.io.prefetch import fetch_range
from repro.io.source import DataSource, Partition

MAGIC = b"LAFC0001"
FORMAT_VERSION = 1
#: footer length (u64) + trailing magic.
TAIL_BYTES = 8 + len(MAGIC)
#: default rows per row group (callers shrink it for small files).
DEFAULT_ROW_GROUP_ROWS = 1 << 16


# ---------------------------------------------------------------------------
# Writing.
# ---------------------------------------------------------------------------


def _scalar(value):
    """JSON-ready stat value (numpy scalars unwrapped)."""
    if value is None:
        return None
    if isinstance(value, np.generic):
        return value.item()
    return value


def _encode_chunk(arr: np.ndarray, codec: Optional[str]) -> Tuple[bytes, dict]:
    """One column slice -> (compressed payload, chunk metadata)."""
    kind = arr.dtype.kind
    meta: Dict[str, object] = {
        "codec": (codec or "none"),
        "min": None,
        "max": None,
        "null_count": 0,
    }
    if kind in "iub":
        payload = arr.tobytes()
        meta.update(encoding="raw", dtype=str(arr.dtype),
                    mem_bytes=int(arr.nbytes))
        if len(arr):
            meta["min"] = _scalar(arr.min())
            meta["max"] = _scalar(arr.max())
    elif kind == "f":
        payload = arr.tobytes()
        nulls = int(np.isnan(arr).sum())
        valid = arr[~np.isnan(arr)] if nulls else arr
        meta.update(encoding="raw", dtype=str(arr.dtype),
                    mem_bytes=int(arr.nbytes), null_count=nulls)
        if len(valid):
            meta["min"] = _scalar(valid.min())
            meta["max"] = _scalar(valid.max())
    elif kind == "M":
        as_ns = arr.astype("datetime64[ns]")
        payload = as_ns.view("int64").tobytes()
        # datetimes travel as int64 ns; no min/max -- predicate literals
        # are JSON scalars and a numeric proof over timestamps would be
        # comparing different domains.
        meta.update(encoding="raw", dtype="datetime64[ns]",
                    mem_bytes=int(arr.nbytes),
                    null_count=int(np.isnat(arr).sum()))
    else:
        values = list(arr)
        if all(isinstance(v, str) or _is_null(v) for v in values):
            payload, dict_meta = _encode_dictionary(values)
            meta.update(dict_meta)
        else:
            cleaned = [None if _is_null(v) else v for v in values]
            payload = json.dumps(cleaned).encode("utf-8")
            meta.update(
                encoding="json", dtype="object",
                mem_bytes=len(payload),
                null_count=sum(1 for v in cleaned if v is None),
            )
    return compress_chunk(payload, codec), meta


def _is_null(value) -> bool:
    return value is None or (isinstance(value, float) and np.isnan(value))


def _encode_dictionary(values: List[object]) -> Tuple[bytes, dict]:
    categories: List[str] = []
    index: Dict[str, int] = {}
    codes = np.empty(len(values), dtype=np.int32)
    nulls = 0
    for i, value in enumerate(values):
        if _is_null(value):
            codes[i] = -1
            nulls += 1
            continue
        code = index.get(value)
        if code is None:
            code = len(categories)
            index[value] = code
            categories.append(value)
        codes[i] = code
    meta = {
        "encoding": "dict",
        "dtype": "object",
        "dict": categories,
        "null_count": nulls,
        "mem_bytes": int(codes.nbytes) + sum(len(c) for c in categories),
    }
    if categories:
        meta["min"] = min(categories)
        meta["max"] = max(categories)
    return codes.tobytes(), meta


def write_columnar(
    frame: DataFrame,
    url: str,
    row_group_rows: Optional[int] = None,
    codec: Optional[str] = None,
) -> str:
    """Write an eager frame as a columnar file at ``url`` (any scheme)."""
    fs = resolve_filesystem(url)
    names = list(frame.columns)
    n_rows = len(frame)
    group_rows = max(1, int(row_group_rows or DEFAULT_ROW_GROUP_ROWS))
    arrays = {}
    column_meta = []
    for name in names:
        col = frame.column(name)
        arr = col.to_array() if col.is_category else col.values
        arrays[name] = arr
        kind = arr.dtype.kind
        if kind in "iubf":
            dtype = str(arr.dtype)
        elif kind == "M":
            dtype = "datetime64[ns]"
        else:
            dtype = "object"
        column_meta.append({"name": name, "dtype": dtype})
    row_groups = []
    with fs.open_output(url) as out:
        out.write(MAGIC)
        offset = len(MAGIC)
        for start in range(0, n_rows, group_rows):
            stop = min(n_rows, start + group_rows)
            chunks = {}
            for name in names:
                payload, meta = _encode_chunk(arrays[name][start:stop], codec)
                out.write(payload)
                meta["offset"] = offset
                meta["length"] = len(payload)
                offset += len(payload)
                chunks[name] = meta
            row_groups.append({"n_rows": stop - start, "chunks": chunks})
        footer = {
            "version": FORMAT_VERSION,
            "n_rows": n_rows,
            "columns": column_meta,
            "row_groups": row_groups,
        }
        footer_bytes = json.dumps(footer).encode("utf-8")
        out.write(footer_bytes)
        out.write(struct.pack("<Q", len(footer_bytes)))
        out.write(MAGIC)
    return url


# ---------------------------------------------------------------------------
# Footer loading (cached per object version).
# ---------------------------------------------------------------------------

_FOOTER_LOCK = threading.Lock()
#: url -> ((size, mtime_ns), footer); old versions evict by key reuse.
_FOOTER_CACHE: Dict[str, Tuple[Tuple[int, int], dict]] = {}


def read_columnar_footer(url: str) -> dict:
    """The file's footer dict, cached per (size, version) stat signature
    -- a mutated object re-reads, an unchanged one costs zero ranges."""
    fs = resolve_filesystem(url)
    st = fs.stat(url)
    signature = (st.size, st.mtime_ns)
    with _FOOTER_LOCK:
        cached = _FOOTER_CACHE.get(url)
        if cached is not None and cached[0] == signature:
            return cached[1]
    if st.size < len(MAGIC) + TAIL_BYTES:
        raise ValueError(f"{url!r} is not a columnar file (too small)")
    tail = read_range_with_retry(fs, url, st.size - TAIL_BYTES, st.size)
    if tail[8:] != MAGIC:
        raise ValueError(f"{url!r} is not a columnar file (bad magic)")
    (footer_len,) = struct.unpack("<Q", tail[:8])
    footer_start = st.size - TAIL_BYTES - footer_len
    if footer_start < len(MAGIC):
        raise ValueError(f"{url!r} has a corrupt footer length")
    raw = read_range_with_retry(fs, url, footer_start, footer_start + footer_len)
    footer = json.loads(raw.decode("utf-8"))
    if footer.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"{url!r}: unsupported columnar version {footer.get('version')!r}"
        )
    with _FOOTER_LOCK:
        _FOOTER_CACHE[url] = (signature, footer)
    return footer


# ---------------------------------------------------------------------------
# Chunk decoding.
# ---------------------------------------------------------------------------


def _decode_chunk(data: bytes, meta: dict, n_rows: int) -> Column:
    data = decompress_chunk(data, meta.get("codec"))
    encoding = meta["encoding"]
    if encoding == "raw":
        dtype = meta["dtype"]
        if dtype == "datetime64[ns]":
            arr = np.frombuffer(data, dtype="int64").copy()
            return Column(arr.view("datetime64[ns]"))
        return Column(np.frombuffer(data, dtype=dtype).copy())
    if encoding == "dict":
        codes = np.frombuffer(data, dtype=np.int32)
        categories = meta.get("dict") or []
        out = np.empty(n_rows, dtype=object)
        cat_arr = np.asarray(categories, dtype=object)
        valid = codes >= 0
        if categories:
            out[valid] = cat_arr[codes[valid]]
        out[~valid] = None
        return Column(out)
    if encoding == "json":
        values = json.loads(data.decode("utf-8"))
        out = np.empty(n_rows, dtype=object)
        out[:] = values
        return Column(out)
    raise ValueError(f"unknown chunk encoding {encoding!r}")


def _empty_column(dtype: str) -> Column:
    if dtype == "object":
        return Column(np.array([], dtype=object))
    return Column(np.array([], dtype=dtype))


def _parse_datetime_column(col: Column) -> Column:
    """String chunk -> datetime64, matching ``read_csv(parse_dates=...)``."""
    values = col.to_array()
    cleaned = [
        "NaT" if (v is None or v == "") else str(v) for v in values
    ]
    return Column(np.asarray(cleaned, dtype="datetime64[ns]"))


# ---------------------------------------------------------------------------
# The scan source.
# ---------------------------------------------------------------------------


class ColumnarSource(DataSource):
    """Row-group partitioned columnar files, local or remote.

    Every negotiation the scan boundary offers is answered from the
    footer alone: schema and dtypes, one :class:`Partition` per row
    group carrying exact per-column min/max/null-count, byte estimates
    from in-memory chunk sizes, and the ranges a read will fetch (the
    scheduler's prefetch hook).  ``read_partition`` fetches only the
    projected+predicate columns' chunks and answers a provably-empty
    predicate with a typed empty frame -- zero ranges fetched.
    """

    format_name = "columnar"
    supports_projection = True
    supports_predicate = True
    partitioned = True

    def __init__(self, path: str, metastore=None, **options):
        super().__init__(path, metastore=metastore, **options)
        self._footer: Optional[dict] = None
        self._parts: Optional[List[Partition]] = None

    # -- footer-backed protocol ------------------------------------------

    def footer(self) -> dict:
        if self._footer is None:
            self._footer = read_columnar_footer(self.path)
        return self._footer

    def schema(self) -> List[str]:
        return [c["name"] for c in self.footer()["columns"]]

    def dtypes(self) -> Dict[str, str]:
        """Column dtypes straight from the footer (no inference)."""
        return {c["name"]: c["dtype"] for c in self.footer()["columns"]}

    def partitions(self) -> List[Partition]:
        if self._parts is not None:
            return self._parts
        parts = []
        for index, group in enumerate(self.footer()["row_groups"]):
            chunks = group["chunks"]
            min_values, max_values, null_counts = {}, {}, {}
            est_bytes = 0
            start = None
            end = None
            for name, meta in chunks.items():
                if meta.get("min") is not None:
                    min_values[name] = meta["min"]
                if meta.get("max") is not None:
                    max_values[name] = meta["max"]
                null_counts[name] = int(meta.get("null_count", 0))
                est_bytes += int(meta.get("mem_bytes", meta["length"]))
                chunk_end = meta["offset"] + meta["length"]
                start = meta["offset"] if start is None \
                    else min(start, meta["offset"])
                end = chunk_end if end is None else max(end, chunk_end)
            parts.append(Partition(
                index=index,
                path=self.path,
                byte_range=(start, end) if start is not None else None,
                est_rows=group["n_rows"],
                est_bytes=est_bytes,
                min_values=min_values,
                max_values=max_values,
                null_counts=null_counts,
            ))
        self._parts = parts
        return parts

    # -- reading ----------------------------------------------------------

    def read_partition(self, partition, columns=None, predicate=None):
        group = self.footer()["row_groups"][partition.index]
        wanted = self._read_columns(columns, predicate)
        if wanted is None:
            wanted = self.schema()
        if predicate is not None and not predicate.may_match(partition):
            # chunk skip: the stats prove no row matches; zero fetches.
            return self._typed_empty(columns)
        parse_set = set(self.options.get("parse_dates") or [])
        chunks = group["chunks"]
        out: Dict[str, Column] = {}
        for name in wanted:
            meta = chunks[name]
            data = fetch_range(
                self.path, meta["offset"], meta["offset"] + meta["length"]
            )
            col = _decode_chunk(data, meta, group["n_rows"])
            if name in parse_set and col.values.dtype.kind == "O":
                col = _parse_datetime_column(col)
            out[name] = col
        frame = DataFrame.from_columns(out)
        return self._finish(frame, columns, predicate)

    def _typed_empty(self, columns: Optional[Sequence[str]]) -> DataFrame:
        dtypes = self.dtypes()
        parse_set = set(self.options.get("parse_dates") or [])
        names = self.schema()
        if columns is not None:
            keep = set(columns)
            names = [c for c in names if c in keep]
        return DataFrame.from_columns({
            name: _empty_column(
                "datetime64[ns]" if name in parse_set else dtypes[name]
            )
            for name in names
        })

    def empty_frame(self, columns=None, predicate=None):
        # the footer types every column: no partition read needed.
        return self._typed_empty(columns)

    # -- planning hooks ---------------------------------------------------

    def estimated_bytes(self, columns=None, partitions=None):
        wanted = None if columns is None else set(columns)
        total = 0
        for part in self.select_partitions(partitions):
            chunks = self.footer()["row_groups"][part.index]["chunks"]
            for name, meta in chunks.items():
                if wanted is None or name in wanted:
                    total += int(meta.get("mem_bytes", meta["length"]))
        return total

    def prefetch_ranges(
        self,
        columns: Optional[Sequence[str]] = None,
        predicate=None,
        partitions: Optional[Sequence[int]] = None,
    ) -> List[Tuple[str, int, int]]:
        """Byte ranges a scan with these args will fetch, in read order
        (chunk-skipped row groups excluded -- pruned bytes stay pruned)."""
        wanted = self._read_columns(columns, predicate)
        if wanted is None:
            wanted = self.schema()
        ranges = []
        for part in self.select_partitions(partitions):
            if predicate is not None and not predicate.may_match(part):
                continue
            chunks = self.footer()["row_groups"][part.index]["chunks"]
            for name in wanted:
                meta = chunks[name]
                ranges.append((
                    self.path, meta["offset"],
                    meta["offset"] + meta["length"],
                ))
        return ranges
