"""Metadata store (section 3.6).

Computes and persists per-file metadata -- column names and types, value
ranges, distinct counts (selectivity), approximate row size and row count
-- keyed by file path with modified-time invalidation.  LaFP's
``read_csv`` wrapper consults the store to pass ``dtype`` hints to the
backend and to choose ``category`` dtype for low-cardinality read-only
string columns.
"""

from repro.metastore.stats import (
    ColumnStats,
    FileMetadata,
    PartitionStats,
    compute_metadata,
)
from repro.metastore.store import MetaStore

__all__ = [
    "ColumnStats",
    "FileMetadata",
    "MetaStore",
    "PartitionStats",
    "compute_metadata",
]
