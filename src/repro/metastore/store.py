"""Persistent metadata store with modified-time invalidation.

Metadata is kept as one JSON file per data file (hashed path name) under a
store directory (default ``~/.lafp_metastore`` or ``$LAFP_METASTORE``).
``get`` returns ``None`` when metadata is missing or stale, so callers can
fall back to un-hinted reads (the paper: outdated metadata "is not used").
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Optional

from repro.metastore.stats import FileMetadata, compute_metadata

_MTIME_TOLERANCE = 1e-6


class MetaStore:
    """Directory-backed metadata cache."""

    def __init__(self, root: Optional[str] = None):
        if root is None:
            root = os.environ.get(
                "LAFP_METASTORE",
                os.path.join(os.path.expanduser("~"), ".lafp_metastore"),
            )
        self.root = root
        os.makedirs(self.root, exist_ok=True)

    def _entry_path(self, data_path: str) -> str:
        digest = hashlib.md5(
            os.path.abspath(data_path).encode("utf-8")
        ).hexdigest()
        return os.path.join(self.root, f"{digest}.json")

    def get(self, data_path: str) -> Optional[FileMetadata]:
        """Metadata for ``data_path`` if present and not stale."""
        entry = self._entry_path(data_path)
        if not os.path.exists(entry) or not os.path.exists(data_path):
            return None
        with open(entry) as f:
            meta = FileMetadata.from_dict(json.load(f))
        current_mtime = os.path.getmtime(data_path)
        if abs(current_mtime - meta.mtime) > _MTIME_TOLERANCE:
            return None  # file changed since metadata was computed
        return meta

    def put(self, meta: FileMetadata) -> None:
        with open(self._entry_path(meta.path), "w") as f:
            json.dump(meta.to_dict(), f)

    def compute_and_store(
        self,
        data_path: str,
        sample_rows: Optional[int] = 10_000,
        fmt: str = "csv",
        partition_ranges=None,
    ) -> FileMetadata:
        """Run the metadata script on ``data_path`` and persist the result.

        ``partition_ranges`` records exact per-partition statistics (see
        :func:`repro.metastore.stats.compute_metadata`); ``fmt`` selects
        the reader (``csv`` / ``jsonl``).
        """
        meta = compute_metadata(
            data_path, sample_rows=sample_rows, fmt=fmt,
            partition_ranges=partition_ranges,
        )
        self.put(meta)
        return meta

    def get_or_compute(
        self,
        data_path: str,
        sample_rows: Optional[int] = 10_000,
        fmt: str = "csv",
        partition_ranges=None,
    ) -> FileMetadata:
        meta = self.get(data_path)
        if meta is None:
            meta = self.compute_and_store(
                data_path, sample_rows=sample_rows, fmt=fmt,
                partition_ranges=partition_ranges,
            )
        return meta

    def invalidate(self, data_path: str) -> None:
        entry = self._entry_path(data_path)
        if os.path.exists(entry):
            os.remove(entry)

    def clear(self) -> None:
        for name in os.listdir(self.root):
            if name.endswith(".json"):
                os.remove(os.path.join(self.root, name))
