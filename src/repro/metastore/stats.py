"""Metadata computation for source data files.

Types require a full-column look to be *correct*; statistics may come from
a sample (the paper computes stats from a sample, types from the full file
"at some risk" if sampled).  We scan a configurable number of rows
(``sample_rows=None`` means the whole file) and record per column:

- inferred logical type,
- min/max (numeric and datetime columns),
- distinct-count estimate and selectivity (distinct/rows),
- average encoded width (bytes),

plus file-level row count, average row size, and modified time.

Partitioned reads get their own layer: passing ``partition_ranges``
(the byte ranges a :class:`~repro.io.csv_source.CsvSource` or
:class:`~repro.io.jsonl.JsonlSource` will scan) records one
:class:`PartitionStats` per range.  Unlike the file-level sample, each
partition is read *in full*: its min/max feed partition pruning, which
must be a proof, not an estimate.  ``fmt="jsonl"`` switches the reader
for newline-delimited JSON files.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.frame.io_csv import read_csv, read_header

#: Columns with at most this many distinct values *and* a selectivity
#: below 10% are proposed as ``category`` dtype.
CATEGORY_MAX_DISTINCT = 64
CATEGORY_MAX_SELECTIVITY = 0.1


@dataclasses.dataclass
class ColumnStats:
    """Statistics for one column of a source file."""

    name: str
    dtype: str
    min_value: Optional[float] = None
    max_value: Optional[float] = None
    distinct: int = 0
    selectivity: float = 1.0
    avg_width: float = 8.0

    def is_category_candidate(self) -> bool:
        """Low-cardinality string column suitable for dictionary encoding."""
        return (
            self.dtype == "object"
            and self.distinct <= CATEGORY_MAX_DISTINCT
            and self.selectivity <= CATEGORY_MAX_SELECTIVITY
        )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ColumnStats":
        return cls(**data)


@dataclasses.dataclass
class PartitionStats:
    """Exact statistics of one byte-range partition of a file.

    ``min_values`` / ``max_values`` cover every row of the range (the
    partition is read in full when these are computed), so the pruning
    pass may treat them as proof of emptiness.
    """

    index: int
    start: int
    end: int
    n_rows: int
    n_bytes: int
    min_values: Dict[str, float] = dataclasses.field(default_factory=dict)
    max_values: Dict[str, float] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "PartitionStats":
        return cls(**data)


@dataclasses.dataclass
class FileMetadata:
    """Everything the metastore knows about one file."""

    path: str
    mtime: float
    n_rows: int
    row_size: float
    columns: Dict[str, ColumnStats]
    sampled: bool
    #: per-partition exact stats (empty unless computed with
    #: ``partition_ranges``); matched back to live byte ranges by the
    #: sources, so stale chunking is ignored rather than mis-applied.
    partitions: List[PartitionStats] = dataclasses.field(default_factory=list)

    def dtype_hints(self, read_only_columns: Optional[List[str]] = None) -> Dict[str, str]:
        """dtype mapping for ``read_csv`` (section 3.6).

        ``category`` is proposed only for columns listed as read-only --
        assigning a new value to a category column raises at runtime, so
        the rewrite must prove the column is never written (the paper's
        kill-information check).
        """
        read_only = set(read_only_columns or [])
        hints: Dict[str, str] = {}
        for name, stats in self.columns.items():
            if stats.is_category_candidate() and name in read_only:
                hints[name] = "category"
            elif stats.dtype in ("int64", "float64"):
                hints[name] = stats.dtype
        return hints

    def estimated_bytes(self, columns: Optional[List[str]] = None) -> int:
        """Predicted in-memory footprint of reading ``columns`` (or all)."""
        names = columns if columns is not None else list(self.columns)
        total = 0.0
        for name in names:
            stats = self.columns.get(name)
            if stats is None:
                continue
            total += stats.avg_width * self.n_rows
        return int(total)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "mtime": self.mtime,
            "n_rows": self.n_rows,
            "row_size": self.row_size,
            "sampled": self.sampled,
            "columns": {k: v.to_dict() for k, v in self.columns.items()},
            "partitions": [p.to_dict() for p in self.partitions],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FileMetadata":
        return cls(
            path=data["path"],
            mtime=data["mtime"],
            n_rows=data["n_rows"],
            row_size=data["row_size"],
            sampled=data["sampled"],
            columns={
                k: ColumnStats.from_dict(v) for k, v in data["columns"].items()
            },
            partitions=[
                PartitionStats.from_dict(p)
                for p in data.get("partitions", [])
            ],
        )


def compute_metadata(
    path: str,
    sample_rows: Optional[int] = 10_000,
    fmt: str = "csv",
    partition_ranges: Optional[Sequence[Tuple[int, int]]] = None,
) -> FileMetadata:
    """Scan ``path`` and compute :class:`FileMetadata`.

    This is the "script run on the file" of section 3.6; the benchmark
    runner executes it as a background/setup task.  ``partition_ranges``
    additionally records exact per-range :class:`PartitionStats` (each
    range read in full -- pruning needs proof, see the module docstring).
    """
    if fmt == "jsonl":
        return _compute_jsonl_metadata(path, sample_rows, partition_ranges)
    header = read_header(path)
    frame = read_csv(path, nrows=sample_rows)
    sampled = sample_rows is not None and len(frame) >= sample_rows

    n_rows = len(frame)
    if sampled:
        n_rows = _estimate_total_rows(path, len(frame))

    columns = _column_stats(frame, header, n_rows, sampled)
    partitions: List[PartitionStats] = []
    if partition_ranges:
        partitions = _partition_stats(
            partition_ranges,
            lambda rng: read_csv(path, byte_range=rng),
        )

    row_size = sum(s.avg_width for s in columns.values())
    return FileMetadata(
        path=os.path.abspath(path),
        mtime=os.path.getmtime(path),
        n_rows=n_rows,
        row_size=row_size,
        columns=columns,
        sampled=sampled,
        partitions=partitions,
    )


def _compute_jsonl_metadata(
    path: str,
    sample_rows: Optional[int],
    partition_ranges: Optional[Sequence[Tuple[int, int]]],
) -> FileMetadata:
    # Deferred import: repro.io imports this module for PartitionStats.
    from repro.io.jsonl import read_jsonl

    frame = read_jsonl(path, nrows=sample_rows)
    sampled = sample_rows is not None and len(frame) >= sample_rows
    n_rows = len(frame)
    if sampled:
        n_rows = _estimate_total_rows(path, len(frame), has_header=False)
    columns = _column_stats(frame, frame.columns, n_rows, sampled)
    partitions: List[PartitionStats] = []
    if partition_ranges:
        partitions = _partition_stats(
            partition_ranges,
            lambda rng: read_jsonl(path, byte_range=rng),
        )
    row_size = sum(s.avg_width for s in columns.values())
    return FileMetadata(
        path=os.path.abspath(path),
        mtime=os.path.getmtime(path),
        n_rows=n_rows,
        row_size=row_size,
        columns=columns,
        sampled=sampled,
        partitions=partitions,
    )


def _column_stats(frame, names, n_rows: int, sampled: bool) -> Dict[str, ColumnStats]:
    columns: Dict[str, ColumnStats] = {}
    for name in names:
        col = frame.column(name)
        stats = ColumnStats(name=name, dtype=_dtype_name(col))
        sample_n = max(1, len(col))
        stats.distinct = col.nunique()
        if sampled and stats.distinct > sample_n * 0.5:
            # High-cardinality in the sample: extrapolate linearly.
            stats.distinct = int(stats.distinct * n_rows / sample_n)
        stats.selectivity = min(1.0, stats.distinct / max(1, n_rows))
        stats.avg_width = col.nbytes / sample_n
        low, high = _column_minmax(col)
        stats.min_value, stats.max_value = low, high
        columns[name] = stats
    return columns


def _column_minmax(col):
    if not col.is_category and col.values.dtype.kind in "if":
        vals = col.values
        if vals.dtype.kind == "f":
            vals = vals[~np.isnan(vals)]
        if len(vals):
            return float(vals.min()), float(vals.max())
    return None, None


def _partition_stats(ranges, read_range) -> List[PartitionStats]:
    """Exact stats per byte range: each range is read in full, so the
    recorded min/max are pruning-grade proof, not estimates."""
    out: List[PartitionStats] = []
    for index, rng in enumerate(ranges):
        start, end = int(rng[0]), int(rng[1])
        piece = read_range((start, end))
        mins: Dict[str, float] = {}
        maxs: Dict[str, float] = {}
        for name in piece.columns:
            low, high = _column_minmax(piece.column(name))
            if low is not None:
                mins[name] = low
            if high is not None:
                maxs[name] = high
        out.append(PartitionStats(
            index=index,
            start=start,
            end=end,
            n_rows=len(piece),
            n_bytes=int(piece.nbytes),
            min_values=mins,
            max_values=maxs,
        ))
    return out


def _dtype_name(col) -> str:
    if col.is_category:
        return "category"
    kind = col.values.dtype.kind
    return {
        "i": "int64",
        "f": "float64",
        "b": "bool",
        "M": "datetime64[ns]",
        "O": "object",
    }.get(kind, str(col.values.dtype))


def _estimate_total_rows(
    path: str, sampled_rows: int, has_header: bool = True
) -> int:
    """Estimate the file's row count from its byte size and a sample."""
    size = os.path.getsize(path)
    with open(path, "rb") as f:
        if has_header:
            f.readline()
        data_start = f.tell()
        read = 0
        lines = 0
        while lines < sampled_rows:
            line = f.readline()
            if not line:
                break
            read += len(line)
            lines += 1
    if lines == 0 or read == 0:
        return sampled_rows
    front_avg = read / lines
    # Rows often grow with ordinal ids; blend in a tail sample so the
    # estimate is not front-biased.
    tail_avg = _tail_line_width(path, size)
    avg_line = (front_avg + tail_avg) / 2 if tail_avg else front_avg
    return int((size - data_start) / avg_line)


def _tail_line_width(path: str, size: int) -> float:
    chunk = min(size, 1 << 14)
    with open(path, "rb") as f:
        f.seek(size - chunk)
        data = f.read(chunk)
    newlines = data.count(b"\n")
    if newlines < 2:
        return 0.0
    first = data.index(b"\n")
    return (len(data) - first - 1) / max(1, newlines - 1)
