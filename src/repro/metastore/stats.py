"""Metadata computation for source data files.

Types require a full-column look to be *correct*; statistics may come from
a sample (the paper computes stats from a sample, types from the full file
"at some risk" if sampled).  We scan a configurable number of rows
(``sample_rows=None`` means the whole file) and record per column:

- inferred logical type,
- min/max (numeric and datetime columns),
- distinct-count estimate and selectivity (distinct/rows),
- average encoded width (bytes),

plus file-level row count, average row size, and modified time.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List, Optional

import numpy as np

from repro.frame.io_csv import read_csv, read_header

#: Columns with at most this many distinct values *and* a selectivity
#: below 10% are proposed as ``category`` dtype.
CATEGORY_MAX_DISTINCT = 64
CATEGORY_MAX_SELECTIVITY = 0.1


@dataclasses.dataclass
class ColumnStats:
    """Statistics for one column of a source file."""

    name: str
    dtype: str
    min_value: Optional[float] = None
    max_value: Optional[float] = None
    distinct: int = 0
    selectivity: float = 1.0
    avg_width: float = 8.0

    def is_category_candidate(self) -> bool:
        """Low-cardinality string column suitable for dictionary encoding."""
        return (
            self.dtype == "object"
            and self.distinct <= CATEGORY_MAX_DISTINCT
            and self.selectivity <= CATEGORY_MAX_SELECTIVITY
        )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ColumnStats":
        return cls(**data)


@dataclasses.dataclass
class FileMetadata:
    """Everything the metastore knows about one file."""

    path: str
    mtime: float
    n_rows: int
    row_size: float
    columns: Dict[str, ColumnStats]
    sampled: bool

    def dtype_hints(self, read_only_columns: Optional[List[str]] = None) -> Dict[str, str]:
        """dtype mapping for ``read_csv`` (section 3.6).

        ``category`` is proposed only for columns listed as read-only --
        assigning a new value to a category column raises at runtime, so
        the rewrite must prove the column is never written (the paper's
        kill-information check).
        """
        read_only = set(read_only_columns or [])
        hints: Dict[str, str] = {}
        for name, stats in self.columns.items():
            if stats.is_category_candidate() and name in read_only:
                hints[name] = "category"
            elif stats.dtype in ("int64", "float64"):
                hints[name] = stats.dtype
        return hints

    def estimated_bytes(self, columns: Optional[List[str]] = None) -> int:
        """Predicted in-memory footprint of reading ``columns`` (or all)."""
        names = columns if columns is not None else list(self.columns)
        total = 0.0
        for name in names:
            stats = self.columns.get(name)
            if stats is None:
                continue
            total += stats.avg_width * self.n_rows
        return int(total)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "mtime": self.mtime,
            "n_rows": self.n_rows,
            "row_size": self.row_size,
            "sampled": self.sampled,
            "columns": {k: v.to_dict() for k, v in self.columns.items()},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FileMetadata":
        return cls(
            path=data["path"],
            mtime=data["mtime"],
            n_rows=data["n_rows"],
            row_size=data["row_size"],
            sampled=data["sampled"],
            columns={
                k: ColumnStats.from_dict(v) for k, v in data["columns"].items()
            },
        )


def compute_metadata(path: str, sample_rows: Optional[int] = 10_000) -> FileMetadata:
    """Scan ``path`` and compute :class:`FileMetadata`.

    This is the "script run on the file" of section 3.6; the benchmark
    runner executes it as a background/setup task.
    """
    header = read_header(path)
    frame = read_csv(path, nrows=sample_rows)
    sampled = sample_rows is not None and len(frame) >= sample_rows

    n_rows = len(frame)
    if sampled:
        n_rows = _estimate_total_rows(path, len(frame))

    columns: Dict[str, ColumnStats] = {}
    for name in header:
        col = frame.column(name)
        stats = ColumnStats(name=name, dtype=_dtype_name(col))
        sample_n = max(1, len(col))
        stats.distinct = col.nunique()
        if sampled and stats.distinct > sample_n * 0.5:
            # High-cardinality in the sample: extrapolate linearly.
            stats.distinct = int(stats.distinct * n_rows / sample_n)
        stats.selectivity = min(1.0, stats.distinct / max(1, n_rows))
        stats.avg_width = col.nbytes / sample_n
        if not col.is_category and col.values.dtype.kind in "if":
            vals = col.values
            if vals.dtype.kind == "f":
                vals = vals[~np.isnan(vals)]
            if len(vals):
                stats.min_value = float(vals.min())
                stats.max_value = float(vals.max())
        columns[name] = stats

    row_size = sum(s.avg_width for s in columns.values())
    return FileMetadata(
        path=os.path.abspath(path),
        mtime=os.path.getmtime(path),
        n_rows=n_rows,
        row_size=row_size,
        columns=columns,
        sampled=sampled,
    )


def _dtype_name(col) -> str:
    if col.is_category:
        return "category"
    kind = col.values.dtype.kind
    return {
        "i": "int64",
        "f": "float64",
        "b": "bool",
        "M": "datetime64[ns]",
        "O": "object",
    }.get(kind, str(col.values.dtype))


def _estimate_total_rows(path: str, sampled_rows: int) -> int:
    """Estimate the file's row count from its byte size and a sample."""
    size = os.path.getsize(path)
    with open(path, "rb") as f:
        f.readline()
        data_start = f.tell()
        read = 0
        lines = 0
        while lines < sampled_rows:
            line = f.readline()
            if not line:
                break
            read += len(line)
            lines += 1
    if lines == 0 or read == 0:
        return sampled_rows
    front_avg = read / lines
    # Rows often grow with ordinal ids; blend in a tail sample so the
    # estimate is not front-biased.
    tail_avg = _tail_line_width(path, size)
    avg_line = (front_avg + tail_avg) / 2 if tail_avg else front_avg
    return int((size - data_start) / avg_line)


def _tail_line_width(path: str, size: int) -> float:
    chunk = min(size, 1 << 14)
    with open(path, "rb") as f:
        f.seek(size - chunk)
        data = f.read(chunk)
    newlines = data.count(b"\n")
    if newlines < 2:
        return 0.0
    first = data.index(b"\n")
    return (len(data) - first - 1) / max(1, newlines - 1)
