"""Task-graph nodes and the operator registry.

Each :class:`Node` records an operation name (key into :data:`OPS`), the
nodes it consumes, and plain-value arguments.  :class:`OpSpec` carries the
semantic facts the runtime optimizer needs (section 3.2):

- ``mod_attrs``      -- columns the operator modifies or computes,
- ``used_attrs``     -- columns it reads,
- ``row_preserving`` -- filtering input rows does not change the values of
                        surviving output rows (safe-point condition 2),
- ``side_effect``    -- produces output; never moved or eliminated,
- ``is_source`` / ``is_filter`` -- structural roles for pushdown.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set

_node_ids = itertools.count(1)

#: Wildcard marker: "all columns of the frame".
ALL_COLUMNS = "*"


@dataclasses.dataclass
class OpSpec:
    """Static semantics of one operator kind."""

    name: str
    #: columns modified/computed; callable(node) -> set, or a constant set.
    mod_attrs: Callable[["Node"], Set[str]] = lambda node: set()
    #: columns read; callable(node) -> set (may contain ALL_COLUMNS).
    used_attrs: Callable[["Node"], Set[str]] = lambda node: {ALL_COLUMNS}
    #: True when filtering rows upstream commutes with this operator.
    row_preserving: bool = False
    side_effect: bool = False
    is_source: bool = False
    is_filter: bool = False
    #: True when the op returns a scalar (aggregations, len).
    scalar: bool = False
    #: arg keys excluded from plan fingerprints: scheduling hints the
    #: optimizer stamps (or the facade derives) that never change the
    #: operator's result (see ``repro.cache.fingerprint``).
    volatile_args: FrozenSet[str] = frozenset()
    #: False when the op's result must never be served from (or
    #: inserted into) the cross-session result cache -- nondeterminism
    #: (``sample``) or store/stream-valued results (shuffle staging).
    #: Non-cacheable ops poison their whole consumer subtree.
    cacheable: bool = True


OPS: Dict[str, OpSpec] = {}


def register_op(spec: OpSpec) -> OpSpec:
    OPS[spec.name] = spec
    return spec


class Node:
    """One operation in the LaFP task graph."""

    __slots__ = (
        "id",
        "op",
        "inputs",
        "args",
        "order_deps",
        "result",
        "computed",
        "persist",
        "label",
        # weak-referenceable: the cross-session node map (marker
        # resolution for lazy print) holds nodes weakly.
        "__weakref__",
    )

    def __init__(
        self,
        op: str,
        inputs: Sequence["Node"] = (),
        args: Optional[dict] = None,
        order_deps: Sequence["Node"] = (),
        label: Optional[str] = None,
    ):
        if op not in OPS:
            raise KeyError(f"unregistered operator {op!r}")
        self.id = next(_node_ids)
        self.op = op
        self.inputs: List[Node] = list(inputs)
        self.args = args or {}
        #: ordering-only dependencies (print chains, forced compute).
        self.order_deps: List[Node] = list(order_deps)
        self.result = None
        self.computed = False
        self.persist = False
        self.label = label

    # -- semantics ---------------------------------------------------------

    @property
    def spec(self) -> OpSpec:
        return OPS[self.op]

    def mod_attrs(self) -> Set[str]:
        return self.spec.mod_attrs(self)

    def used_attrs(self) -> Set[str]:
        return self.spec.used_attrs(self)

    def all_deps(self) -> List["Node"]:
        return self.inputs + self.order_deps

    def clear_result(self) -> None:
        """Drop the materialized result (unless persisted)."""
        if not self.persist:
            self.result = None
            self.computed = False

    def set_result(self, value) -> None:
        self.result = value
        self.computed = True

    def replace_input(self, old: "Node", new: "Node") -> None:
        self.inputs = [new if inp is old else inp for inp in self.inputs]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        extra = f" {self.label}" if self.label else ""
        return f"<Node {self.id} {self.op}{extra}>"


# ---------------------------------------------------------------------------
# Operator registry.
#
# ``used_attrs`` helpers read the node's args; filter predicates compute
# their used columns by walking the mask expression subgraph (see
# ``series_used_columns``).
# ---------------------------------------------------------------------------


def _arg_cols_or_all(*arg_names: str) -> Callable[[Node], Set[str]]:
    """Column args when given; otherwise the whole frame is inspected
    (e.g. ``dropna()`` with no subset checks every column)."""

    def used(node: Node) -> Set[str]:
        out: Set[str] = set()
        found = False
        for name in arg_names:
            value = node.args.get(name)
            if value is None:
                continue
            found = True
            if isinstance(value, str):
                out.add(value)
            else:
                out.update(value)
        return out if found else {ALL_COLUMNS}

    return used


def _arg_cols(*arg_names: str) -> Callable[[Node], Set[str]]:
    def used(node: Node) -> Set[str]:
        out: Set[str] = set()
        for name in arg_names:
            value = node.args.get(name)
            if value is None:
                continue
            if isinstance(value, str):
                out.add(value)
            else:
                out.update(value)
        return out

    return used


def series_used_columns(node: Node) -> Set[str]:
    """Columns of the *originating frame* read by a series expression.

    Walks the expression subgraph upward through elementwise ops until
    frame-level nodes are reached; a ``getitem_column`` contributes its
    column name.  Anything unrecognised degrades to ``ALL_COLUMNS``.
    """
    out: Set[str] = set()
    stack = [node]
    seen = set()
    while stack:
        cur = stack.pop()
        if cur.id in seen:
            continue
        seen.add(cur.id)
        if cur.op == "getitem_column":
            out.add(cur.args["column"])
            continue  # do not walk into the frame itself
        if cur.op in _ELEMENTWISE_SERIES_OPS or cur.op == "filter":
            stack.extend(cur.inputs)
        elif cur.spec.is_source:
            continue
        else:
            out.add(ALL_COLUMNS)
    return out


_ELEMENTWISE_SERIES_OPS = {
    "binop",
    "unop",
    "str_method",
    "dt_field",
    "isin",
    "between",
    "isna",
    "notna",
    "series_fillna",
    "series_astype",
    "to_datetime",
    "series_map",
}


def _filter_used(node: Node) -> Set[str]:
    # inputs = [frame, mask]
    return series_used_columns(node.inputs[1])


def _setitem_mod(node: Node) -> Set[str]:
    return {node.args["column"]}


def _setitem_used(node: Node) -> Set[str]:
    if len(node.inputs) > 1:
        return series_used_columns(node.inputs[1])
    return set()


def _rename_mod(node: Node) -> Set[str]:
    mapping = node.args.get("columns", {})
    return set(mapping) | set(mapping.values())


def _merge_used(node: Node) -> Set[str]:
    """Join keys when declared; a natural join (no ``on``/``left_on``)
    inspects every shared column, so it degrades to ALL_COLUMNS."""
    out: Set[str] = set()
    for arg in ("on", "left_on", "right_on"):
        value = node.args.get(arg)
        if value is None:
            continue
        if isinstance(value, str):
            out.add(value)
        else:
            out.update(value)
    return out if out else {ALL_COLUMNS}


# Every registration passes ``mod_attrs`` and ``used_attrs`` explicitly
# -- even when they match the OpSpec defaults -- so the declared column
# semantics are visible at the registration site and an over-claiming
# ALL_COLUMNS is a deliberate annotation, not a silent fallback
# (tools/check_invariants.py enforces this for new operators).

_NO_COLS = lambda n: set()          # noqa: E731 - registration shorthand
_ALL_COLS = lambda n: {ALL_COLUMNS}  # noqa: E731 - registration shorthand

register_op(OpSpec(
    "read_csv",
    mod_attrs=_NO_COLS,
    used_attrs=_NO_COLS,
    is_source=True,
    volatile_args=frozenset({"read_only_cols", "mutated_cols"}),
))
register_op(OpSpec(
    # the generic source node: args carry a format name, a path, and the
    # folded-in scan contract (columns / predicate / kept partitions);
    # repro.io resolves them back into a DataSource at execution time.
    "scan",
    mod_attrs=_NO_COLS,
    used_attrs=_NO_COLS,
    is_source=True,
    volatile_args=frozenset({
        "est_bytes", "partitions", "partitions_total",
        "read_only_cols", "mutated_cols",
    }),
))
register_op(OpSpec(
    # a cache-substituted subplan: args carry the serialized result
    # blob, its size, kind, and a short key for explain().  Emitted
    # only by the substitution pass in ``repro.core.optimizer.cache``;
    # never built by user code and never re-cached.
    "from_cached",
    mod_attrs=_NO_COLS,
    used_attrs=_NO_COLS,
    is_source=True,
    cacheable=False,
))
register_op(OpSpec(
    "from_data",
    mod_attrs=_NO_COLS,
    used_attrs=_NO_COLS,
    is_source=True,
))
register_op(OpSpec(
    "from_pandas",
    mod_attrs=_NO_COLS,
    used_attrs=_NO_COLS,
    is_source=True,
))
register_op(OpSpec(
    "identity",
    mod_attrs=_NO_COLS,
    used_attrs=_NO_COLS,
    row_preserving=True,
))
register_op(OpSpec(
    "getitem_column",
    mod_attrs=_NO_COLS,
    used_attrs=_arg_cols("column"),
    row_preserving=True,
))
register_op(OpSpec(
    "getitem_columns",
    mod_attrs=_NO_COLS,
    used_attrs=_arg_cols("columns"),
    row_preserving=True,
))
register_op(OpSpec(
    "filter",
    mod_attrs=_NO_COLS,
    used_attrs=_filter_used,
    row_preserving=True,
    is_filter=True,
))
register_op(OpSpec(
    "setitem",
    mod_attrs=_setitem_mod,
    used_attrs=_setitem_used,
    row_preserving=True,
))
register_op(OpSpec(
    "binop",
    mod_attrs=_NO_COLS,
    used_attrs=_NO_COLS,
    row_preserving=True,
))
register_op(OpSpec(
    "unop", mod_attrs=_NO_COLS, used_attrs=_NO_COLS, row_preserving=True,
))
register_op(OpSpec(
    "str_method", mod_attrs=_NO_COLS, used_attrs=_NO_COLS,
    row_preserving=True,
))
register_op(OpSpec(
    "dt_field", mod_attrs=_NO_COLS, used_attrs=_NO_COLS,
    row_preserving=True,
))
register_op(OpSpec(
    "isin", mod_attrs=_NO_COLS, used_attrs=_NO_COLS, row_preserving=True,
))
register_op(OpSpec(
    "between", mod_attrs=_NO_COLS, used_attrs=_NO_COLS, row_preserving=True,
))
register_op(OpSpec(
    "isna", mod_attrs=_NO_COLS, used_attrs=_NO_COLS, row_preserving=True,
))
register_op(OpSpec(
    "notna", mod_attrs=_NO_COLS, used_attrs=_NO_COLS, row_preserving=True,
))
register_op(OpSpec(
    "series_fillna", mod_attrs=_NO_COLS, used_attrs=_NO_COLS,
    row_preserving=True,
))
register_op(OpSpec(
    "series_astype", mod_attrs=_NO_COLS, used_attrs=_NO_COLS,
    row_preserving=True,
))
register_op(OpSpec(
    "series_map", mod_attrs=_NO_COLS, used_attrs=_NO_COLS,
    row_preserving=True,
))
# window/positional series ops: results depend on neighbouring rows, so
# filters never commute through them (not elementwise, not row_preserving).
register_op(OpSpec("series_call", mod_attrs=_NO_COLS, used_attrs=_NO_COLS))
register_op(OpSpec(
    "to_datetime", mod_attrs=_NO_COLS, used_attrs=_NO_COLS,
    row_preserving=True,
))
register_op(OpSpec(
    "astype",
    mod_attrs=lambda n: set(n.args.get("dtype", {}))
    if isinstance(n.args.get("dtype"), dict)
    else {ALL_COLUMNS},
    used_attrs=_NO_COLS,
    row_preserving=True,
))
register_op(OpSpec(
    "fillna",
    mod_attrs=_ALL_COLS,
    used_attrs=_NO_COLS,
    row_preserving=True,
))
register_op(OpSpec(
    "dropna",
    mod_attrs=_NO_COLS,
    used_attrs=_arg_cols_or_all("subset"),
    row_preserving=True,  # a dropna is itself a filter; rows commute
))
register_op(OpSpec(
    "rename",
    mod_attrs=_rename_mod,
    used_attrs=_NO_COLS,
    row_preserving=True,
))
register_op(OpSpec(
    "drop",
    mod_attrs=lambda n: set(n.args.get("columns", [])),
    used_attrs=_NO_COLS,
    row_preserving=True,
))
register_op(OpSpec(
    "sort_values",
    mod_attrs=_NO_COLS,
    used_attrs=_arg_cols("by"),
    row_preserving=True,
))
register_op(OpSpec(
    "sort_index", mod_attrs=_NO_COLS, used_attrs=_NO_COLS,
    row_preserving=True,
))
register_op(OpSpec(
    "drop_duplicates",
    mod_attrs=_NO_COLS,
    used_attrs=_arg_cols_or_all("subset"),
    # Filtering first can change *which* representative row survives, but
    # never produces a row that fails the filter; the paper lists
    # drop_duplicates as safe to swap with filters.
    row_preserving=True,
))
register_op(OpSpec(
    "round",
    mod_attrs=_ALL_COLS,
    used_attrs=_NO_COLS,
    row_preserving=True,
))
register_op(OpSpec(
    "abs",
    mod_attrs=_ALL_COLS,
    used_attrs=_NO_COLS,
    row_preserving=True,
))

# Row-count-changing / aggregate operators: predicates never move below.
register_op(OpSpec(
    "groupby_agg", mod_attrs=_NO_COLS,
    used_attrs=_arg_cols("keys", "column"),
))
register_op(OpSpec(
    "groupby_agg_multi", mod_attrs=_NO_COLS,
    used_attrs=_arg_cols("keys", "columns"),
))
register_op(OpSpec(
    "groupby_size", mod_attrs=_NO_COLS, used_attrs=_arg_cols("keys"),
))
# merge reads its declared join keys (a natural join still claims all
# shared columns); concat and the series reshapers reference no columns
# by name at all -- they used to over-claim ALL_COLUMNS by default.
register_op(OpSpec("merge", mod_attrs=_NO_COLS, used_attrs=_merge_used))
register_op(OpSpec("concat", mod_attrs=_NO_COLS, used_attrs=_NO_COLS))


# Shuffle-lowering operators.  These are never built by user code: the
# optimizer pass in ``repro.core.optimizer.shuffle`` rewrites oversized
# ``merge`` / ``groupby_agg`` nodes over partitioned scans into a
# hash-partition -> spill -> stream pipeline built from these four ops.

def _shuffle_write_mod(node: Node) -> Set[str]:
    # the appended row-position column used to restore merge row order
    pos = node.args.get("pos_name")
    return {pos} if pos else set()


def _partial_agg_used(node: Node) -> Set[str]:
    out: Set[str] = set(node.args.get("keys") or ())
    for col, _func, _label in node.args.get("pairs") or ():
        out.add(col)
    return out


def _partial_agg_mod(node: Node) -> Set[str]:
    return {label for _col, _func, label in node.args.get("pairs") or ()}


def _combine_agg_used(node: Node) -> Set[str]:
    if node.args.get("kind") == "merge":
        return set(node.args.get("pos_names") or ())
    out: Set[str] = set(node.args.get("keys") or ())
    for spec in node.args.get("outputs") or ():
        if spec.get("mode") == "mean":
            out.add(spec["sum"])
            out.add(spec["count"])
        else:
            out.add(spec["partial"])
    return out


def _combine_agg_mod(node: Node) -> Set[str]:
    if node.args.get("kind") == "merge":
        return set()
    return {spec["label"] for spec in node.args.get("outputs") or ()}


register_op(OpSpec(
    # hash-split one input's partitions into P spillable buckets; the
    # result is a ShuffleStore, not a frame
    "shuffle_write",
    mod_attrs=_shuffle_write_mod,
    used_attrs=_arg_cols("keys"),
    cacheable=False,
))
register_op(OpSpec(
    # read one bucket back out of a ShuffleStore as an eager frame
    "shuffle_read",
    mod_attrs=_NO_COLS,
    used_attrs=_NO_COLS,
    cacheable=False,
))
register_op(OpSpec(
    # identity rebuild with payload-owning columns: cuts the heap-store
    # sharing chain so a bucket-local result does not pin its (much
    # larger) input bucket's string payload until the final combine
    "compact",
    mod_attrs=_NO_COLS,
    used_attrs=_NO_COLS,
))
register_op(OpSpec(
    # per-partition partial aggregation: keys + labeled partial columns
    "partial_agg",
    mod_attrs=_partial_agg_mod,
    used_attrs=_partial_agg_used,
))
register_op(OpSpec(
    # fan-in: re-aggregate stacked partials, or restitch merged buckets
    # back into the in-memory row order via the position columns
    "combine_agg",
    mod_attrs=_combine_agg_mod,
    used_attrs=_combine_agg_used,
))
register_op(OpSpec(
    "head", mod_attrs=_NO_COLS, used_attrs=_NO_COLS, row_preserving=False,
))
register_op(OpSpec(
    "tail", mod_attrs=_NO_COLS, used_attrs=_NO_COLS, row_preserving=False,
))
register_op(OpSpec(
    "nlargest", mod_attrs=_NO_COLS, used_attrs=_arg_cols("columns"),
))
register_op(OpSpec(
    "nsmallest", mod_attrs=_NO_COLS, used_attrs=_arg_cols("columns"),
))
# describe/info genuinely inspect every column: ALL_COLUMNS is the
# honest declaration, stated explicitly rather than inherited.
register_op(OpSpec("describe", mod_attrs=_NO_COLS, used_attrs=_ALL_COLS))
register_op(OpSpec("info", mod_attrs=_NO_COLS, used_attrs=_ALL_COLS))
register_op(OpSpec("value_counts", mod_attrs=_NO_COLS, used_attrs=_NO_COLS))
register_op(OpSpec(
    "series_agg", mod_attrs=_NO_COLS, used_attrs=_NO_COLS, scalar=True,
))
register_op(OpSpec(
    "series_len", mod_attrs=_NO_COLS, used_attrs=_NO_COLS, scalar=True,
))
register_op(OpSpec(
    "frame_len", mod_attrs=_NO_COLS, used_attrs=_NO_COLS, scalar=True,
))
register_op(OpSpec(
    "nunique", mod_attrs=_NO_COLS, used_attrs=_NO_COLS, scalar=True,
))
register_op(OpSpec("unique", mod_attrs=_NO_COLS, used_attrs=_NO_COLS))
register_op(OpSpec(
    "to_frame_series", mod_attrs=_NO_COLS, used_attrs=_NO_COLS,
    row_preserving=True,
))
register_op(OpSpec("reset_index", mod_attrs=_NO_COLS, used_attrs=_NO_COLS))
register_op(OpSpec(
    "set_index", mod_attrs=_NO_COLS, used_attrs=_arg_cols("column"),
))
# UDF / runtime-dependent operators: column flow is unknowable, ALL stays.
register_op(OpSpec("apply", mod_attrs=_NO_COLS, used_attrs=_ALL_COLS))
register_op(OpSpec("assign", mod_attrs=_ALL_COLS, used_attrs=_ALL_COLS))
register_op(OpSpec(
    "select_columns_if", mod_attrs=_NO_COLS, used_attrs=_ALL_COLS,
))
register_op(OpSpec(
    # unseeded randomness: the value is not a function of the plan, so
    # it (and everything computed over it) must never be cached.
    "sample", mod_attrs=_NO_COLS, used_attrs=_NO_COLS, cacheable=False,
))

# Side-effect operators: they render their whole input.
register_op(OpSpec(
    "print", mod_attrs=_NO_COLS, used_attrs=_ALL_COLS, side_effect=True,
))
register_op(OpSpec(
    "to_csv", mod_attrs=_NO_COLS, used_attrs=_ALL_COLS, side_effect=True,
))
register_op(OpSpec(
    "plot_call", mod_attrs=_NO_COLS, used_attrs=_ALL_COLS, side_effect=True,
))
