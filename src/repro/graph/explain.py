"""Plain-text task-graph rendering (``LazyFrame.explain()``).

Unlike :func:`repro.graph.taskgraph.to_dot`, this renderer is meant for
terminals and golden tests: nodes are renumbered ``N1..Nk`` in
topological order (global node ids vary run to run), file paths collapse
to their basename, and noisy args (print segments, inline data, UDFs)
are elided -- the same pipeline always renders the same text.
"""

from __future__ import annotations

import os
from typing import Dict, List, Sequence

from repro.graph.node import Node
from repro.graph.taskgraph import topological_order

#: args whose values are payloads, not plan structure.
_ELIDED_ARGS = {"segments", "marker_map", "data", "frame", "blob"}

_MAX_VALUE_CHARS = 48


def _format_value(key: str, value) -> str:
    if key == "path":
        return os.path.basename(str(value))
    if callable(value):
        return "<fn>"
    text = repr(value)
    if len(text) > _MAX_VALUE_CHARS:
        text = text[: _MAX_VALUE_CHARS - 3] + "..."
    return text

def _format_args(node: Node) -> str:
    if node.op == "scan":
        return _format_scan_args(node)
    parts = []
    for key, value in node.args.items():
        if key in _ELIDED_ARGS or value is None:
            continue
        parts.append(f"{key}={_format_value(key, value)}")
    return ", ".join(parts)


#: scan args with dedicated renderings below (est_bytes is elided: a
#: scheduling hint, not plan structure).
_SCAN_SPECIAL = {"format", "path", "predicate", "partitions",
                 "partitions_total", "columns", "est_bytes"}


def _format_scan_args(node: Node) -> str:
    """Scan nodes render their negotiated contract explicitly: the
    folded-in projection columns, the pushed predicate in compact infix
    form, and ``partitions=kept/total`` once the pruning pass counted
    them."""
    args = node.args
    parts = [f"format={args.get('format')!r}",
             f"path={os.path.basename(str(args.get('path')))}"]
    for key in sorted(args):
        if key in _SCAN_SPECIAL or args[key] is None:
            continue
        parts.append(f"{key}={_format_value(key, args[key])}")
    if args.get("columns") is not None:
        parts.append(f"columns={list(args['columns'])!r}")
    if args.get("predicate"):
        from repro.io.predicate import Predicate

        parts.append(
            f"predicate={Predicate.from_arg(args['predicate']).render()}"
        )
    total = args.get("partitions_total")
    if total is not None:
        kept = args.get("partitions")
        read = len(kept) if kept is not None else total
        parts.append(f"partitions={read}/{total}")
    return ", ".join(parts)


def render_node_line(node: Node, numbers: Dict[int, int]) -> str:
    """One node's plan line under a ``node id -> N number`` mapping.

    Shared by :func:`render_plan` and the analyzer's diagnostics, so a
    diagnostic's plan-path context is byte-identical to the rendered
    plan line it points at."""
    line = f"N{numbers.get(node.id, 0)} {node.op}"
    args = _format_args(node)
    if args:
        line += f"({args})"
    deps = ",".join(
        f"N{numbers[dep.id]}" for dep in node.all_deps()
        if dep.id in numbers
    )
    if deps:
        line += f" <- [{deps}]"
    if node.persist:
        line += "  [persist]"
    return line


def render_plan(roots: Sequence[Node]) -> str:
    """One line per node, dependencies first, deterministically numbered."""
    order = topological_order(list(roots))
    numbers = {node.id: index + 1 for index, node in enumerate(order)}
    lines: List[str] = [render_node_line(node, numbers) for node in order]
    return "\n".join(lines)
