"""Plain-text task-graph rendering (``LazyFrame.explain()``).

Unlike :func:`repro.graph.taskgraph.to_dot`, this renderer is meant for
terminals and golden tests: nodes are renumbered ``N1..Nk`` in
topological order (global node ids vary run to run), file paths collapse
to their basename, and noisy args (print segments, inline data, UDFs)
are elided -- the same pipeline always renders the same text.
"""

from __future__ import annotations

import os
from typing import List, Sequence

from repro.graph.node import Node
from repro.graph.taskgraph import topological_order

#: args whose values are payloads, not plan structure.
_ELIDED_ARGS = {"segments", "marker_map", "data"}

_MAX_VALUE_CHARS = 48


def _format_value(key: str, value) -> str:
    if key == "path":
        return os.path.basename(str(value))
    if callable(value):
        return "<fn>"
    text = repr(value)
    if len(text) > _MAX_VALUE_CHARS:
        text = text[: _MAX_VALUE_CHARS - 3] + "..."
    return text

def _format_args(node: Node) -> str:
    parts = []
    for key, value in node.args.items():
        if key in _ELIDED_ARGS or value is None:
            continue
        parts.append(f"{key}={_format_value(key, value)}")
    return ", ".join(parts)


def render_plan(roots: Sequence[Node]) -> str:
    """One line per node, dependencies first, deterministically numbered."""
    order = topological_order(list(roots))
    numbers = {node.id: index + 1 for index, node in enumerate(order)}
    lines: List[str] = []
    for node in order:
        line = f"N{numbers[node.id]} {node.op}"
        args = _format_args(node)
        if args:
            line += f"({args})"
        deps = ",".join(
            f"N{numbers[dep.id]}" for dep in node.all_deps()
            if dep.id in numbers
        )
        if deps:
            line += f" <- [{deps}]"
        if node.persist:
            line += "  [persist]"
        lines.append(line)
    return "\n".join(lines)
