"""The fused strategy: linear-chain fusion over the serial loop.

The paper's deep-chain workloads (long pipelines of row-preserving
transforms) spend measurable time in per-node scheduling bookkeeping.
This strategy runs a pre-pass that fuses *linear single-consumer chains*
-- maximal runs ``a -> b -> c`` where each link is its successor's only
dependency and each node's only consumer is its successor -- into one
task, then executes tasks serially.  Within a chain no queue bookkeeping
happens between links, and release still follows the section-2.6
refcount rule, so results are bit-identical to the serial strategy.

Fusion never crosses roots, persisted nodes, cached nodes, or fan-out/
fan-in points (a diamond's branches keep their own tasks), and counts
ordering edges as dependencies, so lazy prints cannot be reordered.
"""

from __future__ import annotations

from typing import Dict, List

from repro.graph.node import Node
from repro.graph.scheduler.base import Scheduler
from repro.graph.scheduler.stats import ExecutionStats
from repro.graph.taskgraph import consumers_by_id


def fuse_linear_chains(order: List[Node], root_ids: set) -> List[List[Node]]:
    """Group ``order`` into tasks: chains of length >= 2 plus singletons.

    Returned tasks are in executable order (each task's external
    dependencies are satisfied by earlier tasks): a chain inherits its
    head's topological position, and every non-head chain member depends
    only on its predecessor in the same chain by construction.
    """
    in_graph = {node.id for node in order}
    consumers = consumers_by_id(order)
    successor: Dict[int, Node] = {}
    has_predecessor: Dict[int, bool] = {}
    for node in order:
        if node.computed:
            continue
        node_consumers = consumers.get(node.id, [])
        if len(node_consumers) != 1:
            continue
        nxt = node_consumers[0]
        if nxt.computed:
            continue
        # ``nxt`` must hang off this node alone (counting ordering edges);
        # otherwise running the chain as one task could start ``nxt``
        # before an unrelated dependency finished.
        next_deps = {d.id for d in nxt.all_deps() if d.id in in_graph}
        if next_deps != {node.id}:
            continue
        # Roots and persisted nodes keep their results; fusing them is
        # legal but keeps the bookkeeping simpler if we break chains there.
        if node.id in root_ids or node.persist:
            continue
        successor[node.id] = nxt
        has_predecessor[nxt.id] = True

    tasks: List[List[Node]] = []
    absorbed = set()
    for node in order:
        if node.id in absorbed:
            continue
        if node.id in successor and not has_predecessor.get(node.id):
            chain = [node]
            while chain[-1].id in successor:
                nxt = successor[chain[-1].id]
                chain.append(nxt)
                absorbed.add(nxt.id)
            tasks.append(chain)
        elif not has_predecessor.get(node.id):
            tasks.append([node])
    return tasks


class FusedScheduler(Scheduler):
    """Serial execution over fused linear chains."""

    name = "fused"

    def _run(self, order: List[Node], refcounts: Dict[int, int],
             root_ids: set, stats: ExecutionStats) -> None:
        tasks = fuse_linear_chains(order, root_ids)
        for chain in tasks:
            if len(chain) > 1:
                stats.record_fused_chain(len(chain))
            for node in chain:
                if node.computed:
                    stats.record_cache_hit()
                    continue
                self._execute_node(node, stats)
                self._release_inputs(node, refcounts, root_ids)
