"""Pluggable execution strategies (the scheduler subsystem).

Mirrors the engine layer: a :class:`SchedulerSpec` describes one
strategy (its factory plus the capability facts the session branches
on), an :class:`ExecutorRegistry` maps names to specs, and sessions pick
a strategy through the ``executor.strategy`` option -- the Dask split
between a collection protocol and swappable ``get`` functions, applied
to the LaFP task graph.  Future async or process-pool executors plug in
as new specs; no globals involved beyond the default registry.

Strategies shipped:

- ``serial``   -- the paper's single loop (section 2.6), extracted,
- ``threaded`` -- ready-queue parallel execution with memory-aware
  admission (needs an engine with ``supports_parallel_apply``),
- ``fused``    -- linear-chain fusion to cut scheduling overhead on
  deep-chain workloads,
- ``process``  -- fused chains shipped to a ProcessPoolExecutor through
  the pickle seam, for CPU-bound operators the GIL serializes,
- ``async``    -- asyncio event-loop scheduling, the seam a server
  needs to multiplex many concurrent collects over one pool.

Every strategy consumes the memory-aware static ordering pass
(:mod:`repro.graph.scheduler.order`, ``executor.static_order``): the
serial/fused loops follow it directly, the parallel heaps use it as
their tie-break.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, List

from repro.graph.scheduler.async_ import AsyncScheduler
from repro.graph.scheduler.base import ExecutionError, Scheduler
from repro.graph.scheduler.fused import FusedScheduler, fuse_linear_chains
from repro.graph.scheduler.process import ProcessScheduler
from repro.graph.scheduler.serial import SerialScheduler
from repro.graph.scheduler.stats import ExecutionStats, NodeStat
from repro.graph.scheduler.threaded import ThreadedScheduler


@dataclasses.dataclass(frozen=True)
class SchedulerSpec:
    """Static description of one execution strategy."""

    name: str
    factory: Callable[..., Scheduler]
    #: runs backend.apply concurrently; the session falls back to the
    #: serial strategy on engines without ``supports_parallel_apply``.
    requires_parallel_apply: bool = False
    description: str = ""

    def create(self, backend, **kwargs) -> Scheduler:
        return self.factory(backend, **kwargs)


class ExecutorRegistry:
    """Name -> :class:`SchedulerSpec` lookup; sessions create instances."""

    def __init__(self, specs: Iterable[SchedulerSpec] = ()):
        self._specs: Dict[str, SchedulerSpec] = {}
        for spec in specs:
            self.register(spec)

    def register(self, spec: SchedulerSpec,
                 replace: bool = False) -> SchedulerSpec:
        key = spec.name.lower()
        if key in self._specs and not replace:
            raise ValueError(f"strategy {spec.name!r} already registered")
        self._specs[key] = spec
        return spec

    def spec(self, name: str) -> SchedulerSpec:
        key = str(name).lower()
        if key not in self._specs:
            raise ValueError(
                f"unknown executor strategy {name!r}; "
                f"choose from {self.names()}"
            )
        return self._specs[key]

    def create(self, name: str, backend, **kwargs) -> Scheduler:
        """A fresh scheduler instance for one execution."""
        return self.spec(name).create(backend, **kwargs)

    def names(self) -> List[str]:
        return sorted(self._specs)

    def __contains__(self, name: str) -> bool:
        return str(name).lower() in self._specs


#: The stock registry with the five shipped strategies.
DEFAULT_EXECUTORS = ExecutorRegistry([
    SchedulerSpec(
        "serial", SerialScheduler,
        description="one node at a time in topological order",
    ),
    SchedulerSpec(
        "threaded", ThreadedScheduler,
        requires_parallel_apply=True,
        description="ready-queue worker pool with memory-aware admission",
    ),
    SchedulerSpec(
        "fused", FusedScheduler,
        description="serial over fused linear single-consumer chains",
    ),
    SchedulerSpec(
        "process", ProcessScheduler,
        requires_parallel_apply=True,
        description="fused chains shipped to a process pool via the "
                    "pickle seam; inline fallback for unpicklable tasks",
    ),
    SchedulerSpec(
        "async", AsyncScheduler,
        requires_parallel_apply=True,
        description="asyncio event-loop scheduling with an awaitable "
                    "execute_async for concurrent collects",
    ),
])


__all__ = [
    "AsyncScheduler",
    "DEFAULT_EXECUTORS",
    "ExecutionError",
    "ExecutionStats",
    "ExecutorRegistry",
    "FusedScheduler",
    "NodeStat",
    "ProcessScheduler",
    "Scheduler",
    "SchedulerSpec",
    "SerialScheduler",
    "ThreadedScheduler",
    "fuse_linear_chains",
]
