"""The async strategy: event-loop scheduling for concurrent collects.

ROADMAP item 3 (a multi-tenant serving layer) needs a seam where many
concurrent ``collect()`` requests multiplex over one scheduler without
a coordination thread per request.  This strategy provides it:
scheduling decisions run on an asyncio event loop, nodes execute in the
loop's default thread-pool executor (``backend.apply`` holds the GIL
only as much as the threaded strategy's workers do), and an
``asyncio.Semaphore`` sized by ``executor.max_workers`` bounds
concurrency.

Two entry points:

- :meth:`Scheduler.execute` (the synchronous contract every strategy
  honours) spins up a private event loop per call -- sessions use this
  transparently when ``executor.strategy`` is ``"async"``.
- :meth:`AsyncScheduler.execute_async` is a coroutine for callers that
  already own a loop: a server awaits many of these concurrently on
  *one* scheduler instance, and the per-execution state (ready sets,
  refcounts, stats) is local to each call -- only the advisory
  estimate/priority maps are shared, and those merge by process-unique
  node id.  ``last_stats`` reflects the most recently *started*
  execution; concurrent servers should read each call's stats object
  instead.

Ready nodes are admitted in (static priority, node id) order -- the
memory-aware static order of :mod:`repro.graph.scheduler.order` -- and
input release happens on the loop thread after each completion, so the
section-2.6 eager-release rule needs no locks here.

Requires an engine with ``supports_parallel_apply`` (concurrent
``backend.apply`` calls); sessions fall back to serial otherwise.
"""

from __future__ import annotations

import asyncio
import heapq
import time
from typing import Dict, List, Sequence, Set, Tuple

from repro.graph.node import Node
from repro.graph.scheduler.base import Scheduler
from repro.graph.scheduler.stats import ExecutionStats
from repro.graph.taskgraph import (
    consumers_by_id,
    dependency_counts,
    ready_nodes,
)


class AsyncScheduler(Scheduler):
    """Event-loop scheduling; nodes run in the loop's thread pool."""

    name = "async"
    prefetches_ranges = True

    def __init__(self, backend, *, session=None, memory=None,
                 max_workers=None, static_order=True):
        super().__init__(backend, session=session, memory=memory,
                         max_workers=max_workers or 4,
                         static_order=static_order)

    # -- synchronous contract ---------------------------------------------

    def _run(self, order: List[Node], refcounts: Dict[int, int],
             root_ids: set, stats: ExecutionStats) -> None:
        loop = asyncio.new_event_loop()
        try:
            loop.run_until_complete(
                self._arun(order, refcounts, root_ids, stats)
            )
            loop.run_until_complete(loop.shutdown_default_executor())
        finally:
            loop.close()

    # -- async contract (the serving-layer seam) --------------------------

    async def execute_async(self, roots: Sequence[Node]) -> List[object]:
        """Awaitable :meth:`~Scheduler.execute`: compute ``roots`` on
        the *current* event loop.  Safe to await concurrently on one
        scheduler instance; see the module docstring."""
        stats = self._begin_stats()
        io_counters, io_before = self._begin_io()
        order, refcounts, root_ids = self._plan(roots, stats)
        prefetched_urls = self._issue_prefetch(order)
        started = time.perf_counter()
        try:
            await self._arun(order, refcounts, root_ids, stats)
            results = self._materialize_roots(roots)
        finally:
            stats.wall_seconds = time.perf_counter() - started
            stats.manager_peak_bytes = self.memory.peak
            self._finish_io(stats, io_counters, io_before, prefetched_urls)
        return results

    # -- the scheduling coroutine -----------------------------------------

    async def _arun(self, order: List[Node], refcounts: Dict[int, int],
                    root_ids: set, stats: ExecutionStats) -> None:
        loop = asyncio.get_running_loop()
        dep_counts = dependency_counts(order)
        consumers = consumers_by_id(order)
        total = len(order)
        done = 0
        ready: List[Tuple[int, int, Node]] = []
        ready_since: Dict[int, float] = {}

        def push_ready(node: Node, when: float) -> None:
            priority = self._priorities.get(node.id, node.id)
            heapq.heappush(ready, (priority, node.id, node))
            ready_since[node.id] = when

        now = time.perf_counter()
        for node in ready_nodes(order, dep_counts):
            push_ready(node, now)

        def finish(node: Node) -> None:
            # Loop thread only: propagate readiness (serialized by the
            # event loop, so no coordination lock).
            completed_at = time.perf_counter()
            for consumer in consumers.get(node.id, ()):
                dep_counts[consumer.id] -= 1
                if dep_counts[consumer.id] == 0:
                    push_ready(consumer, completed_at)

        async def run_node(node: Node) -> Node:
            queue_wait = max(
                0.0,
                time.perf_counter()
                - ready_since.get(node.id, time.perf_counter()),
            )
            await loop.run_in_executor(
                None, self._call_with_session, node, stats, queue_wait
            )
            return node

        # Admission pops the priority heap only when a slot frees (no
        # semaphore): turning every ready node into a task up front
        # would queue later, *higher*-priority nodes behind earlier
        # FIFO waiters, breaking the memory-aware static order under
        # contention -- measurably higher peaks than the threaded
        # strategy at the same max_workers.
        in_flight: Set[asyncio.Task] = set()
        try:
            while done < total:
                while ready and len(in_flight) < self.max_workers:
                    node = heapq.heappop(ready)[2]
                    if node.computed:
                        # cached (persisted) result; inputs not re-read
                        stats.record_cache_hit()
                        done += 1
                        finish(node)
                        continue
                    in_flight.add(asyncio.ensure_future(run_node(node)))
                if done >= total:
                    break
                if not in_flight:  # pragma: no cover - defensive
                    raise RuntimeError(
                        f"async scheduler stalled with {total - done} "
                        "nodes unreachable"
                    )
                finished, in_flight = await asyncio.wait(
                    in_flight, return_when=asyncio.FIRST_COMPLETED
                )
                for task in finished:
                    node = task.result()  # re-raises node errors
                    done += 1
                    # Eager release before the next admission round, so
                    # a freed slot never starts a node while this one's
                    # inputs are still live.
                    self._release_inputs(node, refcounts, root_ids)
                    finish(node)
        except BaseException:
            # A node failed (or the caller cancelled us): let already-
            # running nodes drain -- executor threads cannot be
            # interrupted -- then surface the original error.
            for task in in_flight:
                task.cancel()
            await asyncio.gather(*in_flight, return_exceptions=True)
            raise

    # -- executor-thread shim ---------------------------------------------

    def _call_with_session(self, node: Node, stats: ExecutionStats,
                           queue_wait: float) -> None:
        """Run one node on an executor thread with the owning session
        active, so mid-node buffer allocations charge the right
        manager (the loop's default pool threads are shared and
        long-lived, so activation is per-call, not per-thread)."""
        if self.session is not None:
            self.session.activate()
        try:
            self._execute_node(node, stats, queue_wait=queue_wait)
        finally:
            if self.session is not None:
                self.session.deactivate()
