"""Per-node byte estimates for memory-aware admission.

Closes the PR 2 seam: the threaded scheduler's admission throttle used
to be all-or-nothing (any headroom admits any node).  This module gives
every node a *predicted in-memory size* so admission can ask the real
question -- "does THIS node fit in the remaining headroom?":

- source nodes get width x rows from statistics: ``scan`` nodes ask
  their :class:`~repro.io.source.DataSource` (per-partition byte/row
  estimates from the metastore, narrowed by folded projection and
  pruned partitions), ``read_csv`` nodes ask the metastore directly,
  falling back to the file size on disk,
- operator nodes use a simple width x rows propagation: row-preserving
  and filtering operators are bounded by their largest input, scalar
  aggregations shrink to a constant, everything unknown stays unknown.

Estimates are advisory: a missing estimate degrades that node to the
old all-or-nothing behaviour, never blocks execution, and the recorded
estimated-vs-actual pairs in
:class:`~repro.graph.scheduler.stats.ExecutionStats` are how the
heuristic is audited.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence

from repro.graph.node import Node

#: a scalar result (aggregate, len) is a few machine words.
_SCALAR_BYTES = 64


def estimate_node_bytes(
    order: Sequence[Node], session
) -> Dict[int, int]:
    """Estimated output bytes per node id (absent = unknown).

    ``order`` must be topological (estimates propagate forward).
    """
    metastore = getattr(session, "metastore", None) if session else None
    estimates: Dict[int, Optional[int]] = {}
    for node in order:
        estimates[node.id] = _estimate(node, estimates, metastore)
    return {k: v for k, v in estimates.items() if v is not None}


def _estimate(
    node: Node,
    estimates: Dict[int, Optional[int]],
    metastore,
) -> Optional[int]:
    op = node.op
    if op == "scan":
        return _scan_estimate(node, metastore)
    if op == "read_csv":
        return _read_csv_estimate(node, metastore)
    if op in ("from_data", "from_pandas"):
        payload = node.args.get("data") or node.args.get("frame")
        nbytes = getattr(payload, "nbytes", None)
        return int(nbytes) if isinstance(nbytes, (int, float)) else None
    if node.spec.scalar:
        return _SCALAR_BYTES
    inherited = [
        estimates.get(inp.id) for inp in node.inputs
        if estimates.get(inp.id) is not None
    ]
    if not inherited:
        return None
    if op in ("head", "tail"):
        # a handful of rows: negligible next to its input.
        return min(max(inherited), 4096)
    if op in ("merge", "concat"):
        return sum(inherited)
    # Row-preserving transforms, filters, aggregations: bounded by the
    # widest input (filters and group-bys only shrink it).
    return max(inherited)


def _scan_estimate(node: Node, metastore) -> Optional[int]:
    stamped = node.args.get("est_bytes")
    if stamped is not None:
        # the pruning pass computed this with the source in hand; reuse
        # it instead of re-listing partitions from the filesystem.
        return int(stamped)
    from repro.io.registry import resolve_source

    try:
        source = resolve_source(node.args, metastore=metastore)
        return source.estimated_bytes(
            columns=node.args.get("columns"),
            partitions=node.args.get("partitions"),
        )
    except Exception:  # noqa: BLE001 - missing path, unknown format
        return None


def _read_csv_estimate(node: Node, metastore) -> Optional[int]:
    path = node.args.get("path")
    if path is None:
        return None
    meta = metastore.get(path) if metastore is not None else None
    if meta is not None:
        return meta.estimated_bytes(node.args.get("usecols"))
    try:
        return os.path.getsize(path)
    except OSError:
        return None
