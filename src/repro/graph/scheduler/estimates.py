"""Per-node byte estimates for memory-aware admission.

Closes the PR 2 seam: the threaded scheduler's admission throttle used
to be all-or-nothing (any headroom admits any node).  This module gives
every node a *predicted in-memory size* so admission can ask the real
question -- "does THIS node fit in the remaining headroom?":

- source nodes get width x rows from statistics: ``scan`` nodes ask
  their :class:`~repro.io.source.DataSource` (per-partition byte/row
  estimates from the metastore, narrowed by folded projection and
  pruned partitions), ``read_csv`` nodes ask the metastore directly,
  falling back to the file size on disk,
- operator nodes inherit their largest input's estimate and rescale it
  by the *inferred schema width ratio* (the analyzer's forward schema
  pass, :func:`repro.analysis.plan.schema.infer_schemas`): a projection
  keeping 2 of 10 equally-wide columns costs ~1/5 of its input, a
  series extraction costs one column, a setitem adds one.  Nodes whose
  schema is unknown keep the old bounded-by-largest-input behaviour.

Estimates are advisory: a missing estimate degrades that node to the
old all-or-nothing behaviour, never blocks execution, and the recorded
estimated-vs-actual pairs in
:class:`~repro.graph.scheduler.stats.ExecutionStats` are how the
heuristic is audited.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence

from repro.graph.node import Node

#: a scalar result (aggregate, len) is a few machine words.
_SCALAR_BYTES = 64

#: per-value in-memory widths by inferred dtype; strings are a pointer
#: plus a short heap payload, unknown dtypes split the difference.
_DTYPE_WIDTHS = {
    "int64": 8, "float64": 8, "bool": 1, "datetime64[ns]": 8,
    "category": 2,
}
_OBJECT_WIDTH = 32
_DEFAULT_WIDTH = 16


def estimate_node_bytes(
    order: Sequence[Node], session
) -> Dict[int, int]:
    """Estimated output bytes per node id (absent = unknown).

    ``order`` must be topological (estimates propagate forward).
    """
    metastore = getattr(session, "metastore", None) if session else None
    schemas = _infer_schemas(order, session)
    estimates: Dict[int, Optional[int]] = {}
    for node in order:
        estimates[node.id] = _estimate(node, estimates, metastore, schemas)
    return {k: v for k, v in estimates.items() if v is not None}


def _infer_schemas(order: Sequence[Node], session) -> dict:
    # Imported lazily: the analyzer sits above graph/ in the layering,
    # and estimation must keep working even if inference breaks.
    try:
        from repro.analysis.plan.schema import infer_schemas

        return infer_schemas(order, session)
    except Exception:  # noqa: BLE001 - estimates are advisory
        return {}


def schema_width(schema) -> Optional[int]:
    """Predicted per-row byte width of a node's inferred schema, or
    ``None`` when its columns are unknown (or it has none)."""
    columns = getattr(schema, "columns", None)
    if not columns:
        return None
    total = 0
    for column in columns:
        dtype = schema.dtype_of(column)
        if dtype is None:
            total += _DEFAULT_WIDTH
        elif dtype in _DTYPE_WIDTHS:
            total += _DTYPE_WIDTHS[dtype]
        elif dtype == "object":
            total += _OBJECT_WIDTH
        else:
            total += _DEFAULT_WIDTH
    return total


def _estimate(
    node: Node,
    estimates: Dict[int, Optional[int]],
    metastore,
    schemas: dict,
) -> Optional[int]:
    op = node.op
    if op == "scan":
        if node.args.get("stream"):
            # a streaming scan materializes nothing up front; its
            # consumer pays per partition
            return _SCALAR_BYTES
        return _scan_estimate(node, metastore)
    if op in ("shuffle_write", "shuffle_read"):
        # working set of the write, output size of the read: one bucket
        total = node.args.get("est_total")
        if total is None:
            return None
        buckets = max(1, int(node.args.get("n_buckets", 1)))
        return max(1, int(total) // buckets)
    if op == "partial_agg":
        # bounded by one partition of partials
        total = node.args.get("est_total")
        if total is None:
            return None
        parts = max(1, int(node.args.get("n_parts", 1)))
        return max(1, int(total) // parts)
    if op == "read_csv":
        return _read_csv_estimate(node, metastore)
    if op == "from_cached":
        nbytes = node.args.get("nbytes")
        return int(nbytes) if isinstance(nbytes, (int, float)) else None
    if op in ("from_data", "from_pandas"):
        payload = node.args.get("data") or node.args.get("frame")
        nbytes = getattr(payload, "nbytes", None)
        return int(nbytes) if isinstance(nbytes, (int, float)) else None
    if node.spec.scalar:
        return _SCALAR_BYTES
    widest: Optional[int] = None
    widest_input: Optional[Node] = None
    for inp in node.inputs:
        inherited = estimates.get(inp.id)
        if inherited is not None and (widest is None or inherited > widest):
            widest, widest_input = inherited, inp
    if widest is None or widest_input is None:
        return None
    if op in ("head", "tail"):
        # a handful of rows: negligible next to its input.
        return min(widest, 4096)
    if op in ("merge", "concat", "combine_agg"):
        return sum(
            e for e in (estimates.get(inp.id) for inp in node.inputs)
            if e is not None
        )
    # Row-preserving transforms, filters, aggregations: bounded by the
    # widest input, rescaled by the inferred width ratio when the schema
    # pass pinned down both sides' columns.
    out_width = schema_width(schemas.get(node.id))
    in_width = schema_width(schemas.get(widest_input.id))
    if out_width is not None and in_width:
        return max(1, (widest * out_width) // in_width)
    return widest


def _scan_estimate(node: Node, metastore) -> Optional[int]:
    stamped = node.args.get("est_bytes")
    if stamped is not None:
        # the pruning pass computed this with the source in hand; reuse
        # it instead of re-listing partitions from the filesystem.
        return int(stamped)
    from repro.io.registry import resolve_source

    try:
        source = resolve_source(node.args, metastore=metastore)
        return source.estimated_bytes(
            columns=node.args.get("columns"),
            partitions=node.args.get("partitions"),
        )
    except Exception:  # noqa: BLE001 - missing path, unknown format
        return None


def _read_csv_estimate(node: Node, metastore) -> Optional[int]:
    path = node.args.get("path")
    if path is None:
        return None
    meta = metastore.get(path) if metastore is not None else None
    if meta is not None:
        return meta.estimated_bytes(node.args.get("usecols"))
    try:
        return os.path.getsize(path)
    except OSError:
        return None
