"""Per-execution runtime statistics.

Every scheduler strategy fills one :class:`ExecutionStats` per
``collect()``: per-node wall time, queue wait (time between a node
becoming ready and starting to run), and bytes registered/released with
the session's memory manager while the node ran.  The object is surfaced
through ``LazyFrame.explain(stats=True)`` and the workload runner's
result JSON.

Byte attribution is exact under the serial and fused strategies; under
the threaded strategy concurrently-running nodes share the manager's
counters, so per-node bytes are an approximation (totals stay exact).
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, List, Optional


@dataclasses.dataclass
class NodeStat:
    """Runtime record of one executed task-graph node."""

    node_id: int
    op: str
    label: Optional[str]
    wall_seconds: float
    queue_wait_seconds: float
    bytes_registered: int
    bytes_released: int
    worker: str
    #: the scheduler's pre-execution size prediction (None = unknown);
    #: compare against ``bytes_registered`` to audit the estimator.
    bytes_estimated: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


class ExecutionStats:
    """Aggregated runtime statistics of one scheduler execution."""

    def __init__(self, strategy: str, effective_strategy: Optional[str] = None,
                 max_workers: int = 1):
        #: the strategy the session asked for (``executor.strategy``).
        self.strategy = strategy
        #: the strategy that actually ran (capability fallbacks may
        #: downgrade ``threaded`` to ``serial`` on lazy engines).
        self.effective_strategy = effective_strategy or strategy
        self.max_workers = max_workers
        self.wall_seconds = 0.0
        self.nodes_executed = 0
        self.cache_hits = 0
        #: cross-session result-cache accounting (``optimizer.reuse``):
        #: fingerprint probes that missed, serialized bytes served from
        #: the cache instead of recomputed, entries this run's inserts
        #: pushed out of the cache, and results inserted for later runs.
        #: ``cache_hits`` above counts both per-session persisted-node
        #: reuse and cross-session substitutions.
        self.cache_misses = 0
        self.cache_bytes_reused = 0
        self.cache_evictions = 0
        self.cache_inserted = 0
        self.fused_chains = 0
        self.fused_nodes = 0
        self.throttle_waits = 0
        self.bytes_registered = 0
        self.bytes_released = 0
        #: sum of per-node size predictions (nodes with one).
        self.bytes_estimated = 0
        #: scan-source partition accounting: how many partitions the
        #: executed scans actually read vs how many their sources have
        #: (pruning shows up as read < total).
        self.partitions_read = 0
        self.partitions_total = 0
        #: shuffle accounting: buckets written by shuffle_write nodes,
        #: bytes their stores pushed to spill files, and merges that
        #: took the broadcast fast path instead of shuffling.
        self.shuffle_partitions = 0
        self.bytes_spilled = 0
        self.broadcast_joins = 0
        #: was the memory-aware static ordering pass applied to this
        #: run's execution order (``executor.static_order``)?
        self.static_order = False
        #: predicted peak live bytes of the execution order actually
        #: used (the eager-release simulation over per-node estimates);
        #: None when the scheduler never planned an order.
        self.estimated_peak_bytes: Optional[int] = None
        #: filesystem-layer accounting (diffed from the session's
        #: IOCounters around the run): bytes actually fetched through
        #: the byte-range layer, ranges the scheduler prefetched, scan
        #: reads served from the prefetch cache, and transient range
        #: failures absorbed by the retry layer.
        self.bytes_read = 0
        self.ranges_prefetched = 0
        self.prefetch_hits = 0
        self.io_retries = 0
        #: process-strategy accounting: tasks shipped to pool workers,
        #: tasks that fell back to in-process execution (unpicklable
        #: args or results, stream/store inputs, side effects), and
        #: tasks re-run after a worker died mid-flight.
        self.process_tasks = 0
        self.process_fallbacks = 0
        self.process_retries = 0
        #: the session manager's high-water mark when the run finished.
        #: The manager's peak is *not* reset per run (the workload runner
        #: measures whole-program peaks on the same manager), so this can
        #: predate the run; per-run allocation volume is
        #: ``bytes_registered``.
        self.manager_peak_bytes = 0
        self.nodes: List[NodeStat] = []
        self._lock = threading.Lock()

    # -- recording (thread-safe) ----------------------------------------

    def record_node(self, node, wall_seconds: float, queue_wait_seconds: float,
                    bytes_registered: int, bytes_released: int,
                    worker: str,
                    bytes_estimated: Optional[int] = None) -> None:
        stat = NodeStat(
            node_id=node.id,
            op=node.op,
            label=node.label,
            wall_seconds=wall_seconds,
            queue_wait_seconds=queue_wait_seconds,
            bytes_registered=bytes_registered,
            bytes_released=bytes_released,
            worker=worker,
            bytes_estimated=bytes_estimated,
        )
        with self._lock:
            self.nodes.append(stat)
            self.nodes_executed += 1
            self.bytes_registered += bytes_registered
            self.bytes_released += bytes_released
            if bytes_estimated is not None:
                self.bytes_estimated += bytes_estimated

    def record_scan(self, partitions_read: int, partitions_total: int) -> None:
        with self._lock:
            self.partitions_read += partitions_read
            self.partitions_total += partitions_total

    def record_shuffle(self, n_buckets: int, bytes_spilled: int) -> None:
        with self._lock:
            self.shuffle_partitions += n_buckets
            self.bytes_spilled += bytes_spilled

    def record_broadcast_join(self) -> None:
        with self._lock:
            self.broadcast_joins += 1

    def record_process_task(self, shipped: bool) -> None:
        with self._lock:
            if shipped:
                self.process_tasks += 1
            else:
                self.process_fallbacks += 1

    def record_process_retry(self) -> None:
        with self._lock:
            self.process_retries += 1

    def record_cache_hit(self) -> None:
        with self._lock:
            self.cache_hits += 1

    def record_cache_run(self, hits: int, misses: int, bytes_reused: int,
                         evictions: int, inserted: int) -> None:
        """Publish one run's cross-session result-cache counters."""
        with self._lock:
            self.cache_hits += hits
            self.cache_misses += misses
            self.cache_bytes_reused += bytes_reused
            self.cache_evictions += evictions
            self.cache_inserted += inserted

    def record_io(self, bytes_read: int = 0, ranges_prefetched: int = 0,
                  prefetch_hits: int = 0, io_retries: int = 0) -> None:
        """Publish one run's filesystem-layer counter deltas."""
        with self._lock:
            self.bytes_read += bytes_read
            self.ranges_prefetched += ranges_prefetched
            self.prefetch_hits += prefetch_hits
            self.io_retries += io_retries

    def record_throttle_wait(self) -> None:
        with self._lock:
            self.throttle_waits += 1

    def record_fused_chain(self, length: int) -> None:
        with self._lock:
            self.fused_chains += 1
            self.fused_nodes += length

    # -- export ----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dict (the workload runner embeds this verbatim)."""
        return {
            "strategy": self.strategy,
            "effective_strategy": self.effective_strategy,
            "max_workers": self.max_workers,
            "wall_seconds": self.wall_seconds,
            "nodes_executed": self.nodes_executed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_bytes_reused": self.cache_bytes_reused,
            "cache_evictions": self.cache_evictions,
            "cache_inserted": self.cache_inserted,
            "fused_chains": self.fused_chains,
            "fused_nodes": self.fused_nodes,
            "throttle_waits": self.throttle_waits,
            "bytes_registered": self.bytes_registered,
            "bytes_released": self.bytes_released,
            "bytes_estimated": self.bytes_estimated,
            "partitions_read": self.partitions_read,
            "partitions_total": self.partitions_total,
            "shuffle_partitions": self.shuffle_partitions,
            "bytes_spilled": self.bytes_spilled,
            "broadcast_joins": self.broadcast_joins,
            "bytes_read": self.bytes_read,
            "ranges_prefetched": self.ranges_prefetched,
            "prefetch_hits": self.prefetch_hits,
            "io_retries": self.io_retries,
            "static_order": self.static_order,
            "estimated_peak_bytes": self.estimated_peak_bytes,
            "process_tasks": self.process_tasks,
            "process_fallbacks": self.process_fallbacks,
            "process_retries": self.process_retries,
            "manager_peak_bytes": self.manager_peak_bytes,
            "nodes": [stat.to_dict() for stat in self.nodes],
        }

    def render(self) -> str:
        """Terminal rendering for ``explain(stats=True)``."""
        head = (
            f"strategy={self.strategy}"
            + (f" (ran as {self.effective_strategy})"
               if self.effective_strategy != self.strategy else "")
            + f" workers={self.max_workers}"
            f" nodes={self.nodes_executed} cache_hits={self.cache_hits}"
            f" wall={self.wall_seconds:.4f}s"
            f" manager_peak={self.manager_peak_bytes}B"
        )
        lines = [head]
        if (self.cache_misses or self.cache_bytes_reused
                or self.cache_evictions or self.cache_inserted):
            lines.append(
                f"result cache: {self.cache_bytes_reused}B reused, "
                f"{self.cache_misses} misses, "
                f"{self.cache_inserted} inserted, "
                f"{self.cache_evictions} evictions"
            )
        if self.fused_chains:
            lines.append(
                f"fused {self.fused_nodes} nodes into {self.fused_chains} chains"
            )
        if self.throttle_waits:
            lines.append(f"memory throttle waits: {self.throttle_waits}")
        if self.partitions_total:
            lines.append(
                f"scan partitions read: {self.partitions_read}"
                f"/{self.partitions_total}"
            )
        if self.shuffle_partitions:
            lines.append(
                f"shuffle buckets: {self.shuffle_partitions} "
                f"(spilled {self.bytes_spilled}B)"
            )
        if self.broadcast_joins:
            lines.append(f"broadcast joins: {self.broadcast_joins}")
        if (self.bytes_read or self.ranges_prefetched
                or self.prefetch_hits or self.io_retries):
            lines.append(
                f"io: {self.bytes_read}B read, "
                f"{self.ranges_prefetched} ranges prefetched, "
                f"{self.prefetch_hits} prefetch hits, "
                f"{self.io_retries} retries"
            )
        if self.estimated_peak_bytes is not None:
            lines.append(
                f"estimated peak live bytes: {self.estimated_peak_bytes}"
                + (" (static order)" if self.static_order else "")
            )
        if self.process_tasks or self.process_fallbacks:
            line = (
                f"process tasks: {self.process_tasks} shipped, "
                f"{self.process_fallbacks} inline"
            )
            if self.process_retries:
                line += f", {self.process_retries} retried"
            lines.append(line)
        for stat in self.nodes:
            label = f" {stat.label}" if stat.label else ""
            estimate = (
                f" est={stat.bytes_estimated}B"
                if stat.bytes_estimated is not None else ""
            )
            lines.append(
                f"  node {stat.node_id} {stat.op}{label}: "
                f"{stat.wall_seconds * 1e3:.2f}ms "
                f"(+{stat.queue_wait_seconds * 1e3:.2f}ms queued) "
                f"reg={stat.bytes_registered}B rel={stat.bytes_released}B"
                f"{estimate} [{stat.worker}]"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ExecutionStats {self.effective_strategy} "
            f"nodes={self.nodes_executed} wall={self.wall_seconds:.4f}s>"
        )
