"""Memory-aware static ordering of a task subgraph (ROADMAP item 2).

PR 7 made the threaded ready queue a *dynamic* priority heap (biggest
estimated bytes released first).  This module is the static half: a
whole-plan ordering pass, in the spirit of dask's ``dask/order.py``,
that picks *which branch to finish first* so the fewest intermediate
results are alive at once.  The serial and fused strategies consume it
directly as their execution order; the threaded and process strategies
use it as the heap tie-break ahead of the node id, so equally-releasing
candidates are admitted in the memory-minimizing order.

The assignment is a generalized Sethi--Ullman numbering over byte
estimates (:mod:`repro.graph.scheduler.estimates`):

1. Bottom-up, every node gets a *subtree peak*: evaluating child ``c``
   costs ``peak(c)`` transient bytes and leaves ``est(c)`` resident, so
   evaluating children in decreasing ``peak(c) - est(c)`` order
   provably minimizes the running maximum for a tree (shared DAG nodes
   make it a heuristic, which is all an advisory pass can be).
2. A depth-first post-order walk from the roots, visiting children in
   that per-node order, assigns each node its visit index as its
   **priority** (lower runs earlier).  First visit wins on shared
   nodes, so the priority map is a total order consistent with some
   topological order.

Nodes without a byte estimate count zero, which degrades the pass to a
plain depth-first post-order -- still better than interleaving branches
by node id, because depth-first finishes one branch (and releases it)
before touching the next.  The pass never changes *what* runs: only the
relative order of independent nodes, validated by re-running Kahn with
the priorities as the tie-break.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Sequence, Set

from repro.graph.node import Node
from repro.graph.taskgraph import (
    consumers_by_id,
    dependency_counts,
    initial_refcounts,
)


def static_priorities(
    order: Sequence[Node], estimates: Dict[int, int]
) -> Dict[int, int]:
    """Node id -> execution priority (lower = earlier), covering every
    node in ``order``.  ``order`` must be topological (deps first)."""
    in_graph = {node.id for node in order}

    def est(node_id: int) -> int:
        return estimates.get(node_id, 0)

    # Bottom-up subtree peaks + the greedy per-node child order.
    peak: Dict[int, int] = {}
    child_order: Dict[int, List[Node]] = {}
    for node in order:
        deps: List[Node] = []
        seen: Set[int] = set()
        for dep in node.all_deps():
            if dep.id in in_graph and dep.id not in seen:
                seen.add(dep.id)
                deps.append(dep)
        ranked = sorted(
            deps,
            key=lambda d: (-(peak.get(d.id, 0) - est(d.id)), d.id),
        )
        child_order[node.id] = ranked
        held = 0
        highest = 0
        for dep in ranked:
            highest = max(highest, held + peak.get(dep.id, 0))
            held += est(dep.id)
        peak[node.id] = max(highest, held + est(node.id))

    # Depth-first post-order from the roots (nodes nothing consumes),
    # children in greedy order; the visit index is the priority.
    consumed: Set[int] = set()
    for node in order:
        for dep in child_order[node.id]:
            consumed.add(dep.id)
    roots = [node for node in order if node.id not in consumed]

    priorities: Dict[int, int] = {}
    counter = 0
    for root in roots:
        # Iterative two-phase DFS (plans can be thousands-deep chains).
        stack: List[tuple] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if node.id in priorities:
                continue
            if expanded:
                priorities[node.id] = counter
                counter += 1
                continue
            stack.append((node, True))
            # Reversed so ranked[0] is expanded (and numbered) first.
            for dep in reversed(child_order[node.id]):
                if dep.id not in priorities:
                    stack.append((dep, False))
    return priorities


def priority_topological_order(
    order: Sequence[Node], priorities: Dict[int, int]
) -> List[Node]:
    """Re-sort ``order`` topologically with ``priorities`` breaking
    every tie -- the memory-minimizing serial execution order.

    Kahn's algorithm over all edges (data and ordering) with a
    (priority, node id) heap: the result respects exactly the
    dependencies the schedulers respect, so substituting it for the
    DFS order can never run a node before its inputs.
    """
    dep_counts = dependency_counts(order)
    consumers = consumers_by_id(order)
    by_id = {node.id: node for node in order}
    ready = [
        (priorities.get(node.id, node.id), node.id)
        for node in order
        if dep_counts[node.id] == 0
    ]
    heapq.heapify(ready)
    result: List[Node] = []
    while ready:
        _, node_id = heapq.heappop(ready)
        node = by_id[node_id]
        result.append(node)
        for consumer in consumers.get(node_id, ()):
            dep_counts[consumer.id] -= 1
            if dep_counts[consumer.id] == 0:
                heapq.heappush(
                    ready,
                    (priorities.get(consumer.id, consumer.id), consumer.id),
                )
    if len(result) != len(order):  # pragma: no cover - defensive
        return list(order)
    return result


def simulate_peak_bytes(
    exec_order: Sequence[Node],
    estimates: Dict[int, int],
    root_ids: Set[int],
) -> int:
    """Predicted peak live bytes of running ``exec_order`` serially.

    Replays the section-2.6 eager-release rule over the byte estimates:
    a node's output goes live when it runs and dies when its last
    consumer has run (roots and persisted nodes stay live).  This is
    the number ``explain(stats=True)`` reports as the estimated peak,
    and what the static ordering pass is trying to minimize; nodes
    without an estimate contribute zero.
    """
    refcounts = initial_refcounts(exec_order)
    held: Dict[int, int] = {}
    live = 0
    peak = 0
    for node in exec_order:
        if node.computed:
            continue
        size = estimates.get(node.id, 0)
        held[node.id] = size
        live += size
        peak = max(peak, live)
        # Mirrors Scheduler._release_inputs, duplicates included.
        for inp in node.inputs:
            if inp.id not in refcounts:
                continue
            refcounts[inp.id] -= 1
            if (
                refcounts[inp.id] == 0
                and inp.id not in root_ids
                and not inp.persist
            ):
                live -= held.pop(inp.id, 0)
    return peak
