"""The threaded strategy: partition-aware ready-queue execution.

Independent task-graph nodes run concurrently on a worker pool sized by
``executor.max_workers``.  The coordinator keeps a ready queue fed by
scheduling in-degrees over *all* edges (data and ordering, so lazy-print
chains stay in program order), releases inputs under one coordination
lock as their last consumer finishes (the section-2.6 eager release made
thread-safe), and guards each node's result slot with a per-node lock.

The ready queue is a priority heap ordered by (estimated bytes released
by running the node, node id): nodes that free the most tracked memory
are admitted first, and the node-id tie-break makes the admission order
deterministic across runs (ROADMAP item 2's arbitrary ties) -- which
keeps spill-path tests stable.

Memory-aware admission: when the session's manager has a budget, a
candidate node is admitted only while its *predicted* footprint (the
per-node byte estimates of :mod:`repro.graph.scheduler.estimates`:
metastore width x rows for scans and reads, propagated through
operators) fits the remaining headroom; nodes without an estimate fall
back to the old all-or-nothing check (any positive headroom admits).
Once admission pauses, it resumes as running nodes complete (completions
release inputs, freeing tracked bytes) -- throttling instead of
OOM-ing.  At least one node is always in flight, so progress is
guaranteed.

Worker threads activate the owning session so ``current_session()`` --
and therefore the per-session memory manager every
:class:`~repro.memory.manager.TrackedBuffer` resolves -- is correct
inside backend calls.

Requires an engine whose :class:`~repro.backends.engine.EngineSpec`
declares ``supports_parallel_apply``; sessions fall back to the serial
strategy otherwise (lazy simulators build expression graphs where
per-node parallelism buys nothing and shared stores are not
thread-safe).
"""

from __future__ import annotations

import heapq
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.graph.node import Node
from repro.graph.scheduler.base import Scheduler
from repro.graph.scheduler.stats import ExecutionStats
from repro.graph.taskgraph import (
    consumers_by_id,
    dependency_counts,
    ready_nodes,
)


class ThreadedScheduler(Scheduler):
    """Ready-queue scheduler over a thread pool."""

    name = "threaded"
    prefetches_ranges = True

    def __init__(self, backend, *, session=None, memory=None,
                 max_workers=None, static_order=True):
        super().__init__(backend, session=session, memory=memory,
                         max_workers=max_workers or 4,
                         static_order=static_order)

    def _run(self, order: List[Node], refcounts: Dict[int, int],
             root_ids: set, stats: ExecutionStats) -> None:
        from concurrent.futures import ThreadPoolExecutor

        dep_counts = dependency_counts(order)
        consumers = consumers_by_id(order)
        node_locks = {node.id: threading.Lock() for node in order}
        cond = threading.Condition()
        # priority heap: (-estimated bytes released, static priority,
        # node id, node) -- deterministic admission, biggest memory
        # release first, then the memory-aware static order.
        ready: List[Tuple[int, int, int, Node]] = []
        ready_since: Dict[int, float] = {}
        total = len(order)
        state = {"done": 0, "in_flight": 0}
        errors: List[BaseException] = []

        def push_ready(node: Node) -> None:
            released = sum(
                self._estimates.get(inp.id, 0) for inp in node.inputs
            )
            priority = self._priorities.get(node.id, node.id)
            heapq.heappush(ready, (-released, priority, node.id, node))

        now = time.perf_counter()
        for node in ready_nodes(order, dep_counts):
            push_ready(node)
            ready_since[node.id] = now

        def clear_locked(inp: Node) -> None:
            with node_locks[inp.id]:
                inp.clear_result()

        def finish(node: Node, release: bool) -> None:
            # Caller holds ``cond``: propagate completion to consumers and
            # run the eager-release rule under the coordination lock.
            state["done"] += 1
            done_at = time.perf_counter()
            for consumer in consumers.get(node.id, ()):
                dep_counts[consumer.id] -= 1
                if dep_counts[consumer.id] == 0:
                    push_ready(consumer)
                    ready_since[consumer.id] = done_at
            if release:
                self._release_inputs(node, refcounts, root_ids,
                                     clear=clear_locked)

        def worker(node: Node, enqueued_at: float) -> None:
            queue_wait = max(0.0, time.perf_counter() - enqueued_at)
            error = None
            try:
                with node_locks[node.id]:
                    self._execute_node(node, stats, queue_wait=queue_wait)
            except BaseException as exc:  # noqa: BLE001 - reported to caller
                error = exc
            with cond:
                state["in_flight"] -= 1
                if error is not None:
                    errors.append(error)
                    state["done"] += 1  # consumers stay blocked; loop exits
                else:
                    finish(node, release=True)
                cond.notify_all()

        with ThreadPoolExecutor(
            max_workers=self.max_workers,
            thread_name_prefix="lafp-worker",
            initializer=self._bind_session,
        ) as pool:
            with cond:
                stalled = False
                while state["done"] < total and not errors:
                    while ready and state["in_flight"] < self.max_workers:
                        head = ready[0][3]
                        if head.computed:
                            # cached (persisted) result; inputs not re-read
                            stats.record_cache_hit()
                            finish(heapq.heappop(ready)[3], release=False)
                            continue
                        if self._throttled(state["in_flight"], head):
                            # one throttle event per stall, however many
                            # timeout wakeups re-observe it.
                            if not stalled:
                                stats.record_throttle_wait()
                                stalled = True
                            break
                        stalled = False
                        node = heapq.heappop(ready)[3]
                        state["in_flight"] += 1
                        pool.submit(
                            worker, node,
                            ready_since.get(node.id, time.perf_counter()),
                        )
                    if state["done"] >= total or errors:
                        break
                    # Nothing more can be admitted right now (queue empty,
                    # pool full, or memory-throttled): wait for a
                    # completion.  The timeout is a liveness backstop.
                    cond.wait(timeout=0.5)
                while state["in_flight"]:
                    cond.wait()
        if errors:
            raise errors[0]

    # -- admission control ------------------------------------------------

    def _throttled(self, in_flight: int, node: Optional[Node] = None) -> bool:
        """True when admitting ``node`` should pause for memory headroom.

        With a per-node byte estimate the check is sized: the node is
        held back while its predicted footprint exceeds the remaining
        headroom.  Without one it degrades to the all-or-nothing rule
        (any positive headroom admits).  Never throttles the only
        candidate -- with nothing in flight the node must run (and
        possibly OOM) or the graph would deadlock.
        """
        if in_flight == 0:
            return False
        headroom = self.memory.headroom()
        if headroom is None:
            return False
        estimate = self._estimates.get(node.id) if node is not None else None
        if estimate is None:
            return headroom <= 0
        return headroom < estimate

    # -- worker-thread session binding ------------------------------------

    def _bind_session(self) -> None:
        """Push the owning session onto this worker's thread-local stack.

        Workers live exactly as long as the pool (one pool per
        ``execute``), so the stack entry dies with the thread -- no
        explicit deactivation needed.
        """
        if self.session is not None:
            self.session.activate()
