"""The process strategy: ship pure pipeline tasks to a worker pool.

The GIL caps the threaded strategy on CPU-bound operators (string
methods, Python-level ``apply``); this strategy runs them on a
``ProcessPoolExecutor`` instead.  The unit of shipping is a *task* --
one fused linear chain (:func:`~repro.graph.scheduler.fused.
fuse_linear_chains`), so a scan -> filter -> project pipeline crosses
the process boundary once, not once per node.

A task ships through the pickle seam PR 2 called out: its steps are
``(op, args, input_slots)`` triples (``Partition`` lists and predicate
conjuncts in ``args`` are serializable by design) plus the pickled
external input frames; a worker replays them against its own backend
instance and returns the pickled final result.  The parent unpickles
that result on the coordination thread -- where the owning session is
active -- so the rebuilt :class:`~repro.frame.column.Column` buffers
register with the *parent session's* memory manager: result-size
accounting is charged back exactly as if the node had run in-process.

Graceful fallback keeps the strategy total: tasks whose args or inputs
do not pickle (lambdas in ``apply``/``map``), side-effect ops (prints
must appear on the parent's stdout, in program order), shuffle-store
and partition-stream plumbing (live locks / single-use iterators), and
workers that return an unpicklable result all run inline on the
coordination thread instead, with the session's spill-retry and
accounting semantics unchanged.  Engines without
``supports_parallel_apply`` never reach this class (the session falls
back to serial).

Fault tolerance: shipped tasks are pure functions of already-
materialized inputs, so when a worker dies mid-task
(``BrokenProcessPool``) the pool is discarded, a fresh one is built,
and the task is re-run up to ``executor.process_retries`` times before
an :class:`~repro.graph.scheduler.base.ExecutionError` surfaces.  On
that error every result this run produced is dropped first, so the
memory budget and any spill files are reclaimed.

Workers are started through the session's cached pool
(:meth:`~repro.core.session.Session.process_pool`; ``fork`` where
available -- ``executor.process_start_method`` overrides) and
initialized by :func:`_pool_worker_init`: forked children inherit the
parent's session stack, simulated budget, and live spill-store
finalizers, none of which belong to them (the ``os.register_at_fork``
hooks in ``repro.core.session`` and ``repro.io.spill`` clear the
dangerous parts for *any* fork; the initializer resets the rest).
"""

from __future__ import annotations

import heapq
import pickle
import time
from typing import Dict, List, Optional, Set, Tuple

from repro.graph.node import Node
from repro.graph.scheduler.base import ExecutionError, Scheduler
from repro.graph.scheduler.fused import fuse_linear_chains
from repro.graph.scheduler.stats import ExecutionStats

#: ops that must run in the parent whatever their picklability: shuffle
#: stores hold locks and parent-side spill directories, streams are
#: single-use iterators over parent file handles.
_INLINE_OPS = frozenset({"shuffle_write", "shuffle_read"})


# ---------------------------------------------------------------------------
# Worker side (these run inside pool processes).
# ---------------------------------------------------------------------------

#: the worker's backend instance, built once by the pool initializer.
_WORKER_BACKEND = None


class _StepNode:
    """The slice of :class:`~repro.graph.node.Node` the backend dispatch
    reads (``apply_generic`` and the shuffle ops use ``op`` and ``args``
    only), rebuilt worker-side from a shipped step."""

    __slots__ = ("op", "args")

    def __init__(self, op: str, args: dict) -> None:
        self.op = op
        self.args = args


class _UnpicklableResult:
    """Marker a worker returns instead of a result that will not
    pickle; the parent re-runs the task inline."""

    __slots__ = ("type_name",)

    def __init__(self, type_name: str) -> None:
        self.type_name = type_name


def _pool_worker_init(backend_name: str) -> None:
    """Pool initializer: give the worker a clean runtime of its own.

    Runs in the child.  Fork-started workers inherit the parent's root
    session (whose options may carry a simulated budget) -- a worker
    must never OOM against the parent's budget, so the root session is
    rebuilt and the process manager unbudgeted.  Spawn-started workers
    import everything fresh and this is a no-op beyond backend setup.
    """
    global _WORKER_BACKEND
    from repro.backends.engine import DEFAULT_REGISTRY
    from repro.core.session import reset_root_session
    from repro.memory.manager import memory_manager

    reset_root_session(backend=backend_name)
    memory_manager.budget = None
    _WORKER_BACKEND = DEFAULT_REGISTRY.create(backend_name).backend


def _run_task(payload: bytes) -> bytes:
    """Replay one shipped task; returns the pickled final result.

    ``payload`` decodes to ``(steps, externals)``: each step is
    ``(op, args, slots)`` where a slot ``("ext", i)`` reads the i-th
    external input and ``("step", j)`` the j-th step's output.
    Exceptions propagate (the pool pickles them back to the parent).
    """
    steps, externals = pickle.loads(payload)
    backend = _WORKER_BACKEND
    assert backend is not None, "worker pool initializer did not run"
    results: List[object] = []
    for op, args, slots in steps:
        inputs = [
            externals[index] if kind == "ext" else results[index]
            for kind, index in slots
        ]
        results.append(backend.apply(_StepNode(op, args), inputs))
    final = results[-1]
    try:
        return pickle.dumps(final, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:  # noqa: BLE001 - anything unpicklable
        return pickle.dumps(_UnpicklableResult(type(final).__name__))


def create_worker_pool(max_workers: int, start_method: Optional[str],
                       backend_name: str):
    """A ``ProcessPoolExecutor`` whose workers run LaFP tasks.

    ``start_method=None`` picks ``fork`` where the platform has it
    (workers start in milliseconds and inherit loaded modules), else
    the platform default.  Sessions cache the pool across collects --
    see :meth:`repro.core.session.Session.process_pool`.
    """
    import multiprocessing
    from concurrent.futures import ProcessPoolExecutor

    if start_method is None:
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else None
    context = (
        multiprocessing.get_context(start_method)
        if start_method is not None else None
    )
    return ProcessPoolExecutor(
        max_workers=max(1, int(max_workers)),
        mp_context=context,
        initializer=_pool_worker_init,
        initargs=(backend_name,),
    )


# ---------------------------------------------------------------------------
# Parent side.
# ---------------------------------------------------------------------------


class ProcessScheduler(Scheduler):
    """Fused-chain tasks on a process pool, inline fallback otherwise."""

    name = "process"

    def __init__(self, backend, *, session=None, memory=None,
                 max_workers=None, static_order=True):
        super().__init__(backend, session=session, memory=memory,
                         max_workers=max_workers or 4,
                         static_order=static_order)
        #: pool created for a sessionless run, shut down afterwards.
        self._private_pool = None

    # -- pool management ---------------------------------------------------

    def _retries(self) -> int:
        if self.session is not None:
            return int(self.session.options.get("executor.process_retries"))
        return 1

    def _pool(self):
        if self.session is not None:
            # pass the resolved size through: under max_workers="auto"
            # the per-run resolution in _plan must size the pool too.
            return self.session.process_pool(self.max_workers)
        if self._private_pool is None:
            self._private_pool = create_worker_pool(
                self.max_workers, None,
                getattr(self.backend, "name", "pandas"),
            )
        return self._private_pool

    def _discard_pool(self, pool) -> None:
        """The pool broke (a worker died): drop it so the next shipped
        task gets a fresh one."""
        if self.session is not None:
            self.session.discard_pool(pool)
            return
        if self._private_pool is pool:
            self._private_pool = None
        try:
            pool.shutdown(wait=True, cancel_futures=True)
        except Exception:  # noqa: BLE001 - broken pools may raise
            pass

    # -- strategy hook -----------------------------------------------------

    def _run(self, order: List[Node], refcounts: Dict[int, int],
             root_ids: set, stats: ExecutionStats) -> None:
        try:
            self._run_tasks(order, refcounts, root_ids, stats)
        finally:
            if self._private_pool is not None:
                self._private_pool.shutdown(wait=True, cancel_futures=True)
                self._private_pool = None

    def _run_tasks(self, order: List[Node], refcounts: Dict[int, int],
                   root_ids: set, stats: ExecutionStats) -> None:
        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures.process import BrokenProcessPool

        tasks = fuse_linear_chains(order, root_ids)
        node_task: Dict[int, int] = {}
        for index, chain in enumerate(tasks):
            for node in chain:
                node_task[node.id] = index

        # Task-level dependency graph (all edges, like the schedulers').
        indegree = [0] * len(tasks)
        task_consumers: Dict[int, List[int]] = {}
        for index, chain in enumerate(tasks):
            deps: Set[int] = set()
            for node in chain:
                if node.computed:
                    continue
                for dep in node.all_deps():
                    producer = node_task.get(dep.id)
                    if producer is not None and producer != index:
                        deps.add(producer)
            indegree[index] = len(deps)
            for producer in deps:
                task_consumers.setdefault(producer, []).append(index)

        def task_priority(index: int) -> Tuple[int, int]:
            head = tasks[index][0]
            return (self._priorities.get(head.id, head.id), head.id)

        ready: List[Tuple[int, int, int]] = []
        for index in range(len(tasks)):
            if indegree[index] == 0:
                heapq.heappush(ready, (*task_priority(index), index))
        ready_since: Dict[int, float] = {
            entry[2]: time.perf_counter() for entry in ready
        }

        #: results set during this run, dropped on ExecutionError so
        #: the budget (and spill dirs their buffers pin) come back.
        completed_nodes: List[Node] = []
        attempts: Dict[int, int] = {}
        pending: Dict[object, Tuple[int, float]] = {}
        done_count = 0

        def complete(index: int) -> None:
            nonlocal done_count
            done_count += 1
            now = time.perf_counter()
            for consumer in task_consumers.get(index, ()):
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    heapq.heappush(ready, (*task_priority(consumer), consumer))
                    ready_since[consumer] = now

        def release_chain(chain: List[Node]) -> None:
            for node in chain:
                self._release_inputs(node, refcounts, root_ids)

        def run_inline(index: int, queue_wait: float) -> None:
            chain = tasks[index]
            stats.record_process_task(shipped=False)
            for position, node in enumerate(chain):
                self._execute_node(
                    node, stats,
                    queue_wait=queue_wait if position == 0 else 0.0,
                )
                completed_nodes.append(node)
            release_chain(chain)
            complete(index)

        def fail_cleanup() -> None:
            for fut in pending:
                fut.cancel()
            pending.clear()
            for node in completed_nodes:
                node.clear_result()

        try:
            while done_count < len(tasks):
                while ready and len(pending) < self.max_workers:
                    index = heapq.heappop(ready)[2]
                    chain = tasks[index]
                    queue_wait = max(
                        0.0,
                        time.perf_counter()
                        - ready_since.get(index, time.perf_counter()),
                    )
                    if len(chain) == 1 and chain[0].computed:
                        stats.record_cache_hit()
                        complete(index)
                        continue
                    payload = self._ship_payload(chain)
                    if payload is None:
                        run_inline(index, queue_wait)
                        continue
                    try:
                        future = self._pool().submit(_run_task, payload)
                    except BrokenProcessPool:
                        # the pool broke while idle; rebuild and retry
                        # this task through the normal retry budget.
                        self._discard_pool(self._pool())
                        attempts[index] = attempts.get(index, 0) + 1
                        if attempts[index] > self._retries():
                            fail_cleanup()
                            raise ExecutionError(
                                "process pool kept breaking before task "
                                f"{index} could start"
                            ) from None
                        stats.record_process_retry()
                        heapq.heappush(ready, (*task_priority(index), index))
                        continue
                    pending[future] = (index, time.perf_counter())
                if not pending:
                    if ready:
                        continue
                    if done_count < len(tasks):  # pragma: no cover
                        raise ExecutionError(
                            "process scheduler stalled with "
                            f"{len(tasks) - done_count} tasks unreachable"
                        )
                    break
                finished, _ = wait(
                    list(pending), return_when=FIRST_COMPLETED
                )
                broken: List[int] = []
                for future in finished:
                    index, submitted = pending.pop(future)
                    try:
                        blob = future.result()
                    except BrokenProcessPool:
                        broken.append(index)
                        continue
                    # a worker-raised plan error propagates with its
                    # original type, like every other strategy's.
                    self._land_result(
                        tasks[index], blob, submitted, stats,
                        ready_since.get(index), completed_nodes,
                    )
                    release_chain(tasks[index])
                    complete(index)
                if broken:
                    # every in-flight future on a broken pool is lost
                    for future, (index, _) in list(pending.items()):
                        broken.append(index)
                    pending.clear()
                    self._discard_pool(self._pool())
                    now = time.perf_counter()
                    for index in sorted(set(broken)):
                        attempts[index] = attempts.get(index, 0) + 1
                        if attempts[index] > self._retries():
                            fail_cleanup()
                            raise ExecutionError(
                                "process pool worker died "
                                f"{attempts[index]} time(s) running task "
                                f"{index} (ops: "
                                f"{[n.op for n in tasks[index]]}); "
                                "giving up after executor.process_retries="
                                f"{self._retries()}"
                            )
                        stats.record_process_retry()
                        heapq.heappush(
                            ready, (*task_priority(index), index)
                        )
                        ready_since[index] = now
        except BaseException:
            for future in pending:
                future.cancel()
            raise

    # -- shipping ----------------------------------------------------------

    def _ship_payload(self, chain: List[Node]) -> Optional[bytes]:
        """Serialize ``chain`` for a worker, or ``None`` to run inline.

        Inline reasons: side-effect ops (parent stdout, program order),
        shuffle-store / stream plumbing in ops or input values, stream-
        returning scans, and any args or input that fails to pickle
        (lambdas in ``apply``/``map`` being the common case).
        """
        from repro.io.spill import PartitionStream, ShuffleStore

        steps: List[Tuple[str, dict, List[Tuple[str, int]]]] = []
        externals: List[object] = []
        external_index: Dict[int, int] = {}
        step_index: Dict[int, int] = {}
        for node in chain:
            if node.spec.side_effect or node.op in _INLINE_OPS:
                return None
            if node.op == "scan" and node.args.get("stream"):
                return None
            slots: List[Tuple[str, int]] = []
            for inp in node.inputs:
                if inp.id in step_index:
                    slots.append(("step", step_index[inp.id]))
                    continue
                value = inp.result
                if isinstance(value, (PartitionStream, ShuffleStore)):
                    return None
                if inp.id not in external_index:
                    external_index[inp.id] = len(externals)
                    externals.append(value)
                slots.append(("ext", external_index[inp.id]))
            step_index[node.id] = len(steps)
            steps.append((node.op, node.args, slots))
        try:
            return pickle.dumps(
                (steps, externals), protocol=pickle.HIGHEST_PROTOCOL
            )
        except Exception:  # noqa: BLE001 - unpicklable args or inputs
            return None

    def _land_result(self, chain: List[Node], blob: bytes,
                     submitted: float, stats: ExecutionStats,
                     ready_at: Optional[float],
                     completed_nodes: List[Node]) -> None:
        """Unpickle a worker's result on the coordination thread.

        This thread has the owning session active, so the rebuilt
        column buffers register with the parent session's manager --
        the charge-back half of the shipping contract.
        """
        memory = self.memory
        reg_before = memory.total_registered
        rel_before = memory.total_released
        value = pickle.loads(blob)
        if isinstance(value, _UnpicklableResult):
            # the chain ran, but its result cannot cross the boundary
            # (exotic op output); re-run it here.
            for node in chain:
                self._execute_node(node, stats)
                completed_nodes.append(node)
            stats.record_process_task(shipped=False)
            return
        final = chain[-1]
        if final.persist:
            value = self.backend.persist(value)
        final.set_result(value)
        completed_nodes.append(final)
        stats.record_process_task(shipped=True)
        done = time.perf_counter()
        queue_wait = (
            max(0.0, submitted - ready_at) if ready_at is not None else 0.0
        )
        registered = memory.total_registered - reg_before
        released = memory.total_released - rel_before
        for node in chain:
            last = node is final
            stats.record_node(
                node,
                wall_seconds=(done - submitted) if last else 0.0,
                queue_wait_seconds=queue_wait if node is chain[0] else 0.0,
                bytes_registered=registered if last else 0,
                bytes_released=released if last else 0,
                worker="process-pool",
                bytes_estimated=self._estimates.get(node.id),
            )
            self._record_op_stats(node, value if last else None, [], stats)
        if self.cache_state is not None:
            self.cache_state.offer(final, value, done - submitted)
