"""Scheduler base class: planning, node execution, eager release.

A scheduler runs a task subgraph against a backend.  The base class owns
everything strategy-independent -- culling to the needed subgraph,
refcount initialization, per-node execution with stats capture, the
section-2.6 eager release rule, and root materialization -- so a
strategy only implements :meth:`Scheduler._run`.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence

from repro.graph.node import Node
from repro.graph.scheduler.stats import ExecutionStats
from repro.graph.taskgraph import (
    initial_refcounts,
    needed_nodes,
    topological_order,
)


#: pure shuffle-pipeline ops: re-running one against its materialized
#: inputs is side-effect-free, so an OOM can spill-and-retry.  The
#: stream-consuming variants (broadcast merge, streamed partial_agg)
#: are excluded by the PartitionStream input check.
_OOM_RETRYABLE_OPS = frozenset({"merge", "compact", "partial_agg"})


class ExecutionError(RuntimeError):
    """A strategy failed to complete a plan for an infrastructure
    reason (e.g. the process pool's workers kept dying), as opposed to
    the plan itself raising.  The scheduler guarantees budget and spill
    files were reclaimed before this surfaces."""


def _oom_retryable(node: Node, inputs: List[object]) -> bool:
    if node.op not in _OOM_RETRYABLE_OPS:
        return False
    from repro.io.spill import PartitionStream

    return not any(isinstance(v, PartitionStream) for v in inputs)


class Scheduler:
    """Runs task subgraphs against a backend (one strategy per class).

    ``session`` (optional) is the owning :class:`repro.core.session.Session`;
    parallel strategies activate it on their worker threads so buffers
    allocated mid-node register with the right per-session memory
    manager.  ``memory`` defaults to the current session's manager.
    """

    name = "abstract"
    #: parallel strategies set this True: after planning they issue
    #: prefetches for the byte ranges the plan's scans will read, so
    #: remote latency overlaps compute (serial strategies gain nothing
    #: -- the scan is the next thing they run anyway).
    prefetches_ranges = False

    def __init__(self, backend, *, session=None,
                 memory=None, max_workers: Optional[int] = None,
                 static_order: bool = True):
        self.backend = backend
        self.session = session
        self._memory = memory
        self.max_workers = max(1, int(max_workers or 1))
        #: apply the memory-aware static ordering pass
        #: (``executor.static_order``) before running.
        self.static_order = bool(static_order)
        #: the strategy the caller asked for, when a capability fallback
        #: substituted this scheduler (stats report both).
        self.requested_strategy: Optional[str] = None
        self.last_stats: Optional[ExecutionStats] = None
        #: per-run cache bookkeeping (a CacheRunState) installed by
        #: Session._run when ``optimizer.reuse`` is on; every strategy's
        #: node-completion path offers executed results through it.
        self.cache_state = None
        #: resolve ``max_workers`` per run from the static order's
        #: simulated peak vs the memory budget (``max_workers="auto"``).
        self.auto_workers = False
        #: node id -> predicted output bytes (filled per execute()).
        self._estimates: Dict[int, int] = {}
        #: node id -> static priority (filled per execute() when the
        #: ordering pass ran); parallel strategies use it as the heap
        #: tie-break ahead of the node id.
        self._priorities: Dict[int, int] = {}

    # -- memory ----------------------------------------------------------

    @property
    def memory(self):
        if self._memory is not None:
            return self._memory
        from repro.memory import current_memory_manager

        return current_memory_manager()

    # -- public API ------------------------------------------------------

    def execute(self, roots: Sequence[Node]) -> List[object]:
        """Compute ``roots``; returns their materialized results.

        Statistics of the run land in :attr:`last_stats`.
        """
        stats = self._begin_stats()
        io_counters, io_before = self._begin_io()
        order, refcounts, root_ids = self._plan(roots, stats)
        prefetched_urls = self._issue_prefetch(order)
        started = time.perf_counter()
        try:
            self._run(order, refcounts, root_ids, stats)
            results = self._materialize_roots(roots)
            if self.cache_state is not None:
                # Roots, after materialization: on lazy backends this is
                # the first (only) point the value is eager.  The whole
                # run's wall is the honest replacement cost -- serving
                # the root from cache skips exactly this run.
                wall = time.perf_counter() - started
                for root, value in zip(roots, results):
                    self.cache_state.offer(root, value, wall)
        finally:
            # finalized even when a node raises (OOM cells included):
            # the session publishes these stats either way.
            stats.wall_seconds = time.perf_counter() - started
            stats.manager_peak_bytes = self.memory.peak
            self._finish_io(stats, io_counters, io_before, prefetched_urls)
        return results

    # -- planning (shared by execute and AsyncScheduler.execute_async) ----

    def _begin_stats(self) -> ExecutionStats:
        stats = ExecutionStats(
            strategy=self.requested_strategy or self.name,
            effective_strategy=self.name,
            max_workers=self.max_workers,
        )
        self.last_stats = stats
        return stats

    def _plan(self, roots: Sequence[Node], stats: ExecutionStats):
        """Cull, estimate, and statically order the subgraph.

        Estimates and priorities *merge* into the scheduler's maps
        (node ids are process-unique), so one async scheduler can plan
        several concurrent executions without clobbering its own state.
        """
        order = topological_order(roots)
        needed = needed_nodes(roots)
        order = [n for n in order if n.id in needed]
        root_ids = {r.id for r in roots}
        # Per-node size predictions (width x rows from source statistics,
        # propagated through operators): admission control asks them
        # whether a candidate fits the remaining memory headroom, and
        # stats record them next to the actual bytes.
        from repro.graph.scheduler.estimates import estimate_node_bytes
        from repro.graph.scheduler.order import (
            priority_topological_order,
            simulate_peak_bytes,
            static_priorities,
        )

        self._estimates.update(estimate_node_bytes(order, self.session))
        if self.static_order:
            # Memory-aware static ordering (ROADMAP item 2): finish the
            # branch that frees the most bytes first.  Serial strategies
            # follow the reordered list directly; parallel ones use the
            # priorities as their heap tie-break.
            self._priorities.update(
                static_priorities(order, self._estimates)
            )
            order = priority_topological_order(order, self._priorities)
        refcounts = initial_refcounts(order)
        stats.static_order = self.static_order
        stats.estimated_peak_bytes = simulate_peak_bytes(
            order, self._estimates, root_ids
        )
        if self.auto_workers:
            self.max_workers = self._resolve_auto_workers(
                stats.estimated_peak_bytes
            )
            stats.max_workers = self.max_workers
        return order, refcounts, root_ids

    # -- filesystem-layer accounting and prefetch -------------------------

    def _begin_io(self):
        """The session's IOCounters and their pre-run snapshot; the
        post-run diff is exactly this execution's I/O."""
        from repro.io.fs import session_io_counters

        counters = session_io_counters(self.session)
        return counters, counters.snapshot()

    def _issue_prefetch(self, order: List[Node]) -> List[str]:
        """Prefetch the plan's scan ranges (parallel strategies only);
        returns the URLs touched so the run's finally can purge
        leftovers (pruned partitions, failed runs)."""
        if not self.prefetches_ranges:
            return []
        from repro.io.prefetch import prefetch_scan_node

        urls: List[str] = []
        for node in order:
            if node.op == "scan":
                for url in prefetch_scan_node(node, self.session):
                    if url not in urls:
                        urls.append(url)
        return urls

    def _finish_io(self, stats: ExecutionStats, counters, before,
                   prefetched_urls: Sequence[str]) -> None:
        """Purge leftover prefetches and publish the run's I/O deltas."""
        if prefetched_urls:
            from repro.io.prefetch import range_cache

            for url in prefetched_urls:
                range_cache().purge_url(url)
        after = counters.snapshot()
        stats.record_io(**{
            key: after[key] - before[key] for key in after
        })

    def _resolve_auto_workers(self, estimated_peak_bytes: int) -> int:
        """Pool size for ``executor.max_workers="auto"``.

        The static order's simulated peak is (roughly) one worker's
        working set, so ``budget // peak`` concurrent workers is the
        most parallelism the budget provably sustains.  Unbudgeted
        sessions (or plans with no byte estimates) get the CPU cap.
        """
        import os

        cap = max(1, min(8, os.cpu_count() or 4))
        budget = self.memory.budget
        if budget is None or estimated_peak_bytes <= 0:
            return cap
        return max(1, min(cap, budget // estimated_peak_bytes))

    def _materialize_roots(self, roots: Sequence[Node]) -> List[object]:
        results = []
        for root in roots:
            value = self.backend.materialize(root.result)
            root.result = value
            results.append(value)
        return results

    # -- strategy hook ---------------------------------------------------

    def _run(self, order: List[Node], refcounts: Dict[int, int],
             root_ids: set, stats: ExecutionStats) -> None:
        raise NotImplementedError

    # -- shared plumbing -------------------------------------------------

    def _execute_node(self, node: Node, stats: ExecutionStats,
                      queue_wait: float = 0.0) -> None:
        """Run one node and record its stats.

        Byte attribution diffs the manager's monotonic counters around
        the backend call; exact when nodes run one at a time, an
        approximation when the threaded strategy overlaps nodes.
        """
        memory = self.memory
        reg_before = memory.total_registered
        rel_before = memory.total_released
        started = time.perf_counter()
        inputs = [inp.result for inp in node.inputs]
        value = self._apply_with_spill_retry(node, inputs)
        if node.persist:
            # Section 3.5: persist shared subexpressions.  On lazy
            # backends this materializes (and pins) the partitions.
            value = self.backend.persist(value)
        node.set_result(value)
        wall = time.perf_counter() - started
        stats.record_node(
            node,
            wall_seconds=wall,
            queue_wait_seconds=queue_wait,
            bytes_registered=memory.total_registered - reg_before,
            bytes_released=memory.total_released - rel_before,
            worker=threading.current_thread().name,
            bytes_estimated=self._estimates.get(node.id),
        )
        self._record_op_stats(node, value, inputs, stats)
        if self.cache_state is not None:
            self.cache_state.offer(node, value, wall)

    @staticmethod
    def _record_op_stats(node: Node, value: object, inputs: List[object],
                         stats: ExecutionStats) -> None:
        """Op-specific counters (scan pruning, shuffle, broadcast).

        Shared by every in-process path and by the process strategy's
        shipped tasks, whose nodes run in a worker but must account
        against the parent's stats object.
        """
        if node.op == "scan":
            total = node.args.get("partitions_total")
            if total is not None:
                kept = node.args.get("partitions")
                stats.record_scan(
                    len(kept) if kept is not None else total, total
                )
        elif node.op == "shuffle_write":
            stats.record_shuffle(
                int(getattr(value, "n_buckets", 0)),
                int(getattr(value, "bytes_spilled", 0)),
            )
        elif node.op == "merge" and inputs:
            from repro.io.spill import PartitionStream

            if isinstance(inputs[0], PartitionStream):
                stats.record_broadcast_join()

    def _apply_with_spill_retry(self, node: Node,
                                inputs: List[object]) -> object:
        """Run the backend call; under shuffle memory pressure, spill
        and retry pure pipeline ops instead of surfacing the OOM.

        Concurrent bucket pipelines can each pass their headroom checks
        and then allocate together past the budget.  The ops in
        ``_OOM_RETRYABLE_OPS`` are pure functions of already-materialized
        inputs, so when one OOMs we spill every live shuffle store, back
        off while the other pipelines' in-flight results (which no spill
        can reach) complete and release, and re-run it.  Anything else
        -- stream-consuming ops, ordinary user plans with no live store
        -- keeps the existing fail-fast OOM semantics.
        """
        from repro.memory.manager import SimulatedMemoryError

        try:
            return self.backend.apply(node, inputs)
        except SimulatedMemoryError:
            if not _oom_retryable(node, inputs):
                raise
            from repro.io.spill import live_store_count, spill_live_stores

            attempts = 8
            for attempt in range(attempts):
                freed = spill_live_stores(1 << 62)
                if freed <= 0 and live_store_count() == 0:
                    raise
                time.sleep(0.005 * (attempt + 1))
                try:
                    return self.backend.apply(node, inputs)
                except SimulatedMemoryError:
                    if attempt == attempts - 1:
                        raise
            raise  # pragma: no cover - loop always returns or raises

    @staticmethod
    def _release_inputs(node: Node, refcounts: Dict[int, int],
                        root_ids: set, clear=None) -> None:
        """Release inputs whose consumers have all run (section 2.6).

        Callers must serialize invocations (the threaded scheduler holds
        its coordination lock); the counts themselves are plain ints.
        ``clear`` overrides how a dead input's result is dropped (the
        threaded strategy wraps it in the input's per-node lock) --
        there is exactly one copy of the release *rule*.
        """
        for inp in node.inputs:
            if inp.id not in refcounts:
                continue
            refcounts[inp.id] -= 1
            if (
                refcounts[inp.id] == 0
                and inp.id not in root_ids
                and not inp.persist
            ):
                if clear is None:
                    inp.clear_result()
                else:
                    clear(inp)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} backend={self.backend!r}>"
