"""Scheduler base class: planning, node execution, eager release.

A scheduler runs a task subgraph against a backend.  The base class owns
everything strategy-independent -- culling to the needed subgraph,
refcount initialization, per-node execution with stats capture, the
section-2.6 eager release rule, and root materialization -- so a
strategy only implements :meth:`Scheduler._run`.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Sequence

from repro.graph.node import Node
from repro.graph.scheduler.stats import ExecutionStats
from repro.graph.taskgraph import (
    initial_refcounts,
    needed_nodes,
    topological_order,
)


#: pure shuffle-pipeline ops: re-running one against its materialized
#: inputs is side-effect-free, so an OOM can spill-and-retry.  The
#: stream-consuming variants (broadcast merge, streamed partial_agg)
#: are excluded by the PartitionStream input check.
_OOM_RETRYABLE_OPS = frozenset({"merge", "compact", "partial_agg"})


def _oom_retryable(node: Node, inputs: List[object]) -> bool:
    if node.op not in _OOM_RETRYABLE_OPS:
        return False
    from repro.io.spill import PartitionStream

    return not any(isinstance(v, PartitionStream) for v in inputs)


class Scheduler:
    """Runs task subgraphs against a backend (one strategy per class).

    ``session`` (optional) is the owning :class:`repro.core.session.Session`;
    parallel strategies activate it on their worker threads so buffers
    allocated mid-node register with the right per-session memory
    manager.  ``memory`` defaults to the current session's manager.
    """

    name = "abstract"

    def __init__(self, backend, *, session=None,
                 memory=None, max_workers: Optional[int] = None):
        self.backend = backend
        self.session = session
        self._memory = memory
        self.max_workers = max(1, int(max_workers or 1))
        #: the strategy the caller asked for, when a capability fallback
        #: substituted this scheduler (stats report both).
        self.requested_strategy: Optional[str] = None
        self.last_stats: Optional[ExecutionStats] = None
        #: node id -> predicted output bytes (filled per execute()).
        self._estimates: Dict[int, int] = {}

    # -- memory ----------------------------------------------------------

    @property
    def memory(self):
        if self._memory is not None:
            return self._memory
        from repro.memory import current_memory_manager

        return current_memory_manager()

    # -- public API ------------------------------------------------------

    def execute(self, roots: Sequence[Node]) -> List[object]:
        """Compute ``roots``; returns their materialized results.

        Statistics of the run land in :attr:`last_stats`.
        """
        stats = ExecutionStats(
            strategy=self.requested_strategy or self.name,
            effective_strategy=self.name,
            max_workers=self.max_workers,
        )
        self.last_stats = stats
        order = topological_order(roots)
        needed = needed_nodes(roots)
        order = [n for n in order if n.id in needed]
        refcounts = initial_refcounts(order)
        root_ids = {r.id for r in roots}
        # Per-node size predictions (width x rows from source statistics,
        # propagated through operators): admission control asks them
        # whether a candidate fits the remaining memory headroom, and
        # stats record them next to the actual bytes.
        from repro.graph.scheduler.estimates import estimate_node_bytes

        self._estimates = estimate_node_bytes(order, self.session)

        started = time.perf_counter()
        try:
            self._run(order, refcounts, root_ids, stats)
            results = []
            for root in roots:
                value = self.backend.materialize(root.result)
                root.result = value
                results.append(value)
        finally:
            # finalized even when a node raises (OOM cells included):
            # the session publishes these stats either way.
            stats.wall_seconds = time.perf_counter() - started
            stats.manager_peak_bytes = self.memory.peak
        return results

    # -- strategy hook ---------------------------------------------------

    def _run(self, order: List[Node], refcounts: Dict[int, int],
             root_ids: set, stats: ExecutionStats) -> None:
        raise NotImplementedError

    # -- shared plumbing -------------------------------------------------

    def _execute_node(self, node: Node, stats: ExecutionStats,
                      queue_wait: float = 0.0) -> None:
        """Run one node and record its stats.

        Byte attribution diffs the manager's monotonic counters around
        the backend call; exact when nodes run one at a time, an
        approximation when the threaded strategy overlaps nodes.
        """
        memory = self.memory
        reg_before = memory.total_registered
        rel_before = memory.total_released
        started = time.perf_counter()
        inputs = [inp.result for inp in node.inputs]
        value = self._apply_with_spill_retry(node, inputs)
        if node.persist:
            # Section 3.5: persist shared subexpressions.  On lazy
            # backends this materializes (and pins) the partitions.
            value = self.backend.persist(value)
        node.set_result(value)
        stats.record_node(
            node,
            wall_seconds=time.perf_counter() - started,
            queue_wait_seconds=queue_wait,
            bytes_registered=memory.total_registered - reg_before,
            bytes_released=memory.total_released - rel_before,
            worker=threading.current_thread().name,
            bytes_estimated=self._estimates.get(node.id),
        )
        if node.op == "scan":
            total = node.args.get("partitions_total")
            if total is not None:
                kept = node.args.get("partitions")
                stats.record_scan(
                    len(kept) if kept is not None else total, total
                )
        elif node.op == "shuffle_write":
            stats.record_shuffle(
                int(getattr(value, "n_buckets", 0)),
                int(getattr(value, "bytes_spilled", 0)),
            )
        elif node.op == "merge" and inputs:
            from repro.io.spill import PartitionStream

            if isinstance(inputs[0], PartitionStream):
                stats.record_broadcast_join()

    def _apply_with_spill_retry(self, node: Node,
                                inputs: List[object]) -> object:
        """Run the backend call; under shuffle memory pressure, spill
        and retry pure pipeline ops instead of surfacing the OOM.

        Concurrent bucket pipelines can each pass their headroom checks
        and then allocate together past the budget.  The ops in
        ``_OOM_RETRYABLE_OPS`` are pure functions of already-materialized
        inputs, so when one OOMs we spill every live shuffle store, back
        off while the other pipelines' in-flight results (which no spill
        can reach) complete and release, and re-run it.  Anything else
        -- stream-consuming ops, ordinary user plans with no live store
        -- keeps the existing fail-fast OOM semantics.
        """
        from repro.memory.manager import SimulatedMemoryError

        try:
            return self.backend.apply(node, inputs)
        except SimulatedMemoryError:
            if not _oom_retryable(node, inputs):
                raise
            from repro.io.spill import live_store_count, spill_live_stores

            attempts = 8
            for attempt in range(attempts):
                freed = spill_live_stores(1 << 62)
                if freed <= 0 and live_store_count() == 0:
                    raise
                time.sleep(0.005 * (attempt + 1))
                try:
                    return self.backend.apply(node, inputs)
                except SimulatedMemoryError:
                    if attempt == attempts - 1:
                        raise
            raise  # pragma: no cover - loop always returns or raises

    @staticmethod
    def _release_inputs(node: Node, refcounts: Dict[int, int],
                        root_ids: set, clear=None) -> None:
        """Release inputs whose consumers have all run (section 2.6).

        Callers must serialize invocations (the threaded scheduler holds
        its coordination lock); the counts themselves are plain ints.
        ``clear`` overrides how a dead input's result is dropped (the
        threaded strategy wraps it in the input's per-node lock) --
        there is exactly one copy of the release *rule*.
        """
        for inp in node.inputs:
            if inp.id not in refcounts:
                continue
            refcounts[inp.id] -= 1
            if (
                refcounts[inp.id] == 0
                and inp.id not in root_ids
                and not inp.persist
            ):
                if clear is None:
                    inp.clear_result()
                else:
                    clear(inp)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} backend={self.backend!r}>"
