"""The serial strategy: today's single-loop topological execution.

Extracted unchanged from the pre-scheduler ``Executor``: nodes run one at
a time in topological order with refcount-based eager release.  Queue
wait is measured from the moment a node's last dependency finished to
the moment it starts -- in a serial loop that is the time spent behind
earlier-ordered ready nodes.
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.graph.node import Node
from repro.graph.scheduler.base import Scheduler
from repro.graph.scheduler.stats import ExecutionStats
from repro.graph.taskgraph import (
    consumers_by_id,
    dependency_counts,
    ready_nodes,
)


class SerialScheduler(Scheduler):
    """Dependencies-first, one node at a time (the paper's section 2.6)."""

    name = "serial"

    def _run(self, order: List[Node], refcounts: Dict[int, int],
             root_ids: set, stats: ExecutionStats) -> None:
        dep_counts = dependency_counts(order)
        consumers = consumers_by_id(order)
        now = time.perf_counter()
        ready_since = {
            node.id: now for node in ready_nodes(order, dep_counts)
        }
        for node in order:
            if node.computed:
                stats.record_cache_hit()
                self._mark_done(node, dep_counts, consumers, ready_since)
                continue  # cached (persisted) result; inputs not re-read
            queue_wait = max(0.0, time.perf_counter() - ready_since.get(
                node.id, time.perf_counter()))
            self._execute_node(node, stats, queue_wait=queue_wait)
            self._mark_done(node, dep_counts, consumers, ready_since)
            self._release_inputs(node, refcounts, root_ids)

    @staticmethod
    def _mark_done(node: Node, dep_counts: Dict[int, int],
                   consumers, ready_since) -> None:
        now = time.perf_counter()
        for consumer in consumers.get(node.id, ()):
            dep_counts[consumer.id] -= 1
            if dep_counts[consumer.id] == 0:
                ready_since[consumer.id] = now
