"""Task-graph executor (section 2.6).

Executes a subgraph in topological order.  For eager backends each node's
``result`` holds a materialized frame; an in-degree refcount is taken
before execution and decremented as consumers run, clearing results the
moment their last consumer has used them so Python's GC can reclaim the
buffers -- the paper's memory-minimizing execution.

For lazy backends (the Dask simulator) each node's ``result`` holds a
*lazy* backend expression; materialization happens once at the roots (or
wherever a side-effect node such as print needs real data).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.graph.node import Node
from repro.graph.taskgraph import topological_order


class Executor:
    """Runs subgraphs against a backend."""

    def __init__(self, backend):
        self.backend = backend

    def execute(self, roots: Sequence[Node]) -> List[object]:
        """Compute ``roots``; returns their materialized results."""
        order = topological_order(roots)
        needed = self._needed_nodes(roots)
        order = [n for n in order if n.id in needed]
        refcounts = self._initial_refcounts(order)
        root_ids = {r.id for r in roots}

        for node in order:
            if node.computed:
                continue  # cached (persisted) result; inputs not re-read
            inputs = [inp.result for inp in node.inputs]
            value = self.backend.apply(node, inputs)
            if node.persist:
                # Section 3.5: persist shared subexpressions.  On lazy
                # backends this materializes (and pins) the partitions.
                value = self.backend.persist(value)
            node.set_result(value)
            # Release inputs whose consumers have all run (section 2.6).
            for inp in node.inputs:
                if inp.id not in refcounts:
                    continue
                refcounts[inp.id] -= 1
                if (
                    refcounts[inp.id] == 0
                    and inp.id not in root_ids
                    and not inp.persist
                ):
                    inp.clear_result()

        results = []
        for root in roots:
            value = self.backend.materialize(root.result)
            root.result = value
            results.append(value)
        return results

    def _needed_nodes(self, roots: Sequence[Node]) -> set:
        """Culling: traversal stops at nodes with cached (persisted)
        results -- their inputs need not recompute."""
        needed = set()
        stack = list(roots)
        while stack:
            node = stack.pop()
            if node.id in needed:
                continue
            needed.add(node.id)
            if not node.computed:
                stack.extend(node.all_deps())
        return needed

    def _initial_refcounts(self, order: List[Node]) -> Dict[int, int]:
        counts: Dict[int, int] = {node.id: 0 for node in order}
        in_graph = set(counts)
        for node in order:
            if node.computed:
                continue  # persisted/cached: its inputs are not re-read
            for inp in node.inputs:
                if inp.id in in_graph:
                    counts[inp.id] += 1
        return counts
