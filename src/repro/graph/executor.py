"""Task-graph executor (section 2.6) -- compatibility shim.

Execution moved into the :mod:`repro.graph.scheduler` subsystem, where
strategies (``serial``, ``threaded``, ``fused``) are selected per
session through the ``executor.strategy`` option.  ``Executor`` is kept
as the historical name of the serial strategy so existing callers
(``Executor(backend).execute(roots)``) run unchanged.
"""

from __future__ import annotations

from repro.graph.scheduler.serial import SerialScheduler


class Executor(SerialScheduler):
    """The pre-scheduler entry point: serial, refcount-releasing."""
