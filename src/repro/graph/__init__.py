"""LaFP task graph (sections 2.5-2.6).

Nodes represent dataframe operations; an edge A -> B means *B depends on
A's result* (data dependency) or *B must run after A* (ordering edge, used
by lazy print).  The graph is built implicitly by the lazy wrapper objects
in :mod:`repro.core` and executed by :class:`repro.graph.executor.Executor`
in topological order with in-degree refcounting so intermediate results
are freed as soon as their last consumer has run (section 2.6).
"""

from repro.graph.node import Node, OpSpec, OPS, register_op, series_used_columns
from repro.graph.taskgraph import (
    collect_subgraph,
    node_counter,
    to_dot,
    topological_order,
)
from repro.graph.explain import render_plan
from repro.graph.executor import Executor

__all__ = [
    "Executor",
    "Node",
    "OPS",
    "OpSpec",
    "collect_subgraph",
    "node_counter",
    "register_op",
    "render_plan",
    "series_used_columns",
    "to_dot",
    "topological_order",
]
