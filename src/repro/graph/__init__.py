"""LaFP task graph (sections 2.5-2.6).

Nodes represent dataframe operations; an edge A -> B means *B depends on
A's result* (data dependency) or *B must run after A* (ordering edge, used
by lazy print).  The graph is built implicitly by the lazy wrapper objects
in :mod:`repro.core` and executed by a strategy from
:mod:`repro.graph.scheduler` (serial / threaded / fused, selected via the
``executor.strategy`` session option), all of which free intermediate
results as soon as their last consumer has run (section 2.6).
"""

from repro.graph.node import Node, OpSpec, OPS, register_op, series_used_columns
from repro.graph.taskgraph import (
    collect_subgraph,
    consumers_by_id,
    dependency_counts,
    initial_refcounts,
    needed_nodes,
    node_counter,
    ready_nodes,
    to_dot,
    topological_order,
)
from repro.graph.explain import render_plan
from repro.graph.executor import Executor
from repro.graph.scheduler import (
    DEFAULT_EXECUTORS,
    ExecutionStats,
    ExecutorRegistry,
    Scheduler,
    SchedulerSpec,
)

__all__ = [
    "DEFAULT_EXECUTORS",
    "ExecutionStats",
    "Executor",
    "ExecutorRegistry",
    "Node",
    "OPS",
    "OpSpec",
    "Scheduler",
    "SchedulerSpec",
    "collect_subgraph",
    "consumers_by_id",
    "dependency_counts",
    "initial_refcounts",
    "needed_nodes",
    "node_counter",
    "ready_nodes",
    "register_op",
    "render_plan",
    "series_used_columns",
    "to_dot",
    "topological_order",
]
