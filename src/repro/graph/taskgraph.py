"""Graph algorithms over LaFP nodes.

The graph is *implicit*: nodes hold references to their dependencies, and
any set of requested roots defines a subgraph by reachability.  These
helpers provide subgraph collection, topological ordering, consumer
counting and DOT export (Figures 6 and 9 render with ``to_dot``).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence, Set

from repro.graph.node import Node


def collect_subgraph(roots: Sequence[Node]) -> List[Node]:
    """All nodes reachable from ``roots`` through data and order deps."""
    seen: Set[int] = set()
    out: List[Node] = []
    stack = list(roots)
    while stack:
        node = stack.pop()
        if node.id in seen:
            continue
        seen.add(node.id)
        out.append(node)
        stack.extend(node.all_deps())
    return out


def topological_order(roots: Sequence[Node]) -> List[Node]:
    """Dependencies-first ordering of the subgraph under ``roots``.

    Iterative post-order DFS (the benchmark graphs can be deep chains, so
    no recursion).
    """
    order: List[Node] = []
    # DFS colouring: absent=unvisited, False=in progress, True=done.
    done: Dict[int, bool] = {}
    stack: List[tuple] = [(node, False) for node in roots]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            done[node.id] = True
            order.append(node)
            continue
        if node.id in done:
            continue  # finished, or a stale duplicate stack entry
        done[node.id] = False
        stack.append((node, True))
        for dep in node.all_deps():
            if done.get(dep.id) is False:
                raise ValueError(f"cycle detected at node {dep!r}")
            if dep.id not in done:
                stack.append((dep, False))
    return order


def needed_nodes(roots: Sequence[Node]) -> Set[int]:
    """Node ids a computation of ``roots`` must execute or read.

    Culling: traversal stops at nodes with cached (persisted) results --
    their inputs need not recompute (section 3.5 reuse).
    """
    needed: Set[int] = set()
    stack = list(roots)
    while stack:
        node = stack.pop()
        if node.id in needed:
            continue
        needed.add(node.id)
        if not node.computed:
            stack.extend(node.all_deps())
    return needed


def initial_refcounts(order: Sequence[Node]) -> Dict[int, int]:
    """Data-edge consumer counts used for eager release (section 2.6).

    A node's count is how many in-graph consumers will read its result;
    when it reaches zero the result can be cleared.  Inputs of cached
    (persisted) nodes are not counted -- they are never re-read.
    """
    counts: Dict[int, int] = {node.id: 0 for node in order}
    in_graph = set(counts)
    for node in order:
        if node.computed:
            continue
        for inp in node.inputs:
            if inp.id in in_graph:
                counts[inp.id] += 1
    return counts


def dependency_counts(order: Sequence[Node]) -> Dict[int, int]:
    """Scheduling in-degrees: distinct unfinished in-graph dependencies.

    Counts *all* edges (data and ordering) since both gate when a node
    may run; cached nodes contribute an in-degree of zero (they complete
    instantly).  A node whose count is zero is *ready*.
    """
    in_graph = {node.id for node in order}
    counts: Dict[int, int] = {}
    for node in order:
        if node.computed:
            counts[node.id] = 0
            continue
        deps = {dep.id for dep in node.all_deps() if dep.id in in_graph}
        counts[node.id] = len(deps)
    return counts


def ready_nodes(order: Sequence[Node],
                dep_counts: Dict[int, int]) -> List[Node]:
    """The initial ready set, in deterministic (topological) order."""
    return [node for node in order if dep_counts[node.id] == 0]


def consumers_by_id(order: Sequence[Node]) -> Dict[int, List[Node]]:
    """Map node id -> distinct in-graph consumers over data *and*
    ordering edges (the reverse adjacency the ready-queue scheduler
    walks when a task finishes)."""
    in_graph = {node.id for node in order}
    out: Dict[int, List[Node]] = {}
    for node in order:
        if node.computed:
            continue
        seen: Set[int] = set()
        for dep in node.all_deps():
            if dep.id in in_graph and dep.id not in seen:
                seen.add(dep.id)
                out.setdefault(dep.id, []).append(node)
    return out


def consumer_counts(nodes: Iterable[Node]) -> Dict[int, int]:
    """Number of consumers (data edges only) of each node within the set."""
    counts: Dict[int, int] = {}
    node_ids = {n.id for n in nodes}
    for node in nodes:
        for dep in node.inputs:
            if dep.id in node_ids:
                counts[dep.id] = counts.get(dep.id, 0) + 1
    return counts


def consumers_of(nodes: Iterable[Node]) -> Dict[int, List[Node]]:
    """Map node id -> consumer nodes (data edges) within the set."""
    out: Dict[int, List[Node]] = {}
    for node in nodes:
        for dep in node.inputs:
            out.setdefault(dep.id, []).append(node)
    return out


def node_counter(roots: Sequence[Node], predicate: Callable[[Node], bool]) -> int:
    """Count subgraph nodes satisfying ``predicate`` (testing helper)."""
    return sum(1 for node in collect_subgraph(roots) if predicate(node))


def to_dot(roots: Sequence[Node]) -> str:
    """Graphviz DOT rendering of the subgraph (edges follow the paper's
    task-graph convention: consumer -> producer)."""
    nodes = collect_subgraph(roots)
    lines = ["digraph lafp {", "  rankdir=BT;"]
    for node in nodes:
        label = node.label or node.op
        shape = "box" if node.spec.side_effect else "ellipse"
        lines.append(f'  n{node.id} [label="{label}" shape={shape}];')
    for node in nodes:
        for dep in node.inputs:
            lines.append(f"  n{dep.id} -> n{node.id};")
        for dep in node.order_deps:
            lines.append(f"  n{dep.id} -> n{node.id} [style=dashed];")
    lines.append("}")
    return "\n".join(lines)
