"""Eager whole-frame backend (the pandas stand-in).

Every operator maps 1:1 onto :mod:`repro.frame`; nothing is partitioned or
deferred.  Fastest for data that fits in memory (Figure 13), first to die
when it does not (Figure 12).
"""

from __future__ import annotations

from repro.backends.base import Backend
from repro.frame import DataFrame, Series, concat, read_csv, to_datetime


class PandasBackend(Backend):
    """Direct execution on the eager frame engine."""

    name = "pandas"
    is_lazy = False

    def read_csv(self, path, index_col=None, **kwargs):
        kwargs.pop("read_only_cols", None)  # analysis hints, not IO knobs
        kwargs.pop("mutated_cols", None)
        usecols = kwargs.pop("usecols", None)
        nrows = kwargs.pop("nrows", None)
        byte_range = kwargs.pop("byte_range", None)
        if byte_range is not None or nrows is not None:
            # range/row-limited reads stay on the raw reader (metastore
            # sampling, partitioned re-reads).
            return read_csv(path, usecols=usecols, nrows=nrows,
                            byte_range=byte_range, index_col=index_col,
                            **kwargs)
        # Whole-file reads route through the CSV DataSource -- one code
        # path from scan_csv() and read_csv() down to the parser.  The
        # whole file is one partition here: this backend is the eager
        # whole-frame engine, chunking belongs to the partitioned ones.
        import os

        from repro.io import CsvSource

        source = CsvSource(
            path, partition_bytes=os.path.getsize(path) + 1, **kwargs
        )
        frames = list(source.scan(columns=usecols))
        frame = frames[0] if frames else source.empty_frame(usecols)
        if index_col is not None:
            frame = frame.set_index(index_col)
        return frame

    def from_data(self, data, **kwargs):
        return DataFrame(data)

    def from_pandas(self, frame):
        return frame

    def to_datetime(self, series: Series) -> Series:
        return to_datetime(series)

    def concat(self, frames):
        return concat(frames)

    def materialize(self, value):
        return value

    def persist(self, value):
        return value
