"""Eager whole-frame backend (the pandas stand-in).

Every operator maps 1:1 onto :mod:`repro.frame`; nothing is partitioned or
deferred.  Fastest for data that fits in memory (Figure 13), first to die
when it does not (Figure 12).
"""

from __future__ import annotations

from repro.backends.base import Backend
from repro.frame import DataFrame, Series, concat, read_csv, to_datetime


class PandasBackend(Backend):
    """Direct execution on the eager frame engine."""

    name = "pandas"
    is_lazy = False

    def read_csv(self, **kwargs):
        kwargs.pop("read_only_cols", None)  # analysis hints, not IO knobs
        kwargs.pop("mutated_cols", None)
        return read_csv(**kwargs)

    def from_data(self, data, **kwargs):
        return DataFrame(data)

    def from_pandas(self, frame):
        return frame

    def to_datetime(self, series: Series) -> Series:
        return to_datetime(series)

    def concat(self, frames):
        return concat(frames)

    def materialize(self, value):
        return value

    def persist(self, value):
        return value
