"""Backend adapter for the Dask simulator.

Translates LaFP task-graph nodes into lazy
:class:`~repro.backends.dask_sim.frame.DaskFrame` expressions -- "the API
call is transformed to the compatible API call for the selected lazy
backend" (section 2.6).  Materialization happens once per root;
``persist()`` pins shared subexpressions (section 3.5).

Incompatibility handling reproduces the paper's example: ``read_csv`` has
no ``index_col`` on Dask, so the adapter issues a ``set_index`` after the
read instead.  Ops the simulator refuses (``sort_values``, ``describe``,
...) fall back to pandas via the base class.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.backends.base import Backend
from repro.backends.dask_sim.compute import Evaluator
from repro.backends.dask_sim.expr import read_csv_expr
from repro.backends.dask_sim.frame import (
    DaskCollection,
    DaskFrame,
    DaskScalar,
    DaskSeries,
    from_pandas,
)
from repro.backends.dask_sim.store import PartitionStore
from repro.frame import DataFrame, Series
from repro.frame.io_csv import read_header, scan_partitions

#: Target bytes of CSV per partition (scaled-down analogue of Dask's 64 MB).
DEFAULT_PARTITION_BYTES = 1 << 20


def _auto_partition_bytes(default: int) -> int:
    """Memory-aware partition sizing (Dask's ``blocksize="auto"``).

    A partition's in-memory footprint is a small multiple of its CSV
    bytes; keep roughly 24 working partitions inside the budget so one
    in-flight partition plus partial aggregates always fit.
    """
    from repro.memory import current_memory_manager

    budget = current_memory_manager().budget
    if budget is None:
        return default
    return min(default, max(1 << 12, budget // 24))


class DaskBackend(Backend):
    """Lazy partitioned execution with out-of-core spilling."""

    name = "dask"
    is_lazy = True

    def __init__(self, partition_bytes: int = DEFAULT_PARTITION_BYTES):
        self.partition_bytes = partition_bytes
        self.store = PartitionStore()
        self.evaluator = Evaluator(self.store)

    def read_csv(
        self,
        path: str,
        usecols=None,
        dtype=None,
        parse_dates=None,
        index_col: Optional[str] = None,
        nrows=None,
        **kwargs,
    ) -> DaskFrame:
        kwargs.pop("read_only_cols", None)
        kwargs.pop("mutated_cols", None)
        ranges = scan_partitions(
            path,
            int(max(1, os.path.getsize(path) // _auto_partition_bytes(self.partition_bytes))),
        )
        expr = read_csv_expr(
            path,
            ranges,
            usecols=list(usecols) if usecols is not None else None,
            dtype=dtype,
            parse_dates=list(parse_dates) if parse_dates is not None else None,
        )
        columns = (
            [c for c in read_header(path) if usecols is None or c in set(usecols)]
        )
        frame = DaskFrame(expr, self.evaluator, columns=columns)
        if index_col is not None:
            # Dask's read_csv lacks index_col; emulate via set_index.
            frame = frame.set_index(index_col)
        return frame

    def scan(self, args: dict) -> DaskFrame:
        """Generic source scan, kept lazy: one expression partition per
        source partition, so depth-first evaluation streams pieces
        through the elementwise pipeline exactly like ``read_csv``.
        Partition sizing respects the same memory-aware target."""
        from repro.backends.dask_sim.expr import scan_expr
        from repro.io import Predicate, resolve_source

        options = dict(args)
        if args.get("partitions") is None:
            # Memory-aware re-chunking is only safe on an UNPRUNED scan:
            # pruned partition indices were computed by the optimizer
            # against the source's own chunking, so re-chunking here
            # would make them select the wrong byte ranges.
            options.setdefault(
                "partition_bytes", _auto_partition_bytes(self.partition_bytes)
            )
        from repro.core.session import current_session

        # same metastore the optimizer pruned with: sub-file partition
        # stats change the partition set, not just its statistics.
        source = resolve_source(options, metastore=current_session().metastore)
        parts = source.select_partitions(args.get("partitions"))
        columns = args.get("columns")
        predicate = Predicate.from_arg(args.get("predicate"))
        expr = scan_expr(source, parts, columns=columns, predicate=predicate)
        try:
            schema = source.schema()
        except OSError:
            schema = []
        if columns is not None:
            keep = set(columns)
            schema = [c for c in schema if c in keep]
        return DaskFrame(expr, self.evaluator, columns=schema)

    def from_data(self, data, **kwargs) -> DaskFrame:
        return self.from_pandas(DataFrame(data))

    def from_pandas(self, value):
        if isinstance(value, Series):
            frame = from_pandas(value.to_frame("__series__"), self.evaluator)
            return frame["__series__"]
        if isinstance(value, DataFrame):
            return from_pandas(value, self.evaluator)
        return value

    def adopt_cached(self, value):
        # One partition holding the exact eager value: compute() of a
        # single-partition expr returns the partition untouched, so the
        # result's index and name survive (from_pandas re-splits by
        # position and would reset both).
        from repro.backends.dask_sim.expr import materialized_expr

        if isinstance(value, DataFrame):
            handle = self.evaluator.store.put(value)
            return DaskFrame(
                materialized_expr([handle]), self.evaluator,
                columns=list(value.columns),
            )
        if isinstance(value, Series):
            handle = self.evaluator.store.put(value)
            return DaskSeries(
                materialized_expr([handle]), self.evaluator,
                name=value.name,
            )
        return value

    def to_datetime(self, series: DaskSeries) -> DaskSeries:
        from repro.backends.dask_sim.expr import blockwise_expr
        from repro.frame import to_datetime as _to_datetime

        if isinstance(series, Series):
            return _to_datetime(series)
        expr = blockwise_expr(
            lambda parts, p: _to_datetime(parts[0]), [series.expr], "to_datetime"
        )
        return DaskSeries(expr, self.evaluator, name=series.name)

    def concat(self, frames):
        from repro.backends.dask_sim.expr import concat_expr
        from repro.frame import concat as _concat

        lazy = [f for f in frames if isinstance(f, DaskCollection)]
        if not lazy:
            return _concat(frames)
        wrapped = [
            f if isinstance(f, DaskCollection) else self.from_pandas(f)
            for f in frames
        ]
        expr = concat_expr([w.expr for w in wrapped])
        if isinstance(wrapped[0], DaskSeries):
            return DaskSeries(expr, self.evaluator, name=wrapped[0].name)
        return DaskFrame(expr, self.evaluator, columns=wrapped[0].columns)

    # -- materialization ---------------------------------------------------

    def materialize(self, value):
        if isinstance(value, (DaskFrame, DaskSeries, DaskScalar)):
            return value.compute()
        return value

    def persist(self, value):
        if isinstance(value, (DaskFrame, DaskSeries)):
            return value.persist()
        return value
