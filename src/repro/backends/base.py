"""Backend protocol and the generic operator dispatch.

A backend supplies frame-like objects that implement the eager frame API
(:mod:`repro.frame`'s method names).  :func:`apply_generic` executes most
operators by plain method calls on those objects, so the three backends
share one dispatch table; a backend overrides only what differs
(``read_csv`` partitioning, unsupported ops).

When a backend raises :class:`BackendUnsupported`, the caller converts the
inputs to eager frames, runs the operation there, and converts the result
back -- the paper's transparent pandas-fallback (section 2.6).
"""

from __future__ import annotations

import operator
import re
from typing import Callable, Dict, List

from repro.graph.node import Node

#: Escape sequence wrapping a task-graph node id inside an f-string
#: (section 3.3's deferred formatted print).
MARKER_PATTERN = re.compile("\x00LAFP:(\\d+)\x00")


class BackendUnsupported(Exception):
    """The backend has no native implementation of this operator."""


class Backend:
    """Base class for execution backends."""

    name = "abstract"
    #: lazy backends build their own expression graphs; materialization
    #: happens once at the roots.
    is_lazy = False

    # -- frame construction ----------------------------------------------

    def read_csv(self, **kwargs):
        raise NotImplementedError

    def scan(self, args: dict):
        """Execute a generic ``scan`` node: resolve the source named by
        ``args['format']`` through the source registry and materialize
        the selected partitions (projection and folded predicate applied
        inside the source).  Eager backends concatenate the per-partition
        frames; partitioned backends override to keep the pieces apart.
        """
        from repro.core.session import current_session
        from repro.frame.concat import concat_consuming
        from repro.io import Predicate, resolve_source

        # the metastore must match the one the optimizer pruned against:
        # sub-file partition stats change the partition SET (one piece
        # per byte range), so resolving without it would misalign the
        # pruned partition indices.
        source = resolve_source(args, metastore=current_session().metastore)
        predicate = Predicate.from_arg(args.get("predicate"))
        if args.get("stream"):
            # the shuffle lowering marked this scan: its sole consumer
            # processes partitions one at a time, so hand it a lazy
            # stream instead of concatenating (PR 5 seam, ROADMAP item 1)
            from repro.io.spill import PartitionStream

            columns = args.get("columns")
            partitions = args.get("partitions")
            return PartitionStream(
                lambda: source.scan(
                    columns=columns,
                    predicate=predicate,
                    partitions=partitions,
                ),
                empty_factory=lambda: source.empty_frame(
                    columns, predicate=predicate
                ),
                n_partitions=(
                    len(partitions) if partitions is not None
                    else args.get("partitions_total")
                ),
            )
        frames = list(source.scan(
            columns=args.get("columns"),
            predicate=predicate,
            partitions=args.get("partitions"),
        ))
        if not frames:
            return self.from_pandas(
                source.empty_frame(args.get("columns"), predicate=predicate)
            )
        if len(frames) == 1:
            return self.from_pandas(frames[0])
        # partitions are temporaries: release each as the concat consumes it
        return self.from_pandas(concat_consuming(frames))

    def from_data(self, data, **kwargs):
        raise NotImplementedError

    def from_pandas(self, frame):
        """Wrap an eager frame into this backend's representation."""
        return frame

    def adopt_cached(self, value):
        """Wrap a deserialized cache-hit value (``from_cached`` nodes).

        Must round-trip exactly: ``materialize(adopt_cached(v))`` has to
        reproduce ``v`` bit-for-bit, *index and name included* -- unlike
        ``from_pandas``, which some lazy sims implement by re-splitting
        (dropping non-default indexes, acceptable for sources but not
        for computed results).
        """
        return self.from_pandas(value)

    def to_datetime(self, series):
        raise BackendUnsupported("to_datetime")

    def concat(self, frames):
        raise BackendUnsupported("concat")

    # -- execution ----------------------------------------------------------

    def apply(self, node: Node, inputs: List[object]):
        """Execute one node; default generic dispatch with pandas fallback."""
        try:
            return apply_generic(self, node, inputs)
        except BackendUnsupported:
            return self._fallback(node, inputs)

    def _fallback(self, node: Node, inputs: List[object]):
        """Convert to pandas, run there, convert back (section 2.6)."""
        from repro.backends.pandas_backend import PandasBackend

        eager_inputs = [self.materialize(v) for v in inputs]
        result = apply_generic(PandasBackend(), node, eager_inputs)
        if _is_framelike(result):
            return self.from_pandas(result)
        return result

    # -- materialization -------------------------------------------------------

    def materialize(self, value):
        """Force a backend value to an eager frame / series / scalar."""
        from repro.io.spill import PartitionStream

        if isinstance(value, PartitionStream):
            return value.materialize()
        return value

    def persist(self, value):
        """Keep a computed value resident for reuse (section 3.5)."""
        return value


def _is_framelike(value) -> bool:
    from repro.frame import DataFrame, Series

    return isinstance(value, (DataFrame, Series))


# ---------------------------------------------------------------------------
# Generic operator dispatch.
# ---------------------------------------------------------------------------

_BINOPS: Dict[str, Callable] = {
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "/": operator.truediv,
    "//": operator.floordiv,
    "%": operator.mod,
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "&": operator.and_,
    "|": operator.or_,
}


def apply_generic(backend: Backend, node: Node, inputs: List[object]):
    """Execute ``node`` by method calls on the backend's frame objects."""
    op = node.op
    args = node.args

    if op == "read_csv":
        return backend.read_csv(**args)
    if op == "scan":
        return backend.scan(args)
    if op == "from_data":
        return backend.from_data(args["data"])
    if op == "from_pandas":
        return backend.from_pandas(args["frame"])
    if op == "from_cached":
        # a cache-substituted subplan: deserialize the blob into this
        # session (rebuilt buffers charge the consumer's budget) and
        # adopt it like a shipped/imported frame.
        from repro.cache.result_cache import deserialize_value

        value = deserialize_value(args["blob"])
        if _is_framelike(value):
            return backend.adopt_cached(value)
        return value
    if op == "identity":
        return inputs[0]
    if op == "getitem_column":
        return inputs[0][args["column"]]
    if op == "getitem_columns":
        return inputs[0][list(args["columns"])]
    if op == "filter":
        return inputs[0][inputs[1]]
    if op == "setitem":
        value = inputs[1] if len(inputs) > 1 else args["value"]
        return inputs[0].with_column(args["column"], value)
    if op == "binop":
        left = inputs[0]
        right = inputs[1] if len(inputs) > 1 else args["right"]
        if args.get("reflected"):
            left, right = right, left
        return _BINOPS[args["op"]](left, right)
    if op == "unop":
        kind = args["op"]
        if kind == "~":
            return ~inputs[0]
        if kind == "-":
            return -inputs[0]
        if kind == "abs":
            return inputs[0].abs()
        raise ValueError(f"unknown unop {kind!r}")
    if op == "str_method":
        method = getattr(inputs[0].str, args["method"])
        extra = [inputs[i] for i in range(1, len(inputs))]
        return method(*args.get("args", ()), *extra, **args.get("kwargs", {}))
    if op == "dt_field":
        return getattr(inputs[0].dt, args["field"])
    if op == "isin":
        return inputs[0].isin(args["values"])
    if op == "between":
        return inputs[0].between(
            args["left"], args["right"], inclusive=args.get("inclusive", "both")
        )
    if op == "isna":
        return inputs[0].isna()
    if op == "notna":
        return inputs[0].notna()
    if op in ("series_fillna", "fillna"):
        return inputs[0].fillna(args["value"])
    if op in ("series_astype", "astype"):
        return inputs[0].astype(args["dtype"])
    if op == "series_map":
        return inputs[0].map(args["func"])
    if op == "series_call":
        method = getattr(inputs[0], args["method"], None)
        if method is None:
            # window ops need global row order: partitioned backends fall
            # back to pandas via the standard conversion path.
            raise BackendUnsupported(f"series method {args['method']!r}")
        return method(*args.get("args", ()), **args.get("kwargs", {}))
    if op == "to_datetime":
        return backend.to_datetime(inputs[0])
    if op == "dropna":
        return inputs[0].dropna(subset=args.get("subset"))
    if op == "rename":
        return inputs[0].rename(columns=args["columns"])
    if op == "drop":
        return inputs[0].drop(columns=args["columns"])
    if op == "sort_values":
        if args.get("by") is None:  # series sort
            return inputs[0].sort_values(ascending=args.get("ascending", True))
        return inputs[0].sort_values(args["by"], ascending=args.get("ascending", True))
    if op == "to_frame_series":
        return inputs[0].to_frame(args.get("name"))
    if op == "sort_index":
        return inputs[0].sort_index()
    if op == "drop_duplicates":
        return inputs[0].drop_duplicates(subset=args.get("subset"))
    if op == "round":
        return inputs[0].round(args.get("decimals", 0))
    if op == "abs":
        return inputs[0].abs()
    if op == "groupby_agg":
        grouped = inputs[0].groupby(args["keys"])
        return getattr(grouped[args["column"]], args["func"])()
    if op == "groupby_agg_multi":
        grouped = inputs[0].groupby(args["keys"], as_index=args.get("as_index", True))
        return grouped.agg(args["spec"])
    if op == "groupby_size":
        return inputs[0].groupby(args["keys"]).size()
    if op == "merge":
        from repro.io.spill import PartitionStream

        if any(isinstance(v, PartitionStream) for v in inputs):
            # broadcast fast path: streamed big side x small eager side
            from repro.backends.shuffle_ops import broadcast_merge

            return broadcast_merge(backend, node, inputs)
        return inputs[0].merge(inputs[1], **args)
    if op == "concat":
        return backend.concat(inputs)
    if op == "head":
        return inputs[0].head(args.get("n", 5))
    if op == "tail":
        return inputs[0].tail(args.get("n", 5))
    if op == "nlargest":
        return inputs[0].nlargest(args["n"], args["columns"])
    if op == "nsmallest":
        return inputs[0].nsmallest(args["n"], args["columns"])
    if op == "describe":
        return inputs[0].describe()
    if op == "info":
        return inputs[0].info()
    if op == "value_counts":
        return inputs[0].value_counts()
    if op == "series_agg":
        return getattr(inputs[0], args["func"])()
    if op in ("series_len", "frame_len"):
        return len(inputs[0])
    if op == "nunique":
        return inputs[0].nunique()
    if op == "unique":
        return inputs[0].unique()
    if op == "reset_index":
        return inputs[0].reset_index(drop=args.get("drop", False))
    if op == "set_index":
        return inputs[0].set_index(args["column"])
    if op == "apply":
        return inputs[0].apply(args["func"], axis=args.get("axis", 1))
    if op == "sample":
        return inputs[0].sample(args["n"], seed=args.get("seed", 0))
    if op == "print":
        _execute_print(backend, node, inputs)
        return None
    if op == "to_csv":
        frame = backend.materialize(inputs[0])
        frame.to_csv(args["path"], index=args.get("index", False))
        return None
    if op in ("shuffle_write", "shuffle_read", "partial_agg",
              "combine_agg", "compact"):
        from repro.backends.shuffle_ops import apply_shuffle_op

        return apply_shuffle_op(backend, node, inputs)

    raise BackendUnsupported(op)


def _execute_print(backend: Backend, node: Node, inputs: List[object]) -> None:
    """Run a lazy print node (section 3.3).

    ``segments`` describe the original print arguments; f-strings carry
    escape markers naming the node ids whose values they embed, resolved
    via ``marker_map`` (node id -> input position).
    """
    marker_map = node.args.get("marker_map", {})
    rendered = []
    for segment in node.args.get("segments", []):
        kind = segment["kind"]
        if kind == "literal":
            rendered.append(segment["value"])
        elif kind == "node":
            rendered.append(backend.materialize(inputs[segment["index"]]))
        elif kind == "fstring":
            def _sub(match):
                index = marker_map[match.group(1)]
                return str(backend.materialize(inputs[index]))

            rendered.append(MARKER_PATTERN.sub(_sub, segment["value"]))
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown print segment kind {kind!r}")
    print(*rendered, sep=node.args.get("sep", " "), end=node.args.get("end", "\n"))
