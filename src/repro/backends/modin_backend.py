"""Backend adapter for the Modin simulator.

Eager execution: each LaFP node materializes a :class:`ModinFrame` /
:class:`ModinSeries` immediately.  Because the backend cannot optimize
across nodes, LaFP's own optimizations carry all the benefit here
(section 2.6: "the backend cannot perform optimization across nodes, and
thus LaFP optimizations are even more important").
"""

from __future__ import annotations

from repro.backends.base import Backend
from repro.backends.modin_sim.frame import (
    ModinFrame,
    ModinSeries,
    _resplit,
    _split_series,
    modin_read_csv,
)
from repro.frame import DataFrame, Series, concat, to_datetime

#: Scaled-down analogue of Modin's default partition sizing.
DEFAULT_PARTITION_BYTES = 1 << 20


class ModinBackend(Backend):
    """Eager partitioned execution (thread-pool workers, no spilling)."""

    name = "modin"
    is_lazy = False

    def __init__(self, partition_bytes: int = DEFAULT_PARTITION_BYTES):
        self.partition_bytes = partition_bytes

    def read_csv(self, path: str, **kwargs) -> ModinFrame:
        kwargs.pop("read_only_cols", None)
        kwargs.pop("mutated_cols", None)
        kwargs.pop("nrows", None)
        return modin_read_csv(path, self.partition_bytes, **kwargs)

    def from_data(self, data, **kwargs) -> ModinFrame:
        return self.from_pandas(DataFrame(data))

    def from_pandas(self, value):
        if isinstance(value, Series):
            return _split_series(value, [len(value)])
        if isinstance(value, DataFrame):
            nparts = max(1, value.nbytes // self.partition_bytes)
            return _resplit(value, int(nparts))
        return value

    def to_datetime(self, series):
        if isinstance(series, Series):
            return to_datetime(series)
        return series._map(to_datetime)

    def concat(self, frames):
        eager = [
            f.to_pandas() if isinstance(f, (ModinFrame, ModinSeries)) else f
            for f in frames
        ]
        return self.from_pandas(concat(eager))

    def materialize(self, value):
        if isinstance(value, (ModinFrame, ModinSeries)):
            return value.to_pandas()
        return value

    def persist(self, value):
        return value  # everything is already memory-resident
