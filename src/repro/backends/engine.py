"""Engine abstraction: capability descriptors + registry + instances.

The pre-Session runtime resolved backends through a module-level
``get_backend(name)`` that returned a *fresh* backend object whenever the
session's name changed -- fine for one program per process, wrong for
concurrent sessions (two sessions on the same name would still race on
any module-level state, and a session switching back to a backend lost
that backend's store).  This module replaces it:

- :class:`EngineSpec` describes a backend *kind*: its factory plus the
  capability facts callers branch on (lazy vs eager, partitioned,
  out-of-core) -- the shape of Dask's per-collection
  ``__dask_scheduler__`` hooks, but declared once per engine.
- :class:`EngineRegistry` maps names to specs.  Sessions hold a registry
  reference (the shared :data:`DEFAULT_REGISTRY` unless injected), so
  tests can register simulated engines without touching global state.
- :class:`Engine` is one *instance*: a backend object private to the
  session that created it.  Two sessions never share an engine, which is
  what lets them run different backends concurrently.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, List

from repro.backends.base import Backend


@dataclasses.dataclass(frozen=True)
class EngineSpec:
    """Static description of one execution engine kind."""

    name: str
    factory: Callable[[], Backend]
    #: builds its own expression graph; materialization happens at roots.
    is_lazy: bool = False
    #: splits frames into row partitions.
    partitioned: bool = False
    #: can spill partitions to disk under memory pressure.
    out_of_core: bool = False
    #: ``backend.apply`` may run for independent nodes concurrently from
    #: scheduler worker threads.  Lazy simulators keep this False: their
    #: "apply" just extends a shared expression graph, so the threaded
    #: strategy would serialize on the store anyway.
    supports_parallel_apply: bool = False
    description: str = ""


class Engine:
    """A per-session backend instance plus its capability descriptor."""

    __slots__ = ("spec", "backend")

    def __init__(self, spec: EngineSpec):
        self.spec = spec
        self.backend = spec.factory()

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def is_lazy(self) -> bool:
        return self.spec.is_lazy

    @property
    def partitioned(self) -> bool:
        return self.spec.partitioned

    @property
    def out_of_core(self) -> bool:
        return self.spec.out_of_core

    @property
    def supports_parallel_apply(self) -> bool:
        return self.spec.supports_parallel_apply

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Engine {self.name} lazy={self.is_lazy}>"


class EngineRegistry:
    """Name -> :class:`EngineSpec` lookup; sessions create instances."""

    def __init__(self, specs: Iterable[EngineSpec] = ()):
        self._specs: Dict[str, EngineSpec] = {}
        for spec in specs:
            self.register(spec)

    def register(self, spec: EngineSpec, replace: bool = False) -> EngineSpec:
        key = spec.name.lower()
        if key in self._specs and not replace:
            raise ValueError(f"engine {spec.name!r} already registered")
        self._specs[key] = spec
        return spec

    def spec(self, name: str) -> EngineSpec:
        key = str(name).lower()
        if key not in self._specs:
            raise ValueError(
                f"unknown backend {name!r}; choose from {self.names()}"
            )
        return self._specs[key]

    def create(self, name: str) -> Engine:
        """A fresh engine instance (one backend object, never shared)."""
        return Engine(self.spec(name))

    def names(self) -> List[str]:
        return sorted(self._specs)

    def __contains__(self, name: str) -> bool:
        return str(name).lower() in self._specs


def _pandas_factory() -> Backend:
    from repro.backends.pandas_backend import PandasBackend

    return PandasBackend()


def _dask_factory() -> Backend:
    from repro.backends.dask_backend import DaskBackend

    return DaskBackend()


def _modin_factory() -> Backend:
    from repro.backends.modin_backend import ModinBackend

    return ModinBackend()


#: The stock registry with the paper's three engines (section 2.6).
DEFAULT_REGISTRY = EngineRegistry([
    EngineSpec(
        "pandas", _pandas_factory,
        supports_parallel_apply=True,
        description="eager, whole-frame, in-memory",
    ),
    EngineSpec(
        "dask", _dask_factory,
        is_lazy=True, partitioned=True, out_of_core=True,
        description="lazy, partitioned, out-of-core with spilling",
    ),
    EngineSpec(
        "modin", _modin_factory,
        partitioned=True, supports_parallel_apply=True,
        description="eager, partitioned, in-memory",
    ),
])
