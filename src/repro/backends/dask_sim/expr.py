"""Expression graph of the Dask simulator.

Kinds:

=============== ============================================================
``read_csv``     byte-range partitioned CSV source
``materialized`` partitions already computed (``persist()`` / shuffles)
``from_pandas``  eager frame split into row partitions
``blockwise``    partition-aligned map over child partitions (elementwise
                 ops, filters, column get/set, per-partition dropna, ...)
``tree``         map each child partition to a small partial, concatenate
                 the partials, apply a combine function -> one partition
                 (group-by aggregation, drop_duplicates, nlargest,
                 value_counts, scalar reductions)
``merge_broadcast`` hash-join where the right side is a single partition
``merge_shuffle``   hash-partition both sides into buckets, join per bucket
``concat``       union of the children's partition lists
``head``         first ``n`` rows from the leading partitions
=============== ============================================================

``blockwise`` children must agree on partition count (single-partition
children broadcast).  Evaluation is depth-first per partition, which gives
operator *fusion* for free: an entire elementwise pipeline runs on one
partition before the next partition is read.
"""

from __future__ import annotations

import itertools
from typing import Callable, List, Optional, Sequence

_expr_ids = itertools.count(1)


class Expr:
    """One node of the lazy expression graph."""

    __slots__ = ("id", "kind", "children", "params", "npartitions")

    def __init__(
        self,
        kind: str,
        children: Sequence["Expr"] = (),
        params: Optional[dict] = None,
        npartitions: int = 1,
    ):
        self.id = next(_expr_ids)
        self.kind = kind
        self.children: List[Expr] = list(children)
        self.params = params or {}
        self.npartitions = npartitions

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Expr {self.id} {self.kind} p={self.npartitions}>"


def scan_expr(source, partitions, columns=None, predicate=None) -> Expr:
    """Generic source scan: one expression partition per
    :class:`~repro.io.source.Partition`, read through the source's
    ``read_partition`` (projection and folded predicate applied there).
    """
    return Expr(
        "scan",
        params={
            "source": source,
            "parts": list(partitions),
            "columns": columns,
            "predicate": predicate,
        },
        npartitions=max(1, len(partitions)),
    )


def read_csv_expr(
    path: str,
    byte_ranges: Sequence[tuple],
    usecols=None,
    dtype=None,
    parse_dates=None,
) -> Expr:
    return Expr(
        "read_csv",
        params={
            "path": path,
            "byte_ranges": list(byte_ranges),
            "usecols": usecols,
            "dtype": dtype,
            "parse_dates": parse_dates,
        },
        npartitions=len(byte_ranges),
    )


def materialized_expr(handles) -> Expr:
    return Expr(
        "materialized",
        params={"handles": list(handles)},
        npartitions=len(handles),
    )


def blockwise_expr(
    func: Callable,
    children: Sequence[Expr],
    description: str,
    bparams: Optional[dict] = None,
) -> Expr:
    nparts = max(c.npartitions for c in children)
    for child in children:
        if child.npartitions not in (1, nparts):
            raise ValueError(
                f"blockwise partition mismatch: {child.npartitions} vs {nparts}"
            )
    return Expr(
        "blockwise",
        children=children,
        params={"func": func, "bparams": bparams or {}, "desc": description},
        npartitions=nparts,
    )


def tree_expr(
    child: Expr,
    map_func: Callable,
    combine_func: Callable,
    description: str,
) -> Expr:
    return Expr(
        "tree",
        children=[child],
        params={"map": map_func, "combine": combine_func, "desc": description},
        npartitions=1,
    )


def concat_expr(children: Sequence[Expr]) -> Expr:
    return Expr(
        "concat",
        children=list(children),
        npartitions=sum(c.npartitions for c in children),
    )


def head_expr(child: Expr, n: int) -> Expr:
    return Expr("head", children=[child], params={"n": n}, npartitions=1)


def merge_broadcast_expr(left: Expr, right: Expr, kwargs: dict) -> Expr:
    return Expr(
        "merge_broadcast",
        children=[left, right],
        params={"kwargs": kwargs},
        npartitions=left.npartitions,
    )


def merge_shuffle_expr(left: Expr, right: Expr, kwargs: dict, nbuckets: int) -> Expr:
    return Expr(
        "merge_shuffle",
        children=[left, right],
        params={"kwargs": kwargs, "nbuckets": nbuckets},
        npartitions=nbuckets,
    )


def walk(expr: Expr):
    """All reachable expression nodes (each yielded once)."""
    seen = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if node.id in seen:
            continue
        seen.add(node.id)
        yield node
        stack.extend(node.children)
