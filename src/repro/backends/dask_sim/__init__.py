"""Partitioned lazy dataframe engine (the Dask stand-in).

Reproduces the Dask properties the paper depends on:

- **lazy evaluation**: operations build an expression graph; nothing runs
  until ``compute()`` / ``persist()``,
- **partitioned out-of-core execution**: CSVs are read in byte-range
  partitions; pipelines evaluate one partition at a time; materialized
  partitions spill to disk under memory pressure, so programs survive
  datasets larger than the simulated RAM budget (Figure 12),
- **its own optimizer**: column-projection pushdown into reads, blockwise
  fusion (a consequence of depth-first per-partition evaluation), and
  culling (only requested roots evaluate) -- LaFP's optimizations
  *complement* these, as section 2.6 discusses,
- **no global row order**: shuffles and tree combines reorder rows;
  position-based indexing is deliberately unsupported,
- **persist()**: keeps computed partitions resident for reuse.
"""

from repro.backends.dask_sim.store import PartitionStore
from repro.backends.dask_sim.expr import Expr
from repro.backends.dask_sim.frame import DaskFrame, DaskScalar, DaskSeries

__all__ = ["DaskFrame", "DaskScalar", "DaskSeries", "Expr", "PartitionStore"]
