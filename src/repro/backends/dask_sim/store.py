"""Spillable partition storage.

Materialized partitions (from ``persist()``, shuffle buckets, or cached
reads) live in a :class:`PartitionStore`.  When the simulated memory
budget tightens, least-recently-used partitions are pickled to a temporary
directory and their tracked bytes released; access transparently loads
them back.  This is the mechanism that lets the Dask backend run 9-of-10
programs on the largest dataset in Figure 12.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from typing import Dict, Optional

from repro.memory import current_memory_manager

#: Spill until live bytes drop below this fraction of the budget.
LOW_WATER = 0.5
#: Begin spilling when live bytes exceed this fraction of the budget.
HIGH_WATER = 0.8


class PartitionHandle:
    """A partition that is either in memory or spilled to disk."""

    _ids = iter(range(1, 1 << 60))

    def __init__(self, store: "PartitionStore", value):
        self.id = next(self._ids)
        self._store = store
        self._value = value
        self._path: Optional[str] = None
        self.nbytes = _value_nbytes(value)

    @property
    def in_memory(self) -> bool:
        return self._value is not None

    def get(self):
        """The partition value, loading from disk if spilled."""
        self._store.touch(self)
        if self._value is None:
            with open(self._path, "rb") as f:
                self._value = pickle.load(f)  # re-registers tracked bytes
        return self._value

    def spill(self) -> None:
        """Write to disk and drop the in-memory reference."""
        if self._value is None:
            return
        if self._path is None:
            self._path = os.path.join(
                self._store.directory, f"part-{self.id}.pkl"
            )
            with open(self._path, "wb") as f:
                pickle.dump(self._value, f, protocol=pickle.HIGHEST_PROTOCOL)
        # Dropping the reference lets the Column finalizers release the
        # tracked bytes promptly under CPython refcounting.
        self._value = None

    def drop(self) -> None:
        self._value = None
        if self._path and os.path.exists(self._path):
            os.remove(self._path)
        self._path = None


class PartitionStore:
    """LRU registry of spillable partitions."""

    def __init__(self, directory: Optional[str] = None):
        self.directory = directory or tempfile.mkdtemp(prefix="lafp-spill-")
        self._lock = threading.Lock()
        self._clock = 0
        self._last_used: Dict[int, int] = {}
        self._handles: Dict[int, PartitionHandle] = {}
        self.spill_count = 0

    def put(self, value) -> PartitionHandle:
        handle = PartitionHandle(self, value)
        with self._lock:
            self._handles[handle.id] = handle
            self._clock += 1
            self._last_used[handle.id] = self._clock
        self.ensure_headroom()
        return handle

    def touch(self, handle: PartitionHandle) -> None:
        with self._lock:
            self._clock += 1
            self._last_used[handle.id] = self._clock

    def ensure_headroom(self, protect: Optional[set] = None) -> None:
        """Spill LRU partitions until under the low-water mark.

        ``protect`` names handle ids that must stay resident (inputs of the
        partition currently being computed).
        """
        manager = current_memory_manager()
        budget = manager.budget
        if budget is None:
            return
        if manager.live < HIGH_WATER * budget:
            return
        protect = protect or set()
        with self._lock:
            candidates = sorted(
                (
                    h
                    for h in self._handles.values()
                    if h.in_memory and h.id not in protect
                ),
                key=lambda h: self._last_used[h.id],
            )
        for handle in candidates:
            if manager.live <= LOW_WATER * budget:
                break
            handle.spill()
            self.spill_count += 1

    def spill_all(self, protect: Optional[set] = None) -> None:
        """Emergency spill of every resident partition (OOM recovery)."""
        protect = protect or set()
        with self._lock:
            handles = [
                h
                for h in self._handles.values()
                if h.in_memory and h.id not in protect
            ]
        for handle in handles:
            handle.spill()
            self.spill_count += 1

    def release(self, handle: PartitionHandle) -> None:
        with self._lock:
            self._handles.pop(handle.id, None)
            self._last_used.pop(handle.id, None)
        handle.drop()

    def clear(self) -> None:
        with self._lock:
            handles = list(self._handles.values())
            self._handles.clear()
            self._last_used.clear()
        for handle in handles:
            handle.drop()


def _value_nbytes(value) -> int:
    nbytes = getattr(value, "nbytes", None)
    if nbytes is None:
        return 0
    return int(nbytes)
