"""Evaluator for the Dask-simulator expression graph.

Evaluation is depth-first per partition: asking for partition ``i`` of a
blockwise pipeline reads partition ``i`` of the CSV, runs the whole
elementwise chain on it, and releases it before partition ``i+1`` starts.
Combined with spilling (:mod:`repro.backends.dask_sim.store`) this yields
out-of-core execution.

On a :class:`~repro.memory.SimulatedMemoryError` the evaluator spills all
resident partitions and retries once; if the retry fails the program
genuinely cannot run (e.g. a forced whole-frame materialization, the `emp`
failure of Figure 12) and the error propagates.
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from repro.frame import DataFrame, concat
from repro.frame.concat import concat_consuming
from repro.frame.io_csv import read_csv
from repro.memory import SimulatedMemoryError
from repro.backends.dask_sim.expr import Expr, materialized_expr
from repro.backends.dask_sim.store import PartitionStore


class Evaluator:
    """Executes expression graphs against a partition store."""

    def __init__(self, store: PartitionStore):
        self.store = store

    # -- public API --------------------------------------------------------

    def materialize(self, expr: Expr):
        """Concatenate all partitions of ``expr`` into one eager value.

        The partitions are temporaries, so the consuming concat releases
        each piece's buffers as they merge.
        """
        parts = []
        for i in range(expr.npartitions):
            parts.append(self._guarded(self.eval_partition, expr, i))
            self.store.ensure_headroom()
        if len(parts) == 1:
            return parts[0]
        if isinstance(parts[0], DataFrame):
            return self._guarded(concat_consuming, parts)
        return concat(parts)

    def persist(self, expr: Expr) -> Expr:
        """Compute every partition and pin it in the (spillable) store."""
        handles = []
        for i in range(expr.npartitions):
            value = self._guarded(self.eval_partition, expr, i)
            handles.append(self.store.put(value))
        return materialized_expr(handles)

    def _guarded(self, func: Callable, *args):
        try:
            return func(*args)
        except SimulatedMemoryError:
            self.store.spill_all()
            return func(*args)

    # -- partition evaluation -----------------------------------------------

    def eval_partition(self, expr: Expr, i: int):
        kind = expr.kind
        if kind == "read_csv":
            return self._read_partition(expr, i)
        if kind == "scan":
            return self._scan_partition(expr, i)
        if kind == "materialized":
            return expr.params["handles"][i].get()
        if kind == "blockwise":
            args = [
                self.eval_partition(c, i if c.npartitions > 1 else 0)
                for c in expr.children
            ]
            return expr.params["func"](args, expr.params["bparams"])
        if kind == "tree":
            return self._eval_tree(expr)
        if kind == "concat":
            return self._eval_concat_partition(expr, i)
        if kind == "head":
            return self._eval_head(expr)
        if kind == "merge_broadcast":
            left = self.eval_partition(expr.children[0], i)
            right = self.eval_partition(expr.children[1], 0)
            return left.merge(right, **expr.params["kwargs"])
        if kind == "merge_shuffle":
            return self._eval_shuffle_bucket(expr, i)
        raise ValueError(f"unknown expression kind {kind!r}")

    def _scan_partition(self, expr: Expr, i: int):
        params = expr.params
        parts = params["parts"]
        if not parts:  # every partition pruned: typed empty piece
            return params["source"].empty_frame(
                params["columns"], predicate=params["predicate"]
            )
        return params["source"].read_partition(
            parts[i],
            columns=params["columns"],
            predicate=params["predicate"],
        )

    def _read_partition(self, expr: Expr, i: int):
        params = expr.params
        return read_csv(
            params["path"],
            usecols=params.get("usecols"),
            dtype=params.get("dtype"),
            parse_dates=params.get("parse_dates"),
            byte_range=params["byte_ranges"][i],
        )

    def _eval_tree(self, expr: Expr):
        child = expr.children[0]
        map_func = expr.params["map"]
        partials = []
        for j in range(child.npartitions):
            part = self.eval_partition(child, j)
            partials.append(map_func(part))
            del part
            self.store.ensure_headroom()
        if len(partials) == 1:
            combined = partials[0]
        elif isinstance(partials[0], DataFrame):
            combined = concat_consuming(partials)
        else:
            combined = concat(partials)
        return expr.params["combine"](combined)

    def _eval_concat_partition(self, expr: Expr, i: int):
        offset = 0
        for child in expr.children:
            if i < offset + child.npartitions:
                return self.eval_partition(child, i - offset)
            offset += child.npartitions
        raise IndexError(f"partition {i} out of range")

    def _eval_head(self, expr: Expr):
        child = expr.children[0]
        n = expr.params["n"]
        pieces = []
        have = 0
        for j in range(child.npartitions):
            part = self.eval_partition(child, j)
            pieces.append(part.head(n - have))
            have += len(pieces[-1])
            if have >= n:
                break
        return pieces[0] if len(pieces) == 1 else concat(pieces)

    # -- shuffle join -----------------------------------------------------------

    def _eval_shuffle_bucket(self, expr: Expr, bucket: int):
        buckets = expr.params.get("_buckets")
        if buckets is None:
            buckets = self._shuffle(expr)
            expr.params["_buckets"] = buckets
        (left_handles, left_template), (right_handles, right_template) = (
            buckets
        )
        kwargs = expr.params["kwargs"]
        left = self._gather_bucket(left_handles[bucket], left_template)
        right = self._gather_bucket(right_handles[bucket], right_template)
        return left.merge(right, **kwargs)

    def _gather_bucket(self, handles, template) -> DataFrame:
        frames = [h.get() for h in handles]
        if not frames:
            # zero-row template, not DataFrame({}): an empty bucket
            # must keep the side's schema or the merge drops columns
            return template if template is not None else DataFrame({})
        return frames[0] if len(frames) == 1 else concat(frames)

    def _shuffle(self, expr: Expr):
        left_expr, right_expr = expr.children
        kwargs = expr.params["kwargs"]
        nbuckets = expr.params["nbuckets"]
        left_keys, right_keys = _merge_keys(kwargs)

        left_buckets = self._partition_side(left_expr, left_keys, nbuckets)
        right_buckets = self._partition_side(right_expr, right_keys, nbuckets)
        return left_buckets, right_buckets

    def _partition_side(self, side: Expr, keys: List[str], nbuckets: int):
        buckets: List[list] = [[] for _ in range(nbuckets)]
        template = None
        for i in range(side.npartitions):
            part = self.eval_partition(side, i)
            if template is None:
                template = part[np.zeros(len(part), dtype=bool)]
            codes = _bucket_codes(part, keys, nbuckets)
            for b in range(nbuckets):
                piece = part[codes == b]
                if len(piece):
                    buckets[b].append(self.store.put(piece))
            del part
            self.store.ensure_headroom()
        return buckets, template


def _merge_keys(kwargs: dict):
    on = kwargs.get("on")
    if on is not None:
        keys = [on] if isinstance(on, str) else list(on)
        return keys, keys
    left_on = kwargs.get("left_on")
    right_on = kwargs.get("right_on")
    lk = [left_on] if isinstance(left_on, str) else list(left_on)
    rk = [right_on] if isinstance(right_on, str) else list(right_on)
    return lk, rk


def _bucket_codes(frame: DataFrame, keys: List[str], nbuckets: int) -> np.ndarray:
    """Deterministic per-row bucket assignment on the key tuple."""
    combined = np.zeros(len(frame), dtype=np.uint64)
    for key in keys:
        values = frame.column(key).to_array()
        if values.dtype.kind in "if":
            h = values.astype(np.float64).view(np.uint64)
        elif values.dtype.kind == "M":
            h = values.view("int64").astype(np.uint64)
        else:
            h = np.array(
                [_string_hash(v) for v in values], dtype=np.uint64
            )
        combined = combined * np.uint64(1099511628211) + h
    return (combined % np.uint64(nbuckets)).astype(np.int64)


def _string_hash(value) -> int:
    """Stable FNV-1a hash (Python's hash() is salted per process)."""
    data = ("" if value is None else str(value)).encode("utf-8")
    h = 1469598103934665603
    for byte in data:
        h = ((h ^ byte) * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return h
