"""Lazy frame/series/scalar wrappers of the Dask simulator.

These mirror the eager frame API (method names and semantics) so the
generic operator dispatch in :mod:`repro.backends.base` drives them
unchanged.  Methods build :class:`~repro.backends.dask_sim.expr.Expr`
nodes; ``compute()`` runs the evaluator.

Deliberately unsupported (raise :class:`BackendUnsupported`, triggering
the pandas-fallback conversion the paper describes): global
``sort_values`` / ``sort_index``, ``describe``, ``reset_index``,
position-based indexing, and ``apply`` without an explicit ``meta`` --
matching the Dask limitations section 5.1 reports working around.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from repro.backends.base import BackendUnsupported
from repro.backends.dask_sim.compute import Evaluator
from repro.backends.dask_sim.expr import (
    Expr,
    blockwise_expr,
    head_expr,
    merge_broadcast_expr,
    merge_shuffle_expr,
    tree_expr,
)
from repro.frame import DataFrame, Series


class DaskCollection:
    """Shared lazy-collection plumbing."""

    def __init__(self, expr: Expr, evaluator: Evaluator):
        self.expr = expr
        self.evaluator = evaluator

    @property
    def npartitions(self) -> int:
        return self.expr.npartitions

    def compute(self):
        """Materialize to an eager value."""
        return self.evaluator.materialize(self.expr)

    def __len__(self) -> int:
        total = 0
        for i in range(self.expr.npartitions):
            total += len(self.evaluator.eval_partition(self.expr, i))
        return total


class DaskFrame(DaskCollection):
    """Lazy partitioned dataframe."""

    def __init__(self, expr: Expr, evaluator: Evaluator, columns: Optional[List[str]] = None):
        super().__init__(expr, evaluator)
        self.columns = columns

    def _frame(self, expr: Expr, columns=None) -> "DaskFrame":
        return DaskFrame(expr, self.evaluator, columns=columns)

    def _series(self, expr: Expr, name=None) -> "DaskSeries":
        return DaskSeries(expr, self.evaluator, name=name)

    def persist(self) -> "DaskFrame":
        return self._frame(self.evaluator.persist(self.expr), columns=self.columns)

    # -- selection ------------------------------------------------------------

    def __getitem__(self, key):
        if isinstance(key, str):
            expr = blockwise_expr(
                lambda parts, p: parts[0][p["col"]],
                [self.expr],
                f"getitem[{key}]",
                {"col": key},
            )
            return self._series(expr, name=key)
        if isinstance(key, list):
            expr = blockwise_expr(
                lambda parts, p: parts[0][list(p["cols"])],
                [self.expr],
                f"project{key}",
                {"cols": list(key)},
            )
            return self._frame(expr, columns=list(key))
        if isinstance(key, DaskSeries):
            expr = blockwise_expr(
                lambda parts, p: parts[0][parts[1]],
                [self.expr, key.expr],
                "filter",
            )
            return self._frame(expr, columns=self.columns)
        raise BackendUnsupported(f"getitem with {type(key).__name__}")

    def __getattr__(self, name: str):
        if name.startswith("_") or name in ("expr", "evaluator", "columns"):
            raise AttributeError(name)
        if self.columns is not None and name in self.columns:
            return self[name]
        raise AttributeError(name)

    def __setitem__(self, name: str, value) -> None:
        """In-place pandas idiom ``df[c] = s``: rebinds this wrapper's
        expression (the expressions themselves stay immutable)."""
        out = self.with_column(name, value)
        self.expr = out.expr
        self.columns = out.columns

    def with_column(self, name: str, value) -> "DaskFrame":
        columns = None
        if self.columns is not None:
            columns = self.columns + ([name] if name not in self.columns else [])
        if isinstance(value, DaskSeries):
            expr = blockwise_expr(
                lambda parts, p: parts[0].with_column(p["name"], parts[1]),
                [self.expr, value.expr],
                f"setitem[{name}]",
                {"name": name},
            )
        else:
            expr = blockwise_expr(
                lambda parts, p: parts[0].with_column(p["name"], p["value"]),
                [self.expr],
                f"setitem[{name}]",
                {"name": name, "value": value},
            )
        return self._frame(expr, columns=columns)

    def head(self, n: int = 5) -> DataFrame:
        """Eager, like Dask's ``df.head()`` (reads only leading partitions)."""
        return self.evaluator._guarded(
            self.evaluator.eval_partition, head_expr(self.expr, n), 0
        )

    # -- per-partition transforms ------------------------------------------------

    def _blockwise_frame(self, method: str, desc: str, /, **kwargs) -> "DaskFrame":
        expr = blockwise_expr(
            lambda parts, p: getattr(parts[0], p["m"])(**p["kw"]),
            [self.expr],
            desc,
            {"m": method, "kw": kwargs},
        )
        return self._frame(expr, columns=self.columns)

    def dropna(self, subset=None) -> "DaskFrame":
        return self._blockwise_frame("dropna", "dropna", subset=subset)

    def fillna(self, value) -> "DaskFrame":
        return self._blockwise_frame("fillna", "fillna", value=value)

    def astype(self, dtype) -> "DaskFrame":
        return self._blockwise_frame("astype", "astype", dtype=dtype)

    def rename(self, columns) -> "DaskFrame":
        out = self._blockwise_frame("rename", "rename", columns=columns)
        if self.columns is not None:
            out.columns = [columns.get(c, c) for c in self.columns]
        return out

    def drop(self, columns) -> "DaskFrame":
        drop_list = [columns] if isinstance(columns, str) else list(columns)
        out = self._blockwise_frame("drop", "drop", columns=drop_list)
        if self.columns is not None:
            out.columns = [c for c in self.columns if c not in set(drop_list)]
        return out

    def round(self, decimals: int = 0) -> "DaskFrame":
        return self._blockwise_frame("round", "round", decimals=decimals)

    def set_index(self, column: str) -> "DaskFrame":
        # Per-partition set_index; global order is not guaranteed anyway.
        expr = blockwise_expr(
            lambda parts, p: parts[0].set_index(p["col"]),
            [self.expr],
            f"set_index[{column}]",
            {"col": column},
        )
        cols = [c for c in self.columns if c != column] if self.columns else None
        return self._frame(expr, columns=cols)

    def sample(self, n: int, seed: int = 0) -> "DaskFrame":
        expr = blockwise_expr(
            lambda parts, p: parts[0].sample(p["n"], seed=p["seed"]),
            [self.expr],
            "sample",
            {"n": n, "seed": seed},
        )
        return self._frame(expr, columns=self.columns)

    def apply(self, func, axis: int = 1, meta=None):
        if meta is None:
            # Dask requires output metadata for apply (section 3.6).
            raise BackendUnsupported("apply without meta")
        expr = blockwise_expr(
            lambda parts, p: parts[0].apply(p["func"], axis=p["axis"]),
            [self.expr],
            "apply",
            {"func": func, "axis": axis},
        )
        return DaskSeries(expr, self.evaluator)

    # -- tree operators ---------------------------------------------------------------

    def drop_duplicates(self, subset=None) -> "DaskFrame":
        expr = tree_expr(
            self.expr,
            lambda part: part.drop_duplicates(subset=subset),
            lambda combined: combined.drop_duplicates(subset=subset),
            "drop_duplicates",
        )
        return self._frame(expr, columns=self.columns)

    def nlargest(self, n: int, columns) -> "DaskFrame":
        expr = tree_expr(
            self.expr,
            lambda part: part.nlargest(n, columns),
            lambda combined: combined.nlargest(n, columns),
            "nlargest",
        )
        return self._frame(expr, columns=self.columns)

    def nsmallest(self, n: int, columns) -> "DaskFrame":
        expr = tree_expr(
            self.expr,
            lambda part: part.nsmallest(n, columns),
            lambda combined: combined.nsmallest(n, columns),
            "nsmallest",
        )
        return self._frame(expr, columns=self.columns)

    # -- join & groupby ------------------------------------------------------------------

    def merge(self, right, **kwargs) -> "DaskFrame":
        if isinstance(right, DataFrame):
            right = from_pandas(right, self.evaluator, npartitions=1)
        columns = _merged_columns(self.columns, right.columns, kwargs)
        if right.npartitions == 1:
            expr = merge_broadcast_expr(self.expr, right.expr, kwargs)
        elif self.npartitions == 1:
            # Swap sides so the broadcast side is the single partition.
            flipped = _flip_merge_kwargs(kwargs)
            expr = merge_broadcast_expr(right.expr, self.expr, flipped)
        else:
            nbuckets = max(self.npartitions, right.npartitions)
            expr = merge_shuffle_expr(self.expr, right.expr, kwargs, nbuckets)
        return self._frame(expr, columns=columns)

    def groupby(self, by, as_index: bool = True) -> "DaskGroupBy":
        keys = [by] if isinstance(by, str) else list(by)
        return DaskGroupBy(self, keys, as_index=as_index)

    # -- unsupported on Dask (trigger pandas fallback) -------------------------------------

    def sort_values(self, by, ascending=True):
        raise BackendUnsupported("sort_values (Dask has no global row order)")

    def sort_index(self):
        raise BackendUnsupported("sort_index")

    def describe(self):
        raise BackendUnsupported("describe")

    def reset_index(self, drop: bool = False):
        raise BackendUnsupported("reset_index")

    @property
    def iloc(self):
        raise BackendUnsupported("iloc (position-based access)")


class DaskSeries(DaskCollection):
    """Lazy partitioned series."""

    def __init__(self, expr: Expr, evaluator: Evaluator, name: Optional[str] = None):
        super().__init__(expr, evaluator)
        self.name = name

    def _series(self, expr: Expr, name=None) -> "DaskSeries":
        return DaskSeries(expr, self.evaluator, name=name or self.name)

    def persist(self) -> "DaskSeries":
        return self._series(self.evaluator.persist(self.expr))

    # -- elementwise --------------------------------------------------------

    def _binop(self, other, symbol: str, reflected: bool = False) -> "DaskSeries":
        import operator as _op

        table = {
            "+": _op.add, "-": _op.sub, "*": _op.mul, "/": _op.truediv,
            "//": _op.floordiv, "%": _op.mod, "==": _op.eq, "!=": _op.ne,
            "<": _op.lt, "<=": _op.le, ">": _op.gt, ">=": _op.ge,
            "&": _op.and_, "|": _op.or_,
        }
        func = table[symbol]
        if isinstance(other, DaskSeries):
            expr = blockwise_expr(
                lambda parts, p: (
                    p["f"](parts[1], parts[0]) if p["r"] else p["f"](parts[0], parts[1])
                ),
                [self.expr, other.expr],
                f"binop[{symbol}]",
                {"f": func, "r": reflected},
            )
        else:
            expr = blockwise_expr(
                lambda parts, p: (
                    p["f"](p["v"], parts[0]) if p["r"] else p["f"](parts[0], p["v"])
                ),
                [self.expr],
                f"binop[{symbol}]",
                {"f": func, "v": other, "r": reflected},
            )
        return self._series(expr)

    def __add__(self, other):
        return self._binop(other, "+")

    def __radd__(self, other):
        return self._binop(other, "+", reflected=True)

    def __sub__(self, other):
        return self._binop(other, "-")

    def __rsub__(self, other):
        return self._binop(other, "-", reflected=True)

    def __mul__(self, other):
        return self._binop(other, "*")

    def __rmul__(self, other):
        return self._binop(other, "*", reflected=True)

    def __truediv__(self, other):
        return self._binop(other, "/")

    def __rtruediv__(self, other):
        return self._binop(other, "/", reflected=True)

    def __floordiv__(self, other):
        return self._binop(other, "//")

    def __mod__(self, other):
        return self._binop(other, "%")

    def __eq__(self, other):  # type: ignore[override]
        return self._binop(other, "==")

    def __ne__(self, other):  # type: ignore[override]
        return self._binop(other, "!=")

    def __lt__(self, other):
        return self._binop(other, "<")

    def __le__(self, other):
        return self._binop(other, "<=")

    def __gt__(self, other):
        return self._binop(other, ">")

    def __ge__(self, other):
        return self._binop(other, ">=")

    __hash__ = None  # type: ignore[assignment]

    def __and__(self, other):
        return self._binop(other, "&")

    def __or__(self, other):
        return self._binop(other, "|")

    def __invert__(self) -> "DaskSeries":
        expr = blockwise_expr(lambda parts, p: ~parts[0], [self.expr], "invert")
        return self._series(expr)

    def _blockwise(self, desc: str, func, **bparams) -> "DaskSeries":
        expr = blockwise_expr(func, [self.expr], desc, bparams)
        return self._series(expr)

    def abs(self) -> "DaskSeries":
        return self._blockwise("abs", lambda parts, p: parts[0].abs())

    def round(self, decimals: int = 0) -> "DaskSeries":
        return self._blockwise(
            "round", lambda parts, p: parts[0].round(p["d"]), d=decimals
        )

    def isin(self, values) -> "DaskSeries":
        return self._blockwise(
            "isin", lambda parts, p: parts[0].isin(p["v"]), v=list(values)
        )

    def between(self, left, right, inclusive: str = "both") -> "DaskSeries":
        return self._blockwise(
            "between",
            lambda parts, p: parts[0].between(p["l"], p["r"], inclusive=p["i"]),
            l=left, r=right, i=inclusive,
        )

    def isna(self) -> "DaskSeries":
        return self._blockwise("isna", lambda parts, p: parts[0].isna())

    def notna(self) -> "DaskSeries":
        return self._blockwise("notna", lambda parts, p: parts[0].notna())

    def fillna(self, value) -> "DaskSeries":
        return self._blockwise(
            "fillna", lambda parts, p: parts[0].fillna(p["v"]), v=value
        )

    def astype(self, dtype) -> "DaskSeries":
        return self._blockwise(
            "astype", lambda parts, p: parts[0].astype(p["d"]), d=dtype
        )

    def map(self, func) -> "DaskSeries":
        return self._blockwise(
            "map", lambda parts, p: parts[0].map(p["f"]), f=func
        )

    apply = map

    def dropna(self) -> "DaskSeries":
        return self._blockwise("dropna", lambda parts, p: parts[0].dropna())

    def __getitem__(self, key):
        if isinstance(key, DaskSeries):
            expr = blockwise_expr(
                lambda parts, p: parts[0][parts[1]],
                [self.expr, key.expr],
                "filter",
            )
            return self._series(expr)
        raise BackendUnsupported("series position indexing")

    @property
    def str(self) -> "DaskStringAccessor":
        return DaskStringAccessor(self)

    @property
    def dt(self) -> "DaskDatetimeAccessor":
        return DaskDatetimeAccessor(self)

    # -- reductions ----------------------------------------------------------

    def _reduction(self, partial_cols: dict, finalize) -> "DaskScalar":
        """Tree-reduce: per-partition partials -> combine -> scalar."""
        def _map(part: Series) -> DataFrame:
            return DataFrame({k: [f(part)] for k, f in partial_cols.items()})

        expr = tree_expr(self.expr, _map, finalize, "reduction")
        return DaskScalar(expr, self.evaluator)

    def sum(self) -> "DaskScalar":
        return self._reduction(
            {"s": lambda p: p.sum()}, lambda c: c["s"].sum()
        )

    def count(self) -> "DaskScalar":
        return self._reduction(
            {"c": lambda p: p.count()}, lambda c: int(c["c"].sum())
        )

    def mean(self) -> "DaskScalar":
        return self._reduction(
            {"s": lambda p: p.dropna().sum(), "c": lambda p: p.count()},
            lambda c: c["s"].sum() / c["c"].sum() if c["c"].sum() else float("nan"),
        )

    def min(self) -> "DaskScalar":
        return self._reduction(
            {"m": lambda p: p.min()}, lambda c: c["m"].dropna().min()
        )

    def max(self) -> "DaskScalar":
        return self._reduction(
            {"m": lambda p: p.max()}, lambda c: c["m"].dropna().max()
        )

    def nunique(self) -> int:
        uniques = set()
        for i in range(self.npartitions):
            part = self.evaluator.eval_partition(self.expr, i)
            uniques.update(part.unique())
        return len(uniques)

    def unique(self) -> np.ndarray:
        uniques: set = set()
        for i in range(self.npartitions):
            part = self.evaluator.eval_partition(self.expr, i)
            uniques.update(part.unique())
        return np.asarray(sorted(uniques, key=str), dtype=object)

    def value_counts(self) -> Series:
        """Eagerly computed (tree) -- matches Dask's small-result behaviour."""
        def _map(part: Series) -> DataFrame:
            counts = part.value_counts()
            return DataFrame(
                {"value": counts.index.to_array(), "n": counts.values}
            )

        def _combine(combined: DataFrame) -> Series:
            total = combined.groupby("value")["n"].sum()
            return total.sort_values(ascending=False).rename("count")

        expr = tree_expr(self.expr, _map, _combine, "value_counts")
        return self.evaluator._guarded(self.evaluator.eval_partition, expr, 0)

    def head(self, n: int = 5) -> Series:
        return self.evaluator._guarded(
            self.evaluator.eval_partition, head_expr(self.expr, n), 0
        )

    def sort_values(self, ascending: bool = True):
        raise BackendUnsupported("sort_values on Dask series")

    def to_frame(self, name=None):
        expr = blockwise_expr(
            lambda parts, p: parts[0].to_frame(p["n"]),
            [self.expr],
            "to_frame",
            {"n": name},
        )
        return DaskFrame(expr, self.evaluator)


class DaskScalar:
    """Lazy scalar produced by a reduction."""

    def __init__(self, expr: Expr, evaluator: Evaluator):
        self.expr = expr
        self.evaluator = evaluator

    def compute(self):
        return self.evaluator._guarded(self.evaluator.eval_partition, self.expr, 0)

    def __float__(self) -> float:
        return float(self.compute())

    def __repr__(self) -> str:  # pragma: no cover
        return f"<DaskScalar {self.expr!r}>"


class DaskStringAccessor:
    """Lazy ``.str`` accessor: per-partition string ops."""

    def __init__(self, series: DaskSeries):
        self._series = series

    def __getattr__(self, method: str):
        if method.startswith("_"):
            raise AttributeError(method)

        def _call(*args, **kwargs):
            expr = blockwise_expr(
                lambda parts, p: getattr(parts[0].str, p["m"])(*p["a"], **p["k"]),
                [self._series.expr],
                f"str.{method}",
                {"m": method, "a": args, "k": kwargs},
            )
            return DaskSeries(expr, self._series.evaluator, name=self._series.name)

        return _call


class DaskDatetimeAccessor:
    """Lazy ``.dt`` accessor: per-partition component extraction."""

    _FIELDS = (
        "year", "month", "day", "hour", "minute", "second",
        "dayofweek", "weekday", "date", "dayofyear",
    )

    def __init__(self, series: DaskSeries):
        self._series = series

    def __getattr__(self, field: str):
        if field not in self._FIELDS:
            raise AttributeError(field)
        expr = blockwise_expr(
            lambda parts, p: getattr(parts[0].dt, p["f"]),
            [self._series.expr],
            f"dt.{field}",
            {"f": field},
        )
        return DaskSeries(expr, self._series.evaluator, name=self._series.name)


class DaskGroupBy:
    """Grouped lazy frame; aggregations tree-reduce across partitions."""

    def __init__(self, frame: DaskFrame, keys: List[str], as_index: bool = True):
        self._frame = frame
        self._keys = keys
        self._as_index = as_index

    def __getitem__(self, column: Union[str, List[str]]):
        if isinstance(column, str):
            return DaskSeriesGroupBy(self._frame, self._keys, column)
        return DaskFrameGroupBy(self._frame, self._keys, list(column))

    def size(self) -> Series:
        keys = self._keys

        def _map(part: DataFrame) -> DataFrame:
            tmp = part[keys].with_column("__one__", 1)
            return tmp.groupby(keys, as_index=False).agg({"__one__": "sum"})

        def _combine(combined: DataFrame) -> Series:
            return combined.groupby(keys)["__one__"].sum().rename("size")

        expr = tree_expr(self._frame.expr, _map, _combine, "groupby.size")
        return self._frame.evaluator._guarded(
            self._frame.evaluator.eval_partition, expr, 0
        )

    def agg(self, spec: dict) -> DataFrame:
        return groupby_agg_tree(
            self._frame, self._keys, spec, as_index=self._as_index
        )


class DaskSeriesGroupBy:
    """``df.groupby(keys)[col]`` on the Dask simulator."""

    def __init__(self, frame: DaskFrame, keys: List[str], column: str):
        self._frame = frame
        self._keys = keys
        self._column = column

    def _agg(self, func: str) -> Series:
        result = groupby_agg_tree(
            self._frame, self._keys, {self._column: func}, as_index=True
        )
        return result[self._column] if hasattr(result, "columns") else result

    def sum(self) -> Series:
        return self._agg("sum")

    def mean(self) -> Series:
        return self._agg("mean")

    def count(self) -> Series:
        return self._agg("count")

    def min(self) -> Series:
        return self._agg("min")

    def max(self) -> Series:
        return self._agg("max")

    def agg(self, func: str) -> Series:
        return self._agg(func)


class DaskFrameGroupBy:
    """``df.groupby(keys)[[c1, c2]]`` on the Dask simulator."""

    def __init__(self, frame: DaskFrame, keys: List[str], columns: List[str]):
        self._frame = frame
        self._keys = keys
        self._columns = columns

    def _agg_all(self, func: str) -> DataFrame:
        return groupby_agg_tree(
            self._frame, self._keys, {c: func for c in self._columns}, as_index=True
        )

    def sum(self) -> DataFrame:
        return self._agg_all("sum")

    def mean(self) -> DataFrame:
        return self._agg_all("mean")

    def count(self) -> DataFrame:
        return self._agg_all("count")

    def min(self) -> DataFrame:
        return self._agg_all("min")

    def max(self) -> DataFrame:
        return self._agg_all("max")

    def agg(self, spec) -> DataFrame:
        if isinstance(spec, str):
            return self._agg_all(spec)
        return groupby_agg_tree(self._frame, self._keys, spec, as_index=True)


# ---------------------------------------------------------------------------
# Tree-reduction group-by.
# ---------------------------------------------------------------------------

_PARTIAL_PLANS = {
    "sum": (("sum",), lambda s: s["sum"]),
    "count": (("count",), lambda s: s["count"]),
    "size": (("size",), lambda s: s["size"]),
    "min": (("min",), lambda s: s["min"]),
    "max": (("max",), lambda s: s["max"]),
    "mean": (("sum", "count"), lambda s: s["sum"] / s["count"]),
}

_RECOMBINE = {"sum": "sum", "count": "sum", "size": "sum", "min": "min", "max": "max"}


def groupby_agg_tree(frame: DaskFrame, keys, spec: dict, as_index: bool):
    """Partial-aggregate per partition, re-aggregate the partials.

    The classic distributed group-by: memory stays bounded by the number
    of groups, not the number of rows.  Partial columns get deterministic
    ``{column}__{partial}`` names so the combine step can find them.
    """
    normalized = {}  # output label -> (column, func)
    needed = set()   # (column, partial) pairs to compute per partition
    for column, funcs in spec.items():
        func_list = [funcs] if isinstance(funcs, str) else list(funcs)
        for func in func_list:
            if func not in _PARTIAL_PLANS:
                raise BackendUnsupported(f"groupby agg {func!r} on Dask")
            if column in keys and func not in ("count", "size"):
                raise BackendUnsupported(
                    f"aggregating group key {column!r} on Dask"
                )
            label = column if len(func_list) == 1 else f"{column}_{func}"
            normalized[label] = (column, func)
            for partial in _PARTIAL_PLANS[func][0]:
                needed.add((column, partial))
    ordered_needed = sorted(needed)

    def _map(part: DataFrame) -> DataFrame:
        grouped = part.groupby(keys, as_index=False)
        key_frame = None
        partial_values = {}
        for column, partial in ordered_needed:
            pname = f"{column}__{partial}"
            if partial == "size" or (column in keys and partial == "count"):
                # counting the key column equals the group size (NA keys
                # are dropped by grouping); aggregating a key any other
                # way is rejected upstream.
                tmp = part[keys].with_column("__one__", 1)
                agg_frame = tmp.groupby(keys, as_index=False).agg({"__one__": "sum"})
                partial_values[pname] = agg_frame["__one__"].values
            else:
                agg_frame = grouped.agg({column: partial})
                partial_values[pname] = agg_frame[column].values
            if key_frame is None:
                key_frame = agg_frame[keys]
        out = key_frame
        for pname, values in partial_values.items():
            out = out.with_column(pname, values)
        return out

    def _combine(combined: DataFrame):
        spec2 = {
            f"{column}__{partial}": _RECOMBINE[partial]
            for column, partial in ordered_needed
        }
        rolled = combined.groupby(keys, as_index=False).agg(spec2)
        finalized = {}
        for label, (column, func) in normalized.items():
            partials, finalize = _PARTIAL_PLANS[func]
            lookup = {p: rolled[f"{column}__{p}"] for p in partials}
            finalized[label] = finalize(lookup)
        from repro.frame.index import Index as _Index

        if as_index:
            if len(keys) == 1:
                index = _Index(
                    rolled.column(keys[0]).to_array(), name=keys[0]
                )
            else:
                joined = np.array(
                    [
                        "|".join(map(str, row))
                        for row in zip(*(rolled[k].values for k in keys))
                    ],
                    dtype=object,
                )
                index = _Index(joined, name="|".join(keys))
            if len(normalized) == 1:
                label, series = next(iter(finalized.items()))
                return Series(series.column, index=index, name=label)
            result = DataFrame(
                {label: s.column for label, s in finalized.items()},
                index=index,
            )
            return result
        result = rolled[keys]
        for label, series in finalized.items():
            if label in keys:
                raise BackendUnsupported(
                    f"as_index=False groupby output label {label!r} "
                    "collides with a key column on Dask"
                )
            result = result.with_column(label, series)
        return result

    expr = tree_expr(frame.expr, _map, _combine, "groupby.agg")
    return frame.evaluator._guarded(frame.evaluator.eval_partition, expr, 0)


def _series_to_frame(series: Series, keys: List[str], value_name: str) -> DataFrame:
    """Rebuild key columns from a grouped series' (possibly joined) index."""
    labels = series.index.to_array()
    if len(keys) == 1:
        return DataFrame({keys[0]: labels, value_name: series.values})
    parts = [str(label).split("|") for label in labels]
    data = {
        key: np.asarray([p[i] for p in parts], dtype=object)
        for i, key in enumerate(keys)
    }
    data[value_name] = series.values
    return DataFrame(data)


def _merged_columns(left_cols, right_cols, kwargs) -> Optional[List[str]]:
    """Output columns of a same-key merge (mirrors the eager engine)."""
    if left_cols is None or right_cols is None:
        return None
    on = kwargs.get("on")
    if on is None:
        return None  # left_on/right_on or natural join: skip tracking
    keys = {on} if isinstance(on, str) else set(on)
    suffixes = kwargs.get("suffixes", ("_x", "_y"))
    overlap = (set(left_cols) & set(right_cols)) - keys
    out = [
        c + suffixes[0] if c in overlap else c
        for c in left_cols
    ]
    out += [
        c + suffixes[1] if c in overlap else c
        for c in right_cols
        if c not in keys
    ]
    return out


def _flip_merge_kwargs(kwargs: dict) -> dict:
    flipped = dict(kwargs)
    left_on = flipped.pop("left_on", None)
    right_on = flipped.pop("right_on", None)
    if left_on is not None or right_on is not None:
        flipped["left_on"] = right_on
        flipped["right_on"] = left_on
    how = flipped.get("how", "inner")
    flipped["how"] = {"left": "right", "right": "left"}.get(how, how)
    return flipped


def from_pandas(frame: DataFrame, evaluator: Evaluator, npartitions: int = 4) -> DaskFrame:
    """Split an eager frame into a lazy partitioned one."""
    from repro.backends.dask_sim.expr import materialized_expr

    n = len(frame)
    npartitions = max(1, min(npartitions, max(1, n)))
    bounds = np.linspace(0, n, npartitions + 1).astype(int)
    handles = []
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        handles.append(evaluator.store.put(frame[int(lo):int(hi)]))
    return DaskFrame(
        materialized_expr(handles), evaluator, columns=list(frame.columns)
    )
