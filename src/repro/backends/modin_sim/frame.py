"""Eager partitioned frame/series of the Modin simulator.

A :class:`ModinFrame` is a list of eager :class:`repro.frame.DataFrame`
row partitions.  Operations execute immediately, partition-parallel on a
thread pool.  Aggregations use the same partial/combine strategy as the
Dask simulator but run eagerly.  There is no spilling: all partitions are
memory-resident, so the simulated budget binds exactly as it does for
pandas (Figure 12's middle column).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.backends.base import BackendUnsupported
from repro.frame import DataFrame, Series, concat
from repro.frame.io_csv import read_csv, scan_partitions

_POOL = ThreadPoolExecutor(
    max_workers=min(4, os.cpu_count() or 1),
    thread_name_prefix="modin-worker",
)


def _rebuild_pool_after_fork() -> None:
    # A forked child inherits `_POOL` with its worker threads gone --
    # any `_pmap` in the child would enqueue work nobody drains and
    # hang.  Rebuild it so the process-executor's fork-started workers
    # (and any user fork) can run modin partitions.
    global _POOL
    _POOL = ThreadPoolExecutor(
        max_workers=min(4, os.cpu_count() or 1),
        thread_name_prefix="modin-worker",
    )


if hasattr(os, "register_at_fork"):  # not on Windows
    os.register_at_fork(after_in_child=_rebuild_pool_after_fork)


def _pmap(func: Callable, items: Sequence) -> List:
    """Parallel map over partitions (exceptions propagate).

    The calling thread's session is re-activated on the pool threads for
    the duration of each call, so buffers the partitions allocate
    register with the *calling* session's memory manager, not the
    process root's.
    """
    if len(items) <= 1:
        return [func(item) for item in items]
    from repro.core.session import current_session

    session = current_session()

    def bound(item):
        session.activate()
        try:
            return func(item)
        finally:
            session.deactivate()

    return list(_POOL.map(bound, items))


def modin_read_csv(
    path: str,
    partition_bytes: int,
    usecols=None,
    dtype=None,
    parse_dates=None,
    index_col: Optional[str] = None,
    compact_strings: bool = True,
) -> "ModinFrame":
    """Partitioned eager CSV read with Arrow-style string compaction."""
    from repro.memory import current_memory_manager

    budget = current_memory_manager().budget
    if budget is not None:
        partition_bytes = min(partition_bytes, max(1 << 12, budget // 24))
    n_partitions = max(1, os.path.getsize(path) // partition_bytes)
    ranges = scan_partitions(path, int(n_partitions))

    def _read(byte_range):
        part = read_csv(
            path,
            usecols=usecols,
            dtype=dtype,
            parse_dates=parse_dates,
            byte_range=byte_range,
        )
        if compact_strings:
            part = _dictionary_encode(part)
        if index_col is not None:
            part = part.set_index(index_col)
        return part

    return ModinFrame(_pmap(_read, ranges))


def _dictionary_encode(frame: DataFrame) -> DataFrame:
    """Encode repetitive object columns as categories (the Arrow model).

    Arrow only dictionary-encodes when the dictionary pays for itself;
    high-cardinality columns (IDs, free text) stay as plain strings.
    """
    out = {}
    for name in frame.columns:
        col = frame.column(name)
        if (
            not col.is_category
            and col.values.dtype.kind == "O"
            and len(col) > 0
            and col.nunique() <= 0.5 * len(col)
        ):
            out[name] = col.astype("category")
        else:
            out[name] = col
    return DataFrame.from_columns(out, index=frame.index)


class ModinFrame:
    """Row-partitioned eager dataframe."""

    def __init__(self, partitions: List[DataFrame]):
        if not partitions:
            partitions = [DataFrame({})]
        self.partitions = partitions

    # -- basics --------------------------------------------------------------

    @property
    def npartitions(self) -> int:
        return len(self.partitions)

    @property
    def columns(self) -> List[str]:
        return self.partitions[0].columns

    def __len__(self) -> int:
        return sum(len(p) for p in self.partitions)

    @property
    def nbytes(self) -> int:
        return sum(p.nbytes for p in self.partitions)

    def to_pandas(self) -> DataFrame:
        if len(self.partitions) == 1:
            return self.partitions[0]
        return concat(self.partitions)

    def _map(self, func: Callable) -> "ModinFrame":
        return ModinFrame(_pmap(func, self.partitions))

    def _zip_map(self, other_parts: List, func: Callable) -> "ModinFrame":
        pairs = list(zip(self.partitions, other_parts))
        return ModinFrame(_pmap(lambda pair: func(*pair), pairs))

    # -- selection ---------------------------------------------------------------

    def __getitem__(self, key):
        if isinstance(key, str):
            return ModinSeries([p[key] for p in self.partitions], name=key)
        if isinstance(key, list):
            return self._map(lambda p: p[list(key)])
        if isinstance(key, ModinSeries):
            return self._zip_map(key.partitions, lambda p, m: p[m])
        raise BackendUnsupported(f"getitem with {type(key).__name__}")

    def __getattr__(self, name: str):
        if name.startswith("_") or name == "partitions":
            raise AttributeError(name)
        if name in self.partitions[0].columns:
            return self[name]
        raise AttributeError(name)

    def __setitem__(self, name: str, value) -> None:
        """In-place pandas idiom ``df[c] = s`` (eager, per partition)."""
        self.partitions = self.with_column(name, value).partitions

    def with_column(self, name: str, value) -> "ModinFrame":
        if isinstance(value, ModinSeries):
            return self._zip_map(
                value.partitions, lambda p, s: p.with_column(name, s)
            )
        if isinstance(value, Series):
            return self.with_column(name, _split_series(value, self._row_counts()))
        return self._map(lambda p: p.with_column(name, value))

    def _row_counts(self) -> List[int]:
        return [len(p) for p in self.partitions]

    def head(self, n: int = 5) -> DataFrame:
        pieces = []
        have = 0
        for part in self.partitions:
            pieces.append(part.head(n - have))
            have += len(pieces[-1])
            if have >= n:
                break
        return pieces[0] if len(pieces) == 1 else concat(pieces)

    def tail(self, n: int = 5) -> DataFrame:
        return self.to_pandas().tail(n)

    def sample(self, n: int, seed: int = 0) -> "ModinFrame":
        per = max(1, n // max(1, self.npartitions))
        return self._map(lambda p: p.sample(per, seed=seed))

    # -- per-partition transforms -----------------------------------------------------

    def dropna(self, subset=None) -> "ModinFrame":
        return self._map(lambda p: p.dropna(subset=subset))

    def fillna(self, value) -> "ModinFrame":
        return self._map(lambda p: p.fillna(value))

    def astype(self, dtype) -> "ModinFrame":
        return self._map(lambda p: p.astype(dtype))

    def rename(self, columns) -> "ModinFrame":
        return self._map(lambda p: p.rename(columns=columns))

    def drop(self, columns) -> "ModinFrame":
        return self._map(lambda p: p.drop(columns=columns))

    def round(self, decimals: int = 0) -> "ModinFrame":
        return self._map(lambda p: p.round(decimals))

    def set_index(self, column: str) -> "ModinFrame":
        return self._map(lambda p: p.set_index(column))

    def reset_index(self, drop: bool = False) -> "ModinFrame":
        return self._map(lambda p: p.reset_index(drop=drop))

    def apply(self, func, axis: int = 1) -> "ModinSeries":
        return ModinSeries(_pmap(lambda p: p.apply(func, axis=axis), self.partitions))

    def select_dtypes(self, include: str) -> "ModinFrame":
        return self._map(lambda p: p.select_dtypes(include))

    # -- global operators (materialize / repartition) ------------------------------------

    def sort_values(self, by, ascending=True) -> "ModinFrame":
        whole = self.to_pandas().sort_values(by, ascending=ascending)
        return _resplit(whole, self.npartitions)

    def sort_index(self) -> "ModinFrame":
        whole = self.to_pandas().sort_index()
        return _resplit(whole, self.npartitions)

    def drop_duplicates(self, subset=None) -> "ModinFrame":
        partial = self._map(lambda p: p.drop_duplicates(subset=subset))
        whole = partial.to_pandas().drop_duplicates(subset=subset)
        return _resplit(whole, self.npartitions)

    def nlargest(self, n: int, columns) -> "ModinFrame":
        partial = self._map(lambda p: p.nlargest(n, columns))
        return ModinFrame([partial.to_pandas().nlargest(n, columns)])

    def nsmallest(self, n: int, columns) -> "ModinFrame":
        partial = self._map(lambda p: p.nsmallest(n, columns))
        return ModinFrame([partial.to_pandas().nsmallest(n, columns)])

    def describe(self) -> DataFrame:
        return self.to_pandas().describe()

    def merge(self, right, **kwargs) -> "ModinFrame":
        if isinstance(right, DataFrame):
            right_frame = right
        elif isinstance(right, ModinFrame):
            right_frame = right.to_pandas()
        else:
            raise BackendUnsupported(f"merge with {type(right).__name__}")
        if right_frame.nbytes <= 8 * (1 << 20):
            # Broadcast join: keep the left side partitioned.
            return self._map(lambda p: p.merge(right_frame, **kwargs))
        whole = self.to_pandas().merge(right_frame, **kwargs)
        return _resplit(whole, self.npartitions)

    def groupby(self, by, as_index: bool = True) -> "ModinGroupBy":
        keys = [by] if isinstance(by, str) else list(by)
        return ModinGroupBy(self, keys, as_index=as_index)

    def to_csv(self, path: str, index: bool = False) -> None:
        self.to_pandas().to_csv(path, index=index)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<ModinFrame {len(self)} rows, {self.npartitions} partitions>"


class ModinSeries:
    """Row-partitioned eager series."""

    def __init__(self, partitions: List[Series], name: Optional[str] = None):
        self.partitions = partitions
        self.name = name

    @property
    def npartitions(self) -> int:
        return len(self.partitions)

    def __len__(self) -> int:
        return sum(len(p) for p in self.partitions)

    def to_pandas(self) -> Series:
        if len(self.partitions) == 1:
            return self.partitions[0]
        return concat(self.partitions)

    def _map(self, func: Callable) -> "ModinSeries":
        return ModinSeries(_pmap(func, self.partitions), name=self.name)

    def _zip(self, other, func: Callable) -> "ModinSeries":
        if isinstance(other, ModinSeries):
            pairs = list(zip(self.partitions, other.partitions))
            return ModinSeries(
                _pmap(lambda pair: func(*pair), pairs), name=self.name
            )
        return self._map(lambda p: func(p, other))

    # -- operators -------------------------------------------------------------

    def __add__(self, other):
        return self._zip(other, lambda a, b: a + b)

    def __radd__(self, other):
        return self._map(lambda p: other + p)

    def __sub__(self, other):
        return self._zip(other, lambda a, b: a - b)

    def __rsub__(self, other):
        return self._map(lambda p: other - p)

    def __mul__(self, other):
        return self._zip(other, lambda a, b: a * b)

    def __rmul__(self, other):
        return self._map(lambda p: other * p)

    def __truediv__(self, other):
        return self._zip(other, lambda a, b: a / b)

    def __rtruediv__(self, other):
        return self._map(lambda p: other / p)

    def __floordiv__(self, other):
        return self._zip(other, lambda a, b: a // b)

    def __mod__(self, other):
        return self._zip(other, lambda a, b: a % b)

    def __eq__(self, other):  # type: ignore[override]
        return self._zip(other, lambda a, b: a == b)

    def __ne__(self, other):  # type: ignore[override]
        return self._zip(other, lambda a, b: a != b)

    def __lt__(self, other):
        return self._zip(other, lambda a, b: a < b)

    def __le__(self, other):
        return self._zip(other, lambda a, b: a <= b)

    def __gt__(self, other):
        return self._zip(other, lambda a, b: a > b)

    def __ge__(self, other):
        return self._zip(other, lambda a, b: a >= b)

    __hash__ = None  # type: ignore[assignment]

    def __and__(self, other):
        return self._zip(other, lambda a, b: a & b)

    def __or__(self, other):
        return self._zip(other, lambda a, b: a | b)

    def __invert__(self):
        return self._map(lambda p: ~p)

    def __getitem__(self, key):
        if isinstance(key, ModinSeries):
            pairs = list(zip(self.partitions, key.partitions))
            return ModinSeries(
                _pmap(lambda pair: pair[0][pair[1]], pairs), name=self.name
            )
        raise BackendUnsupported("series position indexing")

    def abs(self):
        return self._map(lambda p: p.abs())

    def round(self, decimals: int = 0):
        return self._map(lambda p: p.round(decimals))

    def isin(self, values):
        values = list(values)
        return self._map(lambda p: p.isin(values))

    def between(self, left, right, inclusive: str = "both"):
        return self._map(lambda p: p.between(left, right, inclusive=inclusive))

    def isna(self):
        return self._map(lambda p: p.isna())

    def notna(self):
        return self._map(lambda p: p.notna())

    def fillna(self, value):
        return self._map(lambda p: p.fillna(value))

    def dropna(self):
        return self._map(lambda p: p.dropna())

    def astype(self, dtype):
        return self._map(lambda p: p.astype(dtype))

    def map(self, func):
        return self._map(lambda p: p.map(func))

    apply = map

    @property
    def str(self) -> "ModinStringAccessor":
        return ModinStringAccessor(self)

    @property
    def dt(self) -> "ModinDatetimeAccessor":
        return ModinDatetimeAccessor(self)

    # -- reductions ----------------------------------------------------------------

    def sum(self):
        return sum(p.sum() for p in self.partitions)

    def count(self) -> int:
        return sum(p.count() for p in self.partitions)

    def mean(self):
        total = sum(p.dropna().sum() for p in self.partitions)
        count = self.count()
        return total / count if count else float("nan")

    def min(self):
        values = [p.min() for p in self.partitions if len(p)]
        values = [v for v in values if v is not None]
        return min(values) if values else None

    def max(self):
        values = [p.max() for p in self.partitions if len(p)]
        values = [v for v in values if v is not None]
        return max(values) if values else None

    def nunique(self) -> int:
        uniques = set()
        for p in self.partitions:
            uniques.update(p.unique())
        return len(uniques)

    def unique(self) -> np.ndarray:
        uniques: set = set()
        for p in self.partitions:
            uniques.update(p.unique())
        return np.asarray(sorted(uniques, key=str), dtype=object)

    def value_counts(self) -> Series:
        return self.to_pandas().value_counts()

    def head(self, n: int = 5) -> Series:
        return self.to_pandas().head(n)

    def sort_values(self, ascending: bool = True) -> Series:
        return self.to_pandas().sort_values(ascending=ascending)

    def to_frame(self, name=None) -> ModinFrame:
        return ModinFrame([p.to_frame(name) for p in self.partitions])


class ModinStringAccessor:
    """Partition-parallel ``.str``."""

    def __init__(self, series: ModinSeries):
        self._series = series

    def __getattr__(self, method: str):
        if method.startswith("_"):
            raise AttributeError(method)

        def _call(*args, **kwargs):
            return self._series._map(
                lambda p: getattr(p.str, method)(*args, **kwargs)
            )

        return _call


class ModinDatetimeAccessor:
    """Partition-parallel ``.dt``."""

    _FIELDS = (
        "year", "month", "day", "hour", "minute", "second",
        "dayofweek", "weekday", "date", "dayofyear",
    )

    def __init__(self, series: ModinSeries):
        self._series = series

    def __getattr__(self, field: str):
        if field not in self._FIELDS:
            raise AttributeError(field)
        return self._series._map(lambda p: getattr(p.dt, field))


class ModinGroupBy:
    """Eager partial/combine group-by.

    Aggregates each partition independently, concatenates the (small)
    partials, and re-aggregates -- the same strategy the Dask simulator
    uses, but eager.  Memory stays bounded by the number of groups
    rather than the number of rows, matching real Modin's map-reduce
    group-by.
    """

    _RECOMBINE = {"sum": "sum", "count": "sum", "min": "min", "max": "max"}

    def __init__(self, frame: ModinFrame, keys: List[str], as_index: bool = True):
        self._frame = frame
        self._keys = keys
        self._as_index = as_index

    def __getitem__(self, column: Union[str, List[str]]):
        if isinstance(column, str):
            return ModinSeriesGroupBy(self, column)
        return ModinFrameGroupBy(self, list(column))

    def size(self) -> Series:
        keys = self._keys
        partials = _pmap(
            lambda p: (
                p[keys]
                .with_column("__one__", 1)
                .groupby(keys, as_index=False)
                .agg({"__one__": "sum"})
            ),
            self._frame.partitions,
        )
        combined = concat(partials)
        return combined.groupby(keys)["__one__"].sum().rename("size")

    def agg(self, spec: dict):
        """Two-phase aggregation; mean decomposes into sum + count."""
        needed = set()
        normalized = {}
        for column, funcs in spec.items():
            func_list = [funcs] if isinstance(funcs, str) else list(funcs)
            for func in func_list:
                label = column if len(func_list) == 1 else f"{column}_{func}"
                normalized[label] = (column, func)
                partial_funcs = (
                    ("sum", "count") if func == "mean" else (func,)
                )
                for partial in partial_funcs:
                    if partial in self._RECOMBINE:
                        needed.add((column, partial))
                    else:
                        # Non-decomposable aggregate: whole-frame fallback.
                        whole = self._frame.to_pandas()
                        return whole.groupby(
                            self._keys, as_index=self._as_index
                        ).agg(spec)
        ordered = sorted(needed)
        keys = self._keys

        def _partial(part: DataFrame) -> DataFrame:
            grouped = part.groupby(keys, as_index=False)
            out = None
            for column, partial in ordered:
                agg_frame = grouped.agg({column: partial})
                if out is None:
                    out = agg_frame[keys]
                out = out.with_column(
                    f"{column}__{partial}", agg_frame[column].values
                )
            return out

        combined = concat(_pmap(_partial, self._frame.partitions))
        rolled = combined.groupby(keys, as_index=False).agg(
            {
                f"{c}__{p}": self._RECOMBINE[p]
                for c, p in ordered
            }
        )
        result = rolled[keys]
        for label, (column, func) in normalized.items():
            if func == "mean":
                values = (
                    rolled[f"{column}__sum"] / rolled[f"{column}__count"]
                )
            else:
                values = rolled[f"{column}__{func}"]
            result = result.with_column(label, values)
        if self._as_index:
            if len(keys) == 1:
                result = result.set_index(keys[0])
            else:
                joined = np.array(
                    [
                        "|".join(map(str, row))
                        for row in zip(*(result[k].values for k in keys))
                    ],
                    dtype=object,
                )
                result = result.drop(columns=keys)
                from repro.frame.index import Index as _Index

                result.index = _Index(joined, name="|".join(keys))
        return result


class ModinSeriesGroupBy:
    def __init__(self, parent: ModinGroupBy, column: str):
        self._parent = parent
        self._column = column

    def _agg(self, func: str) -> Series:
        result = self._parent.agg({self._column: func})
        if isinstance(result, Series):
            return result
        return result[self._column]

    def sum(self):
        return self._agg("sum")

    def mean(self):
        return self._agg("mean")

    def count(self):
        return self._agg("count")

    def min(self):
        return self._agg("min")

    def max(self):
        return self._agg("max")

    def agg(self, func: str):
        return self._agg(func)


class ModinFrameGroupBy:
    def __init__(self, parent: ModinGroupBy, columns: List[str]):
        self._parent = parent
        self._columns = columns

    def _agg_all(self, func: str):
        return self._parent.agg({c: func for c in self._columns})

    def sum(self):
        return self._agg_all("sum")

    def mean(self):
        return self._agg_all("mean")

    def count(self):
        return self._agg_all("count")

    def min(self):
        return self._agg_all("min")

    def max(self):
        return self._agg_all("max")

    def agg(self, spec):
        if isinstance(spec, str):
            return self._agg_all(spec)
        return self._parent.agg(spec)


def _resplit(frame: DataFrame, npartitions: int) -> ModinFrame:
    n = len(frame)
    npartitions = max(1, min(npartitions, max(1, n)))
    bounds = np.linspace(0, n, npartitions + 1).astype(int)
    return ModinFrame(
        [frame[int(lo):int(hi)] for lo, hi in zip(bounds[:-1], bounds[1:])]
    )


def _split_series(series: Series, counts: List[int]) -> ModinSeries:
    out = []
    offset = 0
    for count in counts:
        out.append(series[offset:offset + count])
        offset += count
    return ModinSeries(out, name=series.name)
