"""Eager partitioned dataframe engine (the Modin stand-in).

Reproduces the Modin properties that matter to the paper:

- **eager evaluation**: every operation runs immediately (so LaFP's
  cross-operation optimizations matter *more* here -- section 2.6),
- **row partitioning with a worker pool**: operations map over partitions
  in parallel threads (the Ray-executor analogue),
- **Arrow-like storage**: string columns are dictionary-encoded on read,
  which is why Modin survives a few more programs than pandas in
  Figure 12 despite being equally memory-bound,
- **no spilling**: everything must fit in (simulated) memory.
"""

from repro.backends.modin_sim.frame import ModinFrame, ModinSeries, modin_read_csv

__all__ = ["ModinFrame", "ModinSeries", "modin_read_csv"]
