"""Eager execution of the shuffle-lowering operators.

``repro.core.optimizer.shuffle`` rewrites oversized merges / groupbys
into graphs of ``shuffle_write`` / ``shuffle_read`` / ``partial_agg`` /
``combine_agg`` nodes plus ``stream=True`` scans; this module is how
the eager backends (pandas, modin) run them.  The Dask sim never sees
these ops -- the lowering pass skips lazy engines, which shuffle
internally already.

Bucket assignment uses Python's builtin ``hash`` on key tuples: it is
the only cheap hash that is *equality-consistent* across mixed numeric
dtypes (``hash(1) == hash(1.0) == hash(True)``), which bucket-local
merges require.  String hashes are process-salted, so bucket contents
vary between runs -- results do not, because ``combine_agg`` restores
the in-memory row order from position columns (merge) or canonical
group order (groupby).
"""

from __future__ import annotations

import time

import numpy as np

from repro.frame.column import Column
from repro.frame.concat import concat_consuming
from repro.frame.dataframe import DataFrame
from repro.frame.groupby import GroupBy, _aggregate, partial_aggregate
from repro.frame.series import Series
from repro.io.spill import PartitionStream, ShuffleStore, spill_live_stores
from repro.memory.manager import SimulatedMemoryError

#: all NA key values colocate in one bucket (NA never joins, but the
#: rows must land somewhere deterministic w.r.t. equality)
_NA_TOKEN = ("\0lafp-na",)


def apply_shuffle_op(backend, node, inputs):
    """Dispatch one shuffle-lowering node on ``backend``."""
    op = node.op
    if op == "shuffle_write":
        return exec_shuffle_write(backend, node, inputs)
    if op == "shuffle_read":
        return exec_shuffle_read(node, inputs[0])
    if op == "partial_agg":
        return exec_partial_agg(backend, node, inputs)
    if op == "combine_agg":
        return exec_combine_agg(backend, node, inputs)
    if op == "compact":
        return exec_compact(backend, node, inputs)
    raise ValueError(f"not a shuffle op: {op!r}")


# -- shuffle_write -----------------------------------------------------


def exec_shuffle_write(backend, node, inputs) -> ShuffleStore:
    """Hash-split the input's partitions into a spillable bucket store."""
    args = node.args
    keys = [str(k) for k in args["keys"]]
    n_buckets = int(args["n_buckets"])
    pos_name = args.get("pos_name")
    manager = _current_manager()
    store = ShuffleStore(n_buckets, spill_dir=_spill_dir())
    parts, empty_factory = _iter_parts(backend, inputs[0])
    offset = 0
    # cushion for the stream's first partition read: a merge's second
    # write starts with the first side's store holding ~the whole budget
    _make_headroom(store, manager, 16384)
    for part in parts:
        # the pos column and the split copies arrive while the
        # partition itself is still resident
        _make_headroom(store, manager, part.nbytes)
        try:
            frame = _with_pos(part, pos_name, offset)
        except SimulatedMemoryError:
            spill_live_stores(1 << 62)
            frame = _with_pos(part, pos_name, offset)
        offset += len(frame)
        store.set_template(frame)
        ids = _bucket_ids(frame, keys, n_buckets)
        try:
            pieces = _split(frame, ids)
        except SimulatedMemoryError:
            # drop half-built pieces, push everything to disk, retry once
            pieces = None
            spill_live_stores(1 << 62)
            pieces = _split(frame, ids)
        for bucket, piece in pieces:
            store.append(bucket, piece)
        # the stream materializes the next partition before the loop
        # body can spill for it: clear the way now
        _make_headroom(store, manager, part.nbytes)
    if store.template is None:
        store.set_template(_with_pos(empty_factory(), pos_name, 0))
    return store


def _with_pos(frame: DataFrame, pos_name, offset: int) -> DataFrame:
    """Rebuild ``frame`` (default index) with a global row-position
    column appended when the lowering asked for one."""
    cols = {name: frame.column(name) for name in frame.columns}
    if pos_name:
        cols[pos_name] = Column(
            np.arange(offset, offset + len(frame), dtype=np.int64)
        )
    return DataFrame.from_columns(cols)


def _make_headroom(store: ShuffleStore, manager, upcoming: int) -> None:
    """Spill ahead of a split that will roughly double ``upcoming``.

    Spills across *all* live stores: when a merge writes its second
    side, most resident bytes belong to the first side's store.
    """
    if manager is None:
        return
    headroom = manager.headroom()
    if headroom is None:
        return
    short = 2 * upcoming - headroom
    if short > 0:
        spill_live_stores(short)


def _bucket_ids(frame: DataFrame, keys, n_buckets: int) -> np.ndarray:
    n = len(frame)
    normalized = []
    for key in keys:
        col = frame.column(key)
        values = col.to_array().tolist()
        isna = col.isna()
        normalized.append(
            [_NA_TOKEN if isna[i] else values[i] for i in range(n)]
        )
    return np.fromiter(
        (hash(row) % n_buckets for row in zip(*normalized)),
        dtype=np.int64,
        count=n,
    )


def _split(frame: DataFrame, ids: np.ndarray):
    pieces = []
    for bucket in np.unique(ids):
        idx = np.nonzero(ids == bucket)[0]
        cols = {
            name: _owned_take(frame.column(name), idx)
            for name in frame.columns
        }
        pieces.append((int(bucket), DataFrame.from_columns(cols)))
    return pieces


def exec_compact(backend, node, inputs):
    """Rebuild a frame with payload-owning columns (identity values).

    Bucket-local merge/agg results derive their object columns from the
    bucket frames via ``take``, which *shares* the bucket's heap-store
    payload -- so a small per-bucket result would pin its whole input
    bucket's string payload until the final combine drains every
    bucket.  Re-owning here lets the bucket die with its payload."""
    frame = inputs[0]
    if isinstance(frame, PartitionStream):
        frame = frame.materialize()
    else:
        frame = backend.materialize(frame)
    return backend.from_pandas(_owned_frame(frame))


def _owned_frame(frame: DataFrame) -> DataFrame:
    cols = {}
    for name in frame.columns:
        col = frame.column(name)
        if col.is_category:
            # categories dictionaries are small; keep sharing them
            cols[name] = Column(
                col.values, categories=col.categories, shares=col._store
            )
        else:
            cols[name] = Column(col.values)
    return DataFrame.from_columns(cols)


def _owned_take(column: Column, idx: np.ndarray) -> Column:
    """Gather that does NOT share the parent's heap payload.

    ``Column.take`` shares the source's string/category payload store,
    which is right for short-lived derivations but wrong for bucket
    chunks: a chunk must be independently spillable, and a shared store
    stays resident until every sibling bucket is drained -- pinning the
    whole table's string payload through the read phase.  Categories
    keep sharing (one small dictionary per column)."""
    taken = column.values[idx]
    if column.is_category:
        return Column(
            taken, categories=column.categories, shares=column._store
        )
    return Column(taken)


# -- shuffle_read ------------------------------------------------------


def exec_shuffle_read(node, store: ShuffleStore) -> DataFrame:
    """Drain one bucket, spilling other resident chunks first when the
    write phase left the budget too full to materialize it.

    The write phase keeps live bytes just under the budget, so without
    this the very first unpickle of a spilled chunk can OOM.  The
    store's own appended-byte counter sizes the bucket (the planner's
    disk-based estimate undershoots in-memory width badly for CSV).
    """
    bucket = int(node.args["bucket"])
    manager = _current_manager()
    if manager is not None:
        headroom = manager.headroom()
        if headroom is not None:
            # the drained chunks, their concat copy, and the downstream
            # bucket-local merge/agg output all coexist briefly
            need = 4 * store.bucket_estimate()
            if headroom < need:
                spill_live_stores(need - headroom)
    for attempt in range(8):
        try:
            return store.read_bucket(bucket)
        except SimulatedMemoryError:
            # concurrent bucket pipelines can race past the headroom
            # check above; read_bucket is failure-atomic, so push
            # everything still resident (this bucket included) to disk,
            # back off while the other pipelines' in-flight results --
            # which no spill can reach -- finish and release, and retry
            spill_live_stores(1 << 62)
            time.sleep(0.005 * (attempt + 1))
    return store.read_bucket(bucket)


# -- partial_agg -------------------------------------------------------


def exec_partial_agg(backend, node, inputs) -> DataFrame:
    """Per-partition (or per-bucket) grouped partials, stacked in
    partition order."""
    args = node.args
    keys = [str(k) for k in args["keys"]]
    pairs = [tuple(p) for p in args["pairs"]]
    parts, empty_factory = _iter_parts(backend, inputs[0])
    partials = [partial_aggregate(part, keys, pairs) for part in parts]
    if not partials:
        partials = [partial_aggregate(empty_factory(), keys, pairs)]
    if len(partials) == 1:
        # own the payload: a lone partial's key columns are take-derived
        # from the source partition/bucket and would pin its heap store
        return _owned_frame(partials[0])
    return concat_consuming(partials)


# -- combine_agg -------------------------------------------------------


def exec_combine_agg(backend, node, inputs):
    if node.args.get("kind") == "merge":
        return backend.from_pandas(_combine_merge(backend, node, inputs))
    return backend.from_pandas(_combine_groupby(backend, node, inputs))


def _combine_merge(backend, node, inputs) -> DataFrame:
    """Restitch bucket-local merge results into the in-memory row order
    using the global position columns, then drop them."""
    lpos_name, rpos_name = node.args["pos_names"]
    stacked = _stack_inputs(backend, inputs)
    lpos = stacked.column(lpos_name)
    rpos = stacked.column(rpos_name)
    # unmatched-left rows (NaN rpos) keep their slot among the matches;
    # unmatched-right rows (NaN lpos) go to the end in right order --
    # exactly repro.frame.merge's emission order.
    left = np.where(
        lpos.isna(), np.inf, lpos.values.astype(np.float64, copy=False)
    )
    right = np.where(
        rpos.isna(), -1.0, rpos.values.astype(np.float64, copy=False)
    )
    order = np.lexsort((right, left))
    cols = {
        name: stacked.column(name).take(order)
        for name in stacked.columns
        if name not in (lpos_name, rpos_name)
    }
    return DataFrame.from_columns(cols)


def _combine_groupby(backend, node, inputs):
    """Re-aggregate stacked partials into the final Series / DataFrame.

    Grouping the stacked partial frame reproduces the canonical group
    order of the in-memory path (per-column rank codes are a monotone
    transform, so lexicographic key order is frame-independent).
    """
    args = node.args
    keys = [str(k) for k in args["keys"]]
    stacked = _stack_inputs(backend, inputs)
    gb = GroupBy(stacked, keys, as_index=False)
    codes, _, n_groups = gb._factorize()
    cols = {}
    for spec in args["outputs"]:
        if spec.get("mode") == "mean":
            sums = _aggregate(
                stacked.column(spec["sum"]), codes, n_groups, "sum"
            ).astype(np.float64)
            counts = _aggregate(
                stacked.column(spec["count"]), codes, n_groups, "sum"
            ).astype(np.float64)
            with np.errstate(invalid="ignore", divide="ignore"):
                values = sums / counts
        else:
            values = _aggregate(
                stacked.column(spec["partial"]), codes, n_groups, spec["func"]
            )
        cols[spec["label"]] = Column.from_values(values)
    if args.get("output") == "series":
        label = args["outputs"][0]["label"]
        return Series(cols[label], index=gb._key_index(), name=args.get("name"))
    if args.get("as_index", True):
        return DataFrame.from_columns(cols, index=gb._key_index())
    out = dict(gb._key_columns())
    out.update(cols)
    return DataFrame.from_columns(out)


def _stack_inputs(backend, inputs) -> DataFrame:
    pieces = [
        piece.materialize()
        if isinstance(piece, PartitionStream)
        else backend.materialize(piece)
        for piece in inputs
    ]
    if len(pieces) == 1:
        return pieces[0]
    return concat_consuming(pieces)


# -- broadcast merge ---------------------------------------------------


def broadcast_merge(backend, node, inputs):
    """Merge a streamed left side against a small materialized right
    side, one partition at a time (the broadcast-join fast path)."""
    stream, right = inputs
    right_frame = (
        right.materialize()
        if isinstance(right, PartitionStream)
        else backend.materialize(right)
    )
    # each piece re-owns its payload so the source partition (whose
    # heap store a plain merge result would share) can die immediately
    pieces = [
        _owned_frame(part.merge(right_frame, **node.args))
        for part in stream
    ]
    if not pieces:
        return backend.from_pandas(
            stream.empty_frame().merge(right_frame, **node.args)
        )
    if len(pieces) == 1:
        return backend.from_pandas(pieces[0])
    return backend.from_pandas(concat_consuming(pieces))


# -- session context ---------------------------------------------------


def _iter_parts(backend, value):
    """Iterate a value as partition frames; eager values are one part."""
    if isinstance(value, PartitionStream):
        return iter(value), value.empty_frame
    frame = backend.materialize(value)
    empty = np.empty(0, dtype=np.int64)
    return iter([frame]), (lambda: frame.take(empty))


def _current_manager():
    from repro.memory import current_memory_manager

    return current_memory_manager()


def _spill_dir():
    try:
        from repro.core.session import current_session

        value = current_session().options.get("memory.spill_dir")
        return str(value) if value is not None else None
    except Exception:
        return None
