"""Execution backends for the LaFP task graph.

Three backends mirror the paper's setup:

- :class:`PandasBackend` -- eager, whole-frame, in-memory
  (:mod:`repro.frame` stands in for pandas),
- :class:`DaskBackend` -- lazy, partitioned, out-of-core with spilling
  (:mod:`repro.backends.dask_sim` stands in for Dask),
- :class:`ModinBackend` -- eager, partitioned, in-memory
  (:mod:`repro.backends.modin_sim` stands in for Modin on Ray).

All three consume the same operator nodes; ops a backend cannot express
fall back to "convert to pandas, run, convert back" exactly as the paper
describes for Dask incompatibilities (section 2.6).
"""

from repro.backends.base import Backend, BackendUnsupported, apply_generic
from repro.backends.pandas_backend import PandasBackend
from repro.backends.dask_backend import DaskBackend
from repro.backends.modin_backend import ModinBackend


def get_backend(name: str) -> Backend:
    """Instantiate a backend by its configuration name."""
    table = {
        "pandas": PandasBackend,
        "dask": DaskBackend,
        "modin": ModinBackend,
    }
    key = name.lower()
    if key not in table:
        raise ValueError(f"unknown backend {name!r}; choose from {sorted(table)}")
    return table[key]()


__all__ = [
    "Backend",
    "BackendUnsupported",
    "DaskBackend",
    "ModinBackend",
    "PandasBackend",
    "apply_generic",
    "get_backend",
]
