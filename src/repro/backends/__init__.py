"""Execution backends for the LaFP task graph.

Three backends mirror the paper's setup:

- :class:`PandasBackend` -- eager, whole-frame, in-memory
  (:mod:`repro.frame` stands in for pandas),
- :class:`DaskBackend` -- lazy, partitioned, out-of-core with spilling
  (:mod:`repro.backends.dask_sim` stands in for Dask),
- :class:`ModinBackend` -- eager, partitioned, in-memory
  (:mod:`repro.backends.modin_sim` stands in for Modin on Ray).

All three consume the same operator nodes; ops a backend cannot express
fall back to "convert to pandas, run, convert back" exactly as the paper
describes for Dask incompatibilities (section 2.6).
"""

from repro.backends.base import Backend, BackendUnsupported, apply_generic
from repro.backends.pandas_backend import PandasBackend
from repro.backends.dask_backend import DaskBackend
from repro.backends.modin_backend import ModinBackend
from repro.backends.engine import (
    DEFAULT_REGISTRY,
    Engine,
    EngineRegistry,
    EngineSpec,
)


def get_backend(name: str) -> Backend:
    """Instantiate a standalone backend by name (registry-backed).

    Sessions resolve engines through their own :class:`EngineRegistry`;
    this helper remains for code that needs a throwaway backend object.
    """
    return DEFAULT_REGISTRY.create(name).backend


__all__ = [
    "Backend",
    "BackendUnsupported",
    "DEFAULT_REGISTRY",
    "DaskBackend",
    "Engine",
    "EngineRegistry",
    "EngineSpec",
    "ModinBackend",
    "PandasBackend",
    "apply_generic",
    "get_backend",
]
