"""Simulated memory accounting, sharded per session.

Every column buffer created by :mod:`repro.frame` registers its size with
a :class:`MemoryManager`.  Buffers deregister when garbage collected
(CPython refcounting makes this effectively deterministic), or explicitly
when a backend spills them to disk.

Each :class:`~repro.core.session.Session` owns its own manager, so two
concurrent sessions account (and budget) their allocations independently
-- a multi-tenant executor cannot OOM a neighbour.  The module-level
:data:`memory_manager` is the *root session's* manager, kept so
paper-verbatim scripts and older harness code that poke the process-wide
budget directly keep working; new code should resolve the current
manager through :func:`current_memory_manager`.

The manager keeps these numbers:

- ``live``  -- bytes currently registered,
- ``peak``  -- maximum of ``live`` since the last :meth:`MemoryManager.reset_peak`,
- ``budget`` -- optional ceiling; registration beyond it raises
  :class:`SimulatedMemoryError`,
- ``total_registered`` / ``total_released`` -- monotonic lifetime sums
  (the scheduler diffs them for per-node byte attribution),
- ``double_release_count`` -- how many times a release drove ``live``
  below zero (a caller bug; clamped, counted, and warned about).

A ``budget`` of ``None`` (the default) disables the ceiling, so ordinary
library use is unaffected; the benchmark runner installs a budget scaled to
the paper's RAM:data ratio.
"""

from __future__ import annotations

import threading
import warnings
import weakref
from contextlib import contextmanager
from typing import Iterator, Optional


class SimulatedMemoryError(MemoryError):
    """Raised when a tracked allocation would exceed the simulated budget.

    Subclasses :class:`MemoryError` so code written to survive real
    out-of-memory conditions behaves identically under simulation.
    """

    def __init__(self, requested: int, live: int, budget: int):
        self.requested = requested
        self.live = live
        self.budget = budget
        super().__init__(
            f"simulated OOM: requested {requested} B with {live} B live "
            f"against a budget of {budget} B"
        )


class MemoryManager:
    """Tracks live and peak bytes of registered buffers.

    Thread-safe: the Dask and Modin simulators execute partitions from
    worker threads, and the threaded scheduler registers node results
    concurrently.
    """

    def __init__(self, budget: Optional[int] = None):
        self._lock = threading.Lock()
        self._live = 0
        self._peak = 0
        self._total_registered = 0
        self._total_released = 0
        #: bumped by reset(): releases of buffers registered before a
        #: reset are stale (their bytes were already zeroed) and must
        #: not be mistaken for double-releases.
        self._epoch = 0
        self.budget = budget
        self.oom_count = 0
        self.double_release_count = 0

    # -- accounting ------------------------------------------------------

    def register(self, nbytes: int) -> int:
        """Account for ``nbytes`` of new buffer memory.

        Returns the registration epoch (pass it back to
        :meth:`_release_epoch` so releases straddling a :meth:`reset`
        are dropped, not double-counted).  Raises
        :class:`SimulatedMemoryError` if a budget is set and the
        allocation would push ``live`` past it.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        with self._lock:
            if self.budget is not None and self._live + nbytes > self.budget:
                self.oom_count += 1
                raise SimulatedMemoryError(nbytes, self._live, self.budget)
            self._live += nbytes
            self._total_registered += nbytes
            if self._live > self._peak:
                self._peak = self._live
            return self._epoch

    def release(self, nbytes: int) -> None:
        """Return ``nbytes`` to the pool (buffer freed or spilled)."""
        self._release_epoch(nbytes, self._epoch)

    def _release_epoch(self, nbytes: int, epoch: int) -> None:
        """Release bound to the registration epoch.

        Buffer finalizers capture the epoch at registration; a
        :meth:`reset` in between (benchmark cell teardown) already
        zeroed their bytes, so their late releases are dropped instead
        of being miscounted as double-releases.
        """
        underflow = False
        with self._lock:
            if epoch != self._epoch:
                return
            self._live -= nbytes
            self._total_released += nbytes
            if self._live < 0:
                # Double-release is a bug in the caller; clamp so the
                # accounting stays sane but keep it visible: count it
                # and warn, so the bug cannot hide behind the clamp.
                self._live = 0
                self.double_release_count += 1
                underflow = True
        if underflow:
            warnings.warn(
                f"memory double-release: {nbytes} B released beyond the "
                f"registered total (occurrence #{self.double_release_count})",
                RuntimeWarning,
                stacklevel=2,
            )

    # -- observation -----------------------------------------------------

    @property
    def live(self) -> int:
        """Bytes currently registered."""
        return self._live

    @property
    def peak(self) -> int:
        """High-water mark since construction or :meth:`reset_peak`."""
        return self._peak

    @property
    def total_registered(self) -> int:
        """Lifetime sum of registered bytes (monotonic)."""
        return self._total_registered

    @property
    def total_released(self) -> int:
        """Lifetime sum of released bytes (monotonic)."""
        return self._total_released

    def headroom(self) -> Optional[int]:
        """Bytes left under the budget, or ``None`` when unbudgeted."""
        if self.budget is None:
            return None
        return max(0, self.budget - self._live)

    def reset_peak(self) -> None:
        """Start a fresh peak measurement from the current live size."""
        with self._lock:
            self._peak = self._live

    def reset(self) -> None:
        """Clear all counters (used between benchmark runs).

        Buffers registered before the reset may still be alive; their
        eventual releases are recognised by epoch and ignored.
        """
        with self._lock:
            self._live = 0
            self._peak = 0
            self._total_registered = 0
            self._total_released = 0
            self._epoch += 1
            self.oom_count = 0
            self.double_release_count = 0


#: The root session's manager.  Deprecation shim: code that mutated the
#: process-wide budget directly still works because the root session
#: adopts this exact instance; per-session work should go through
#: :func:`current_memory_manager`.
memory_manager = MemoryManager()


def current_memory_manager() -> MemoryManager:
    """The memory manager of the calling thread's current session.

    Falls back to the process-root manager when the session layer is not
    importable yet (early interpreter shutdown, partial installs).
    """
    try:
        from repro.core.session import current_session
    except ImportError:  # pragma: no cover - import-order edge
        return memory_manager
    return current_session().memory


class TrackedBuffer:
    """Registers ``nbytes`` with a manager for its lifetime.

    :class:`repro.frame.column.Column` owns one of these per backing array.
    The manager is resolved from the calling thread's current session
    unless given explicitly, so buffers created inside ``with
    Session(...)`` blocks count against that session's budget.
    Deregistration happens via ``weakref.finalize`` so callers never need a
    ``close()`` discipline; explicit :meth:`release` supports spilling.
    """

    __slots__ = ("nbytes", "_finalizer", "__weakref__")

    def __init__(self, nbytes: int, manager: Optional[MemoryManager] = None):
        if manager is None:
            manager = current_memory_manager()
        epoch = manager.register(nbytes)
        self.nbytes = nbytes
        self._finalizer = weakref.finalize(
            self, manager._release_epoch, nbytes, epoch
        )

    def release(self) -> None:
        """Deregister now (idempotent); used when spilling to disk."""
        if self._finalizer.alive:
            self._finalizer()


@contextmanager
def memory_budget(budget: Optional[int]) -> Iterator[MemoryManager]:
    """Temporarily install ``budget`` on the *current session's* manager.

    At root (no active ``with Session``) this governs the process-wide
    manager exactly as before.  Peak tracking is reset on entry so the
    recorded peak reflects only the governed region.  The previous budget
    is restored on exit.

    Implemented through the session's ``memory.budget`` option so it
    composes with option-driven budgets: a session whose budget came
    from options gets this override for exactly the context's scope
    (a direct ``manager.budget`` write would be clobbered by the
    option's write-through on the next allocation).
    """
    try:
        from repro.core.session import current_session
    except ImportError:  # pragma: no cover - import-order edge
        session = None
    else:
        session = current_session()
    if session is None:
        manager = memory_manager
        previous = manager.budget
        manager.budget = budget
        manager.reset_peak()
        try:
            yield manager
        finally:
            manager.budget = previous
        return
    try:
        with session.option_context("memory.budget", budget):
            manager = session.memory  # write the override through
            manager.reset_peak()
            yield manager
    finally:
        session.memory  # eagerly restore the pre-context budget
